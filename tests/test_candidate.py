"""Tests for the CandidateExecution structure itself."""

import pytest

from repro.executions import candidate_executions
from repro.litmus import library


@pytest.fixture(scope="module")
def execution():
    return next(iter(candidate_executions(library.get("MP+wmb+rmb"))))


class TestEventSets:
    def test_partition_of_universe(self, execution):
        x = execution
        assert (x.reads | x.writes | x.fences).events == x.events
        assert (x.reads & x.writes).is_empty()
        assert x.accesses == (x.reads | x.writes)

    def test_initial_writes(self, execution):
        for event in execution.initial_writes:
            assert event.is_init and event.is_write

    def test_tagged(self, execution):
        assert len(execution.tagged("wmb")) == 1
        assert len(execution.tagged("rmb")) == 1
        assert execution.tagged("acquire").is_empty()

    def test_event_set_builder(self, execution):
        some = execution.event_set(list(execution.events)[:2])
        assert len(some) == 2
        assert some.universe == execution.universe


class TestBaseRelations:
    def test_identity(self, execution):
        assert len(execution.identity) == len(execution.events)
        assert all(a == b for a, b in execution.identity.pairs)

    def test_loc_relation_matches_locations(self, execution):
        for a, b in execution.loc.pairs:
            assert a.loc == b.loc is not None

    def test_int_includes_identity(self, execution):
        for event in execution.events:
            assert (event, event) in execution.int_

    def test_ext_is_irreflexive(self, execution):
        assert execution.ext.is_irreflexive()

    def test_dep_is_addr_union_data(self, execution):
        assert execution.dep == (execution.addr | execution.data)

    def test_com_components(self, execution):
        assert execution.com == (execution.rf | execution.co | execution.fr)
        assert execution.rfi | execution.rfe == execution.rf
        assert execution.coi | execution.coe == execution.co
        assert execution.fri | execution.fre == execution.fr


class TestDisplay:
    def test_describe_lists_threads_and_relations(self, execution):
        text = execution.describe()
        assert "T0" in text and "T1" in text
        assert "rf:" in text and "co:" in text and "fr:" in text

    def test_sorted_events_by_thread_then_po(self, execution):
        events = execution.sorted_events()
        keys = [(e.tid, e.po_index) for e in events]
        assert keys == sorted(keys)

    def test_repr(self, execution):
        assert "MP+wmb+rmb" in repr(execution)


class TestFinalState:
    def test_memory_reflects_co_max(self, execution):
        state = execution.final_state
        assert state.memory == {"x": 1, "y": 1}

    def test_registers_present(self, execution):
        assert (1, "r0") in execution.final_state.registers
        assert (1, "r1") in execution.final_state.registers
