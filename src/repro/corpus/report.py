"""Render a sweep + mining pass as ``STRESS_REPORT.md``.

The report is the human-facing artefact of the data-mining programme:
a headline (corpus size, agreement rate, alert count), the verdict
matrix shape, the disagreement-signature census ranked by population,
the family leaderboard ranked by disagreement density, and — first,
when present — the soundness alerts, because a single one of those
invalidates either a mapping or a model.

Deterministic by construction: same matrix in, same bytes out (no
timestamps, no environment), so the CI artefact diffs cleanly between
runs and a report regression is a *behaviour* regression.
"""

from __future__ import annotations

from typing import Optional

from repro.corpus.mine import MiningReport
from repro.corpus.sweep import SweepResult


def _pct(part: int, whole: int) -> str:
    return f"{100.0 * part / whole:.1f}%" if whole else "n/a"


def stress_report(
    report: MiningReport,
    result: Optional[SweepResult] = None,
    title: str = "Corpus stress report",
    signature_limit: int = 20,
    family_limit: int = 15,
) -> str:
    """The full markdown report for one mined sweep."""
    lines = [f"# {title}", ""]

    disagreeing = report.total - report.agreeing
    lines += [
        "## Headline",
        "",
        f"- **Tests judged:** {report.total}"
        + (
            f" ({result.journal_skips} replayed from journal, "
            f"{result.swept} swept, {len(result.abandoned)} abandoned)"
            # A matrix rehydrated from disk has no sweep provenance.
            if result is not None
            and (result.swept or result.journal_skips or result.abandoned)
            else ""
        ),
        f"- **Models:** {', '.join(report.model_order)}",
        f"- **Full agreement:** {report.agreeing} "
        f"({_pct(report.agreeing, report.total)})",
        f"- **Disagreement:** {disagreeing} "
        f"({_pct(disagreeing, report.total)})",
        f"- **Inconclusive rows (budget):** {report.inconclusive_rows}",
        f"- **Soundness alerts:** {len(report.soundness_alerts)}",
        "",
    ]

    lines += ["## Soundness alerts", ""]
    if report.soundness_alerts:
        lines += [
            "A hardware model **allows** an outcome **LKMM forbids** — "
            "the LK→machine mapping (Table 4) or one of the models is "
            "wrong.  Investigate before trusting anything else here.",
            "",
            "| test | hardware model |",
            "| --- | --- |",
        ]
        lines += [
            f"| `{name}` | {model} |"
            for name, model in report.soundness_alerts
        ]
    else:
        lines += [
            "None: every hardware-allowed behaviour is LKMM-allowed "
            "across the corpus (the Section 5.1 soundness claim holds "
            "on this sample)."
        ]
    lines.append("")

    lines += [
        "## Disagreement signatures",
        "",
        "Tests grouped by *which* models part ways; a signature is one "
        "behavioural equivalence class of the battery.",
        "",
        "| # | signature | tests | top families | exemplars |",
        "| --- | --- | --- | --- | --- |",
    ]
    for rank, bucket in enumerate(
        report.ranked_signatures()[:signature_limit], start=1
    ):
        top_families = ", ".join(
            f"{fam} ({n})"
            for fam, n in sorted(
                bucket.families.items(), key=lambda kv: (-kv[1], kv[0])
            )[:3]
        )
        exemplars = ", ".join(f"`{n}`" for n in bucket.exemplars[:3])
        lines.append(
            f"| {rank} | `{bucket.signature}` | {bucket.count} "
            f"| {top_families} | {exemplars} |"
        )
    hidden = len(report.signatures) - signature_limit
    if hidden > 0:
        lines.append(f"| … | {hidden} more signatures | | | |")
    lines.append("")

    lines += [
        "## Family leaderboard",
        "",
        "Cycle families ranked by disagreement density — where the "
        "models disagree most per generated test.",
        "",
        "| family | tests | disagreements | density |",
        "| --- | --- | --- | --- |",
    ]
    for stats in report.ranked_families()[:family_limit]:
        lines.append(
            f"| `{stats.family}` | {stats.tests} | {stats.disagreements} "
            f"| {_pct(stats.disagreements, stats.tests)} |"
        )
    lines.append("")

    if result is not None and result.abandoned:
        lines += [
            "## Abandoned (wall budget expired)",
            "",
            f"{len(result.abandoned)} tests were queued when the budget "
            "ran out; resuming with the same journal sweeps exactly "
            "these.",
            "",
        ]
        lines += [f"- `{name}`" for name in result.abandoned[:20]]
        if len(result.abandoned) > 20:
            lines.append(f"- … {len(result.abandoned) - 20} more")
        lines.append("")

    return "\n".join(lines)
