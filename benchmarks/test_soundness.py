"""E14 — the soundness sweep (Section 5.1).

"Table 5 shows that all the hardware behaviours we observed are allowed
by the model: our model is experimentally sound."

Here the claim is checked mechanically and more broadly: for every test
in the corpus *and* a sweep of diy-generated cycles, every final state
allowed by an architecture model (on the compiled program) is allowed by
the LK model (on the source program).  The reverse inclusion does not
hold — "the machines are stronger than required by our model" — and the
sweep also counts how often each architecture is strictly stronger.
"""

from __future__ import annotations

import pytest

from repro.cat import load_model
from repro.diy import generate_cycles
from repro.executions import candidate_executions
from repro.hardware import compile_program, get_arch
from repro.hardware.archspec import TABLE5_ARCHS
from repro.litmus import library

from conftest import once, print_table

VOCAB = [
    "Rfe", "Fre", "Coe",
    "PodRR", "PodRW", "PodWR", "PodWW",
    "MbdRR", "MbdWR", "MbdWW", "WmbdWW", "RmbdRR",
    "DpDatadW", "DpAddrdR", "AcqdR", "ReldW",
]

ARCHS = TABLE5_ARCHS + ["Alpha"]


def allowed_states(model, program):
    return {
        x.final_state
        for x in candidate_executions(program)
        if model.allows(x)
    }


def sweep(lkmm, programs):
    arch_models = {name: load_model(get_arch(name).cat_model) for name in ARCHS}
    unsound = []
    stronger_counts = {name: 0 for name in ARCHS}
    tests = 0
    for program in programs:
        lk_states = allowed_states(lkmm, program)
        tests += 1
        for arch_name in ARCHS:
            arch = get_arch(arch_name)
            compiled = compile_program(program, arch, rcu="error")
            arch_states = allowed_states(arch_models[arch_name], compiled)
            if arch_states - lk_states:
                unsound.append((program.name, arch_name))
            if lk_states - arch_states:
                stronger_counts[arch_name] += 1
    return tests, unsound, stronger_counts


def test_soundness_on_corpus(benchmark, lkmm):
    def experiment():
        programs = [
            library.get(name)
            for name in library.all_names()
            if not name.startswith("RCU")
            and "sync" not in name
            and name != "lock-mutex"
        ]
        return sweep(lkmm, programs)

    tests, unsound, stronger = once(benchmark, experiment)
    print_table(
        f"Soundness sweep over {tests} corpus tests x {len(ARCHS)} archs",
        ("Arch", "tests where hardware model is strictly stronger"),
        sorted(stronger.items()),
    )
    assert not unsound, f"unsound combinations: {unsound}"
    # Hardware being strictly stronger somewhere is expected (e.g. LB on
    # x86, MP+wmb+addr on everything but Alpha).
    assert stronger["x86"] > 0


def test_soundness_on_generated_cycles(benchmark, lkmm):
    def experiment():
        programs = list(generate_cycles(VOCAB, 4, max_tests=120))
        return (len(programs),) + sweep(lkmm, programs)[1:]

    count, unsound, stronger = once(benchmark, experiment)
    print(f"\nSoundness holds on {count} generated cycles x {len(ARCHS)} archs")
    assert count >= 100
    assert not unsound, f"unsound combinations: {unsound}"
