"""Events of candidate executions.

The paper (Section 2) models each executed Linux-kernel primitive as one or
more *events*.  Reads (``R``) from a shared location, writes (``W``) to a
shared location, and fences (``F``) each carry an *annotation* (called a
*tag* here, following herd terminology) reflecting the primitive they came
from: ``once`` or ``acquire`` for reads, ``once`` or ``release`` for writes,
and ``rmb``, ``wmb``, ``mb``, ``rb-dep``, ``rcu-lock``, ``rcu-unlock`` or
``sync-rcu`` for fences (Tables 3 and 4 of the paper).

Architecture-level events produced by :mod:`repro.hardware.compile` reuse
this class with architecture-specific tags (e.g. ``sync``, ``lwsync``,
``dmb``), as do C11 events (``relaxed``, ``rel``, ``acq``, ``sc``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

#: Event kinds.
READ = "R"
WRITE = "W"
FENCE = "F"

#: Tags used by the Linux-kernel model (Tables 3 and 4).
ONCE = "once"
ACQUIRE = "acquire"
RELEASE = "release"
RMB = "rmb"
WMB = "wmb"
MB = "mb"
RB_DEP = "rb-dep"
RCU_LOCK = "rcu-lock"
RCU_UNLOCK = "rcu-unlock"
SYNC_RCU = "sync-rcu"
#: Tag used for plain (non-ONCE) accesses, e.g. on architectures where the
#: compiled code uses ordinary loads and stores.
PLAIN = "plain"
#: Tag used for a no-op fence (a fence primitive compiled away).
NOOP = "noop"

LK_READ_TAGS = frozenset({ONCE, ACQUIRE})
LK_WRITE_TAGS = frozenset({ONCE, RELEASE})
LK_FENCE_TAGS = frozenset({RMB, WMB, MB, RB_DEP, RCU_LOCK, RCU_UNLOCK, SYNC_RCU})

#: Thread id used for the implicit initialising writes.
INIT_TID = -1

__all__ = [
    "READ",
    "WRITE",
    "FENCE",
    "ONCE",
    "ACQUIRE",
    "RELEASE",
    "RMB",
    "WMB",
    "MB",
    "RB_DEP",
    "RCU_LOCK",
    "RCU_UNLOCK",
    "SYNC_RCU",
    "PLAIN",
    "NOOP",
    "LK_READ_TAGS",
    "LK_WRITE_TAGS",
    "LK_FENCE_TAGS",
    "INIT_TID",
    "Pointer",
    "Value",
    "Event",
    "fresh_labels",
]


@dataclass(frozen=True, order=True)
class Pointer:
    """A pointer value ``&loc``.

    Shared locations can hold pointers to other shared locations, which is
    how address dependencies arise (e.g. ``MP+wmb+addr-acq``, Figure 9 of
    the paper): a read returns a :class:`Pointer` and a later access
    dereferences it.
    """

    loc: str

    def __repr__(self) -> str:
        return f"&{self.loc}"


#: Runtime values held in shared locations and registers.
Value = Union[int, Pointer]


@dataclass(frozen=True)
class Event:
    """A node of a candidate execution graph.

    Attributes:
        eid: Globally unique id within one candidate execution.
        tid: Issuing thread, or :data:`INIT_TID` for initialising writes.
        po_index: Position within the thread's program order.
        kind: :data:`READ`, :data:`WRITE`, or :data:`FENCE`.
        tag: The annotation (``once``, ``acquire``, ``mb``, ...).
        loc: Accessed shared location, or ``None`` for fences.
        value: Value written (for writes) or read (for reads, fixed once the
            reads-from relation is chosen); ``None`` for fences.
        label: Short display name (``a``, ``b``, ...) used when
            pretty-printing executions, mirroring the paper's figures.
        extra_tags: Additional tags (e.g. a read that is both ``once`` and
            part of an RMW is tagged with ``rmw`` here).
    """

    eid: int
    tid: int
    po_index: int
    kind: str
    tag: str
    loc: Optional[str] = None
    value: Optional[Value] = None
    label: str = ""
    extra_tags: Tuple[str, ...] = field(default=())

    @property
    def is_read(self) -> bool:
        return self.kind == READ

    @property
    def is_write(self) -> bool:
        return self.kind == WRITE

    @property
    def is_fence(self) -> bool:
        return self.kind == FENCE

    @property
    def is_memory_access(self) -> bool:
        return self.kind in (READ, WRITE)

    @property
    def is_init(self) -> bool:
        return self.tid == INIT_TID

    def has_tag(self, tag: str) -> bool:
        return self.tag == tag or tag in self.extra_tags

    def with_value(self, value: Value) -> "Event":
        """Return a copy of this event carrying ``value``."""
        return Event(
            eid=self.eid,
            tid=self.tid,
            po_index=self.po_index,
            kind=self.kind,
            tag=self.tag,
            loc=self.loc,
            value=value,
            label=self.label,
            extra_tags=self.extra_tags,
        )

    def __repr__(self) -> str:
        name = self.label or f"e{self.eid}"
        if self.is_fence:
            return f"{name}:F[{self.tag}]"
        where = self.loc if self.loc is not None else "?"
        return f"{name}:{self.kind}[{self.tag}]{where}={self.value!r}"

    # Events are identified by eid within an execution; hashing on eid keeps
    # relation operations cheap and lets `with_value` copies stay distinct.
    # Returning the eid directly (not hash(self.eid)) matters: relation
    # construction hashes events millions of times per litmus run, and eids
    # are small non-negative ints whose hash is themselves.
    def __hash__(self) -> int:  # pragma: no cover - trivial
        return self.eid

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.eid == other.eid


def fresh_labels(events) -> None:
    """Assign ``a``, ``b``, ... labels to memory accesses in (tid, po) order.

    Fences keep empty labels, matching the paper's figures where only
    accesses are named.  Mutation is impossible on frozen dataclasses, so
    this returns a list of relabelled events instead.
    """
    ordered = sorted(events, key=lambda e: (e.tid, e.po_index, e.eid))
    out = []
    next_label = 0
    for event in ordered:
        if event.is_memory_access and not event.is_init:
            label = _index_to_label(next_label)
            next_label += 1
            out.append(
                Event(
                    eid=event.eid,
                    tid=event.tid,
                    po_index=event.po_index,
                    kind=event.kind,
                    tag=event.tag,
                    loc=event.loc,
                    value=event.value,
                    label=label,
                    extra_tags=event.extra_tags,
                )
            )
        else:
            out.append(event)
    return out


def _index_to_label(index: int) -> str:
    """0 -> 'a', 25 -> 'z', 26 -> 'aa', ..."""
    label = ""
    index += 1
    while index > 0:
        index, rem = divmod(index - 1, 26)
        label = chr(ord("a") + rem) + label
    return label
