"""Benchmark: the :mod:`repro.kernel` execution kernel vs the reference path.

Times four workloads — a 2-thread message-passing test, a 3-thread
write-to-read-causality test, a full-library verdict sweep, and the
Section 6 RCU-implementation verification (the package's heaviest single
run) — under

* the *reference* configuration: frozenset-of-pairs relations, naive
  enumerate-then-filter checking, statement-walking cat interpreter;
* the *kernel* configuration (the default): integer-indexed bitset
  relations, per-trace incremental checking, and the relational bytecode
  VM (:mod:`repro.kernel.vm`), single process.

The litmus and sweep rows run the cat-loaded LKMM (the interpreter
pipeline the VM accelerates); the RCU row keeps the native
:class:`LinuxKernelModel` used by the Section 6 tooling.  Every row
reports timings split into

* ``seconds_setup_*`` — model load plus one warm-up run (cat parse,
  check-plan compile, bytecode lowering, cache priming);
* ``seconds_solve_*`` — best of ``SOLVE_ROUNDS`` steady-state runs, which
  is what ``speedup`` compares.

A fifth micro-row times the popcount kernel of :mod:`repro.kernel.bitrel`
— native ``int.bit_count`` (Python >= 3.10) against the pure-Python
fallback; its ``speedup`` is ``None`` when the interpreter has no native
popcount (then the fallback *is* the kernel path).

Results are printed and written to ``BENCH_kernel.json`` at the
repository root.  The suite asserts both configurations agree exactly,
that no row regresses below ``MIN_ROW_SPEEDUP``, that the library sweep
wins by at least ``MIN_SWEEP_SPEEDUP`` and the RCU-implementation run by
``MIN_RCU_SPEEDUP``.

Run with::

    pytest benchmarks/test_perf_kernel.py --benchmark-only -s
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.cat import load_model
from repro.herd import run_litmus, verdicts
from repro.kernel import config as kconfig
from repro.kernel.bitrel import _popcount, _popcount_fallback
from repro.litmus import library
from repro.lkmm import LinuxKernelModel
from repro.rcu import verify_implementation

from conftest import once, print_table

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_FILE = REPO_ROOT / "BENCH_kernel.json"

#: CI floor on every row: the kernel must never lose to the reference
#: path by more than timer jitter (the committed table shows >= 1.0).
MIN_ROW_SPEEDUP = 0.9
#: Floor on the library-sweep row (the kernel-v2 acceptance criterion).
MIN_SWEEP_SPEEDUP = 5.0
#: Floor on the RCU-implementation run (the kernel-v1 criterion).
MIN_RCU_SPEEDUP = 3.0

#: Ceiling on the cost of guard safepoints: measured per-call price of
#: the armed safepoint times the sweep's safepoint count, as a fraction
#: of the sweep's solve time (see ``_run_guard_overhead``).
MAX_GUARD_OVERHEAD = 0.03

#: Steady-state repetitions; ``seconds_solve`` is the best (min) round.
SOLVE_ROUNDS = 5


def _reference():
    return (
        kconfig.use_backend(kconfig.FROZENSET),
        kconfig.use_incremental(False),
        kconfig.use_check_plan(False),
        kconfig.use_vm(False),
        kconfig.use_static_verdict(False),
    )


def _measure(setup, run):
    """``(setup_result, seconds_setup, run_result, seconds_solve)``.

    ``setup`` is timed once; ``run`` is timed ``SOLVE_ROUNDS`` times and
    the fastest round reported (best-of-N filters scheduler noise from
    millisecond-scale rows).
    """
    start = time.perf_counter()
    prepared = setup()
    seconds_setup = time.perf_counter() - start
    best = None
    result = None
    for _ in range(SOLVE_ROUNDS):
        start = time.perf_counter()
        result = run(prepared)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return prepared, seconds_setup, result, best


def _both_configs(setup, run):
    """Run one workload under the kernel and the reference configuration."""
    _, setup_fast, fast, solve_fast = _measure(setup, run)
    contexts = _reference()
    try:
        for ctx in contexts:
            ctx.__enter__()
        _, setup_ref, reference, solve_ref = _measure(setup, run)
    finally:
        for ctx in reversed(contexts):
            ctx.__exit__(None, None, None)
    return (fast, setup_fast, solve_fast), (reference, setup_ref, solve_ref)


def _row(test, workload, verdict, candidates, kernel, reference):
    _, setup_fast, solve_fast = kernel
    _, setup_ref, solve_ref = reference
    return {
        "test": test,
        "workload": workload,
        "verdict": verdict,
        "candidates_kernel": candidates[0],
        "candidates_reference": candidates[1],
        "seconds_setup_kernel": round(setup_fast, 4),
        "seconds_solve_kernel": round(solve_fast, 4),
        "seconds_setup_reference": round(setup_ref, 4),
        "seconds_solve_reference": round(solve_ref, 4),
        "speedup": round(solve_ref / max(solve_fast, 1e-9), 2),
    }


def _run_litmus_workload(name):
    program = library.get(name)

    def setup():
        # Model construction, cat parse, check-plan compile and bytecode
        # lowering all happen on the warm-up run.
        model = load_model("lkmm")
        run_litmus(model, program, require_sc_per_location=True)
        return model

    def run(model):
        return run_litmus(model, program, require_sc_per_location=True)

    kernel, reference = _both_configs(setup, run)
    fast, ref = kernel[0], reference[0]
    assert fast.verdict == ref.verdict
    assert fast.candidates == ref.candidates
    assert fast.states == ref.states
    return _row(
        name,
        "litmus",
        fast.verdict,
        (fast.candidates, ref.candidates),
        kernel,
        reference,
    )


def _run_library_sweep():
    """Verdicts over the whole library: kernel vs reference vs jobs=2."""
    programs = library.all_tests()

    def setup():
        models = [load_model("lkmm")]
        verdicts(models, programs, require_sc_per_location=True)
        return models

    def run(models):
        return verdicts(models, programs, require_sc_per_location=True)

    kernel, reference = _both_configs(setup, run)
    fast, ref = kernel[0], reference[0]
    assert fast == ref
    parallel = verdicts(
        [load_model("lkmm")], programs, jobs=2, require_sc_per_location=True
    )
    assert fast == parallel
    return _row(
        f"library sweep ({len(programs)} tests, LKMM)",
        "library-verdicts",
        "identical across backends and jobs=2",
        (len(programs), len(programs)),
        kernel,
        reference,
    )


def _isa2_chain(threads):
    """An ISA2-style message chain of ``threads`` threads: each middle
    thread reads the previous flag under ``smp_mb()`` before raising the
    next, the last thread looks back at the first store.  Forbidden under
    LKMM for every length; the candidate space doubles per thread while
    the critical cycle (and its proof) merely gains two positions."""
    from repro.litmus.parser import parse_litmus

    n = threads
    lines = [
        f"C ISA2-chain-{n}",
        "{ " + " ".join(f"x{i}=0;" for i in range(n)) + " }",
        "P0(int *x0, int *x1)\n{\n    WRITE_ONCE(*x0, 1);\n"
        "    smp_wmb();\n    WRITE_ONCE(*x1, 1);\n}",
    ]
    for i in range(1, n - 1):
        lines.append(
            f"P{i}(int *x{i}, int *x{i + 1})\n{{\n"
            f"    int r0 = READ_ONCE(*x{i});\n    smp_mb();\n"
            f"    WRITE_ONCE(*x{i + 1}, 1);\n}}"
        )
    lines.append(
        f"P{n - 1}(int *x{n - 1}, int *x0)\n{{\n"
        f"    int r0 = READ_ONCE(*x{n - 1});\n    smp_rmb();\n"
        f"    int r1 = READ_ONCE(*x0);\n}}"
    )
    cond = " /\\ ".join(f"{i}:r0=1" for i in range(1, n))
    lines.append(f"exists ({cond} /\\ {n - 1}:r1=0)")
    return parse_litmus("\n".join(lines))


CHAIN_SIZES = (3, 4, 5, 6)


def _run_static_prepass():
    """The symbolic pre-pass isolated: every other kernel layer fixed at
    its default, static verdicts on vs off.

    The timed workload is the ISA2 fence-chain family, where the
    asymmetry the pre-pass exploits is structural: enumeration must
    visit a candidate space that doubles with every thread, while the
    critical-cycle proof grows by two positions (and is a table lookup
    once the shape is known).  The library assertions ride along
    untimed: the verdict tables must be identical either way, and
    ``static_decided`` (the acceptance counter) must be non-zero."""
    from repro.obs import core as obs_core

    programs = [_isa2_chain(n) for n in CHAIN_SIZES]

    def setup():
        models = [load_model("lkmm")]
        verdicts(models, programs, require_sc_per_location=True)
        return models

    def run(models):
        return verdicts(models, programs, require_sc_per_location=True)

    _, setup_on, fast, solve_on = _measure(setup, run)
    with kconfig.use_static_verdict(False):
        _, setup_off, plain, solve_off = _measure(setup, run)
    assert fast == plain  # the pre-pass is observationally invisible
    assert all(
        fast[program.name]["LKMM"] == "Forbid" for program in programs
    )
    library_programs = library.all_tests()
    with obs_core.collect() as collector:
        on_table = verdicts(
            [load_model("lkmm")], library_programs,
            require_sc_per_location=True,
        )
    decided = collector.counters.get("static.decided", 0)
    assert decided > 0, "the pre-pass decided nothing on the library"
    with kconfig.use_static_verdict(False):
        off_table = verdicts(
            [load_model("lkmm")], library_programs,
            require_sc_per_location=True,
        )
    assert on_table == off_table
    return {
        "test": (
            "static pre-pass (ISA2 fence chains, "
            f"{min(CHAIN_SIZES)}-{max(CHAIN_SIZES)} threads)"
        ),
        "workload": "static-prepass",
        "verdict": (
            f"all Forbid, proved statically; {decided} library cells "
            "decided, tables identical"
        ),
        "candidates_kernel": len(programs),
        "candidates_reference": len(programs),
        "seconds_setup_kernel": round(setup_on, 4),
        "seconds_solve_kernel": round(solve_on, 4),
        "seconds_setup_reference": round(setup_off, 4),
        "seconds_solve_reference": round(solve_off, 4),
        "static_decided": decided,
        "speedup": round(solve_off / max(solve_on, 1e-9), 2),
    }


def _run_rcu_workload():
    program = library.get("RCU-MP")

    def setup():
        verify_implementation(program, loop_bound=1)
        return None

    def run(_):
        return verify_implementation(program, loop_bound=1)

    global SOLVE_ROUNDS
    rounds = SOLVE_ROUNDS
    SOLVE_ROUNDS = 1  # the reference run takes seconds; once is plenty
    try:
        kernel, reference = _both_configs(setup, run)
    finally:
        SOLVE_ROUNDS = rounds
    fast, ref = kernel[0], reference[0]
    assert fast.holds and ref.holds
    assert fast.impl_outcomes == ref.impl_outcomes
    assert fast.spec_outcomes == ref.spec_outcomes
    return _row(
        "RCU-MP implementation (Section 6, loop bound 1)",
        "rcu-implementation",
        "holds",
        (fast.impl_allowed, ref.impl_allowed),
        kernel,
        reference,
    )


def _run_guard_overhead():
    """Safepoint cost on the library sweep under a generous guard.

    The asserted quantity is *safepoint cost*: the measured per-call
    price of the armed safepoint pattern (``if _guard.ACTIVE:
    _guard._current.tick()``) times the number of safepoints the sweep
    actually fires, as a fraction of the sweep's solve time.  A direct
    plain-vs-armed wall-clock diff cannot power a 3% assertion — the
    true cost (~2k safepoints x a few hundred ns on a ~50ms sweep) sits
    well below the +/-5% run-to-run noise of this machine — so the
    end-to-end delta is reported informationally (``overhead_pct_e2e``)
    while the ceiling binds the analytic product of two stable
    measurements.
    """
    from repro.guard import Budget, guard
    from repro.guard import core as guard_core

    programs = library.all_tests()
    generous = Budget(
        wall_seconds=3600.0, max_candidates=10**12, max_mem_mb=65536.0
    )

    def run_plain(models):
        return verdicts(models, programs, require_sc_per_location=True)

    def run_guarded(models):
        with guard(generous):
            return verdicts(models, programs, require_sc_per_location=True)

    start = time.perf_counter()
    models = [load_model("lkmm")]
    run_plain(models)  # warm model/plan caches before any timing
    setup_s = time.perf_counter() - start

    # How many safepoints does one sweep fire?  The sweep runs under the
    # ambient guard (a nested re-arm would hide the ticks from `armed`);
    # note_candidate() also ticks, so candidates are counted twice
    # (conservative).
    with guard(generous) as armed:
        guarded = run_plain(models)
        safepoint_calls = armed._ticks + 2 * armed.candidates

    # Per-call cost of the armed call-site pattern, loop overhead
    # included (conservative).  2^17 iterations exercise the batched
    # clock (every 64 ticks) and rss (every 4096) samplers at their
    # real duty cycle.
    micro_rounds = 1 << 17
    cost_per_call = None
    with guard(generous):
        for _ in range(3):
            start = time.perf_counter()
            for _ in range(micro_rounds):
                if guard_core.ACTIVE:
                    guard_core._current.tick()
            elapsed = time.perf_counter() - start
            per_call = elapsed / micro_rounds
            cost_per_call = (
                per_call
                if cost_per_call is None
                else min(cost_per_call, per_call)
            )

    # Interleaved plain/armed pairs for the informational end-to-end
    # delta (sequential blocks would let CPU-frequency drift masquerade
    # as guard cost).
    solve_plain = solve_guarded = None
    plain = None
    for _ in range(SOLVE_ROUNDS):
        start = time.perf_counter()
        plain = run_plain(models)
        elapsed = time.perf_counter() - start
        solve_plain = elapsed if solve_plain is None else min(solve_plain, elapsed)
        start = time.perf_counter()
        guarded = run_guarded(models)
        elapsed = time.perf_counter() - start
        solve_guarded = (
            elapsed if solve_guarded is None else min(solve_guarded, elapsed)
        )
    assert plain == guarded  # a generous guard never changes verdicts
    safepoint_cost = safepoint_calls * cost_per_call / max(solve_plain, 1e-9)
    overhead_e2e = solve_guarded / max(solve_plain, 1e-9) - 1.0
    return {
        "test": f"guard overhead (library sweep, {len(programs)} tests)",
        "workload": "guard-overhead",
        "verdict": "verdicts identical with generous budget armed",
        "candidates_kernel": len(programs),
        "candidates_reference": len(programs),
        "seconds_setup_kernel": round(setup_s, 4),
        "seconds_solve_kernel": round(solve_guarded, 4),
        "seconds_setup_reference": 0.0,
        "seconds_solve_reference": round(solve_plain, 4),
        "safepoint_calls": safepoint_calls,
        "safepoint_ns": round(cost_per_call * 1e9, 1),
        "overhead_pct": round(safepoint_cost * 100, 2),
        "overhead_pct_e2e": round(overhead_e2e * 100, 2),
        "speedup": None,
    }


def _run_popcount_micro():
    """The bitrel popcount kernel: native ``int.bit_count`` vs fallback.

    The fallback is always timed; the native path only exists on
    Python >= 3.10, so ``speedup`` is ``None`` elsewhere (the fallback is
    then the production path and there is nothing to compare)."""
    masks = [(0x9E3779B97F4A7C15 * (i + 1)) & ((1 << 96) - 1) for i in range(512)]
    rounds = 200

    def time_popcount(fn):
        best = None
        for _ in range(SOLVE_ROUNDS):
            start = time.perf_counter()
            for _ in range(rounds):
                total = 0
                for mask in masks:
                    total += fn(mask)
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
        return best

    native = _popcount is not _popcount_fallback
    solve_fallback = time_popcount(_popcount_fallback)
    solve_kernel = time_popcount(_popcount)
    assert sum(map(_popcount, masks)) == sum(map(_popcount_fallback, masks))
    return {
        "test": f"popcount x{len(masks) * rounds} (96-bit masks)",
        "workload": "micro-popcount",
        "verdict": "int.bit_count" if native else "fallback only",
        "candidates_kernel": len(masks) * rounds,
        "candidates_reference": len(masks) * rounds,
        "seconds_setup_kernel": 0.0,
        "seconds_solve_kernel": round(solve_kernel, 4),
        "seconds_setup_reference": 0.0,
        "seconds_solve_reference": round(solve_fallback, 4),
        "speedup": (
            round(solve_fallback / max(solve_kernel, 1e-9), 2)
            if native
            else None
        ),
    }


def test_kernel_speedup(benchmark):
    def experiment():
        return [
            _run_litmus_workload("MP+wmb+rmb"),
            _run_litmus_workload("WRC+wmb+acq"),
            _run_library_sweep(),
            _run_static_prepass(),
            _run_rcu_workload(),
            _run_guard_overhead(),
            _run_popcount_micro(),
        ]

    rows = once(benchmark, experiment)

    RESULT_FILE.write_text(json.dumps(rows, indent=2) + "\n")
    print_table(
        "Execution kernel vs reference backend",
        [
            "test",
            "candidates",
            "ref setup (s)",
            "ref solve (s)",
            "kernel setup (s)",
            "kernel solve (s)",
            "speedup",
        ],
        [
            [
                row["test"],
                row["candidates_kernel"],
                row["seconds_setup_reference"],
                row["seconds_solve_reference"],
                row["seconds_setup_kernel"],
                row["seconds_solve_kernel"],
                f"{row['speedup']}x" if row["speedup"] is not None else "n/a",
            ]
            for row in rows
        ],
    )
    print(f"wrote {RESULT_FILE}")

    for row in rows:
        if row["speedup"] is not None:
            assert row["speedup"] >= MIN_ROW_SPEEDUP, (
                f"{row['test']}: kernel speedup {row['speedup']}x below the "
                f"{MIN_ROW_SPEEDUP}x regression floor"
            )
    sweep = next(r for r in rows if r["workload"] == "library-verdicts")
    assert sweep["speedup"] >= MIN_SWEEP_SPEEDUP, (
        f"library sweep speedup {sweep['speedup']}x below the "
        f"{MIN_SWEEP_SPEEDUP}x acceptance floor"
    )
    rcu = next(r for r in rows if r["workload"] == "rcu-implementation")
    assert rcu["speedup"] >= MIN_RCU_SPEEDUP, (
        f"RCU speedup {rcu['speedup']}x below the {MIN_RCU_SPEEDUP}x "
        "acceptance floor"
    )
    guard_row = next(r for r in rows if r["workload"] == "guard-overhead")
    assert guard_row["overhead_pct"] <= MAX_GUARD_OVERHEAD * 100, (
        f"guard safepoints cost {guard_row['overhead_pct']}% on the library "
        f"sweep, above the {MAX_GUARD_OVERHEAD:.0%} ceiling"
    )
