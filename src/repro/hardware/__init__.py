"""Hardware substrate: the paper's Section 5.1 experiments, simulated.

The paper runs litmus tests as kernel modules (klitmus) on Power8, ARMv8,
ARMv7 and x86 machines.  Lacking that hardware, this package provides the
substitution documented in DESIGN.md:

* :mod:`repro.hardware.archspec` — per-architecture definitions: how the
  kernel's primitives compile to machine-level accesses and fences (what
  ``asm/barrier.h`` does), and the architecture's operational reordering
  rules;
* :mod:`repro.hardware.compile` — the LK -> architecture program compiler;
* axiomatic architecture models in ``repro/cat/models/{tso,power,armv8,
  armv7,alpha,sc}.cat`` — answering "may this outcome ever happen";
* :mod:`repro.hardware.opsim` — an *operational* simulator (out-of-order
  execution windows + store buffers + RCU grace periods) that runs a test
  many times under a randomised scheduler, like klitmus does;
* :mod:`repro.hardware.klitmus` — the run-many-times harness producing the
  ``observed/runs`` counts of Table 5.
"""

from repro.hardware.archspec import ARCHITECTURES, ArchSpec, get_arch
from repro.hardware.compile import compile_program, CompileError
from repro.hardware.opsim import OperationalSimulator, RunTrace, SimulationError
from repro.hardware.klitmus import KlitmusResult, run_klitmus
from repro.hardware.trace import build_execution, sample_executions

__all__ = [
    "ARCHITECTURES",
    "ArchSpec",
    "get_arch",
    "compile_program",
    "CompileError",
    "OperationalSimulator",
    "RunTrace",
    "SimulationError",
    "KlitmusResult",
    "run_klitmus",
    "build_execution",
    "sample_executions",
]
