"""The top-level simulator: run a model over a litmus test.

This plays the role of the herd tool (Section 5 of the paper): enumerate
the candidate executions of a test, keep the ones the model allows, and
judge the final-state condition.

The verdicts follow the paper's Table 5 vocabulary:

* for an ``exists`` condition — **Allow** if some allowed execution
  satisfies it, **Forbid** otherwise;
* for ``~exists`` — **Forbid** means the model indeed rules the witness
  out (the test "passes"), **Allow** means the witness is reachable;
* for ``forall`` — **Allow** if every allowed execution satisfies it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.executions.candidate import CandidateExecution
from repro.executions.enumerate import candidate_executions_sharded
from repro.kernel import config as _config
from repro.litmus.ast import Program
from repro.litmus.outcomes import Exists, Forall, FinalState, NotExists
from repro.model import Model
from repro.obs import core as _obs

ALLOW = "Allow"
FORBID = "Forbid"


@dataclass
class RunResult:
    """The outcome of running one model over one litmus test."""

    program: Program
    model_name: str
    #: Total candidate executions enumerated.
    candidates: int
    #: Executions the model allows.
    allowed: int
    #: Allowed executions whose final state satisfies the condition body.
    witnesses: int
    #: Distinct final states of allowed executions.
    states: Set[FinalState] = field(default_factory=set)
    #: One allowed execution matching the condition, if any (kept for
    #: explanation tooling).
    witness_execution: Optional[CandidateExecution] = None
    #: One forbidden execution matching the condition, if any.
    forbidden_witness: Optional[CandidateExecution] = None

    @property
    def verdict(self) -> str:
        """``Allow``/``Forbid`` for the test's target behaviour."""
        condition = self.program.condition
        if condition is None or isinstance(condition, (Exists, NotExists)):
            return ALLOW if self.witnesses > 0 else FORBID
        if isinstance(condition, Forall):
            return ALLOW if self.witnesses == self.allowed else FORBID
        raise TypeError(f"unknown condition {condition!r}")

    @property
    def observation(self) -> str:
        """herd-style observation summary: Never/Sometimes/Always."""
        if self.witnesses == 0:
            return "Never"
        if self.witnesses == self.allowed:
            return "Always"
        return "Sometimes"

    def describe(self) -> str:
        return (
            f"{self.program.name} under {self.model_name}: {self.verdict} "
            f"({self.witnesses} witnesses / {self.allowed} allowed / "
            f"{self.candidates} candidates)"
        )


def _decided(result: RunResult) -> bool:
    """True when no further candidate can change ``result.verdict``.

    Counters only ever grow, so an ``exists``/``~exists`` verdict is
    final once a witness exists (Allow stays Allow), and a ``forall``
    verdict is final once some allowed execution misses the condition
    (``allowed > witnesses`` — Forbid stays Forbid).  The open verdicts
    (no witness yet; all-matching-so-far) genuinely need the full sweep.
    """
    condition = result.program.condition
    if condition is None or isinstance(condition, (Exists, NotExists)):
        return result.witnesses > 0
    return result.allowed > result.witnesses


def run_litmus_many(
    models: List[Model],
    program: Program,
    require_sc_per_location: bool = False,
    keep_states: bool = True,
    shard: int = 0,
    shard_count: int = 1,
    stop_when_decided: bool = False,
    verdict_only: bool = False,
) -> Dict[str, RunResult]:
    """Run several models over one program with a *single* enumeration.

    Candidate enumeration dominates the cost of a run, and candidates are
    model-independent — so judging N models costs one enumeration plus N
    model checks per candidate, not N enumerations.  ``shard``/
    ``shard_count`` restrict the scan to every ``shard_count``-th trace
    combination (the unit :mod:`repro.kernel.parallel` distributes).

    ``stop_when_decided`` ends the candidate sweep as soon as every
    model's *verdict* is final (see :func:`_decided`); counts and state
    sets then cover only the scanned prefix, so the flag stays off
    wherever exact counters matter (``run_litmus``, the sharded parallel
    path) and is enabled by the verdict-table drivers only.

    ``verdict_only`` additionally skips the model check for candidates
    that cannot influence the verdict: an ``exists``/``~exists`` verdict
    is ``witnesses > 0`` and only a condition-matching candidate can
    become a witness, so non-matching candidates need no model check; a
    ``forall`` verdict flips to Forbid only on an *allowed non-matching*
    candidate, so matching candidates need none.  Verdicts are unchanged;
    ``allowed``/``witnesses``/``states`` then cover only the checked
    candidates (``candidates`` stays exact).
    """
    condition = program.condition
    exists_like = condition is None or isinstance(condition, (Exists, NotExists))
    results: List[RunResult] = [
        RunResult(
            program=program,
            model_name=model.name,
            candidates=0,
            allowed=0,
            witnesses=0,
        )
        for model in models
    ]
    with _obs.span("herd.run"):
        for execution in candidate_executions_sharded(
            program,
            shard,
            shard_count,
            require_sc_per_location=require_sc_per_location,
        ):
            matches = (
                condition is None or condition.evaluate(execution.final_state)
            )
            for model, result in zip(models, results):
                result.candidates += 1
                if verdict_only and (matches if not exists_like else not matches):
                    continue
                with _obs.span(f"model.{model.name}"):
                    allowed = model.allows(execution)
                if not allowed:
                    if matches and result.forbidden_witness is None:
                        result.forbidden_witness = execution
                    continue
                result.allowed += 1
                if keep_states:
                    result.states.add(execution.final_state)
                if matches:
                    result.witnesses += 1
                    if result.witness_execution is None:
                        result.witness_execution = execution
            if stop_when_decided and all(map(_decided, results)):
                if _obs.ENABLED:
                    _obs.count("herd.early_exit")
                break
    if _obs.ENABLED:
        for result in results:
            _obs.count(f"herd.{result.model_name}.candidates", result.candidates)
            _obs.count(f"herd.{result.model_name}.allowed", result.allowed)
            _obs.count(f"herd.{result.model_name}.witnesses", result.witnesses)
    return {result.model_name: result for result in results}


def run_litmus(
    model: Model,
    program: Program,
    require_sc_per_location: bool = False,
    keep_states: bool = True,
    jobs: int = 1,
) -> RunResult:
    """Run ``program`` against ``model`` and summarise the results.

    ``require_sc_per_location`` may be set for models known to include the
    Scpv axiom (all models in this package do) to speed up enumeration of
    large tests.  ``jobs > 1`` shards the trace combinations over that
    many worker processes (:mod:`repro.kernel.parallel`); the verdict,
    counts and state set are identical to a sequential run.
    """
    if jobs > 1:
        from repro.kernel.parallel import run_litmus_parallel

        return run_litmus_parallel(
            model,
            program,
            jobs=jobs,
            require_sc_per_location=require_sc_per_location,
            keep_states=keep_states,
        )
    return run_litmus_many(
        [model],
        program,
        require_sc_per_location=require_sc_per_location,
        keep_states=keep_states,
    )[model.name]


def verdicts(
    models: List[Model],
    programs: List[Program],
    jobs: int = 1,
    **kwargs,
) -> Dict[str, Dict[str, str]]:
    """Verdict table: ``{test name: {model name: Allow/Forbid}}``.

    Each program is enumerated once, for all models together.  ``jobs > 1``
    distributes whole programs over that many worker processes.

    Only verdicts are exposed, so the candidate sweep early-exits once
    every verdict is final (first witness for ``exists`` tests) and the
    model check is skipped for candidates that cannot influence the
    verdict (``verdict_only``) — part of the kernel-v2 batching, hence
    gated on ``REPRO_KERNEL_VM`` so the opt-out lane reproduces the
    exhaustive scan.  The defaults are resolved *here*, before the
    serial/parallel split, keeping both paths (and their observability
    counters) identical.
    """
    kwargs.setdefault("stop_when_decided", _config.vm_enabled())
    kwargs.setdefault("verdict_only", _config.vm_enabled())
    if jobs > 1 and len(programs) > 1:
        from repro.kernel.parallel import verdicts_parallel

        return verdicts_parallel(models, programs, jobs, **kwargs)
    table: Dict[str, Dict[str, str]] = {}
    for program in programs:
        results = run_litmus_many(models, program, **kwargs)
        table[program.name] = {
            model.name: results[model.name].verdict for model in models
        }
    return table
