"""Corpus-scale test generation and differential data-mining.

Herding Cats frames weak-memory validation as a *data-mining*
programme: generate litmus tests at scale, run them under every model
you have, and mine the disagreements for the scientifically interesting
behaviours.  This package is that programme for the LK model:

* :mod:`repro.corpus.generate` — a deterministic, seeded generator that
  drives :mod:`repro.diy` across every communication skeleton (2–5
  threads), fence/dependency decoration, and RCU critical-section
  variant, deduplicating by canonical AST hash; 10k+ unique, lint-clean
  tests from one seed.
* :mod:`repro.corpus.sweep` — a sharded differential sweep over LKMM,
  LKMM-core, C11, x86-TSO, ARMv8 and Power (hardware models judge the
  *compiled* program, per the LK→machine mappings), fault-tolerant via
  :mod:`repro.kernel.parallel`, budgeted via :mod:`repro.guard`, and
  resumable through a digest-checked :class:`~repro.guard.SweepJournal`.
* :mod:`repro.corpus.mine` — classifies every test by its *disagreement
  signature* (e.g. "LKMM forbids, C11 allows"), ranks families by
  disagreement density, and flags mapping-soundness alerts.
* :mod:`repro.corpus.report` — renders ``STRESS_REPORT.md``.
* :mod:`repro.corpus.golden` — freezes a stratified sample with locked
  verdicts (``tests/data/golden_corpus.jsonl``), the corpus-scale
  regression suite.

The ``repro-corpus`` CLI exposes the pipeline as
``generate | sweep | mine | report``.
"""

from repro.corpus.generate import (
    CorpusTest,
    corpus_slice,
    generate_corpus,
    program_digest,
)
from repro.corpus.golden import freeze_golden, load_golden, verify_golden
from repro.corpus.mine import MiningReport, mine, row_signature
from repro.corpus.report import stress_report
from repro.corpus.sweep import (
    CORPUS_MODELS,
    ModelSpec,
    NOT_APPLICABLE,
    SweepResult,
    sweep_corpus,
    sweep_row,
)

__all__ = [
    "CorpusTest",
    "corpus_slice",
    "generate_corpus",
    "program_digest",
    "CORPUS_MODELS",
    "ModelSpec",
    "NOT_APPLICABLE",
    "SweepResult",
    "sweep_corpus",
    "sweep_row",
    "MiningReport",
    "mine",
    "row_signature",
    "stress_report",
    "freeze_golden",
    "load_golden",
    "verify_golden",
]
