"""E8, E9 — the RCU figures (Section 4).

Figure 10 (RCU-MP) and Figure 11 (RCU-deferred-free) are both forbidden;
the benchmarks re-derive the paper's case analysis of the fundamental
law: whichever way the precedes function orders the RSCS against the GP,
the enlarged pb(F) has a cycle.
"""

from __future__ import annotations

import pytest

from repro.executions import candidate_executions
from repro.herd import run_litmus
from repro.litmus import library
from repro.rcu import critical_sections, grace_periods, rcu_fence
from repro.rcu.axiom import rcu_axiom_holds
from repro.rcu.law import GP_FIRST, RSCS_FIRST, enlarged_pb, fundamental_law_holds

from conftest import once


def witness(name):
    program = library.get(name)
    return next(
        x
        for x in candidate_executions(program)
        if program.condition.evaluate(x.final_state)
    )


def test_fig10_rcu_mp(benchmark, lkmm):
    """Figure 10: RCU-MP forbidden, with the paper's two-branch analysis."""

    def experiment():
        x = witness("RCU-MP")
        (rscs,) = critical_sections(x)
        (gp,) = grace_periods(x)
        branches = {}
        for choice in (RSCS_FIRST, GP_FIRST):
            pb = enlarged_pb(x, {(rscs, gp): choice})
            branches[choice] = pb.is_acyclic()
        return x, rscs, gp, branches

    x, rscs, gp, branches = once(benchmark, experiment)
    assert run_litmus(lkmm, library.get("RCU-MP")).verdict == "Forbid"
    # Neither branch of F rescues the execution (Section 4.1).
    assert branches == {RSCS_FIRST: False, GP_FIRST: False}
    assert not fundamental_law_holds(x)
    assert not rcu_axiom_holds(x)

    # The specific rcu-fence facts of the walk-through: with
    # F(RSCS,GP)=RSCS, (a, d) ∈ rcu-fence; with GP, (c, b) ∈ rcu-fence.
    a = next(e for e in x.events if e.is_read and e.loc == "x")
    b = next(e for e in x.events if e.is_read and e.loc == "y")
    c = next(e for e in x.events if e.is_write and e.loc == "y" and not e.is_init)
    d = next(e for e in x.events if e.is_write and e.loc == "x" and not e.is_init)
    assert (a, d) in rcu_fence(x, {(rscs, gp): RSCS_FIRST})
    assert (c, b) in rcu_fence(x, {(rscs, gp): GP_FIRST})


def test_fig11_rcu_deferred_free(benchmark, lkmm):
    """Figure 11: swapping the reads keeps the pattern forbidden — unlike
    with plain fences, where MP only protects one direction."""

    def experiment():
        return {
            "RCU-deferred-free": run_litmus(
                lkmm, library.get("RCU-deferred-free")
            ).verdict,
            "RCU-MP": run_litmus(lkmm, library.get("RCU-MP")).verdict,
        }

    verdicts = once(benchmark, experiment)
    assert verdicts == {"RCU-deferred-free": "Forbid", "RCU-MP": "Forbid"}
    assert not fundamental_law_holds(witness("RCU-deferred-free"))


def test_rcu_counting_rule(benchmark, lkmm):
    """The rule of thumb behind Theorem 1: a cycle is forbidden iff it has
    at least as many grace periods as critical sections."""

    def experiment():
        return {
            name: run_litmus(lkmm, library.get(name)).verdict
            for name in ("RCU-2GP-2RSCS", "RCU-1GP-2RSCS")
        }

    verdicts = once(benchmark, experiment)
    assert verdicts == {
        "RCU-2GP-2RSCS": "Forbid",  # 2 GPs vs 2 RSCSes
        "RCU-1GP-2RSCS": "Allow",   # 1 GP vs 2 RSCSes
    }
