"""E2-E7 — the core-model figures.

Each figure of Section 3 exhibits a litmus test, states its verdict, and
walks through the relations that forbid it.  These benchmarks re-derive
both: the verdict, and the specific relation facts the paper's prose
asserts (e.g. for Figure 5, that A-cumulativity puts (a, c) in
cumul-fence).
"""

from __future__ import annotations

import pytest

from repro.executions import candidate_executions
from repro.herd import run_litmus
from repro.litmus import library
from repro.lkmm import explain_forbidden
from repro.lkmm.model import LkmmRelations

from conftest import once


def witness(name):
    program = library.get(name)
    return next(
        x
        for x in candidate_executions(program)
        if program.condition.evaluate(x.final_state)
    )


def by_label(x, label):
    return next(e for e in x.events if e.label == label)


def test_fig2_mp_wmb_rmb(benchmark, lkmm):
    """Figure 2: MP+wmb+rmb is forbidden; (d, b) ∈ prop via fre then the
    wmb cumul-fence, and the hb cycle closes through the rmb ppo."""

    def experiment():
        x = witness("MP+wmb+rmb")
        return x, LkmmRelations(x), lkmm.check(x)

    x, rel, result = once(benchmark, experiment)
    assert run_litmus(lkmm, library.get("MP+wmb+rmb")).verdict == "Forbid"
    assert not result.allowed

    a, b = by_label(x, "a"), by_label(x, "b")  # T0: Wx, Wy
    c, d = by_label(x, "c"), by_label(x, "d")  # T1: Ry, Rx
    assert (a, b) in rel.prop            # "a and b ... related by prop"
    assert (d, b) in rel.prop            # "d is overwritten by a; (d,b) ∈ prop"
    assert (c, d) in rel.ppo             # rmb
    assert (d, c) in rel.hb              # prop ∩ int
    print("\n" + explain_forbidden(x))


def test_fig4_lb_ctrl_mb(benchmark, lkmm):
    """Figure 4: LB+ctrl+mb forbidden; removing the dependency or the
    fence makes it allowed (as observed on ARMv7)."""

    def experiment():
        return {
            "LB+ctrl+mb": run_litmus(lkmm, library.get("LB+ctrl+mb")).verdict,
            "LB+ctrl": run_litmus(lkmm, library.get("LB+ctrl")).verdict,
            "LB+po+mb": run_litmus(lkmm, library.get("LB+po+mb")).verdict,
        }

    verdicts = once(benchmark, experiment)
    assert verdicts == {
        "LB+ctrl+mb": "Forbid",
        "LB+ctrl": "Allow",
        "LB+po+mb": "Allow",
    }

    x = witness("LB+ctrl+mb")
    rel = LkmmRelations(x)
    a, b = by_label(x, "a"), by_label(x, "b")
    c, d = by_label(x, "c"), by_label(x, "d")
    assert (a, b) in x.ctrl and (a, b) in rel.ppo
    assert (c, d) in rel.mb and (c, d) in rel.ppo
    assert (b, c) in x.rfe and (d, a) in x.rfe  # the paper's hb cycle


def test_fig5_wrc_po_rel_rmb(benchmark, lkmm):
    """Figure 5: WRC+po-rel+rmb forbidden via A-cumulativity of the
    release: (a, c) ∈ cumul-fence even though a and c are in different
    threads."""

    def experiment():
        x = witness("WRC+po-rel+rmb")
        return x, LkmmRelations(x)

    x, rel = once(benchmark, experiment)
    assert run_litmus(lkmm, library.get("WRC+po-rel+rmb")).verdict == "Forbid"

    a = by_label(x, "a")              # T0: Wx
    b, c = by_label(x, "b"), by_label(x, "c")  # T1: Rx, Wrel y
    d, e = by_label(x, "d"), by_label(x, "e")  # T2: Ry, Rx
    assert (b, c) in rel.po_rel
    assert (a, b) in x.rfe
    assert (a, c) in rel.cumul_fence  # A-cumul(po-rel)
    assert (e, d) in rel.prop and e.tid == d.tid  # (prop\id) & int
    assert (d, e) in rel.ppo          # rmb
    assert not rel.hb.is_acyclic()


def test_fig6_sb_mbs(benchmark, lkmm):
    """Figure 6: SB+mbs forbidden via a symmetric pb cycle."""

    def experiment():
        x = witness("SB+mbs")
        return x, LkmmRelations(x)

    x, rel = once(benchmark, experiment)
    assert run_litmus(lkmm, library.get("SB+mbs")).verdict == "Forbid"

    a, b = by_label(x, "a"), by_label(x, "b")  # T0: Wx, Ry
    c, d = by_label(x, "c"), by_label(x, "d")  # T1: Wy, Rx
    assert (d, a) in rel.prop   # "d is overwritten by a"
    assert (d, b) in rel.pb     # prop ; strong-fence
    assert (b, d) in rel.pb     # by symmetry
    assert not rel.pb.is_acyclic()


def test_fig7_peterz(benchmark, lkmm):
    """Figure 7: PeterZ forbidden; two strong fences close the pb cycle
    through the release's cumulativity."""

    def experiment():
        x = witness("PeterZ")
        return x, LkmmRelations(x)

    x, rel = once(benchmark, experiment)
    assert run_litmus(lkmm, library.get("PeterZ")).verdict == "Forbid"
    assert run_litmus(lkmm, library.get("PeterZ-No-Synchro")).verdict == "Allow"

    a, b = by_label(x, "a"), by_label(x, "b")  # T0: Wx, Ry
    c, d = by_label(x, "c"), by_label(x, "d")  # T1: Wy, Wrel z
    e, f = by_label(x, "e"), by_label(x, "f")  # T2: Rz, Rx
    assert (b, c) in x.fr        # "b is overwritten by c"
    assert (d, e) in x.rf        # "the release d is read by e"
    assert (b, e) in rel.prop    # the paper's (b, e) ∈ prop
    assert (b, f) in rel.pb
    assert (f, a) in rel.prop    # "idem f and a"
    assert (f, b) in rel.pb
    assert not rel.pb.is_acyclic()


def test_fig9_mp_wmb_addr_acq(benchmark, lkmm):
    """Figure 9: MP+wmb+addr-acq forbidden via the rrdep* prefix of ppo
    (an address dependency feeding an acquire)."""

    def experiment():
        return {
            "MP+wmb+addr-acq": run_litmus(
                lkmm, library.get("MP+wmb+addr-acq")
            ).verdict,
            # Without the acquire the read-read address dependency alone
            # is not preserved (Alpha):
            "MP+wmb+addr": run_litmus(lkmm, library.get("MP+wmb+addr")).verdict,
            # With smp_read_barrier_depends it is:
            "MP+wmb+addr-rbdep": run_litmus(
                lkmm, library.get("MP+wmb+addr-rbdep")
            ).verdict,
        }

    verdicts = once(benchmark, experiment)
    assert verdicts == {
        "MP+wmb+addr-acq": "Forbid",
        "MP+wmb+addr": "Allow",
        "MP+wmb+addr-rbdep": "Forbid",
    }

    x = witness("MP+wmb+addr-acq")
    rel = LkmmRelations(x)
    c = next(e for e in x.events if e.is_read and e.loc == "p")
    d = next(e for e in x.events if e.is_read and e.has_tag("acquire"))
    e = next(ev for ev in x.events if ev.is_read and ev.loc == "x")
    assert (c, d) in rel.rrdep      # the address dependency
    assert (d, e) in rel.acq_po     # the acquire
    assert (c, e) in rel.ppo        # rrdep* ; acq-po
