"""The candidate-execution data structure.

A candidate execution (Section 2 of the paper) is a graph: events as nodes,
and the base relations ``po``, ``addr``, ``data``, ``ctrl``, ``rmw``
(abstract execution) plus ``rf`` and ``co`` (execution witness) as edges.
Derived relations that "often appear in cat models" — ``fr``, ``com``,
``po-loc``, ``rfi``/``rfe``, ``coi``/``coe``, ``fri``/``fre`` — are provided
as cached properties, mirroring the definitions given in the paper.

Only ``rf`` and ``co`` (and their derivatives) vary between the candidates
of one trace combination; everything else — the events, the base
relations, ``loc``/``int``/``ext``/``id``, ``po-loc``, the tag sets — is
*trace-invariant*.  The enumerator attaches one
:class:`repro.kernel.skeleton.TraceSkeleton` to all candidates of a
combination, and the invariant cached properties are memoised there: the
first candidate computes each value, the rest reuse it.  Model layers can
join in via :meth:`shared_memo`.
"""

from __future__ import annotations

from functools import cached_property
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.events import Event, FENCE, READ, WRITE
from repro.kernel.skeleton import TraceSkeleton
from repro.litmus.outcomes import FinalState
from repro.relations import EventSet, Relation

#: Core constructor attributes (everything else in ``__dict__`` is a cache).
_CORE_ATTRS = (
    "events",
    "universe",
    "po",
    "addr",
    "data",
    "ctrl",
    "rmw",
    "rf",
    "co",
    "final_regs",
    "name",
)


class CandidateExecution:
    """One candidate execution of a litmus test."""

    def __init__(
        self,
        events: Iterable[Event],
        po: Relation,
        addr: Relation,
        data: Relation,
        ctrl: Relation,
        rmw: Relation,
        rf: Relation,
        co: Relation,
        final_regs: Optional[Dict[Tuple[int, str], object]] = None,
        name: str = "",
        shared: Optional[TraceSkeleton] = None,
    ):
        self.events: FrozenSet[Event] = frozenset(events)
        self.universe = self.events
        self.po = po
        self.addr = addr
        self.data = data
        self.ctrl = ctrl
        self.rmw = rmw
        self.rf = rf
        self.co = co
        self.final_regs = dict(final_regs or {})
        self.name = name
        self._shared = shared

    def shared_memo(self, key: Any, compute: Callable[[], Any]) -> Any:
        """Memoise a trace-invariant value on the shared skeleton.

        When no skeleton is attached (incremental checking disabled, or a
        hand-built execution), this simply calls ``compute``.  Callers must
        only use it for values fully determined by the events and the base
        relations — never anything derived from ``rf`` or ``co``.
        """
        if self._shared is None:
            return compute()
        return self._shared.memo(key, compute)

    def __getstate__(self):
        # Drop the shared skeleton (it aggregates caches across sibling
        # candidates) and every memoised property; both are recomputable.
        return {k: self.__dict__[k] for k in _CORE_ATTRS}

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._shared = None

    # -- event sets -----------------------------------------------------

    def event_set(self, events: Iterable[Event]) -> EventSet:
        return EventSet(events, self.universe)

    @cached_property
    def all_events(self) -> EventSet:
        """The cat ``_`` set."""
        return self.shared_memo(
            "all_events", lambda: self.event_set(self.events)
        )

    @cached_property
    def reads(self) -> EventSet:
        """The cat ``R`` set."""
        return self.shared_memo(
            "reads",
            lambda: self.event_set(e for e in self.events if e.kind == READ),
        )

    @cached_property
    def writes(self) -> EventSet:
        """The cat ``W`` set."""
        return self.shared_memo(
            "writes",
            lambda: self.event_set(e for e in self.events if e.kind == WRITE),
        )

    @cached_property
    def fences(self) -> EventSet:
        """The cat ``F`` set."""
        return self.shared_memo(
            "fences",
            lambda: self.event_set(e for e in self.events if e.kind == FENCE),
        )

    @cached_property
    def accesses(self) -> EventSet:
        """The cat ``M`` set (memory accesses)."""
        return self.shared_memo("accesses", lambda: self.reads | self.writes)

    @cached_property
    def initial_writes(self) -> EventSet:
        """The cat ``IW`` set."""
        return self.shared_memo(
            "initial_writes",
            lambda: self.event_set(e for e in self.events if e.is_init),
        )

    def tagged(self, tag: str) -> EventSet:
        """Events carrying ``tag`` (e.g. ``acquire``, ``mb``, ``rcu-lock``)."""
        return self.shared_memo(
            ("tagged", tag),
            lambda: self.event_set(
                e for e in self.events if e.has_tag(tag)
            ),
        )

    # -- base relations given by construction ------------------------------

    @cached_property
    def identity(self) -> Relation:
        """The cat ``id`` relation."""
        return self.shared_memo(
            "identity",
            lambda: Relation(((e, e) for e in self.events), self.universe),
        )

    @cached_property
    def loc(self) -> Relation:
        """Pairs of accesses to the same shared location."""

        def compute() -> Relation:
            by_loc: Dict[str, List[Event]] = {}
            for event in self.events:
                if event.loc is not None:
                    by_loc.setdefault(event.loc, []).append(event)
            pairs = [
                (a, b)
                for events in by_loc.values()
                for a in events
                for b in events
            ]
            return Relation(pairs, self.universe)

        return self.shared_memo("loc", compute)

    @cached_property
    def int_(self) -> Relation:
        """Pairs of events on the same thread (cat ``int``)."""

        def compute() -> Relation:
            by_tid: Dict[int, List[Event]] = {}
            for event in self.events:
                by_tid.setdefault(event.tid, []).append(event)
            pairs = [
                (a, b)
                for events in by_tid.values()
                for a in events
                for b in events
            ]
            return Relation(pairs, self.universe)

        return self.shared_memo("int", compute)

    @cached_property
    def ext(self) -> Relation:
        """Pairs of events on different threads (cat ``ext``)."""
        return self.shared_memo(
            "ext",
            lambda: Relation(
                (
                    (a, b)
                    for a in self.events
                    for b in self.events
                    if a.tid != b.tid
                ),
                self.universe,
            ),
        )

    # -- derived relations (Section 2) -------------------------------------

    @cached_property
    def fr(self) -> Relation:
        """from-reads: ``rf^-1 ; co``."""
        return self.rf.inverse().sequence(self.co)

    @cached_property
    def com(self) -> Relation:
        """communications: ``rf | co | fr``."""
        return self.rf | self.co | self.fr

    @cached_property
    def po_loc(self) -> Relation:
        """``po & loc``."""
        return self.shared_memo("po_loc", lambda: self.po & self.loc)

    @cached_property
    def rfi(self) -> Relation:
        return self.rf & self.int_

    @cached_property
    def rfe(self) -> Relation:
        return self.rf & self.ext

    @cached_property
    def coi(self) -> Relation:
        return self.co & self.int_

    @cached_property
    def coe(self) -> Relation:
        return self.co & self.ext

    @cached_property
    def fri(self) -> Relation:
        return self.fr & self.int_

    @cached_property
    def fre(self) -> Relation:
        return self.fr & self.ext

    @cached_property
    def dep(self) -> Relation:
        """``addr | data`` (the paper's ``dep``)."""
        return self.shared_memo("dep", lambda: self.addr | self.data)

    # -- final state -----------------------------------------------------

    @cached_property
    def final_state(self) -> FinalState:
        """The observable end state: final registers and, per location, the
        co-maximal write's value."""
        memory: Dict[str, object] = {}
        co = self.co
        dense = co._densify()
        if dense is not None and self.universe <= dense.index.universe:
            # Bitset fast path: a write is co-maximal iff its co row meets
            # no other write to the same location.  Same predicate as the
            # pair-scan below, one mask test per write instead of a scan
            # over every write pair.
            pos = dense.index.pos
            rows = dense.rows
            loc_writes: Dict[str, int] = {}
            writes = []
            for event in self.events:
                if event.kind == WRITE:
                    writes.append(event)
                    bit = 1 << pos[event]
                    loc_writes[event.loc] = loc_writes.get(event.loc, 0) | bit
            for event in writes:
                bit = 1 << pos[event]
                if not rows[pos[event]] & (loc_writes[event.loc] & ~bit):
                    memory[event.loc] = event.value
            return FinalState(dict(self.final_regs), memory)
        for event in self.events:
            if event.kind != WRITE:
                continue
            is_last = not any(
                (event, other) in co
                for other in self.events
                if other.kind == WRITE and other.loc == event.loc and other != event
            )
            if is_last:
                memory[event.loc] = event.value
        return FinalState(dict(self.final_regs), memory)

    # -- display -----------------------------------------------------------

    def sorted_events(self) -> List[Event]:
        return sorted(self.events, key=lambda e: (e.tid, e.po_index, e.eid))

    def describe(self) -> str:
        """A human-readable rendering, for debugging and explanations."""
        lines = [f"Candidate execution of {self.name or '<anonymous>'}:"]
        for event in self.sorted_events():
            lines.append(f"  T{event.tid}  {event!r}")
        for rel_name in ("rf", "co", "fr"):
            rel = getattr(self, rel_name)
            shown = ", ".join(
                sorted(
                    f"{a.label or a.eid}->{b.label or b.eid}" for a, b in rel.pairs
                )
            )
            lines.append(f"  {rel_name}: {shown or '(empty)'}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<CandidateExecution {self.name}: {len(self.events)} events, "
            f"{len(self.rf)} rf, {len(self.co)} co>"
        )
