"""Property-based tests over randomly generated litmus programs.

hypothesis builds small random programs; the properties are the
system-level invariants the reproduction rests on:

* the native and cat renderings of the LK model agree on every candidate
  execution (differential fuzzing of the interpreter and the model);
* SC allows a subset of what the LK model allows (the LK model is weaker
  than sequential consistency);
* every architecture model, on the compiled program, allows a subset of
  what the LK model allows (the soundness claim, fuzzed);
* the operational simulator only produces axiomatic-model-allowed states;
* serialising to litmus text and re-parsing preserves the verdict.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cat import load_model
from repro.executions import candidate_executions
from repro.hardware import compile_program, get_arch
from repro.hardware.opsim import OperationalSimulator
from repro.herd import run_litmus
from repro.litmus import dsl
from repro.litmus.ast import Program, Thread
from repro.litmus.parser import parse_litmus
from repro.litmus.writer import write_litmus
from repro.lkmm import LinuxKernelModel

LOCATIONS = ("x", "y", "z")
VALUES = (1, 2)

_REG_COUNTER = st.integers(min_value=0, max_value=3)


@st.composite
def instruction(draw, reg_prefix):
    kind = draw(
        st.sampled_from(
            [
                "read_once",
                "write_once",
                "load_acquire",
                "store_release",
                "smp_mb",
                "smp_rmb",
                "smp_wmb",
                "xchg",
                "xchg_relaxed",
            ]
        )
    )
    loc = draw(st.sampled_from(LOCATIONS))
    if kind == "read_once":
        return dsl.read_once(f"{reg_prefix}{draw(_REG_COUNTER)}", loc)
    if kind == "load_acquire":
        return dsl.load_acquire(f"{reg_prefix}{draw(_REG_COUNTER)}", loc)
    if kind == "write_once":
        return dsl.write_once(loc, draw(st.sampled_from(VALUES)))
    if kind == "store_release":
        return dsl.store_release(loc, draw(st.sampled_from(VALUES)))
    if kind == "xchg":
        return dsl.xchg(f"{reg_prefix}{draw(_REG_COUNTER)}", loc, draw(st.sampled_from(VALUES)))
    if kind == "xchg_relaxed":
        return dsl.xchg_relaxed(
            f"{reg_prefix}{draw(_REG_COUNTER)}", loc, draw(st.sampled_from(VALUES))
        )
    return getattr(dsl, kind)()


@st.composite
def small_program(draw):
    from hypothesis import assume
    from repro.litmus.ast import Rmw, Store

    num_threads = draw(st.integers(min_value=2, max_value=3))
    bodies = [
        draw(st.lists(instruction(f"r{tid}_"), min_size=1, max_size=3))
        for tid in range(num_threads)
    ]
    # Keep enumeration tractable: the number of coherence orders is the
    # product of factorials of the per-location write counts, and every
    # read multiplies in its value choices.
    writes_per_loc = {loc: 0 for loc in LOCATIONS}
    total = 0
    for body in bodies:
        for ins in body:
            total += 1
            if isinstance(ins, (Store, Rmw)):
                writes_per_loc[ins.addr.value.loc] += 1
    assume(max(writes_per_loc.values()) <= 3)
    assume(total <= 7)
    threads = [Thread(tuple(body)) for body in bodies]
    return Program("fuzz", tuple(threads), {loc: 0 for loc in LOCATIONS})


NATIVE = LinuxKernelModel()
CAT = load_model("lkmm")
SC = load_model("sc")

FUZZ_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def allowed_states(model, program):
    return {
        x.final_state
        for x in candidate_executions(program)
        if model.allows(x)
    }


class TestModelInvariants:
    @FUZZ_SETTINGS
    @given(small_program())
    def test_native_and_cat_agree(self, program):
        for x in candidate_executions(program):
            assert NATIVE.allows(x) == CAT.allows(x)

    @FUZZ_SETTINGS
    @given(small_program())
    def test_sc_is_stronger_than_lkmm(self, program):
        assert allowed_states(SC, program) <= allowed_states(NATIVE, program)

    @FUZZ_SETTINGS
    @given(small_program(), st.sampled_from(["x86", "Power8", "ARMv8", "Alpha"]))
    def test_arch_models_sound_wrt_lkmm(self, program, arch_name):
        arch = get_arch(arch_name)
        compiled = compile_program(program, arch, rcu="error")
        arch_model = load_model(arch.cat_model)
        assert allowed_states(arch_model, compiled) <= allowed_states(
            NATIVE, program
        )

    @FUZZ_SETTINGS
    @given(small_program(), st.sampled_from(["x86", "ARMv8"]))
    def test_opsim_within_axiomatic(self, program, arch_name):
        arch = get_arch(arch_name)
        compiled = compile_program(program, arch, rcu="error")
        axiomatic = allowed_states(load_model(arch.cat_model), compiled)
        simulator = OperationalSimulator(compiled, arch)
        for state in simulator.sample(60, seed=11):
            assert state in axiomatic


class TestEnumerationInvariants:
    @FUZZ_SETTINGS
    @given(small_program())
    def test_every_execution_well_formed(self, program):
        for x in candidate_executions(program):
            # rf is a function from reads to same-location same-value writes.
            read_targets = [r for _, r in x.rf.pairs]
            assert len(read_targets) == len(set(read_targets))
            assert len(read_targets) == len(x.reads)
            for w, r in x.rf.pairs:
                assert w.loc == r.loc and w.value == r.value
            # co is a strict total order per location starting at init.
            for loc in LOCATIONS:
                writes = [e for e in x.writes if e.loc == loc]
                assert x.co.is_total_order_on(writes)

    @FUZZ_SETTINGS
    @given(small_program())
    def test_scpv_prefilter_preserves_lkmm_verdict(self, program):
        full = allowed_states(NATIVE, program)
        filtered = {
            x.final_state
            for x in candidate_executions(program, require_sc_per_location=True)
            if NATIVE.allows(x)
        }
        assert full == filtered


class TestRoundTrip:
    @FUZZ_SETTINGS
    @given(small_program())
    def test_writer_parser_round_trip(self, program):
        reparsed = parse_litmus(write_litmus(program))
        assert allowed_states(NATIVE, reparsed) == allowed_states(
            NATIVE, program
        )
