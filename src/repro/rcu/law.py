"""The fundamental law of RCU (Section 4.1).

    "Read-side critical sections cannot span grace periods."

The law is modelled with a *precedes function* F which, for every pair of
a read-side critical section (RSCS) and a grace period (GP), decides which
precedes the other.  Given F, the ``rcu-fence(F)`` relation provides
fence-like ordering:

* if F(RSCS, GP) = RSCS, every event po-before the RSCS's unlock is
  ordered before the GP event and everything po-after it;
* if F(RSCS, GP) = GP, every event po-before the GP event is ordered
  before the RSCS's lock and everything po-after it.

``rcu-fence(F)`` is treated "on a par with strong-fence" inside the
enlarged relation ``pb(F) := prop ; (strong-fence | rcu-fence(F)) ; hb*``.
An execution *satisfies the fundamental law* iff there is some F making
``pb(F)`` acyclic.  Since executions are finite, we simply enumerate the
``2^(|RSCS| * |GP|)`` candidate functions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.events import Event
from repro.executions.candidate import CandidateExecution
from repro.lkmm.model import LkmmRelations
from repro.rcu.axiom import critical_sections, grace_periods
from repro.relations import Relation

#: The two possible values of F for one (RSCS, GP) pair.
RSCS_FIRST = "RSCS"
GP_FIRST = "GP"

#: An RSCS is identified by its (lock, unlock) event pair.
RSCS = Tuple[Event, Event]

#: F maps each (RSCS, GP) pair to RSCS_FIRST or GP_FIRST.
PrecedesFunction = Dict[Tuple[RSCS, Event], str]


def precedes_functions(
    execution: CandidateExecution,
) -> Iterator[PrecedesFunction]:
    """Enumerate every precedes function of the execution."""
    rscses = critical_sections(execution)
    gps = grace_periods(execution)
    keys = [(rscs, gp) for rscs in rscses for gp in gps]
    for choices in itertools.product((RSCS_FIRST, GP_FIRST), repeat=len(keys)):
        yield dict(zip(keys, choices))


def rcu_fence(
    execution: CandidateExecution, precedes: PrecedesFunction
) -> Relation:
    """The ``rcu-fence(F)`` relation of Section 4.1."""
    po = execution.po
    po_opt = po.optional()
    pairs = set()
    for (lock, unlock), gp in precedes:
        if precedes[((lock, unlock), gp)] == RSCS_FIRST:
            # e1 po-before the unlock; e2 is the GP or po-after it.
            firsts = [a for a, b in po.pairs if b == unlock]
            seconds = [b for a, b in po_opt.pairs if a == gp]
        else:
            # e1 po-before the GP; e2 is the lock or po-after it.
            firsts = [a for a, b in po.pairs if b == gp]
            seconds = [b for a, b in po_opt.pairs if a == lock]
        pairs.update((a, b) for a in firsts for b in seconds)
    return Relation(pairs, execution.universe)


def enlarged_pb(
    execution: CandidateExecution,
    precedes: PrecedesFunction,
    relations: Optional[LkmmRelations] = None,
) -> Relation:
    """``pb(F) := prop ; (strong-fence | rcu-fence(F)) ; hb*``."""
    relations = relations or LkmmRelations(execution, with_rcu=True)
    fences = relations.strong_fence | rcu_fence(execution, precedes)
    return relations.prop.sequence(fences).sequence(
        relations.hb.reflexive_transitive_closure()
    )


@dataclass
class LawResult:
    """Whether the law holds, and the witnessing precedes function."""

    holds: bool
    witness: Optional[PrecedesFunction] = None

    def __bool__(self) -> bool:
        return self.holds


def fundamental_law_holds(execution: CandidateExecution) -> LawResult:
    """Does some precedes function make ``pb(F)`` acyclic?

    Note that with no RSCS or no GP there is exactly one (empty) precedes
    function and the law degenerates to the ordinary Pb axiom.
    """
    relations = LkmmRelations(execution, with_rcu=True)
    for precedes in precedes_functions(execution):
        if enlarged_pb(execution, precedes, relations).is_acyclic():
            return LawResult(True, precedes)
    return LawResult(False)
