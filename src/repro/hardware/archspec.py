"""Per-architecture specifications.

Each :class:`ArchSpec` bundles what the Linux kernel's per-architecture
headers provide (Section 3.2.1 of the paper: "our LK model reflects only
the ordering provided by the hardware", with the kernel compensating in
architecture-specific ways):

* the *compilation* of each LK primitive into machine-level events —
  which fence instruction ``smp_mb()`` becomes, whether
  ``smp_load_acquire`` is a plain load (x86), a load followed by a
  lightweight fence (Power), or a special instruction (ARMv8 ``ldar``);
* the *operational reordering rules* used by the klitmus-substitute
  simulator: which pairs of accesses may complete out of program order,
  and what each fence blocks.

Architecture-level fence tags (``sync``, ``lwsync``, ``dmb``, ...) are the
ones the axiomatic cat models in ``repro/cat/models`` refer to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.events import READ, WRITE

# Machine-level fence tags.
MFENCE = "mfence"
SYNC = "sync"
LWSYNC = "lwsync"
ISYNC = "isync"
DMB = "dmb"
DMB_LD = "dmb-ld"
DMB_ST = "dmb-st"
ALPHA_MB = "alpha-mb"
ALPHA_WMB = "alpha-wmb"

# Machine-level access tags.
PLAIN = "plain"
LDAR = "ldar"  # ARMv8 load-acquire
STLR = "stlr"  # ARMv8 store-release


@dataclass(frozen=True)
class FenceRule:
    """What a fence blocks, operationally.

    ``blocks`` is a set of (earlier_kind, later_kind) pairs — e.g.
    ``{("W", "W")}`` for a store-store barrier — meaning an access of the
    later kind may not complete before an access of the earlier kind on
    the other side of the fence.  ``drains`` marks fences that flush the
    store buffer when they complete (full barriers).
    """

    blocks: FrozenSet[Tuple[str, str]]
    drains: bool = False


_ALL_PAIRS = frozenset(
    {(a, b) for a in (READ, WRITE) for b in (READ, WRITE)}
)
_FULL = FenceRule(_ALL_PAIRS, drains=True)
_STORE_STORE = FenceRule(frozenset({(WRITE, WRITE)}))
_LOAD_ANY = FenceRule(frozenset({(READ, READ), (READ, WRITE)}))
#: lwsync: everything except W -> R.
_LWSYNC = FenceRule(
    frozenset({(READ, READ), (READ, WRITE), (WRITE, WRITE)}), drains=True
)


@dataclass(frozen=True)
class ArchSpec:
    """One architecture: compilation map + operational rules."""

    name: str
    #: cat model name in repro/cat/models (None: use LKMM itself).
    cat_model: Optional[str]
    #: LK fence tag -> machine fence tag(s); missing = compiles to nothing.
    fence_map: Dict[str, Tuple[str, ...]]
    #: smp_load_acquire: (load tag, fences before, fences after).
    acquire_load: Tuple[str, Tuple[str, ...], Tuple[str, ...]]
    #: smp_store_release: (store tag, fences before, fences after).
    release_store: Tuple[str, Tuple[str, ...], Tuple[str, ...]]
    #: fences emitted before/after a full-barrier RMW (xchg).
    rmw_full_fences: Tuple[Tuple[str, ...], Tuple[str, ...]]
    #: fence semantics for the operational simulator.
    fence_rules: Dict[str, FenceRule]
    #: True if any two accesses to different locations may complete out of
    #: order (subject to dependencies and fences); False keeps accesses in
    #: order and leaves all weakness to the store buffer (TSO, SC).
    out_of_order: bool
    #: True if the machine has a store buffer (reads bypass it; a write is
    #: locally visible before it is globally visible).
    store_buffer: bool
    #: Reorder-window size for the operational simulator.
    window: int = 8
    #: Fences after an acquire RMW / before a release RMW.  ``None`` means
    #: "use the acquire-load / release-store fences"; ARMv8, whose acquire
    #: and release are dedicated instructions (ldaxr/stlxr), overrides
    #: these with barrier approximations.
    rmw_acquire_after: Optional[Tuple[str, ...]] = None
    rmw_release_before: Optional[Tuple[str, ...]] = None

    def fence_rule(self, tag: str) -> FenceRule:
        return self.fence_rules.get(tag, _FULL)

    def acquire_rmw_fences(self) -> Tuple[str, ...]:
        if self.rmw_acquire_after is not None:
            return self.rmw_acquire_after
        return self.acquire_load[2]

    def release_rmw_fences(self) -> Tuple[str, ...]:
        if self.rmw_release_before is not None:
            return self.rmw_release_before
        return self.release_store[1]


def _spec_sc() -> ArchSpec:
    return ArchSpec(
        name="SC",
        cat_model="sc",
        fence_map={"mb": (), "rmb": (), "wmb": (), "rb-dep": ()},
        acquire_load=(PLAIN, (), ()),
        release_store=(PLAIN, (), ()),
        rmw_full_fences=((), ()),
        fence_rules={},
        out_of_order=False,
        store_buffer=False,
        window=1,
    )


def _spec_x86() -> ArchSpec:
    # x86: TSO.  smp_mb() is mfence; smp_rmb/smp_wmb are compiler barriers;
    # acquire/release are plain accesses (TSO is strong enough); xchg is a
    # LOCK-prefixed instruction, i.e. a full barrier.
    return ArchSpec(
        name="x86",
        cat_model="tso",
        fence_map={"mb": (MFENCE,), "rmb": (), "wmb": (), "rb-dep": ()},
        acquire_load=(PLAIN, (), ()),
        release_store=(PLAIN, (), ()),
        rmw_full_fences=((MFENCE,), (MFENCE,)),
        fence_rules={MFENCE: _FULL},
        out_of_order=False,
        store_buffer=True,
        window=1,
    )


def _spec_power() -> ArchSpec:
    # Power: smp_mb() is sync; smp_rmb/smp_wmb are lwsync; acquire is a
    # load followed by lwsync and release an lwsync followed by the store
    # (arch/powerpc/include/asm/barrier.h); dependent reads are respected,
    # so smp_read_barrier_depends() is a no-op.
    return ArchSpec(
        name="Power8",
        cat_model="power",
        fence_map={
            "mb": (SYNC,),
            "rmb": (LWSYNC,),
            "wmb": (LWSYNC,),
            "rb-dep": (),
        },
        acquire_load=(PLAIN, (), (LWSYNC,)),
        release_store=(PLAIN, (LWSYNC,), ()),
        rmw_full_fences=((SYNC,), (SYNC,)),
        fence_rules={SYNC: _FULL, LWSYNC: _LWSYNC},
        out_of_order=True,
        store_buffer=True,
    )


def _spec_armv8() -> ArchSpec:
    # ARMv8: dmb ish / dmb ishld / dmb ishst, and dedicated load-acquire /
    # store-release instructions (ldar / stlr).
    return ArchSpec(
        name="ARMv8",
        cat_model="armv8",
        fence_map={
            "mb": (DMB,),
            "rmb": (DMB_LD,),
            "wmb": (DMB_ST,),
            "rb-dep": (),
        },
        acquire_load=(LDAR, (), ()),
        release_store=(STLR, (), ()),
        rmw_full_fences=((DMB,), (DMB,)),
        fence_rules={DMB: _FULL, DMB_LD: _LOAD_ANY, DMB_ST: _STORE_STORE},
        out_of_order=True,
        store_buffer=True,
        rmw_acquire_after=(DMB_LD,),
        rmw_release_before=(DMB,),
    )


def _spec_armv7() -> ArchSpec:
    # ARMv7 has no acquire/release instructions: smp_load_acquire is a
    # load followed by a full dmb, smp_store_release a dmb then the store
    # ("ARMv7 implements smp_load_acquire with a full fence for lack of
    # better means", Section 3.2.2).
    return ArchSpec(
        name="ARMv7",
        cat_model="armv7",
        fence_map={
            "mb": (DMB,),
            "rmb": (DMB,),
            "wmb": (DMB_ST,),
            "rb-dep": (),
        },
        acquire_load=(PLAIN, (), (DMB,)),
        release_store=(PLAIN, (DMB,), ()),
        rmw_full_fences=((DMB,), (DMB,)),
        fence_rules={DMB: _FULL, DMB_ST: _STORE_STORE},
        out_of_order=True,
        store_buffer=True,
    )


def _spec_alpha() -> ArchSpec:
    # Alpha: mb and wmb instructions; dependent reads are NOT respected,
    # so smp_read_barrier_depends() emits a full mb — the raison d'être of
    # that primitive (Section 3.2.2).
    return ArchSpec(
        name="Alpha",
        cat_model="alpha",
        fence_map={
            "mb": (ALPHA_MB,),
            "rmb": (ALPHA_MB,),
            "wmb": (ALPHA_WMB,),
            "rb-dep": (ALPHA_MB,),
        },
        acquire_load=(PLAIN, (), (ALPHA_MB,)),
        release_store=(PLAIN, (ALPHA_MB,), ()),
        rmw_full_fences=((ALPHA_MB,), (ALPHA_MB,)),
        fence_rules={ALPHA_MB: _FULL, ALPHA_WMB: _STORE_STORE},
        out_of_order=True,
        store_buffer=True,
    )


ARCHITECTURES: Dict[str, ArchSpec] = {
    spec.name: spec
    for spec in (
        _spec_sc(),
        _spec_x86(),
        _spec_power(),
        _spec_armv8(),
        _spec_armv7(),
        _spec_alpha(),
    )
}

#: The four testbeds of Table 5, in the paper's column order.
TABLE5_ARCHS: List[str] = ["Power8", "ARMv8", "ARMv7", "x86"]


def get_arch(name: str) -> ArchSpec:
    try:
        return ARCHITECTURES[name]
    except KeyError:
        raise KeyError(
            f"unknown architecture {name!r}; known: {sorted(ARCHITECTURES)}"
        ) from None
