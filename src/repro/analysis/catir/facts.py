"""Ground facts about the builtin cat environment.

This module is the single source of truth for what the builtin names
*denote* — which names are relations vs sets, which event kinds a
structural set may contain, which relations are contained in ``int`` /
``ext`` / ``id``, and the domain/range bounds of the base relations.
Both the surface linter (:mod:`repro.analysis.catlint`, for the CAT010
empty-intersection check) and the algebraic analyses
(:mod:`repro.analysis.catir.analyses`) read these tables, so the two
passes can never disagree about disjointness.

Every entry is justified by the construction of candidate executions in
:mod:`repro.executions` (see DESIGN.md "Relational IR" for the full
soundness argument):

* ``po`` relates strictly-ordered events of one thread: contained in
  ``int``, irreflexive.
* ``int`` is same-thread, ``ext`` is different-thread: disjoint, and
  ``ext`` is irreflexive (an event shares its own thread).
* ``rmw`` links a read to a write of the same thread: in ``int``,
  irreflexive; its domain is in ``R``, its range in ``W``.
* ``rf`` goes write-to-read, ``co`` write-to-write, ``loc`` relates
  memory accesses (fences have no location).
* ``R``/``W``/``F`` partition events by kind; ``M = R | W``;
  ``IW`` (initial writes) is contained in ``W``.
* Every event carries exactly one annotation, so two distinct tag sets
  share no event.  (No code path assigns ``extra_tags`` today; this is
  the one heuristic entry, which is why everything built on it is
  WARNING severity, never an error and never a rewrite.)
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

from repro.cat import TAG_SETS

#: Builtin relations of the evaluation environment (see
#: :func:`repro.cat.eval.builtin_environment`).
BUILTIN_RELATIONS = frozenset(
    {"po", "rf", "co", "addr", "data", "ctrl", "rmw", "loc", "int", "ext",
     "id", "crit"}
)

#: Builtin event sets: the structural sets plus one set per annotation.
BUILTIN_SETS = frozenset({"_", "R", "W", "F", "M", "IW"}) | frozenset(TAG_SETS)

#: Builtin functions.
BUILTIN_FUNCTIONS = frozenset({"domain", "range", "fencerel"})

#: Event kinds each structural builtin set may contain.  ``R``/``W``/``F``
#: are pairwise disjoint; annotation sets are not listed (a tag may
#: annotate any kind).  ``_`` is the universe.
KIND_SETS: Dict[str, FrozenSet[str]] = {
    "R": frozenset({"R"}),
    "W": frozenset({"W"}),
    "M": frozenset({"R", "W"}),
    "F": frozenset({"F"}),
    "IW": frozenset({"W"}),
    "_": frozenset({"R", "W", "F"}),
}

#: Attributes of the base relations, as *upper bounds*: ``"int"`` means
#: contained in ``int`` (same-thread), ``"ext"`` contained in ``ext``,
#: ``"id"`` contained in the identity, ``"irr"`` irreflexive.
REL_ATTRS: Dict[str, FrozenSet[str]] = {
    "po": frozenset({"int", "irr"}),
    "id": frozenset({"int", "id"}),
    "int": frozenset({"int"}),
    "ext": frozenset({"ext", "irr"}),
    "rmw": frozenset({"int", "irr"}),
    "crit": frozenset({"int", "irr"}),
}

#: Domain/range upper bounds of base relations, as builtin set names.
REL_BOUNDS: Dict[str, Tuple[Optional[str], Optional[str]]] = {
    "rf": ("W", "R"),
    "co": ("W", "W"),
    "rmw": ("R", "W"),
    "addr": ("R", "M"),
    "data": ("R", "M"),
    "ctrl": ("R", None),
    "loc": ("M", "M"),
    "crit": ("Rcu-lock", "Rcu-unlock"),
}

#: Structural containments between base *sets* (sub -> its supersets);
#: every set is additionally contained in ``_``.
SET_CONTAIN: Dict[str, FrozenSet[str]] = {
    "R": frozenset({"M"}),
    "W": frozenset({"M"}),
    "IW": frozenset({"W", "M"}),
}


def base_set_kinds(name: str) -> Optional[FrozenSet[str]]:
    """Upper bound on the event kinds in builtin set ``name`` (None when
    unknown — tag sets may annotate any kind)."""
    return KIND_SETS.get(name)


def base_set_tags(name: str) -> Optional[FrozenSet[str]]:
    """The tag(s) of events in builtin set ``name`` (None when unknown)."""
    tag = TAG_SETS.get(name)
    return frozenset({tag}) if tag is not None else None


def base_sets_disjoint(a: str, b: str) -> Optional[str]:
    """A human-readable reason why builtin sets ``a`` and ``b`` can share
    no event, or None when they may overlap.  Deliberately conservative:
    tag-vs-kind pairs are never claimed disjoint."""
    ta, tb = base_set_tags(a), base_set_tags(b)
    if ta is not None and tb is not None and not (ta & tb):
        return "every event carries exactly one annotation"
    ka, kb = base_set_kinds(a), base_set_kinds(b)
    if ka is not None and kb is not None and not (ka & kb):
        return "reads, writes and fences are disjoint event kinds"
    return None
