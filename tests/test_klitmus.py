"""Tests for the klitmus harness."""

import pytest

from repro.hardware import run_klitmus
from repro.hardware.klitmus import _si
from repro.litmus import library


class TestRunKlitmus:
    def test_basic_run(self):
        result = run_klitmus(library.get("SB"), "x86", runs=500)
        assert result.runs == 500
        assert sum(result.histogram.values()) == 500
        assert result.arch_name == "x86"
        assert 0 < result.observed < 500

    def test_accepts_arch_name_or_spec(self):
        from repro.hardware.archspec import get_arch

        by_name = run_klitmus(library.get("SB"), "x86", runs=100)
        by_spec = run_klitmus(library.get("SB"), get_arch("x86"), runs=100)
        assert by_name.histogram == by_spec.histogram

    def test_reproducible_with_seed(self):
        a = run_klitmus(library.get("MP"), "Power8", runs=300, seed=5)
        b = run_klitmus(library.get("MP"), "Power8", runs=300, seed=5)
        assert a.histogram == b.histogram

    def test_summary_format(self):
        result = run_klitmus(library.get("SB+mbs"), "x86", runs=200)
        assert result.summary() == "0/200"

    def test_describe_lists_states(self):
        result = run_klitmus(library.get("SB"), "x86", runs=200)
        text = result.describe()
        assert "SB on x86" in text
        assert "0:r0" in text


class TestSiFormatting:
    def test_plain(self):
        assert _si(999) == "999"

    def test_kilo(self):
        assert _si(1000) == "1k"
        assert _si(741_000) == "741k"

    def test_mega_giga(self):
        assert _si(5_600_000) == "5.6M"
        assert _si(33_000_000_000) == "33G"
