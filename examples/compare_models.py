#!/usr/bin/env python
"""Portability matrix: one idiom, every model.

For a handful of synchronisation idioms, print the verdict under the LK
model, under C11 (via the mapping of the paper's Section 5.2), and under
each architecture model after compiling the kernel primitives the way
the kernel's headers do.  This is the everyday question the executable
model answers: *which guarantees does this code actually have, where?*
"""

from repro import LinuxKernelModel, litmus_library, load_model, run_litmus
from repro.hardware import compile_program, get_arch
from repro.hardware.compile import CompileError

IDIOMS = [
    "MP+wmb+rmb",
    "MP+po-rel+acq",
    "MP+wmb+addr",
    "MP+wmb+addr-rbdep",
    "SB+mbs",
    "LB+ctrl+mb",
    "WRC+wmb+acq",
    "RWC+mbs",
    "RCU-MP",
]

ARCHS = ["x86", "Power8", "ARMv8", "ARMv7", "Alpha"]


def main() -> None:
    lkmm = LinuxKernelModel()
    c11 = load_model("c11")
    arch_models = {name: load_model(get_arch(name).cat_model) for name in ARCHS}

    header = f"{'idiom':20s} {'LK':7s} {'C11':7s} " + " ".join(
        f"{a:7s}" for a in ARCHS
    )
    print(header)
    print("-" * len(header))

    for name in IDIOMS:
        test = litmus_library.get(name)
        row = [f"{name:20s}"]
        row.append(f"{run_litmus(lkmm, test).verdict:7s}")
        if any(
            tag in src
            for tag in ("rcu_read_lock", "synchronize_rcu")
            for src in [litmus_library.SOURCES[name]]
        ):
            row.append(f"{'-':7s}")  # no C11 counterpart for RCU
        else:
            row.append(f"{run_litmus(c11, test).verdict:7s}")
        for arch_name in ARCHS:
            arch = get_arch(arch_name)
            try:
                compiled = compile_program(test, arch, rcu="error")
            except CompileError:
                row.append(f"{'-':7s}")
                continue
            verdict = run_litmus(arch_models[arch_name], compiled).verdict
            row.append(f"{verdict:7s}")
        print(" ".join(row))

    print(
        "\nReading the matrix:\n"
        " * Forbid under LK = code may rely on it everywhere the kernel runs.\n"
        " * Allow under LK but Forbid on your machine = works today, breaks\n"
        "   on the next architecture (e.g. MP+wmb+addr is Forbid everywhere\n"
        "   except Alpha — exactly why smp_read_barrier_depends exists).\n"
        " * The C11 column shows where the kernel model and the C11 mapping\n"
        "   disagree (control dependencies, seq_cst fences, smp_wmb)."
    )


if __name__ == "__main__":
    main()
