"""Symbolic critical-cycle prover: litmus verdicts before enumeration.

The pipeline (ISSUE: symbolic static analysis over the relational IR):

1. :mod:`.skeleton` — the trace-invariant event structure of a test;
2. :mod:`.footprint` — communication edges pinned by the final-state
   condition, plus the coherence scenarios still open;
3. :mod:`.match` — under-approximating path-match entailment against
   the compiled cat IR;
4. :mod:`.prover` — the decision procedure (:func:`static_verdict`),
   consumed by :func:`repro.herd.verdicts` and the corpus sweep;
5. :mod:`.tables` — per-model order tables over the diy edge shapes.

Everything is sound by construction: Forbid is a proof over every
condition-satisfying execution, Allow is a kernel-confirmed witness,
and anything else falls back to full enumeration.  The pre-pass is
gated by ``REPRO_STATIC_VERDICT`` (:mod:`repro.kernel.config`).
"""

from repro.analysis.symbolic.footprint import (
    Footprint,
    guaranteed_edges,
    resolve_footprint,
    scenarios,
)
from repro.analysis.symbolic.match import EdgeSet, Matcher, violated_check
from repro.analysis.symbolic.prover import (
    StaticDecision,
    compiled_model,
    decide,
    static_verdict,
)
from repro.analysis.symbolic.skeleton import (
    ProgramSkeleton,
    SkelEvent,
    UNKNOWN,
    Unsupported,
    extract_skeleton,
)
from repro.analysis.symbolic.tables import order_table, ordered_shapes

__all__ = [
    "EdgeSet",
    "Footprint",
    "Matcher",
    "ProgramSkeleton",
    "SkelEvent",
    "StaticDecision",
    "UNKNOWN",
    "Unsupported",
    "compiled_model",
    "decide",
    "extract_skeleton",
    "guaranteed_edges",
    "order_table",
    "ordered_shapes",
    "resolve_footprint",
    "scenarios",
    "static_verdict",
    "violated_check",
]
