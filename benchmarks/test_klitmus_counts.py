"""E15 — klitmus-style hardware runs (Section 5.1).

Runs every Table 5 test on every simulated machine (including the RCU
rows, which the operational simulator handles natively) and regenerates
the observation-count cells.  Every state the simulator produces is also
checked against the LK model on the source program — the operational
counterpart of the soundness claim.
"""

from __future__ import annotations

import pytest

from repro.executions import candidate_executions
from repro.hardware import run_klitmus
from repro.hardware.archspec import TABLE5_ARCHS
from repro.litmus import library

from conftest import once, print_table

RUNS = 3000


def test_klitmus_all_rows(benchmark, lkmm):
    def experiment():
        table = {}
        for name in library.TABLE5:
            program = library.get(name)
            table[name] = {
                arch: run_klitmus(program, arch, runs=RUNS)
                for arch in TABLE5_ARCHS
            }
        return table

    table = once(benchmark, experiment)
    rows = [
        (name, *(table[name][arch].summary() for arch in TABLE5_ARCHS))
        for name in library.TABLE5
    ]
    print_table(
        "klitmus-style observation counts (simulated machines)",
        ("Test", *TABLE5_ARCHS),
        rows,
    )

    for name in library.TABLE5:
        verdict = library.PAPER_VERDICTS[name]["LK"]
        for arch in TABLE5_ARCHS:
            if verdict == "Forbid":
                assert table[name][arch].observed == 0, (name, arch)


def test_operational_soundness_against_lkmm(benchmark, lkmm):
    """Every state the simulator reaches (projected onto the source
    program's observables) is LK-allowed."""

    def experiment():
        mismatches = []
        for name in library.TABLE5:
            program = library.get(name)
            lk_states = {
                x.final_state
                for x in candidate_executions(program)
                if lkmm.allows(x)
            }

            def project(state):
                registers = {
                    key: value
                    for key, value in state.registers.items()
                    if not key[1].startswith("__")
                }
                from repro.litmus.outcomes import FinalState

                return FinalState(registers, dict(state.memory))

            for arch in TABLE5_ARCHS:
                result = run_klitmus(program, arch, runs=800)
                for state in result.histogram:
                    if project(state) not in lk_states:
                        mismatches.append((name, arch, state))
        return mismatches

    mismatches = once(benchmark, experiment)
    assert not mismatches, mismatches[:3]
