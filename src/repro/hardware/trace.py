"""From operational traces to candidate executions.

The paper validates its model against hardware by comparing *final
states*; with a simulator we can do better and validate *executions*:
every run of :class:`~repro.hardware.opsim.OperationalSimulator` records
which write each read observed (rf), the order writes reached memory
(co), and the dependency taints — enough to rebuild the exact
:class:`~repro.executions.candidate.CandidateExecution` the run
performed, and check it against an axiomatic model directly.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.events import Event, INIT_TID, _index_to_label
from repro.executions.candidate import CandidateExecution
from repro.hardware.archspec import ArchSpec, get_arch
from repro.hardware.compile import compile_program
from repro.hardware.opsim import OperationalSimulator, RunTrace
from repro.litmus.ast import Program
from repro.relations import Relation, relation_from_order


def build_execution(trace: RunTrace, name: str = "") -> CandidateExecution:
    """Reconstruct the candidate execution a recorded run performed."""
    events: Dict[int, Event] = {}
    label_counter = 0
    for recorded in sorted(
        trace.events, key=lambda e: (e.tid, e.po_index, e.event_id)
    ):
        label = ""
        if recorded.kind != "F" and recorded.tid != INIT_TID:
            label = _index_to_label(label_counter)
            label_counter += 1
        elif recorded.tid == INIT_TID:
            label = f"i{recorded.loc}"
        events[recorded.event_id] = Event(
            eid=recorded.event_id,
            tid=recorded.tid,
            po_index=recorded.po_index,
            kind=recorded.kind,
            tag=recorded.tag,
            loc=recorded.loc,
            value=recorded.value,
            label=label,
        )
    universe = frozenset(events.values())

    po_pairs: List[Tuple[Event, Event]] = []
    by_tid: Dict[int, List[Event]] = {}
    for event in events.values():
        if event.tid != INIT_TID:
            by_tid.setdefault(event.tid, []).append(event)
    for thread_events in by_tid.values():
        thread_events.sort(key=lambda e: (e.po_index, e.eid))
        for i, a in enumerate(thread_events):
            for b in thread_events[i + 1:]:
                po_pairs.append((a, b))

    def taint_pairs(attribute: str) -> List[Tuple[Event, Event]]:
        pairs = []
        for recorded in trace.events:
            for read_id in getattr(recorded, attribute):
                pairs.append((events[read_id], events[recorded.event_id]))
        return pairs

    rf_pairs = [
        (events[write_id], events[read_id])
        for read_id, write_id in trace.rf.items()
    ]
    co_pairs: List[Tuple[Event, Event]] = []
    for order in trace.co_order.values():
        co_pairs.extend(
            relation_from_order([events[i] for i in order], universe).pairs
        )
    rmw_pairs = [
        (events[r], events[w]) for r, w in trace.rmw_pairs
    ]

    return CandidateExecution(
        events.values(),
        po=Relation(po_pairs, universe),
        addr=Relation(taint_pairs("addr_taints"), universe),
        data=Relation(taint_pairs("data_taints"), universe),
        ctrl=Relation(taint_pairs("ctrl_taints"), universe),
        rmw=Relation(rmw_pairs, universe),
        rf=Relation(rf_pairs, universe),
        co=Relation(co_pairs, universe),
        name=name,
    )


def sample_executions(
    program: Program,
    arch: Union[ArchSpec, str],
    runs: int,
    seed: int = 0,
    rcu: str = "keep",
    rng: Optional[random.Random] = None,
) -> Iterator[CandidateExecution]:
    """Compile ``program`` for ``arch`` and yield the candidate execution
    of each of ``runs`` randomised runs.

    Deterministic for a fixed ``seed``; pass ``rng`` to inject the
    schedule stream directly instead."""
    if isinstance(arch, str):
        arch = get_arch(arch)
    compiled = compile_program(program, arch, rcu=rcu)
    simulator = OperationalSimulator(compiled, arch)
    if rng is None:
        rng = random.Random(seed)
    for _ in range(runs):
        _, trace = simulator.run_once_traced(rng)
        yield build_execution(trace, name=compiled.name)
