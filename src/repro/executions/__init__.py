"""Candidate executions: the graphs the models judge (Section 2).

A *candidate execution* pairs an abstract execution
``(E, po, addr, data, ctrl, rmw)`` — the per-thread semantics — with an
execution witness ``(rf, co)`` — the inter-thread communications.  This
package enumerates every candidate execution of a litmus test:

* :mod:`repro.executions.thread_sem` evaluates one thread into its possible
  event traces, tracking address/data/control dependencies by taint;
* :mod:`repro.executions.candidate` defines :class:`CandidateExecution`;
* :mod:`repro.executions.enumerate` combines thread traces with all
  reads-from assignments and coherence orders.
"""

from repro.executions.candidate import CandidateExecution
from repro.executions.enumerate import (
    candidate_executions,
    count_candidate_executions,
)
from repro.executions.thread_sem import (
    ThreadTrace,
    ProtoEvent,
    enumerate_thread_traces,
    possible_value_sets,
    SemanticsError,
)

__all__ = [
    "CandidateExecution",
    "candidate_executions",
    "count_candidate_executions",
    "ThreadTrace",
    "ProtoEvent",
    "enumerate_thread_traces",
    "possible_value_sets",
    "SemanticsError",
]
