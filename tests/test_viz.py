"""Tests for the DOT renderer."""

import pytest

from repro.executions import candidate_executions
from repro.litmus import library
from repro.lkmm import LinuxKernelModel
from repro.viz import cycle_to_dot, to_dot


@pytest.fixture(scope="module")
def witness():
    program = library.get("MP+wmb+rmb")
    return next(
        x
        for x in candidate_executions(program)
        if program.condition.evaluate(x.final_state)
    )


class TestToDot:
    def test_well_formed(self, witness):
        dot = to_dot(witness)
        assert dot.startswith("digraph execution {")
        assert dot.rstrip().endswith("}")
        assert dot.count("{") == dot.count("}")

    def test_threads_as_clusters(self, witness):
        dot = to_dot(witness)
        assert "subgraph cluster_0" in dot
        assert "subgraph cluster_1" in dot

    def test_events_labelled(self, witness):
        dot = to_dot(witness)
        assert "W[once] x=1" in dot
        assert "F[wmb]" in dot

    def test_communication_edges(self, witness):
        dot = to_dot(witness)
        assert 'label="rf"' in dot
        assert 'label="po"' in dot

    def test_init_writes_hidden_by_default(self, witness):
        dot = to_dot(witness)
        assert "init" not in dot
        dot_with = to_dot(witness, include_init=True)
        assert "init" in dot_with

    def test_title(self, witness):
        dot = to_dot(witness, title="my title")
        assert 'label="my title"' in dot


class TestCycleToDot:
    def test_highlights_cycle(self, witness):
        model = LinuxKernelModel()
        result = model.check(witness)
        violation = next(
            v for v in result.violations if v.kind == "acyclic"
        )
        dot = cycle_to_dot(witness, violation.witness)
        assert 'label="cycle"' in dot
        assert "orange" in dot
        assert "forbidden" in dot
