"""The collection half of :mod:`repro.obs`: spans, counters, gauges.

One process-global :class:`Collector` (or none).  Everything here is built
around the disabled case being near-free:

* :data:`ENABLED` is a plain module attribute mirroring "a collector is
  installed".  Hot paths (the skeleton memo table, the enumerator's inner
  loops) guard their bookkeeping with ``if _obs.ENABLED:`` — one attribute
  read when observability is off.
* :func:`span` returns a shared no-op context manager when disabled, so
  instrumented ``with`` blocks cost two empty method calls.

Span nesting is tracked in a :class:`contextvars.ContextVar`, so spans
balance per logical context and survive exceptions (``with`` guarantees
``__exit__``).  Aggregation is flat-by-name — ``cat.check.Hb`` accumulates
one (count, total, max) triple no matter where it nests — while the
optional raw trace (:func:`collect` with ``trace=True``) records every
span occurrence with its start offset, duration, depth and parent.

This module must not import anything from :mod:`repro` outside
:mod:`repro.obs` — the kernel layers import *it*.
"""

from __future__ import annotations

import contextvars
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs.report import RunReport, SpanStat

#: Fast-path flag for hot loops; always equals ``_collector is not None``.
ENABLED = False

_collector: Optional["Collector"] = None

_SPAN_STACK: contextvars.ContextVar[Tuple[str, ...]] = contextvars.ContextVar(
    "repro_obs_span_stack", default=()
)


class Collector:
    """Accumulates counters, gauges and span statistics for one run."""

    __slots__ = ("counters", "gauges", "spans", "trace_events", "_epoch")

    def __init__(self, trace: bool = False):
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.spans: Dict[str, SpanStat] = {}
        self.trace_events: Optional[List[Dict[str, Any]]] = (
            [] if trace else None
        )
        self._epoch = time.perf_counter()

    # -- recording -------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def record_span(
        self, name: str, start: float, duration: float, stack: Tuple[str, ...]
    ) -> None:
        stat = self.spans.get(name)
        if stat is None:
            stat = self.spans[name] = SpanStat()
        stat.count += 1
        stat.total_s += duration
        if duration > stat.max_s:
            stat.max_s = duration
        if self.trace_events is not None:
            self.trace_events.append(
                {
                    "name": name,
                    "start_s": round(start - self._epoch, 9),
                    "duration_s": round(duration, 9),
                    "depth": len(stack),
                    "parent": stack[-1] if stack else None,
                }
            )

    def absorb(self, data: Dict[str, Any]) -> None:
        """Merge a serialised report (e.g. from a worker process) in."""
        for name, n in data.get("counters", {}).items():
            self.count(name, n)
        self.gauges.update(data.get("gauges", {}))
        for name, stat in data.get("spans", {}).items():
            mine = self.spans.get(name)
            if mine is None:
                mine = self.spans[name] = SpanStat()
            mine.count += stat["count"]
            mine.total_s += stat["total_s"]
            mine.max_s = max(mine.max_s, stat["max_s"])

    # -- exporting -------------------------------------------------------

    def report(self) -> RunReport:
        return RunReport(
            counters=dict(self.counters),
            gauges=dict(self.gauges),
            spans={name: stat.as_dict() for name, stat in self.spans.items()},
            trace=list(self.trace_events or ()),
        )


class _Span:
    """A live span; records its duration into the collector that opened it."""

    __slots__ = ("name", "_collector", "_start", "_token")

    def __init__(self, name: str, collector: Collector):
        self.name = name
        self._collector = collector

    def __enter__(self) -> "_Span":
        stack = _SPAN_STACK.get()
        self._token = _SPAN_STACK.set(stack + (self.name,))
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._start
        token = self._token
        _SPAN_STACK.reset(token)
        self._collector.record_span(
            self.name, self._start, duration, _SPAN_STACK.get()
        )
        return False


class _NoopSpan:
    """Shared do-nothing span for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


# -- public API -------------------------------------------------------------


def enabled() -> bool:
    """True iff a collector is currently installed."""
    return _collector is not None


def span(name: str):
    """A context manager timing ``name``; free when observability is off."""
    collector = _collector
    if collector is None:
        return _NOOP_SPAN
    return _Span(name, collector)


def count(name: str, n: int = 1) -> None:
    """Increment counter ``name`` by ``n`` (no-op when disabled)."""
    collector = _collector
    if collector is not None:
        collector.count(name, n)


def gauge(name: str, value: float) -> None:
    """Set gauge ``name`` to ``value`` (last write wins; no-op when off)."""
    collector = _collector
    if collector is not None:
        collector.gauge(name, value)


def absorb(data: Dict[str, Any]) -> None:
    """Merge a worker's serialised report into the active collector."""
    collector = _collector
    if collector is not None:
        collector.absorb(data)


def active_spans() -> Tuple[str, ...]:
    """The names of the spans currently open in this context (for tests)."""
    return _SPAN_STACK.get()


def current() -> Optional[Collector]:
    """The installed collector, if any."""
    return _collector


@contextmanager
def collect(trace: bool = False) -> Iterator[Collector]:
    """Install a fresh collector for the duration of the block.

    Nested ``collect`` blocks shadow the outer collector (the outer one
    resumes afterwards); ``trace=True`` additionally records the raw span
    event list for ``--trace-json``.
    """
    global _collector, ENABLED
    previous = _collector
    collector = Collector(trace=trace)
    _collector = collector
    ENABLED = True
    try:
        yield collector
    finally:
        _collector = previous
        ENABLED = previous is not None
