"""The klitmus-style harness: run a test many times, histogram outcomes.

The paper's Table 5 reports, for each test and machine, how many times the
target behaviour was observed over how many runs (``741k/7.7G``).  This
harness produces the same kind of row from the operational simulator:
compile the LK test for the architecture, run it ``runs`` times under a
randomised scheduler, and count the final states matching the test's
``exists`` clause.

As in the paper, a behaviour *observed* here but *forbidden* by the LK
model indicates a bug (in the model, the compilation, or the simulator) —
that check is the soundness experiment (``benchmarks/test_soundness.py``).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.hardware.archspec import ArchSpec, get_arch
from repro.hardware.compile import compile_program
from repro.hardware.opsim import OperationalSimulator
from repro.litmus.ast import Program
from repro.litmus.outcomes import FinalState


@dataclass
class KlitmusResult:
    """The outcome of one test on one (simulated) machine."""

    test_name: str
    arch_name: str
    runs: int
    #: Final states and their frequencies.
    histogram: Dict[FinalState, int]
    #: Runs whose final state matched the test's target condition.
    observed: int

    def summary(self) -> str:
        """Table-5-style cell: ``observed/runs``."""
        return f"{_si(self.observed)}/{_si(self.runs)}"

    def describe(self) -> str:
        lines = [
            f"{self.test_name} on {self.arch_name}: "
            f"{self.summary()} target observations"
        ]
        for state, count in sorted(
            self.histogram.items(), key=lambda kv: -kv[1]
        ):
            regs = ", ".join(
                f"{tid}:{name}={value!r}"
                for (tid, name), value in sorted(state.registers.items())
                if not name.startswith("__")
            )
            lines.append(f"  {count:8d}  {regs}")
        return "\n".join(lines)


def _si(n: int) -> str:
    """Format counts the way Table 5 does (k, M, G suffixes)."""
    if n >= 10**9:
        return f"{n / 10**9:.1f}G".replace(".0G", "G")
    if n >= 10**6:
        return f"{n / 10**6:.1f}M".replace(".0M", "M")
    if n >= 10**3:
        return f"{n / 10**3:.1f}k".replace(".0k", "k")
    return str(n)


def run_klitmus(
    program: Program,
    arch: ArchSpec | str,
    runs: int = 5000,
    seed: int = 0,
    rng: Optional[random.Random] = None,
) -> KlitmusResult:
    """Compile ``program`` for ``arch`` and sample ``runs`` executions.

    Deterministic for a fixed ``seed``: all scheduling randomness flows
    through one explicit rng.  Pass ``rng`` to inject a schedule stream
    directly (it then takes precedence over ``seed``).
    """
    if isinstance(arch, str):
        arch = get_arch(arch)
    compiled = compile_program(program, arch, rcu="keep")
    simulator = OperationalSimulator(compiled, arch)
    if rng is None:
        # Derive a distinct stream per (test, machine) so different columns
        # of the results table don't replay the same schedule sequence.
        # crc32 is stable across processes (unlike hash(), which is salted).
        derived_seed = zlib.crc32(
            f"{seed}:{arch.name}:{program.name}".encode()
        )
        rng = random.Random(derived_seed)
    histogram = simulator.sample(runs, rng=rng)

    condition = program.condition
    observed = 0
    if condition is not None:
        observed = sum(
            count
            for state, count in histogram.items()
            if condition.evaluate(state)
        )
    return KlitmusResult(
        test_name=program.name,
        arch_name=arch.name,
        runs=runs,
        histogram=histogram,
        observed=observed,
    )
