"""Control-flow graphs over litmus thread bodies.

A thread body is a sequence of instructions where the only control flow is
the structured ``If`` (loops are unrolled into ``Assume``-terminated
straight-line code before they reach the AST, see
:class:`~repro.litmus.ast.Assume`).  Lowering is therefore simple and —
crucially for the soundness of the analyses built on top — produces a
**directed acyclic graph**: block ids strictly increase along every edge,
the block list is a topological order, and every path from entry to exit
is finite.

Each ``If`` ends its enclosing block: the block keeps the branch
instruction as its *terminator* (``branch``), with successor 0 the
then-arm and successor 1 the else-arm; both arms re-join in a fresh block.
The branch condition is evaluated at the end of the terminated block, so
transfer functions see it after the block's straight-line instructions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.litmus.ast import If, Instruction

#: A program point: (block id, index of the instruction within the block).
#: The block's branch terminator sits at index ``len(instructions)``.
Point = Tuple[int, int]


@dataclass
class BasicBlock:
    """A maximal straight-line run of instructions.

    Attributes:
        bid: Dense id; also the block's position in :attr:`Cfg.blocks`.
        instructions: The non-branching instructions, in program order.
        branch: The ``If`` terminating this block, if any.  Its *condition*
            belongs to this block; its arms are separate blocks.
        succs: Successor block ids.  For a branch: ``[then, else]``.
        preds: Predecessor block ids.
    """

    bid: int
    instructions: List[Instruction] = field(default_factory=list)
    branch: Optional[If] = None
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not self.instructions and self.branch is None


@dataclass
class Cfg:
    """A thread's control-flow graph.

    ``blocks`` is topologically sorted (ids increase along every edge);
    ``blocks[0]`` is the unique entry and ``blocks[-1]`` the unique exit.
    """

    blocks: List[BasicBlock]

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    @property
    def exit(self) -> BasicBlock:
        return self.blocks[-1]

    def block(self, bid: int) -> BasicBlock:
        return self.blocks[bid]

    def instructions(self) -> Iterator[Tuple[Point, Instruction]]:
        """Every instruction (branch terminators included) with its point,
        in topological block order."""
        for block in self.blocks:
            for idx, ins in enumerate(block.instructions):
                yield (block.bid, idx), ins
            if block.branch is not None:
                yield (block.bid, len(block.instructions)), block.branch

    def path_count(self) -> int:
        """Number of entry→exit paths (finite: the graph is acyclic).
        The region analyses are exact because they enumerate, per program
        point, one abstract state per path reaching it."""
        counts = [0] * len(self.blocks)
        counts[0] = 1
        for block in self.blocks[1:]:
            counts[block.bid] = sum(counts[p] for p in block.preds)
        return counts[-1]


def build_cfg(body: Sequence[Instruction]) -> Cfg:
    """Lower a thread body to its CFG (see module docstring)."""
    blocks: List[BasicBlock] = []

    def new_block() -> BasicBlock:
        block = BasicBlock(bid=len(blocks))
        blocks.append(block)
        return block

    def link(src: BasicBlock, dst: BasicBlock) -> None:
        src.succs.append(dst.bid)
        dst.preds.append(src.bid)

    def lower(instructions: Sequence[Instruction], current: BasicBlock) -> BasicBlock:
        for ins in instructions:
            if isinstance(ins, If):
                current.branch = ins
                then_entry = new_block()
                link(current, then_entry)
                then_exit = lower(ins.then, then_entry)
                else_entry = new_block()
                link(current, else_entry)
                else_exit = lower(ins.orelse, else_entry)
                join = new_block()
                link(then_exit, join)
                link(else_exit, join)
                current = join
            else:
                current.instructions.append(ins)
        return current

    entry = new_block()
    lower(tuple(body), entry)
    return Cfg(blocks)
