"""The concrete dataflow analyses: reaching definitions, liveness,
constant propagation, and the RCU/lock region analysis.

All four use deliberately small lattices over hashable values:

* reaching definitions — sets of ``(register, site)`` pairs, where a site
  is a CFG :data:`~repro.analysis.flow.cfg.Point` or :data:`UNINIT`;
* liveness — sets of live register names (backward);
* constant propagation — per-register flat lattice
  ``unknown < constant < VARIES``, encoded as ``(register, value)`` pairs;
* region analysis — *sets of path states* ``(rcu_depth, held_locks)``.
  Litmus CFGs are acyclic with finitely many paths, so tracking one state
  per path is both exact and terminating (see DESIGN.md's soundness note).

The shared expression helpers (:func:`expr_registers`, :func:`fold_expr`)
also serve the fragile-dependency checker: :func:`fold_expr` evaluates an
expression to a compile-time constant whenever a compiler could — constant
operands, but also dependency-breaking algebraic identities such as
``r ^ r``, ``r - r``, ``r * 0``, ``r & 0`` and always-true comparisons.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple, Union

from repro.events import Pointer, RCU_LOCK, RCU_UNLOCK, RELEASE, Value
from repro.litmus.ast import (
    Assume,
    BinOp,
    CmpXchg,
    Const,
    Expr,
    Fence,
    If,
    Instruction,
    Load,
    LocalAssign,
    LitmusError,
    Reg,
    Rmw,
    Store,
    UnOp,
)
from repro.analysis.flow.cfg import Cfg, Point
from repro.analysis.flow.dataflow import BACKWARD, DataflowAnalysis, FORWARD

#: The reaching-definitions site of a register never assigned.
UNINIT = "uninit"

#: The constant-propagation token for "varies at runtime".
VARIES = "<varies>"

Site = Union[str, Point]


# ---------------------------------------------------------------------------
# Expression helpers
# ---------------------------------------------------------------------------


def expr_registers(expr: Expr) -> FrozenSet[str]:
    """All register names an expression mentions."""
    out: Set[str] = set()
    _collect_registers(expr, out)
    return frozenset(out)


def _collect_registers(expr: Expr, out: Set[str]) -> None:
    if isinstance(expr, Reg):
        out.add(expr.name)
    elif isinstance(expr, BinOp):
        _collect_registers(expr.lhs, out)
        _collect_registers(expr.rhs, out)
    elif isinstance(expr, UnOp):
        _collect_registers(expr.operand, out)


def fold_expr(expr: Expr, env: Optional[Dict[str, Value]] = None) -> Optional[Value]:
    """The compile-time constant value of ``expr``, or ``None``.

    ``env`` maps registers to known constants (from constant propagation);
    registers absent from it vary.  Beyond plain folding, the identities a
    compiler may exploit to erase a syntactic dependency are applied:
    ``e ^ e = e - e = 0``, ``e * 0 = e & 0 = 0``, ``e == e = 1`` (and the
    other reflexive comparisons), short-circuiting ``&&``/``||``.
    """
    env = env or {}
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Reg):
        value = env.get(expr.name, VARIES)
        return None if value == VARIES else value
    if isinstance(expr, UnOp):
        operand = fold_expr(expr.operand, env)
        if operand is None:
            return None
        try:
            return expr.apply(operand)
        except LitmusError:
            return None
    if isinstance(expr, BinOp):
        lhs = fold_expr(expr.lhs, env)
        rhs = fold_expr(expr.rhs, env)
        if lhs is not None and rhs is not None:
            try:
                return expr.apply(lhs, rhs)
            except LitmusError:
                return None
        # Dependency-breaking identities on varying operands.
        if expr.lhs == expr.rhs:
            if expr.op in ("^", "-"):
                return 0
            if expr.op in ("==", "<=", ">="):
                return 1
            if expr.op in ("!=", "<", ">"):
                return 0
        if expr.op in ("*", "&") and (lhs == 0 or rhs == 0):
            return 0
        if expr.op == "&&" and (lhs == 0 or rhs == 0):
            return 0
        if expr.op == "||" and (
            (lhs is not None and lhs != 0) or (rhs is not None and rhs != 0)
        ):
            return 1
        return None
    return None


def instruction_def(ins: Instruction) -> Optional[str]:
    """The register the instruction assigns, if any."""
    if isinstance(ins, (Load, Rmw, CmpXchg, LocalAssign)):
        return ins.reg
    return None


def instruction_uses(ins: Instruction) -> FrozenSet[str]:
    """The registers whose *prior* values the instruction reads.

    For RMWs, ``new_value`` mentioning the destination register refers to
    the value just read (see :mod:`repro.executions.thread_sem`), so that
    register is excluded from the uses.
    """
    if isinstance(ins, Load):
        return expr_registers(ins.addr)
    if isinstance(ins, Store):
        return expr_registers(ins.addr) | expr_registers(ins.value)
    if isinstance(ins, Rmw):
        return expr_registers(ins.addr) | (
            expr_registers(ins.new_value) - {ins.reg}
        )
    if isinstance(ins, CmpXchg):
        return (
            expr_registers(ins.addr)
            | expr_registers(ins.expected)
            | (expr_registers(ins.new_value) - {ins.reg})
        )
    if isinstance(ins, LocalAssign):
        return expr_registers(ins.expr)
    if isinstance(ins, (If, Assume)):
        return expr_registers(ins.cond)
    return frozenset()


def cfg_registers(cfg: Cfg) -> FrozenSet[str]:
    """Every register a CFG assigns or reads."""
    regs: Set[str] = set()
    for _, ins in cfg.instructions():
        defined = instruction_def(ins)
        if defined is not None:
            regs.add(defined)
        regs |= instruction_uses(ins)
        if isinstance(ins, (Rmw, CmpXchg)):
            regs |= expr_registers(ins.new_value)
    return frozenset(regs)


def static_location(addr: Expr) -> Optional[str]:
    """The statically-known location of an address expression, if any."""
    if isinstance(addr, Const) and isinstance(addr.value, Pointer):
        return addr.value.loc
    value = fold_expr(addr)
    if isinstance(value, Pointer):
        return value.loc
    return None


# ---------------------------------------------------------------------------
# Reaching definitions (forward)
# ---------------------------------------------------------------------------


class ReachingDefinitions(DataflowAnalysis):
    """Which definition sites may supply each register's current value.

    Values are frozensets of ``(register, site)`` pairs; the pseudo-site
    :data:`UNINIT` reaching a use means the register may still hold no
    value on some path to that point.
    """

    direction = FORWARD

    def __init__(self, cfg: Cfg):
        self.registers = cfg_registers(cfg)

    def boundary(self):
        return frozenset((reg, UNINIT) for reg in self.registers)

    def bottom(self):
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer(self, ins: Instruction, value, point: Point):
        defined = instruction_def(ins)
        if defined is None:
            return value
        kept = frozenset(pair for pair in value if pair[0] != defined)
        return kept | {(defined, point)}


def possibly_uninit(value: Iterable[Tuple[str, Site]], reg: str) -> bool:
    """Whether ``reg`` may be unassigned in a reaching-defs value."""
    return (reg, UNINIT) in value


# ---------------------------------------------------------------------------
# Liveness (backward)
# ---------------------------------------------------------------------------


class Liveness(DataflowAnalysis):
    """Registers whose current value may still be read later.

    ``exit_live`` seeds the analysis with the registers observable after
    the thread ends — those the litmus final-state condition mentions for
    this thread.
    """

    direction = BACKWARD

    def __init__(self, exit_live: Iterable[str] = ()):
        self.exit_live = frozenset(exit_live)

    def boundary(self):
        return self.exit_live

    def bottom(self):
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer(self, ins: Instruction, value, point: Point):
        defined = instruction_def(ins)
        if defined is not None:
            value = value - {defined}
        return value | instruction_uses(ins)


# ---------------------------------------------------------------------------
# Constant propagation (forward)
# ---------------------------------------------------------------------------


class ConstantPropagation(DataflowAnalysis):
    """Per-register constants, for folding dependency expressions through
    local arithmetic (``r1 = r0 & 0; WRITE_ONCE(*p, r1)`` is as fragile
    as writing ``r0 & 0`` inline).

    Values are frozensets of ``(register, constant-or-VARIES)`` pairs;
    registers not yet assigned are absent (their value is undefined, which
    we conservatively treat as varying when used).
    """

    direction = FORWARD

    def boundary(self):
        return frozenset()

    def bottom(self):
        # "Unreached" must be the join identity and is distinct from the
        # reachable-but-nothing-known frozenset() (joining the latter
        # forces registers to VARIES, see below).
        return None

    def join(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        if a == b:
            return a
        merged = dict(a)
        for reg, value in b:
            if reg in merged and merged[reg] != value:
                merged[reg] = VARIES
            else:
                merged.setdefault(reg, value)
        # A register known on one side only may be uninitialised on the
        # other path; its value still varies.
        one_sided = {reg for reg, _ in a} ^ {reg for reg, _ in b}
        for reg in one_sided:
            merged[reg] = VARIES
        return frozenset(merged.items())

    def transfer(self, ins: Instruction, value, point: Point):
        if value is None:  # unreached
            return None
        defined = instruction_def(ins)
        if defined is None:
            return value
        kept = frozenset(pair for pair in value if pair[0] != defined)
        if isinstance(ins, LocalAssign):
            folded = fold_expr(ins.expr, environment(value))
            return kept | {(defined, VARIES if folded is None else folded)}
        return kept | {(defined, VARIES)}


def environment(value: Iterable[Tuple[str, Value]]) -> Dict[str, Value]:
    """A constant-propagation value as a ``fold_expr`` environment."""
    return {reg: val for reg, val in value if val != VARIES}


# ---------------------------------------------------------------------------
# Region analysis (forward, path-sensitive)
# ---------------------------------------------------------------------------


#: One abstract path state: RCU read-side nesting depth and held locks.
RegionState = Tuple[int, FrozenSet[str]]


def lock_acquire_location(ins: Instruction) -> Optional[str]:
    """The lock this instruction acquires under the paper's Section 7
    encoding, if any.

    ``spin_lock(l)`` is an ``xchg_acquire`` constrained to read the lock
    free (``require_read_value=0``); a ``cmpxchg(l, 0, 1)`` is the
    trylock-shaped variant (it acquires only on success).
    """
    if isinstance(ins, Rmw) and ins.require_read_value == 0:
        return static_location(ins.addr)
    if isinstance(ins, CmpXchg) and fold_expr(ins.expected) == 0:
        return static_location(ins.addr)
    return None


def lock_acquire_is_blocking(ins: Instruction) -> bool:
    """True for ``spin_lock``-style acquires (must succeed — re-acquiring
    a held lock self-deadlocks), false for trylock-shaped ``cmpxchg``."""
    return isinstance(ins, Rmw)


def lock_release_location(
    ins: Instruction, lock_locations: FrozenSet[str]
) -> Optional[str]:
    """The lock a ``spin_unlock``-style store releases, if any: a release
    store of 0 to a known lock location."""
    if not isinstance(ins, Store) or ins.tag != RELEASE:
        return None
    loc = static_location(ins.addr)
    if loc is None or loc not in lock_locations:
        return None
    if fold_expr(ins.value) == 0:
        return loc
    return None


def program_lock_locations(cfgs: Iterable[Cfg]) -> FrozenSet[str]:
    """Locations any thread lock-acquires — these are the test's locks."""
    locks: Set[str] = set()
    for cfg in cfgs:
        for _, ins in cfg.instructions():
            loc = lock_acquire_location(ins)
            if loc is not None:
                locks.add(loc)
    return frozenset(locks)


class RegionAnalysis(DataflowAnalysis):
    """Path-sensitive RCU-section and lock-held tracking.

    The abstract value is the *set* of :data:`RegionState` reachable at a
    point — one per path, joined by union.  On acyclic litmus CFGs this
    terminates and is exact: no path is merged away, so "unbalanced on
    some path" is a real path, never a join artefact.
    """

    direction = FORWARD

    def __init__(self, lock_locations: FrozenSet[str] = frozenset()):
        self.lock_locations = lock_locations

    def boundary(self):
        return frozenset({(0, frozenset())})

    def bottom(self):
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer(self, ins: Instruction, value, point: Point):
        if isinstance(ins, Fence):
            if ins.tag == RCU_LOCK:
                return frozenset((d + 1, held) for d, held in value)
            if ins.tag == RCU_UNLOCK:
                # An unlock at depth 0 is reported by the checker; the
                # state recovers to depth 0 so later code is still checked.
                return frozenset((max(d - 1, 0), held) for d, held in value)
            return value
        acquired = lock_acquire_location(ins)
        if acquired is not None:
            taken = frozenset((d, held | {acquired}) for d, held in value)
            if lock_acquire_is_blocking(ins):
                return taken
            # Trylock: both outcomes are real paths.
            return taken | value
        released = lock_release_location(ins, self.lock_locations)
        if released is not None:
            return frozenset((d, held - {released}) for d, held in value)
        return value
