"""The top-level simulator: run a model over a litmus test.

This plays the role of the herd tool (Section 5 of the paper): enumerate
the candidate executions of a test, keep the ones the model allows, and
judge the final-state condition.

The verdicts follow the paper's Table 5 vocabulary:

* for an ``exists`` condition — **Allow** if some allowed execution
  satisfies it, **Forbid** otherwise;
* for ``~exists`` — **Forbid** means the model indeed rules the witness
  out (the test "passes"), **Allow** means the witness is reachable;
* for ``forall`` — **Allow** if every allowed execution satisfies it.

A run interrupted by a :mod:`repro.guard` budget (timeout, candidate
cap, memory ceiling, cancellation) adds a third verdict,
**Inconclusive**: the scanned prefix did not settle the condition.  The
degradation is sound — monotone facts established by the prefix survive
(an ``exists`` witness already found keeps the verdict ``Allow``, a
``forall`` counterexample keeps it ``Forbid``), and only the verdicts
that genuinely needed the unscanned suffix degrade.  The
:class:`RunResult` carries the budget's
:class:`~repro.guard.Interruption` provenance so callers can report
*why* and *how far*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.executions.candidate import CandidateExecution
from repro.executions.enumerate import candidate_executions_sharded
from repro.guard import core as _guard
from repro.guard.journal import SweepJournal
from repro.kernel import config as _config
from repro.litmus.ast import Program
from repro.litmus.outcomes import Exists, Forall, FinalState, NotExists
from repro.model import Model
from repro.obs import core as _obs

ALLOW = "Allow"
FORBID = "Forbid"
INCONCLUSIVE = "Inconclusive"


@dataclass
class RunResult:
    """The outcome of running one model over one litmus test."""

    program: Program
    model_name: str
    #: Total candidate executions enumerated.
    candidates: int
    #: Executions the model allows.
    allowed: int
    #: Allowed executions whose final state satisfies the condition body.
    witnesses: int
    #: Distinct final states of allowed executions.
    states: Set[FinalState] = field(default_factory=set)
    #: One allowed execution matching the condition, if any (kept for
    #: explanation tooling).
    witness_execution: Optional[CandidateExecution] = None
    #: One forbidden execution matching the condition, if any.
    forbidden_witness: Optional[CandidateExecution] = None
    #: Budget-trip provenance when the candidate sweep was cut short;
    #: ``None`` for a complete run.
    interrupted: Optional["_guard.Interruption"] = None

    @property
    def complete(self) -> bool:
        """True when every candidate was scanned (no budget tripped)."""
        return self.interrupted is None

    @property
    def verdict(self) -> str:
        """``Allow``/``Forbid``, or ``Inconclusive`` for an interrupted
        run whose scanned prefix did not settle the condition."""
        condition = self.program.condition
        if condition is None or isinstance(condition, (Exists, NotExists)):
            if self.witnesses > 0:
                return ALLOW  # a witness is decisive even in a prefix
            return FORBID if self.complete else INCONCLUSIVE
        if isinstance(condition, Forall):
            if self.allowed > self.witnesses:
                return FORBID  # a counterexample is decisive
            return ALLOW if self.complete else INCONCLUSIVE
        raise TypeError(f"unknown condition {condition!r}")

    @property
    def observation(self) -> str:
        """herd-style observation summary: Never/Sometimes/Always."""
        if self.witnesses == 0:
            return "Never"
        if self.witnesses == self.allowed:
            return "Always"
        return "Sometimes"

    def describe(self) -> str:
        summary = (
            f"{self.program.name} under {self.model_name}: {self.verdict} "
            f"({self.witnesses} witnesses / {self.allowed} allowed / "
            f"{self.candidates} candidates)"
        )
        if self.interrupted is not None:
            summary += f" [interrupted: {self.interrupted.describe()}]"
        return summary


def _decided(result: RunResult) -> bool:
    """True when no further candidate can change ``result.verdict``.

    Counters only ever grow, so an ``exists``/``~exists`` verdict is
    final once a witness exists (Allow stays Allow), and a ``forall``
    verdict is final once some allowed execution misses the condition
    (``allowed > witnesses`` — Forbid stays Forbid).  The open verdicts
    (no witness yet; all-matching-so-far) genuinely need the full sweep.
    """
    condition = result.program.condition
    if condition is None or isinstance(condition, (Exists, NotExists)):
        return result.witnesses > 0
    return result.allowed > result.witnesses


def run_litmus_many(
    models: List[Model],
    program: Program,
    require_sc_per_location: bool = False,
    keep_states: bool = True,
    shard: int = 0,
    shard_count: int = 1,
    stop_when_decided: bool = False,
    verdict_only: bool = False,
) -> Dict[str, RunResult]:
    """Run several models over one program with a *single* enumeration.

    Candidate enumeration dominates the cost of a run, and candidates are
    model-independent — so judging N models costs one enumeration plus N
    model checks per candidate, not N enumerations.  ``shard``/
    ``shard_count`` restrict the scan to every ``shard_count``-th trace
    combination (the unit :mod:`repro.kernel.parallel` distributes).

    ``stop_when_decided`` ends the candidate sweep as soon as every
    model's *verdict* is final (see :func:`_decided`); counts and state
    sets then cover only the scanned prefix, so the flag stays off
    wherever exact counters matter (``run_litmus``, the sharded parallel
    path) and is enabled by the verdict-table drivers only.

    ``verdict_only`` additionally skips the model check for candidates
    that cannot influence the verdict: an ``exists``/``~exists`` verdict
    is ``witnesses > 0`` and only a condition-matching candidate can
    become a witness, so non-matching candidates need no model check; a
    ``forall`` verdict flips to Forbid only on an *allowed non-matching*
    candidate, so matching candidates need none.  Verdicts are unchanged;
    ``allowed``/``witnesses``/``states`` then cover only the checked
    candidates (``candidates`` stays exact).
    """
    condition = program.condition
    exists_like = condition is None or isinstance(condition, (Exists, NotExists))
    results: List[RunResult] = [
        RunResult(
            program=program,
            model_name=model.name,
            candidates=0,
            allowed=0,
            witnesses=0,
        )
        for model in models
    ]
    interruption: Optional[_guard.Interruption] = None
    with _obs.span("herd.run"):
        try:
            for execution in candidate_executions_sharded(
                program,
                shard,
                shard_count,
                require_sc_per_location=require_sc_per_location,
            ):
                matches = (
                    condition is None or condition.evaluate(execution.final_state)
                )
                for model, result in zip(models, results):
                    result.candidates += 1
                    if verdict_only and (matches if not exists_like else not matches):
                        continue
                    with _obs.span(f"model.{model.name}"):
                        allowed = model.allows(execution)
                    if not allowed:
                        if matches and result.forbidden_witness is None:
                            result.forbidden_witness = execution
                        continue
                    result.allowed += 1
                    if keep_states:
                        result.states.add(execution.final_state)
                    if matches:
                        result.witnesses += 1
                        if result.witness_execution is None:
                            result.witness_execution = execution
                if stop_when_decided and all(map(_decided, results)):
                    if _obs.ENABLED:
                        _obs.count("herd.early_exit")
                    break
        except _guard.GuardStop as stop:
            # A budget tripped at a safepoint: keep the partial counters
            # and degrade the verdicts instead of crashing the run.
            interruption = stop.interruption
            if _obs.ENABLED:
                _obs.count("herd.interrupted")
    if interruption is not None:
        for result in results:
            result.interrupted = interruption
    if _obs.ENABLED:
        for result in results:
            _obs.count(f"herd.{result.model_name}.candidates", result.candidates)
            _obs.count(f"herd.{result.model_name}.allowed", result.allowed)
            _obs.count(f"herd.{result.model_name}.witnesses", result.witnesses)
    return {result.model_name: result for result in results}


def run_litmus(
    model: Model,
    program: Program,
    require_sc_per_location: bool = False,
    keep_states: bool = True,
    jobs: int = 1,
    budget: Optional["_guard.Budget"] = None,
) -> RunResult:
    """Run ``program`` against ``model`` and summarise the results.

    ``require_sc_per_location`` may be set for models known to include the
    Scpv axiom (all models in this package do) to speed up enumeration of
    large tests.  ``jobs > 1`` shards the trace combinations over that
    many worker processes (:mod:`repro.kernel.parallel`); the verdict,
    counts and state set are identical to a sequential run.

    ``budget`` bounds the run (:class:`repro.guard.Budget`); an exhausted
    budget yields a partial :class:`RunResult` whose verdict may be
    ``Inconclusive``.  An already-armed ambient guard
    (:func:`repro.guard.guard`) is honoured without the parameter.
    """
    if jobs > 1:
        from repro.kernel.parallel import run_litmus_parallel

        return run_litmus_parallel(
            model,
            program,
            jobs=jobs,
            require_sc_per_location=require_sc_per_location,
            keep_states=keep_states,
            budget=budget,
        )
    if budget is not None:
        with _guard.guard(budget):
            return run_litmus_many(
                [model],
                program,
                require_sc_per_location=require_sc_per_location,
                keep_states=keep_states,
            )[model.name]
    return run_litmus_many(
        [model],
        program,
        require_sc_per_location=require_sc_per_location,
        keep_states=keep_states,
    )[model.name]


def verdict_row(
    models: List[Model],
    program: Program,
    **kwargs,
) -> Dict[str, str]:
    """One verdict-table row, with the symbolic pre-pass.

    When ``REPRO_STATIC_VERDICT`` is on, each model first consults the
    critical-cycle prover (:func:`repro.analysis.symbolic.
    static_verdict`); statically decided cells skip enumeration
    entirely, and the remaining models share a single candidate sweep.
    The pre-pass is sound — a static Forbid is a proof, a static Allow a
    kernel-confirmed witness — so the row is identical either way (see
    ``tests/test_static_verdicts.py``).
    """
    row: Dict[str, str] = {}
    pending = list(models)
    if _config.static_verdict_enabled():
        from repro.analysis.symbolic import static_verdict

        pending = []
        for model in models:
            verdict = static_verdict(
                model,
                program,
                require_sc_per_location=kwargs.get(
                    "require_sc_per_location", False
                ),
            )
            if verdict is None:
                pending.append(model)
            else:
                row[model.name] = verdict
    if pending:
        results = run_litmus_many(pending, program, **kwargs)
        for model in pending:
            row[model.name] = results[model.name].verdict
    return row


def verdicts(
    models: List[Model],
    programs: List[Program],
    jobs: int = 1,
    journal: Optional[SweepJournal] = None,
    **kwargs,
) -> Dict[str, Dict[str, str]]:
    """Verdict table: ``{test name: {model name: Allow/Forbid}}``.

    Each program is enumerated once, for all models together.  ``jobs > 1``
    distributes whole programs over that many worker processes.

    Only verdicts are exposed, so the candidate sweep early-exits once
    every verdict is final (first witness for ``exists`` tests) and the
    model check is skipped for candidates that cannot influence the
    verdict (``verdict_only``) — part of the kernel-v2 batching, hence
    gated on ``REPRO_KERNEL_VM`` so the opt-out lane reproduces the
    exhaustive scan.  The defaults are resolved *here*, before the
    serial/parallel split, keeping both paths (and their observability
    counters) identical.

    ``journal`` checkpoints each completed row as it lands
    (:class:`repro.guard.SweepJournal`): programs already journaled are
    skipped, so an interrupted sweep resumes instead of restarting.
    ``Inconclusive`` rows are reported but never journaled — they reflect
    the budget, not the test.
    """
    kwargs.setdefault("stop_when_decided", _config.vm_enabled())
    kwargs.setdefault("verdict_only", _config.vm_enabled())
    if jobs > 1 and len(programs) > 1:
        from repro.kernel.parallel import verdicts_parallel

        return verdicts_parallel(
            models, programs, jobs, journal=journal, **kwargs
        )
    table: Dict[str, Dict[str, str]] = {}
    for program in programs:
        if journal is not None:
            done = journal.completed(program.name)
            if done is not None:
                if _obs.ENABLED:
                    _obs.count("guard.journal_skips")
                table[program.name] = done
                continue
        row = verdict_row(models, program, **kwargs)
        table[program.name] = row
        if journal is not None and INCONCLUSIVE not in row.values():
            journal.record(program.name, row)
    return table
