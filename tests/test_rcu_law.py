"""Tests for the fundamental law of RCU (Section 4.1) and its machinery."""

import pytest

from repro.executions import candidate_executions
from repro.litmus import library
from repro.rcu import (
    critical_sections,
    fundamental_law_holds,
    grace_periods,
    rcu_fence,
)
from repro.rcu.law import GP_FIRST, RSCS_FIRST, enlarged_pb, precedes_functions


def witness(name):
    program = library.get(name)
    return next(
        x
        for x in candidate_executions(program)
        if program.condition.evaluate(x.final_state)
    )


def benign(name):
    """An execution NOT matching the exists clause."""
    program = library.get(name)
    return next(
        x
        for x in candidate_executions(program)
        if not program.condition.evaluate(x.final_state)
    )


class TestStructure:
    def test_grace_periods_found(self):
        x = witness("RCU-MP")
        assert len(grace_periods(x)) == 1

    def test_critical_sections_found(self):
        x = witness("RCU-MP")
        ((lock, unlock),) = critical_sections(x)
        assert lock.has_tag("rcu-lock") and unlock.has_tag("rcu-unlock")

    def test_two_of_each(self):
        x = witness("RCU-2GP-2RSCS")
        assert len(grace_periods(x)) == 2
        assert len(critical_sections(x)) == 2

    def test_precedes_function_count(self):
        x = witness("RCU-2GP-2RSCS")
        assert len(list(precedes_functions(x))) == 2 ** 4

    def test_no_rcu_means_single_empty_function(self):
        x = witness("SB+mbs")
        functions = list(precedes_functions(x))
        assert functions == [{}]


class TestRcuFence:
    def test_rscs_first_orders_rscs_before_gp(self):
        x = witness("RCU-MP")
        (rscs,) = critical_sections(x)
        (gp,) = grace_periods(x)
        fence = rcu_fence(x, {(rscs, gp): RSCS_FIRST})
        reads = sorted(
            (e for e in x.events if e.is_read), key=lambda e: e.po_index
        )
        writes = sorted(
            (e for e in x.events if e.is_write and not e.is_init),
            key=lambda e: e.po_index,
        )
        # Every RSCS access is ordered before the post-GP write.
        post_gp_write = max(writes, key=lambda e: e.po_index)
        for read in reads:
            assert (read, post_gp_write) in fence

    def test_gp_first_orders_gp_before_rscs(self):
        x = witness("RCU-MP")
        (rscs,) = critical_sections(x)
        (gp,) = grace_periods(x)
        fence = rcu_fence(x, {(rscs, gp): GP_FIRST})
        pre_gp_write = next(
            e for e in x.events if e.is_write and not e.is_init
            and e.po_index < gp.po_index and e.tid == gp.tid
        )
        for read in (e for e in x.events if e.is_read):
            assert (pre_gp_write, read) in fence


class TestLaw:
    def test_forbidden_execution_violates_law(self):
        # Figure 10's walk-through: neither choice of F avoids a cycle.
        assert not fundamental_law_holds(witness("RCU-MP"))

    def test_benign_execution_satisfies_law(self):
        result = fundamental_law_holds(benign("RCU-MP"))
        assert result
        assert result.witness is not None

    def test_deferred_free_violates_law(self):
        # Figure 11: swapping the reads still leaves the pattern forbidden,
        # "unlike with fences".
        assert not fundamental_law_holds(witness("RCU-deferred-free"))

    def test_one_gp_two_rscs_satisfies_law(self):
        # The rule of thumb: fewer GPs than RSCSes in the cycle is fine.
        assert fundamental_law_holds(witness("RCU-1GP-2RSCS"))

    def test_two_gp_two_rscs_violates_law(self):
        assert not fundamental_law_holds(witness("RCU-2GP-2RSCS"))

    def test_both_branches_of_figure10(self):
        # Follow Section 4.1's case analysis explicitly.
        x = witness("RCU-MP")
        (rscs,) = critical_sections(x)
        (gp,) = grace_periods(x)
        for choice in (RSCS_FIRST, GP_FIRST):
            pb = enlarged_pb(x, {(rscs, gp): choice})
            assert not pb.is_acyclic(), choice

    def test_law_reduces_to_pb_without_rcu(self):
        # With no RSCS/GP the law is just the Pb axiom.
        x = witness("SB+mbs")
        assert not fundamental_law_holds(x)
        x2 = benign("SB+mbs")
        assert fundamental_law_holds(x2)
