"""Round-trip tests for the litmus writer."""

import pytest

from repro.herd import run_litmus
from repro.litmus import library
from repro.litmus.parser import parse_litmus
from repro.litmus.writer import WriteError, write_litmus
from repro.lkmm import LinuxKernelModel


@pytest.fixture(scope="module")
def lkmm():
    return LinuxKernelModel()


class TestRoundTrip:
    @pytest.mark.parametrize(
        "name",
        [
            "MP+wmb+rmb", "SB+mbs", "LB+ctrl+mb", "WRC+po-rel+rmb",
            "RCU-MP", "RCU-deferred-free", "MP+wmb+addr-acq",
            "MP+wmb+rcu-deref", "At-inc", "SB+xchg-relaxed",
            "MP+unlock-acq", "2+2W", "PeterZ", "MP+po-rel+acq",
        ],
    )
    def test_reparse_same_verdict(self, lkmm, name):
        original = library.get(name)
        reparsed = parse_litmus(write_litmus(original))
        assert reparsed.name == original.name
        assert reparsed.num_threads == original.num_threads
        assert reparsed.init == original.init
        a = run_litmus(lkmm, original)
        b = run_litmus(lkmm, reparsed)
        assert a.verdict == b.verdict
        assert a.candidates == b.candidates
        assert a.allowed == b.allowed

    def test_whole_library_serialises(self):
        for name in library.all_names():
            text = write_litmus(library.get(name))
            assert text.startswith(f"C {name}\n")
            assert "exists" in text or "forall" in text

    def test_diy_output_round_trips(self, lkmm):
        from repro.diy import generate

        program = generate(["Rfe", "DpAddrdR", "Fre", "WmbdWW"])
        reparsed = parse_litmus(write_litmus(program))
        a = run_litmus(lkmm, program)
        b = run_litmus(lkmm, reparsed)
        assert a.verdict == b.verdict
        assert a.candidates == b.candidates


class TestPlainAccesses:
    PLAIN_TEXT = (
        "C plain-roundtrip\n{ x=0; y=0; p=&x; }\n"
        "P0(int *x, int *y) { *x = 1; smp_wmb(); WRITE_ONCE(*y, 1); }\n"
        "P1(int *x, int *y, int **p) { int r0 = READ_ONCE(*y); "
        "int r1 = *x; int r2 = *p; int r3 = *r2; }\n"
        "exists (1:r0=1 /\\ 1:r1=0)\n"
    )

    def test_plain_accesses_round_trip(self, lkmm):
        from repro.events import PLAIN

        original = parse_litmus(self.PLAIN_TEXT)
        text = write_litmus(original)
        # Plain accesses keep their bare-dereference spelling.
        assert "*x = 1;" in text
        assert "r1 = *x;" in text
        assert "r3 = *r2;" in text
        assert "READ_ONCE" in text  # marked accesses stay marked
        reparsed = parse_litmus(text)
        a = run_litmus(lkmm, original)
        b = run_litmus(lkmm, reparsed)
        assert a.verdict == b.verdict
        assert a.candidates == b.candidates

    def test_plain_tag_survives_reparse(self):
        from repro.events import PLAIN
        from repro.litmus.ast import Load, Store

        reparsed = parse_litmus(
            write_litmus(parse_litmus(self.PLAIN_TEXT))
        )
        p0, p1 = reparsed.threads
        assert isinstance(p0.body[0], Store) and p0.body[0].tag == PLAIN
        loads = [ins for ins in p1.body if isinstance(ins, Load)]
        assert [load.tag for load in loads] == ["once", PLAIN, PLAIN, PLAIN]


class TestSpellings:
    def test_fences_spelled(self):
        text = write_litmus(library.get("RCU-MP"))
        assert "rcu_read_lock();" in text
        assert "rcu_read_unlock();" in text
        assert "synchronize_rcu();" in text

    def test_rcu_dereference_spelled(self):
        text = write_litmus(library.get("MP+wmb+rcu-deref"))
        assert "rcu_dereference(" in text
        assert "rcu_assign_pointer" not in text  # it's a release store
        assert "smp_store_release(" in text

    def test_spinlock_spelled(self):
        text = write_litmus(library.get("lock-mutex"))
        assert "spin_lock(l);" in text
        # spin_unlock is its Section 7 emulation: a release store of 0.
        assert "smp_store_release(*l, 0);" in text

    def test_pointer_init_spelled(self):
        text = write_litmus(library.get("MP+wmb+addr"))
        assert "p=&z;" in text

    def test_condition_spelled(self):
        text = write_litmus(library.get("MP+wmb+rmb"))
        assert "exists (1:r0=1 /\\ 1:r1=0)" in text

    def test_assume_rejected(self):
        from repro.litmus import dsl
        from repro.litmus.ast import Assume, Const

        program = dsl.program("t", dsl.thread(Assume(Const(1))))
        with pytest.raises(WriteError):
            write_litmus(program)
