"""repro.kernel — the fast execution kernel.

A performance layer under the public ``Relation``/``EventSet``/
``run_litmus`` APIs, with no behavioural change:

* :mod:`repro.kernel.bitrel` — integer-indexed relations: events mapped to
  dense indices once per universe, relations held as adjacency bitset
  rows, operators as word-parallel integer arithmetic;
* :mod:`repro.kernel.skeleton` — per-trace incremental checking: the
  trace-invariant structure of candidate executions, computed once per
  trace combination and shared across all rf×co candidates;
* :mod:`repro.kernel.vm` — the relational bytecode VM: each compiled
  check plan is lowered once to a flat instruction array over numbered
  registers of raw bitset values; trace-invariant registers are computed
  once per skeleton and shared by reference across rf×co siblings
  (``REPRO_KERNEL_VM=1|0``, default on);
* :mod:`repro.kernel.parallel` — a ``multiprocessing`` driver sharding
  trace combinations (and whole programs) over a worker pool, surfaced as
  ``--jobs N`` on the CLIs and ``jobs=N`` on the ``run_litmus``/
  ``verdicts`` APIs; pools persist across programs so spawn and model
  compile costs amortise over a library sweep;
* :mod:`repro.kernel.config` — backend selection
  (``REPRO_RELATION_BACKEND=bitset|frozenset``, default ``bitset``) and
  the incremental/plan/VM switches (``REPRO_INCREMENTAL``,
  ``REPRO_CHECK_PLAN``, ``REPRO_KERNEL_VM``).

The original frozenset implementation is retained as the reference
backend; ``tests/test_kernel_equiv.py`` asserts observational equivalence
between every backend/driver combination.
"""

from repro.kernel.config import (
    BITSET,
    FROZENSET,
    backend,
    incremental_enabled,
    set_backend,
    set_incremental,
    set_vm,
    use_backend,
    use_incremental,
    use_vm,
    vm_enabled,
)

__all__ = [
    "BITSET",
    "FROZENSET",
    "backend",
    "incremental_enabled",
    "set_backend",
    "set_incremental",
    "set_vm",
    "use_backend",
    "use_incremental",
    "use_vm",
    "vm_enabled",
]
