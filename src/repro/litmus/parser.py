"""Parser for herd-style C litmus tests.

The paper's test corpus is written in a subset of C extended with LK
primitives (Section 5).  This module parses that format::

    C MP+wmb+rmb

    {
     x=0;
     y=0;
    }

    P0(int *x, int *y)
    {
        WRITE_ONCE(*x, 1);
        smp_wmb();
        WRITE_ONCE(*y, 1);
    }

    P1(int *x, int *y)
    {
        int r0;
        int r1;

        r0 = READ_ONCE(*y);
        smp_rmb();
        r1 = READ_ONCE(*x);
    }

    exists (1:r0=1 /\\ 1:r1=0)

Supported statements: ONCE/acquire/release accesses, plain accesses, all
fences of Tables 3 and 4, ``xchg`` variants, ``cmpxchg``,
``rcu_dereference`` / ``rcu_assign_pointer``, ``spin_lock`` /
``spin_unlock``, ``if``/``else``, and local register arithmetic.
"""

from __future__ import annotations

import re
from typing import Dict, List, NoReturn, Optional, Tuple

from repro.events import Pointer, Value
from repro.litmus.ast import (
    BinOp,
    CmpXchg,
    Const,
    Expr,
    Fence,
    If,
    Instruction,
    Load,
    LocalAssign,
    Program,
    Reg,
    Rmw,
    Store,
    Thread,
    UnOp,
)
from repro.litmus import dsl
from repro.litmus.outcomes import (
    And,
    Condition,
    Exists,
    Forall,
    LocValue,
    Not,
    NotExists,
    Or,
    RegValue,
)


class ParseError(Exception):
    """Malformed litmus input, with source location when known.

    Renders compiler-style — ``path:line:column: message`` — so editors
    and CI annotations can jump to the offending token.  ``line`` and
    ``column`` are 1-based; any location part may be absent (e.g. a
    missing header has no token to point at).
    """

    def __init__(
        self,
        message: str,
        line: Optional[int] = None,
        column: Optional[int] = None,
        path: Optional[str] = None,
    ):
        super().__init__(message)
        self.message = message
        self.line = line
        self.column = column
        self.path = path

    def __str__(self) -> str:
        parts = []
        if self.path is not None:
            parts.append(str(self.path))
        if self.line is not None:
            parts.append(str(self.line))
            if self.column is not None:
                parts.append(str(self.column))
        if not parts:
            return self.message
        return f"{':'.join(parts)}: {self.message}"


_TOKEN_RE = re.compile(
    r"""
    (?P<comment>//[^\n]*|\(\*.*?\*\)|/\*.*?\*/)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<num>\d+)
  | (?P<op>/\\|\\/|==|!=|<=|>=|&&|\|\||[{}()\[\];,=\*&\+\-<>!~:\|\^])
  | (?P<ws>\s+)
    """,
    re.VERBOSE | re.DOTALL,
)

_HEADER_RE = re.compile(
    r"^\s*(?:(?://|\(\*|/\*).*?\n)*\s*(?:C|LK|Linux)[ \t]+(?P<name>\S+)[ \t]*\n",
    re.DOTALL,
)

#: Fence primitive names recognised as statements.
_FENCES = {
    "smp_mb": dsl.smp_mb,
    "smp_rmb": dsl.smp_rmb,
    "smp_wmb": dsl.smp_wmb,
    "smp_read_barrier_depends": dsl.smp_read_barrier_depends,
    "rcu_read_lock": dsl.rcu_read_lock,
    "rcu_read_unlock": dsl.rcu_read_unlock,
    "synchronize_rcu": dsl.synchronize_rcu,
}

_RMW_NAMES = {"xchg", "xchg_relaxed", "xchg_acquire", "xchg_release"}
_CMPXCHG_NAMES = {
    "cmpxchg": "xchg",
    "cmpxchg_relaxed": "xchg_relaxed",
    "cmpxchg_acquire": "xchg_acquire",
    "cmpxchg_release": "xchg_release",
}
_TYPE_WORDS = {"int", "long", "unsigned", "volatile", "atomic_t", "void", "char"}


def _tokenize(
    text: str, first_line: int = 1
) -> Tuple[List[str], List[Tuple[int, int]]]:
    """Tokens plus the 1-based (line, column) each token starts at."""
    tokens: List[str] = []
    positions: List[Tuple[int, int]] = []
    pos = 0
    line = first_line
    line_start = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(
                f"unexpected character {text[pos]!r}",
                line=line,
                column=pos - line_start + 1,
            )
        start = pos
        pos = match.end()
        group = match.group()
        if match.lastgroup not in ("ws", "comment"):
            tokens.append(group)
            positions.append((line, start - line_start + 1))
        newlines = group.count("\n")
        if newlines:
            line += newlines
            line_start = start + group.rfind("\n") + 1
    return tokens, positions


class _Tokens:
    """A token cursor with one-token lookahead and source positions."""

    def __init__(
        self,
        tokens: List[str],
        positions: Optional[List[Tuple[int, int]]] = None,
    ):
        self._tokens = tokens
        self._positions = (
            positions if positions is not None else [(1, 1)] * len(tokens)
        )
        self._idx = 0

    def _position(self) -> Tuple[Optional[int], Optional[int]]:
        if not self._positions:
            return None, None
        idx = min(self._idx, len(self._positions) - 1)
        return self._positions[idx]

    @property
    def line(self) -> int:
        """Source line of the next (unconsumed) token; the last token's
        line once exhausted."""
        line, _ = self._position()
        return line if line is not None else 1

    @property
    def column(self) -> int:
        _, column = self._position()
        return column if column is not None else 1

    def fail(self, message: str) -> NoReturn:
        """Raise a :class:`ParseError` located at the cursor."""
        line, column = self._position()
        raise ParseError(message, line=line, column=column)

    def peek(self, offset: int = 0) -> Optional[str]:
        idx = self._idx + offset
        return self._tokens[idx] if idx < len(self._tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            self.fail("unexpected end of input")
        self._idx += 1
        return token

    def expect(self, token: str) -> None:
        if self.peek() is None:
            self.fail(f"expected {token!r}, got end of input")
        got = self.next()
        if got != token:
            self._idx -= 1
            self.fail(f"expected {token!r}, got {got!r}")

    def accept(self, token: str) -> bool:
        if self.peek() == token:
            self._idx += 1
            return True
        return False

    @property
    def exhausted(self) -> bool:
        return self._idx >= len(self._tokens)


def parse_litmus(text: str, path: Optional[str] = None) -> Program:
    """Parse a litmus test from its textual form.

    ``path``, when given, is attached to any :class:`ParseError` so the
    error renders as ``path:line:column: message``.  Internal parser
    slips (stray ``KeyError``/``IndexError``/``ValueError``) are
    converted to :class:`ParseError` too — malformed input never escapes
    as an unrelated exception type.
    """
    try:
        return _parse_litmus(text)
    except ParseError as error:
        if error.path is None:
            error.path = path
        raise
    except (KeyError, IndexError, ValueError) as error:
        raise ParseError(
            f"malformed litmus test ({type(error).__name__}: {error})",
            path=path,
        ) from error


def _parse_litmus(text: str) -> Program:
    header = _HEADER_RE.match(text)
    if header is None:
        raise ParseError(
            'litmus test must start with a header line such as "C <name>"',
            line=1,
            column=1,
        )
    name = header.group("name")
    header_lines = text[:header.end()].count("\n")
    tokens = _Tokens(*_tokenize(text[header.end():], first_line=header_lines + 1))

    init: Dict[str, Value] = {}
    if tokens.peek() == "{":
        init = _parse_init(tokens)

    threads: List[Tuple[int, Thread]] = []
    while _is_thread_header(tokens):
        tid, th = _parse_thread(tokens)
        threads.append((tid, th))
    if not threads:
        tokens.fail(f"litmus test {name!r} has no threads")
    threads.sort(key=lambda pair: pair[0])
    expected = list(range(len(threads)))
    if [tid for tid, _ in threads] != expected:
        tokens.fail(f"thread ids must be P0..P{len(threads) - 1}")

    condition: Optional[Condition] = None
    if not tokens.exhausted:
        condition = _parse_condition(tokens)
    if not tokens.exhausted:
        tokens.fail(f"trailing input starting at {tokens.peek()!r}")
    return Program(name, tuple(th for _, th in threads), init, condition)


def _is_thread_header(tokens: _Tokens) -> bool:
    token = tokens.peek()
    return (
        token is not None
        and re.fullmatch(r"P\d+", token) is not None
        and tokens.peek(1) == "("
    )


def _parse_init(tokens: _Tokens) -> Dict[str, Value]:
    tokens.expect("{")
    init: Dict[str, Value] = {}
    while not tokens.accept("}"):
        # Skip type words: "int *p = &x;" or "int x = 1;".
        while tokens.peek() in _TYPE_WORDS:
            tokens.next()
        while tokens.accept("*"):
            pass
        name = tokens.next()
        if tokens.accept("="):
            init[name] = _parse_init_value(tokens)
        else:
            init[name] = 0
        tokens.accept(";")
    return init


def _parse_init_value(tokens: _Tokens) -> Value:
    if tokens.accept("&"):
        return Pointer(tokens.next())
    negative = tokens.accept("-")
    token = tokens.next()
    if re.fullmatch(r"\d+", token):
        return -int(token) if negative else int(token)
    if negative:
        tokens._idx -= 1
        tokens.fail(f"expected a number after '-', got {token!r}")
    # A bare identifier in init position is an address (herd allows "y=x").
    return Pointer(token)


def _parse_thread(tokens: _Tokens) -> Tuple[int, Thread]:
    header = tokens.next()
    tid = int(header[1:])
    tokens.expect("(")
    params: List[str] = []
    while not tokens.accept(")"):
        while tokens.peek() in _TYPE_WORDS:
            tokens.next()
        while tokens.accept("*"):
            pass
        params.append(tokens.next())
        tokens.accept(",")
    body_parser = _ThreadParser(tokens, set(params))
    body = body_parser.parse_block()
    return tid, Thread(tuple(body))


class _ThreadParser:
    """Parses one thread body: statements between braces."""

    def __init__(self, tokens: _Tokens, params: set):
        self.tokens = tokens
        self.params = params
        self.registers: set = set()

    def parse_block(self) -> List[Instruction]:
        self.tokens.expect("{")
        body: List[Instruction] = []
        while not self.tokens.accept("}"):
            body.extend(self.parse_statement())
        return body

    def parse_statement(self) -> List[Instruction]:
        line = self.tokens.line
        instructions = self._parse_statement_inner()
        for instruction in instructions:
            # Nested instructions (If bodies) were stamped by their own
            # parse_statement call; only fill in the outermost ones.
            if instruction.lineno is None:
                object.__setattr__(instruction, "lineno", line)
        return instructions

    def _parse_statement_inner(self) -> List[Instruction]:
        tokens = self.tokens
        token = tokens.peek()
        if token is None:
            tokens.fail("unexpected end of thread body")

        if token == ";":
            tokens.next()
            return []
        if token == "if":
            return [self._parse_if()]
        if token in _TYPE_WORDS:
            return self._parse_declaration()
        if token in _FENCES and tokens.peek(1) == "(":
            tokens.next()
            tokens.expect("(")
            tokens.expect(")")
            tokens.expect(";")
            return [_FENCES[token]()]
        if token in ("WRITE_ONCE", "smp_store_release", "rcu_assign_pointer"):
            return [self._parse_store_call(tokens.next())]
        if token in ("spin_lock", "spin_unlock"):
            tokens.next()
            tokens.expect("(")
            addr = self._parse_address()
            tokens.expect(")")
            tokens.expect(";")
            maker = dsl.spin_lock if token == "spin_lock" else dsl.spin_unlock
            return [maker(addr)]
        if token == "*":
            # Plain store through a pointer: "*x = e;".
            tokens.next()
            addr = self._parse_primary_address()
            tokens.expect("=")
            value = self._parse_expression()
            tokens.expect(";")
            return [Store(addr, value, "plain")]
        # Otherwise: "reg = ..." assignment.
        return self._parse_assignment()

    def _parse_declaration(self) -> List[Instruction]:
        tokens = self.tokens
        while tokens.peek() in _TYPE_WORDS:
            tokens.next()
        while tokens.accept("*"):
            pass
        name = tokens.next()
        self.registers.add(name)
        if tokens.accept(";"):
            return []
        tokens.expect("=")
        return self._finish_register_assignment(name)

    def _parse_assignment(self) -> List[Instruction]:
        tokens = self.tokens
        name = tokens.next()
        self.registers.add(name)
        tokens.expect("=")
        return self._finish_register_assignment(name)

    def _finish_register_assignment(self, register: str) -> List[Instruction]:
        tokens = self.tokens
        token = tokens.peek()
        instruction: Instruction
        if token in ("READ_ONCE", "smp_load_acquire", "rcu_dereference"):
            call = tokens.next()
            tokens.expect("(")
            addr = self._parse_address()
            tokens.expect(")")
            tokens.expect(";")
            if call == "READ_ONCE":
                instruction = Load(register, addr, "once")
            elif call == "smp_load_acquire":
                instruction = Load(register, addr, "acquire")
            else:
                instruction = Load(register, addr, "once", rb_dep=True)
            return [instruction]
        if token in _RMW_NAMES:
            variant = tokens.next()
            tokens.expect("(")
            addr = self._parse_address()
            tokens.expect(",")
            value = self._parse_expression()
            tokens.expect(")")
            tokens.expect(";")
            return [Rmw(register, addr, value, variant)]
        if token in _CMPXCHG_NAMES:
            variant = _CMPXCHG_NAMES[tokens.next()]
            tokens.expect("(")
            addr = self._parse_address()
            tokens.expect(",")
            expected = self._parse_expression()
            tokens.expect(",")
            new_value = self._parse_expression()
            tokens.expect(")")
            tokens.expect(";")
            return [CmpXchg(register, addr, expected, new_value, variant)]
        if token == "*":
            tokens.next()
            addr = self._parse_primary_address()
            tokens.expect(";")
            return [Load(register, addr, "plain")]
        value = self._parse_expression()
        tokens.expect(";")
        return [LocalAssign(register, value)]

    def _parse_store_call(self, call: str) -> Store:
        tokens = self.tokens
        tokens.expect("(")
        addr = self._parse_address()
        tokens.expect(",")
        value = self._parse_expression()
        tokens.expect(")")
        tokens.expect(";")
        tag = "once" if call == "WRITE_ONCE" else "release"
        return Store(addr, value, tag)

    def _parse_if(self) -> If:
        tokens = self.tokens
        tokens.expect("if")
        tokens.expect("(")
        cond = self._parse_expression()
        tokens.expect(")")
        then = self._parse_branch()
        orelse: List[Instruction] = []
        if tokens.accept("else"):
            orelse = self._parse_branch()
        return If(cond, tuple(then), tuple(orelse))

    def _parse_branch(self) -> List[Instruction]:
        if self.tokens.peek() == "{":
            return self.parse_block()
        return self.parse_statement()

    # -- addresses and expressions ------------------------------------------

    def _parse_address(self) -> Expr:
        """An address argument: ``*x``, ``x``, ``&x``, or ``*r`` for a
        register holding a pointer."""
        tokens = self.tokens
        if tokens.accept("*"):
            return self._parse_primary_address()
        if tokens.accept("&"):
            return Const(Pointer(tokens.next()))
        return self._parse_primary_address()

    def _parse_primary_address(self) -> Expr:
        tokens = self.tokens
        if tokens.accept("("):
            # A computed address, e.g. the diy false dependency
            # "*((&y + (r0 & 0)))".
            addr = self._parse_expression()
            tokens.expect(")")
            return addr
        name = tokens.next()
        if name in self.registers:
            return Reg(name)
        # Parameters and undeclared names denote shared locations.
        return Const(Pointer(name))

    def _parse_expression(self) -> Expr:
        return self._parse_binary(0)

    _PRECEDENCE = [
        ["||"],
        ["&&"],
        ["|"],
        ["^"],
        ["&"],
        ["==", "!="],
        ["<", ">", "<=", ">="],
        ["+", "-"],
    ]

    def _parse_binary(self, level: int) -> Expr:
        if level >= len(self._PRECEDENCE):
            return self._parse_unary()
        lhs = self._parse_binary(level + 1)
        while self.tokens.peek() in self._PRECEDENCE[level]:
            op = self.tokens.next()
            rhs = self._parse_binary(level + 1)
            lhs = BinOp(op, lhs, rhs)
        return lhs

    def _parse_unary(self) -> Expr:
        tokens = self.tokens
        if tokens.accept("!"):
            return UnOp("!", self._parse_unary())
        if tokens.accept("-"):
            return UnOp("-", self._parse_unary())
        if tokens.accept("&"):
            return Const(Pointer(tokens.next()))
        if tokens.accept("("):
            expr = self._parse_expression()
            tokens.expect(")")
            return expr
        token = tokens.next()
        if re.fullmatch(r"\d+", token):
            return Const(int(token))
        if token in self.registers:
            return Reg(token)
        # A parameter used as a value is the pointer itself.
        return Const(Pointer(token))


# ---------------------------------------------------------------------------
# Final-state conditions
# ---------------------------------------------------------------------------


def _parse_condition(tokens: _Tokens) -> Condition:
    negated = tokens.accept("~")
    quantifier = tokens.next()
    if quantifier not in ("exists", "forall"):
        tokens._idx -= 1
        tokens.fail(f"expected exists/forall, got {quantifier!r}")
    body = _parse_cond_or(tokens)
    if quantifier == "forall":
        if negated:
            tokens.fail("~forall is not supported")
        return Forall(body)
    return NotExists(body) if negated else Exists(body)


def _parse_cond_or(tokens: _Tokens) -> Condition:
    lhs = _parse_cond_and(tokens)
    while tokens.accept("\\/"):
        rhs = _parse_cond_and(tokens)
        lhs = Or(lhs, rhs)
    return lhs


def _parse_cond_and(tokens: _Tokens) -> Condition:
    lhs = _parse_cond_atom(tokens)
    while tokens.accept("/\\"):
        rhs = _parse_cond_atom(tokens)
        lhs = And(lhs, rhs)
    return lhs


def _parse_cond_atom(tokens: _Tokens) -> Condition:
    if tokens.accept("~") or tokens.accept("not"):
        return Not(_parse_cond_atom(tokens))
    if tokens.accept("("):
        cond = _parse_cond_or(tokens)
        tokens.expect(")")
        return cond
    first = tokens.next()
    if re.fullmatch(r"\d+", first) and tokens.peek() == ":":
        tokens.expect(":")
        register = tokens.next()
        tokens.expect("=")
        return RegValue(int(first), register, _parse_cond_value(tokens))
    tokens.expect("=")
    return LocValue(first, _parse_cond_value(tokens))


def _parse_cond_value(tokens: _Tokens) -> Value:
    if tokens.accept("&"):
        return Pointer(tokens.next())
    negative = tokens.accept("-")
    token = tokens.next()
    if re.fullmatch(r"\d+", token):
        return -int(token) if negative else int(token)
    if negative:
        tokens._idx -= 1
        tokens.fail(f"expected a number after '-', got {token!r}")
    return Pointer(token)
