"""Tests for per-thread semantics: traces, dependencies, value sets."""

import pytest

from repro.events import FENCE, Pointer, READ, WRITE
from repro.litmus import dsl
from repro.litmus.ast import Assume, BinOp, Const, Reg, Thread, UnOp
from repro.executions.thread_sem import (
    SemanticsError,
    enumerate_thread_traces,
    possible_value_sets,
)


def traces(body, values):
    return enumerate_thread_traces(Thread(tuple(body)), values)


class TestStraightLine:
    def test_single_write(self):
        (trace,) = traces([dsl.write_once("x", 1)], {"x": {0, 1}})
        (event,) = trace.events
        assert event.kind == WRITE and event.loc == "x" and event.value == 1

    def test_read_branches_over_values(self):
        result = traces([dsl.read_once("r0", "x")], {"x": {0, 1, 2}})
        assert len(result) == 3
        assert sorted(t.events[0].value for t in result) == [0, 1, 2]

    def test_final_registers(self):
        result = traces([dsl.read_once("r0", "x")], {"x": {7}})
        assert result[0].final_regs == {"r0": 7}

    def test_fence_emits_event(self):
        (trace,) = traces([dsl.smp_mb()], {})
        assert trace.events[0].kind == FENCE
        assert trace.events[0].tag == "mb"

    def test_local_assign_no_event(self):
        (trace,) = traces(
            [dsl.assign("r0", 5), dsl.write_once("x", "r0")], {"x": {0}}
        )
        assert len(trace.events) == 1
        assert trace.events[0].value == 5


class TestDependencies:
    def test_data_dependency(self):
        result = traces(
            [dsl.read_once("r0", "x"), dsl.write_once("y", "r0")],
            {"x": {0, 1}, "y": {0}},
        )
        for trace in result:
            write = trace.events[1]
            assert write.data_deps == {0}
            assert write.value == trace.events[0].value

    def test_address_dependency(self):
        result = traces(
            [dsl.read_once("r0", "p"), dsl.read_once("r1", dsl.reg("r0"))],
            {"p": {Pointer("x")}, "x": {0}},
        )
        (trace,) = result
        dependent = trace.events[1]
        assert dependent.loc == "x"
        assert dependent.addr_deps == {0}

    def test_control_dependency_extends_past_join(self):
        body = [
            dsl.read_once("r0", "x"),
            dsl.if_then(dsl.eq("r0", 1), [dsl.write_once("y", 1)]),
            dsl.write_once("z", 2),
        ]
        result = traces(body, {"x": {0, 1}, "y": {0}, "z": {0}})
        taken = next(t for t in result if t.events[0].value == 1)
        # Both the write in the branch and the one after the join carry the
        # control dependency.
        assert taken.events[1].ctrl_deps == {0}
        assert taken.events[2].ctrl_deps == {0}

    def test_untaken_branch_produces_no_events(self):
        body = [
            dsl.read_once("r0", "x"),
            dsl.if_then(dsl.eq("r0", 1), [dsl.write_once("y", 1)]),
        ]
        result = traces(body, {"x": {0, 1}, "y": {0}})
        untaken = next(t for t in result if t.events[0].value == 0)
        assert len(untaken.events) == 1

    def test_arithmetic_preserves_taint(self):
        body = [
            dsl.read_once("r0", "x"),
            dsl.write_once("y", dsl.add("r0", 1)),
        ]
        result = traces(body, {"x": {0}, "y": {0}})
        assert result[0].events[1].data_deps == {0}
        assert result[0].events[1].value == 1


class TestRmw:
    def test_xchg_full_fences(self):
        (trace,) = traces([dsl.xchg("r0", "x", 1)], {"x": {0}})
        kinds = [e.kind for e in trace.events]
        tags = [e.tag for e in trace.events]
        assert kinds == [FENCE, READ, WRITE, FENCE]
        assert tags == ["mb", "once", "once", "mb"]
        assert trace.rmw_pairs == ((1, 2),)

    def test_xchg_relaxed_no_fences(self):
        (trace,) = traces([dsl.xchg_relaxed("r0", "x", 1)], {"x": {0}})
        assert [e.kind for e in trace.events] == [READ, WRITE]

    def test_xchg_acquire_tags(self):
        (trace,) = traces([dsl.xchg_acquire("r0", "x", 1)], {"x": {0}})
        assert trace.events[0].tag == "acquire"
        assert trace.events[1].tag == "once"

    def test_xchg_release_tags(self):
        (trace,) = traces([dsl.xchg_release("r0", "x", 1)], {"x": {0}})
        assert trace.events[1].tag == "release"

    def test_increment_uses_read_value(self):
        (a, b) = traces([dsl.atomic_inc_return("r0", "x")], {"x": {0, 5}})
        read_to_written = {t.events[1].value: t.events[2].value for t in (a, b)}
        assert read_to_written == {0: 1, 5: 6}

    def test_spin_lock_requires_free(self):
        result = traces([dsl.spin_lock("l")], {"l": {0, 1}})
        assert len(result) == 1  # only the read-0 branch survives
        assert result[0].events[0].value == 0
        assert result[0].events[1].value == 1

    def test_cmpxchg_success_and_failure(self):
        result = traces([dsl.cmpxchg("r0", "x", 0, 1)], {"x": {0, 3}})
        # Success path (read 0): fences + read + write.
        success = next(t for t in result if t.final_regs["r0"] == 0)
        assert any(e.kind == WRITE for e in success.events)
        # Failure path (read 3): no write event.
        failure = next(t for t in result if t.final_regs["r0"] == 3)
        assert not any(e.kind == WRITE for e in failure.events)


class TestAssume:
    def test_assume_false_discards_trace(self):
        assert traces([Assume(Const(0))], {}) == []

    def test_assume_true_keeps_trace(self):
        assert len(traces([Assume(Const(1))], {})) == 1

    def test_assume_filters_read_values(self):
        body = [
            dsl.read_once("r0", "x"),
            Assume(BinOp("==", Reg("r0"), Const(1))),
        ]
        result = traces(body, {"x": {0, 1, 2}})
        assert len(result) == 1
        assert result[0].final_regs["r0"] == 1


class TestErrors:
    def test_non_pointer_address_rejected(self):
        from repro.litmus.ast import Load, Const as C

        with pytest.raises(SemanticsError):
            traces([Load("r0", C(5), "once")], {})


class TestValueSets:
    def test_constants_and_init(self):
        program = dsl.program(
            "t",
            dsl.thread(dsl.write_once("x", 1)),
            dsl.thread(dsl.write_once("x", 2)),
            init={"x": 0},
        )
        values = possible_value_sets(program)
        assert values["x"] == {0, 1, 2}

    def test_copied_values_reach_fixpoint(self):
        program = dsl.program(
            "t",
            dsl.thread(dsl.read_once("r0", "x"), dsl.write_once("y", "r0")),
            dsl.thread(dsl.write_once("x", 7)),
        )
        values = possible_value_sets(program)
        assert values["y"] == {0, 7}

    def test_pointer_values(self):
        program = dsl.program(
            "t",
            dsl.thread(dsl.write_once("p", dsl.ptr("x"))),
            init={"p": dsl.ptr("z"), "x": 0, "z": 0},
        )
        values = possible_value_sets(program)
        assert values["p"] == {Pointer("z"), Pointer("x")}
