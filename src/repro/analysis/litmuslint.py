"""Candidate-independent lint for litmus programs.

These checks catch the silent typos that make a litmus test vacuous or
misleading without ever failing to parse or run:

* ``condition-unknown-register`` / ``condition-unknown-thread`` /
  ``condition-unknown-location`` — the final-state condition mentions a
  register, thread, or location the program never defines, so the
  condition can never match the intended outcome;
* ``plain-race`` — a heuristic: a plain (non-``ONCE``) access to a
  location that another thread accesses conflictingly.  This is the
  syntactic shadow of the execution-level race detector
  (:mod:`repro.analysis.races`): it cannot see the orderings fences
  provide, so it over-approximates — use ``repro-herd --check-races`` for
  the precise verdict;
* ``dangling-fence`` — an ordering fence (``smp_mb``, ``smp_rmb``,
  ``smp_wmb``, ``smp_read_barrier_depends``) with no memory access on one
  side of it in its thread, which orders nothing (the RCU markers are
  exempt: an ``rcu_read_lock()`` legitimately opens a thread).

:func:`lint_program` also runs the path-sensitive checkers from
:mod:`repro.analysis.flow.checkers`: RCU discipline, lock discipline,
fragile dependencies, and the dataflow-precise ``uninitialized-read`` /
``uninit-register-read`` / ``dead-store`` checks (which replaced the old
single-pass heuristics here).

No candidate executions are enumerated anywhere — linting the whole
library is instant.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.events import PLAIN, Pointer, RB_DEP, MB, RMB, WMB
from repro.litmus.ast import (
    CmpXchg,
    Const,
    Expr,
    Fence,
    If,
    Instruction,
    Load,
    LocalAssign,
    Program,
    Rmw,
    RMW_VARIANTS,
    Store,
)
from repro.litmus.outcomes import (
    And,
    Condition,
    Exists,
    Forall,
    LocValue,
    Not,
    NotExists,
    Or,
    RegValue,
)
from repro.analysis.findings import Finding
from repro.analysis.flow.checkers import lint_program_flow

#: Fence tags that exist only to order surrounding accesses.
_ORDERING_FENCES = frozenset({MB, RMB, WMB, RB_DEP})


def lint_program(program: Program) -> List[Finding]:
    """Lint one litmus program; returns the findings (empty if clean).

    Runs the syntactic checks of this module and every path-sensitive
    checker of :mod:`repro.analysis.flow.checkers`.
    """
    linter = _ProgramLinter(program)
    findings = linter.run()
    findings.extend(lint_program_flow(program))
    return findings


def lint_library(names: Optional[Sequence[str]] = None) -> Dict[str, List[Finding]]:
    """Lint named library tests (default: the whole library)."""
    from repro.litmus import library

    return {
        name: lint_program(library.get(name))
        for name in (names if names is not None else library.all_names())
    }


class _Access:
    """A statically-known access: (tid, is_write, tag)."""

    __slots__ = ("tid", "is_write", "tag")

    def __init__(self, tid: int, is_write: bool, tag: str):
        self.tid = tid
        self.is_write = is_write
        self.tag = tag


class _ProgramLinter:
    def __init__(self, program: Program):
        self.program = program
        self.findings: List[Finding] = []
        #: Static accesses per location (only Const-pointer addresses; an
        #: access through a register-held pointer has no static location).
        self.accesses: Dict[str, List[_Access]] = {}
        self.has_dynamic_store = False
        self.has_dynamic_load = False
        #: Per thread: registers assigned anywhere in the thread.
        self.assigned: List[Set[str]] = []

    def _report(
        self, category: str, message: str, line: Optional[int] = None
    ) -> None:
        self.findings.append(
            Finding.of(self.program.name, category, message, line=line)
        )

    def run(self) -> List[Finding]:
        for tid, thread in enumerate(self.program.threads):
            self.assigned.append(set())
            self._walk_body(tid, thread.body)
            self._check_fences(tid, thread.body)
        self._check_condition()
        self._check_plain_races()
        return self.findings

    # -- collection ------------------------------------------------------

    def _static_loc(self, addr: Expr) -> Optional[str]:
        if isinstance(addr, Const) and isinstance(addr.value, Pointer):
            return addr.value.loc
        return None

    def _record_access(
        self, tid: int, addr: Expr, is_write: bool, tag: str
    ) -> None:
        loc = self._static_loc(addr)
        if loc is None:
            if is_write:
                self.has_dynamic_store = True
            else:
                self.has_dynamic_load = True
            return
        self.accesses.setdefault(loc, []).append(_Access(tid, is_write, tag))

    def _walk_body(self, tid: int, body: Sequence[Instruction]) -> None:
        for ins in body:
            if isinstance(ins, Load):
                self._record_access(tid, ins.addr, False, ins.tag)
                self.assigned[tid].add(ins.reg)
            elif isinstance(ins, Store):
                self._record_access(tid, ins.addr, True, ins.tag)
            elif isinstance(ins, Rmw):
                self.assigned[tid].add(ins.reg)
                self._record_access(tid, ins.addr, False, ins.read_tag)
                self._record_access(tid, ins.addr, True, ins.write_tag)
            elif isinstance(ins, CmpXchg):
                self.assigned[tid].add(ins.reg)
                read_tag, write_tag, _ = RMW_VARIANTS[ins.variant]
                self._record_access(tid, ins.addr, False, read_tag)
                self._record_access(tid, ins.addr, True, write_tag)
            elif isinstance(ins, LocalAssign):
                self.assigned[tid].add(ins.reg)
            elif isinstance(ins, If):
                self._walk_body(tid, ins.then)
                self._walk_body(tid, ins.orelse)

    # -- checks ----------------------------------------------------------

    def _check_condition(self) -> None:
        condition = self.program.condition
        if condition is None:
            return
        known_locs = set(self.program.init) | set(self.accesses)
        num_threads = self.program.num_threads
        for tid, reg in _condition_registers(condition):
            if tid >= num_threads:
                self._report(
                    "condition-unknown-thread",
                    f"condition mentions thread {tid}, but the test has "
                    f"only P0..P{num_threads - 1}",
                )
            elif reg not in self.assigned[tid]:
                self._report(
                    "condition-unknown-register",
                    f"condition mentions {tid}:{reg}, but P{tid} never "
                    f"assigns {reg!r}",
                )
        for loc in _condition_locations(condition):
            if loc not in known_locs and not self.has_dynamic_store:
                self._report(
                    "condition-unknown-location",
                    f"condition mentions location {loc!r}, which the "
                    "program neither initialises nor accesses",
                )

    def _check_plain_races(self) -> None:
        for loc, accesses in sorted(self.accesses.items()):
            plains = [a for a in accesses if a.tag == PLAIN]
            for plain in plains:
                conflicting = [
                    other
                    for other in accesses
                    if other.tid != plain.tid
                    and (other.is_write or plain.is_write)
                ]
                if conflicting:
                    kind = "write" if plain.is_write else "read"
                    self._report(
                        "plain-race",
                        f"plain {kind} of {loc!r} on P{plain.tid} may race "
                        f"with P{conflicting[0].tid} (syntactic check; run "
                        "the race detector for the execution-level verdict)",
                    )
                    break  # one finding per location is enough

    def _check_fences(self, tid: int, body: Sequence[Instruction]) -> None:
        flat = _flatten(body)
        for index, ins in enumerate(flat):
            if not isinstance(ins, Fence) or ins.tag not in _ORDERING_FENCES:
                continue
            before = any(_is_access(prior) for prior in flat[:index])
            after = any(_is_access(later) for later in flat[index + 1:])
            if not before or not after:
                side = "before" if not before else "after"
                self._report(
                    "dangling-fence",
                    f"P{tid} has an {ins.tag} fence with no memory access "
                    f"{side} it — it orders nothing",
                    line=ins.lineno,
                )


def _flatten(body: Sequence[Instruction]) -> List[Instruction]:
    """Linearise a body; If contributes both branches (presence check)."""
    out: List[Instruction] = []
    for ins in body:
        if isinstance(ins, If):
            out.extend(_flatten(ins.then))
            out.extend(_flatten(ins.orelse))
        else:
            out.append(ins)
    return out


def _is_access(ins: Instruction) -> bool:
    return isinstance(ins, (Load, Store, Rmw, CmpXchg))


def _condition_registers(
    condition: Optional[Condition],
) -> List[Tuple[int, str]]:
    out: List[Tuple[int, str]] = []
    _walk_condition(condition, out, [])
    return out


def _condition_locations(condition: Optional[Condition]) -> List[str]:
    out: List[str] = []
    _walk_condition(condition, [], out)
    return out


def _walk_condition(
    condition: Optional[Condition],
    regs: List[Tuple[int, str]],
    locs: List[str],
) -> None:
    if condition is None:
        return
    if isinstance(condition, (Exists, NotExists, Forall)):
        _walk_condition(condition.body, regs, locs)
    elif isinstance(condition, (And, Or)):
        _walk_condition(condition.lhs, regs, locs)
        _walk_condition(condition.rhs, regs, locs)
    elif isinstance(condition, Not):
        _walk_condition(condition.operand, regs, locs)
    elif isinstance(condition, RegValue):
        regs.append((condition.tid, condition.reg))
        if isinstance(condition.value, Pointer):
            locs.append(condition.value.loc)
    elif isinstance(condition, LocValue):
        locs.append(condition.loc)
        if isinstance(condition.value, Pointer):
            locs.append(condition.value.loc)
