"""Static analysis over models, litmus tests, and executions.

The passes, all new correctness tooling on top of the paper's stack:

* :mod:`repro.analysis.races` — an execution-level data-race detector:
  conflicting plain accesses unordered by an LKMM-derived happens-before,
  in the spirit of the real LKMM's plain-access extension (the paper's
  model covers marked accesses only);
* :mod:`repro.analysis.catlint` — candidate-independent lint for cat
  models (undefined identifiers, unknown base sets, unused or shadowing
  ``let`` bindings, duplicate check names, set/relation sort inference,
  empty-by-construction intersections);
* :mod:`repro.analysis.litmuslint` — lint for litmus programs
  (conditions naming unknown registers or locations, syntactic
  plain-race heuristic, dangling fences);
* :mod:`repro.analysis.flow` — an intraprocedural dataflow framework
  (CFGs, a generic worklist solver, reaching definitions / liveness /
  constant propagation / region analysis) and the path-sensitive
  checkers on top: RCU discipline, spinlock discipline, fragile
  compiler-breakable dependencies, precise uninitialised-read and
  dead-store detection.

Every pass reports :class:`~repro.analysis.findings.Finding` values with
stable codes and severities; the ``repro-lint`` command-line tool
(:mod:`repro.tools.cli`) drives them all and exits non-zero only on
error-severity findings.  ``repro-herd --check-races`` drives the race
detector interactively.
"""

from repro.analysis.findings import (
    CATEGORIES,
    ERROR,
    Finding,
    INFO,
    WARNING,
    count_errors,
    describe_findings,
    findings_to_json,
    findings_to_sarif,
)
from repro.analysis.catlint import (
    lint_all_models,
    lint_cat,
    lint_cat_path,
    lint_cat_source,
)
from repro.analysis.litmuslint import lint_library, lint_program
from repro.analysis.flow import (
    Cfg,
    build_cfg,
    check_dataflow,
    check_dependencies,
    check_locks,
    check_rcu,
    lint_program_flow,
    solve,
)
from repro.analysis.races import (
    RACE_FREE,
    RACY,
    RaceReport,
    check_races,
    classify_library,
    race_order,
    races_in,
)

__all__ = [
    "CATEGORIES",
    "ERROR",
    "Finding",
    "INFO",
    "WARNING",
    "count_errors",
    "describe_findings",
    "findings_to_json",
    "findings_to_sarif",
    "lint_all_models",
    "lint_cat",
    "lint_cat_path",
    "lint_cat_source",
    "lint_library",
    "lint_program",
    "Cfg",
    "build_cfg",
    "check_dataflow",
    "check_dependencies",
    "check_locks",
    "check_rcu",
    "lint_program_flow",
    "solve",
    "RACE_FREE",
    "RACY",
    "RaceReport",
    "check_races",
    "classify_library",
    "race_order",
    "races_in",
]
