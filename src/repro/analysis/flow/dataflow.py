"""A generic forward/backward dataflow solver over litmus CFGs.

An analysis supplies a small join-semilattice of abstract values (anything
with ``==`` — the implementations here use frozensets and tuples) and a
transfer function per instruction; the solver computes the least fixpoint
of block-in/block-out values by worklist iteration.  Litmus CFGs are
acyclic (see :mod:`repro.analysis.flow.cfg`), so the fixpoint is reached
in a single pass over the topologically sorted block list — the worklist
loop is kept anyway so the solver stays correct should cyclic CFGs ever
appear (e.g. genuine loops instead of bounded unrolling).

Program points use the convention of :data:`repro.analysis.flow.cfg.Point`:
a block's straight-line instructions occupy indices ``0..n-1`` and its
branch terminator (whose *condition* is evaluated in this block) index
``n``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Tuple, TypeVar

from repro.analysis.flow.cfg import Cfg, Point
from repro.litmus.ast import If, Instruction

V = TypeVar("V")

FORWARD = "forward"
BACKWARD = "backward"


class DataflowAnalysis:
    """Base class for analyses.  Subclasses define:

    * ``direction`` — :data:`FORWARD` or :data:`BACKWARD`;
    * :meth:`boundary` — the value at the entry (forward) or exit
      (backward) of the graph;
    * :meth:`bottom` — the identity of :meth:`join` (the value of an
      unreached block);
    * :meth:`join` — the lattice join (must be monotone and commutative);
    * :meth:`transfer` — the effect of one instruction.  Branch
      terminators (``If``) are passed through it too, modelling the
      *evaluation of the condition* only — their arms are separate blocks.
    """

    direction: str = FORWARD

    def boundary(self):
        raise NotImplementedError

    def bottom(self):
        raise NotImplementedError

    def join(self, a, b):
        raise NotImplementedError

    def transfer(self, instruction: Instruction, value, point: Point):
        raise NotImplementedError


class DataflowResult:
    """Fixpoint values per block, plus per-instruction reconstruction."""

    def __init__(
        self,
        cfg: Cfg,
        analysis: DataflowAnalysis,
        block_in: Dict[int, object],
        block_out: Dict[int, object],
    ):
        self.cfg = cfg
        self.analysis = analysis
        #: Value at block entry (forward) — for a backward analysis this
        #: is the value *after* the block's last instruction has been
        #: considered, i.e. the backward-flow "output" at the block top.
        self.block_in = block_in
        self.block_out = block_out

    def states(self) -> Iterator[Tuple[Point, Instruction, object]]:
        """Per-instruction states, in topological block order.

        Forward analyses yield the value *before* each instruction;
        backward analyses the value *after* it (e.g. liveness yields the
        live-out set of each instruction).  Either is exactly what the
        corresponding checkers need to judge the instruction.
        """
        forward = self.analysis.direction == FORWARD
        for block in self.cfg.blocks:
            points = list(_block_points(block))
            if forward:
                value = self.block_in[block.bid]
                for point, ins in points:
                    yield point, ins, value
                    value = self.analysis.transfer(ins, value, point)
            else:
                value = self.block_out[block.bid]
                for point, ins in reversed(points):
                    yield point, ins, value
                    value = self.analysis.transfer(ins, value, point)

    def at_exit(self):
        """The value flowing out of the graph: the exit block's out-value
        (forward) or in-value (backward)."""
        if self.analysis.direction == FORWARD:
            return self.block_out[self.cfg.exit.bid]
        return self.block_in[self.cfg.entry.bid]


def _block_points(block) -> Iterator[Tuple[Point, Instruction]]:
    for idx, ins in enumerate(block.instructions):
        yield (block.bid, idx), ins
    if block.branch is not None:
        yield (block.bid, len(block.instructions)), block.branch


def _transfer_block(analysis: DataflowAnalysis, block, value):
    points = list(_block_points(block))
    if analysis.direction == BACKWARD:
        points = list(reversed(points))
    for point, ins in points:
        value = analysis.transfer(ins, value, point)
    return value


def infeasible_edges(cfg: Cfg) -> frozenset:
    """Branch edges that can never be taken at run time, as
    ``(source bid, target bid)`` pairs, plus every edge out of a block
    those prune from the graph entirely.

    A branch whose condition folds to a constant — including through the
    dependency-breaking identities of :func:`fold_expr`, which hold in
    every execution — always takes the same arm; the other arm's edge
    carries no run-time state.  Blocks all of whose incoming edges are
    infeasible are unreachable, so their outgoing edges are infeasible
    too (one topological pass suffices: the CFG is a DAG with ids
    increasing along edges).
    """
    # Local import: analyses.py imports this module at load time.
    from repro.analysis.flow.analyses import fold_expr

    dead = set()
    for block in cfg.blocks:
        if block.bid != cfg.entry.bid and block.preds and all(
            (pred, block.bid) in dead for pred in block.preds
        ):
            dead.update((block.bid, succ) for succ in block.succs)
            continue
        if block.branch is not None:
            value = fold_expr(block.branch.cond)
            if value is not None:
                untaken = 1 if value else 0
                dead.add((block.bid, block.succs[untaken]))
    return frozenset(dead)


def solve(cfg: Cfg, analysis: DataflowAnalysis) -> DataflowResult:
    """Run ``analysis`` to fixpoint over ``cfg``.

    Edges reported by :func:`infeasible_edges` carry no state in either
    direction, so values joined at a block come only from its *feasible*
    inputs; unreachable blocks keep the analysis bottom."""
    dead = infeasible_edges(cfg)
    forward = analysis.direction == FORWARD
    if forward:
        boundary_bid = cfg.entry.bid
        order = list(cfg.blocks)
        inputs = lambda block: [  # noqa: E731 - tiny local alias
            p for p in block.preds if (p, block.bid) not in dead
        ]
    else:
        boundary_bid = cfg.exit.bid
        order = list(reversed(cfg.blocks))
        inputs = lambda block: [  # noqa: E731
            s for s in block.succs if (block.bid, s) not in dead
        ]

    # block_in is the value entering the block in *flow* direction:
    # from predecessors for forward analyses, successors for backward.
    block_in = {b.bid: analysis.bottom() for b in cfg.blocks}
    block_out = {b.bid: analysis.bottom() for b in cfg.blocks}
    block_in[boundary_bid] = analysis.boundary()
    block_out[boundary_bid] = _transfer_block(
        analysis, cfg.block(boundary_bid), block_in[boundary_bid]
    )

    changed = True
    while changed:
        changed = False
        for block in order:
            if block.bid == boundary_bid:
                continue
            value = analysis.bottom()
            for source in inputs(block):
                value = analysis.join(value, block_out[source])
            out = _transfer_block(analysis, block, value)
            if value != block_in[block.bid] or out != block_out[block.bid]:
                block_in[block.bid] = value
                block_out[block.bid] = out
                changed = True

    if forward:
        return DataflowResult(cfg, analysis, block_in, block_out)
    # Present backward results in program orientation: block_in holds the
    # value at the block's *top* (after the backward pass through it).
    return DataflowResult(
        cfg,
        analysis,
        block_in=block_out,
        block_out=block_in,
    )
