"""Tests for the herd-style C litmus parser."""

import pytest

from repro.events import Pointer
from repro.litmus.ast import (
    BinOp,
    CmpXchg,
    Const,
    Fence,
    If,
    Load,
    LocalAssign,
    Reg,
    Rmw,
    Store,
)
from repro.litmus.outcomes import (
    And,
    Exists,
    Forall,
    LocValue,
    Not,
    NotExists,
    Or,
    RegValue,
)
from repro.litmus.parser import ParseError, parse_litmus

MP = """
C MP+wmb+rmb
{ x=0; y=0; }
P0(int *x, int *y)
{
    WRITE_ONCE(*x, 1);
    smp_wmb();
    WRITE_ONCE(*y, 1);
}
P1(int *x, int *y)
{
    int r0 = READ_ONCE(*y);
    smp_rmb();
    int r1 = READ_ONCE(*x);
}
exists (1:r0=1 /\\ 1:r1=0)
"""


class TestBasicParsing:
    def test_name(self):
        assert parse_litmus(MP).name == "MP+wmb+rmb"

    def test_threads(self):
        program = parse_litmus(MP)
        assert program.num_threads == 2
        assert len(program.threads[0]) == 3
        assert len(program.threads[1]) == 3

    def test_init(self):
        assert parse_litmus(MP).init == {"x": 0, "y": 0}

    def test_instructions(self):
        program = parse_litmus(MP)
        w, f, w2 = program.threads[0].body
        assert isinstance(w, Store) and w.tag == "once"
        assert w.addr == Const(Pointer("x"))
        assert isinstance(f, Fence) and f.tag == "wmb"
        r, f2, r2 = program.threads[1].body
        assert isinstance(r, Load) and r.reg == "r0" and r.tag == "once"
        assert isinstance(f2, Fence) and f2.tag == "rmb"

    def test_condition(self):
        condition = parse_litmus(MP).condition
        assert isinstance(condition, Exists)
        assert isinstance(condition.body, And)
        assert condition.body.lhs == RegValue(1, "r0", 1)
        assert condition.body.rhs == RegValue(1, "r1", 0)

    def test_missing_header_rejected(self):
        with pytest.raises(ParseError):
            parse_litmus("P0(int *x) { }")

    def test_no_threads_rejected(self):
        with pytest.raises(ParseError):
            parse_litmus("C empty\n{ x=0; }\nexists (x=0)")


class TestPrimitives:
    def _first(self, body_line, params="int *x"):
        text = f"C t\n{{ x=0; }}\nP0({params}) {{ {body_line} }}\n"
        return parse_litmus(text).threads[0].body

    def test_acquire_release(self):
        (load,) = self._first("int r0 = smp_load_acquire(x);")
        assert isinstance(load, Load) and load.tag == "acquire"
        (store,) = self._first("smp_store_release(x, 2);")
        assert isinstance(store, Store) and store.tag == "release"
        assert store.value == Const(2)

    def test_rcu_dereference_sets_rb_dep(self):
        (load,) = self._first("int r0 = rcu_dereference(*x);")
        assert isinstance(load, Load) and load.rb_dep

    def test_rcu_assign_pointer(self):
        (store,) = self._first("rcu_assign_pointer(*x, &y);")
        assert store.tag == "release"
        assert store.value == Const(Pointer("y"))

    def test_all_fences(self):
        for call, tag in [
            ("smp_mb", "mb"),
            ("smp_rmb", "rmb"),
            ("smp_wmb", "wmb"),
            ("smp_read_barrier_depends", "rb-dep"),
            ("rcu_read_lock", "rcu-lock"),
            ("rcu_read_unlock", "rcu-unlock"),
            ("synchronize_rcu", "sync-rcu"),
        ]:
            (fence,) = self._first(f"{call}();")
            assert isinstance(fence, Fence) and fence.tag == tag

    def test_xchg_variants(self):
        for call, variant in [
            ("xchg", "xchg"),
            ("xchg_relaxed", "xchg_relaxed"),
            ("xchg_acquire", "xchg_acquire"),
            ("xchg_release", "xchg_release"),
        ]:
            (rmw,) = self._first(f"int r0 = {call}(x, 1);")
            assert isinstance(rmw, Rmw) and rmw.variant == variant

    def test_cmpxchg(self):
        (cmp,) = self._first("int r0 = cmpxchg(x, 0, 1);")
        assert isinstance(cmp, CmpXchg)
        assert cmp.expected == Const(0)
        assert cmp.new_value == Const(1)

    def test_spinlocks(self):
        lock, unlock = self._first("spin_lock(x); spin_unlock(x);")
        assert isinstance(lock, Rmw) and lock.require_read_value == 0
        assert isinstance(unlock, Store) and unlock.tag == "release"

    def test_plain_accesses(self):
        store, load = self._first("*x = 5; int r0 = *x;")
        assert isinstance(store, Store) and store.tag == "plain"
        assert isinstance(load, Load) and load.tag == "plain"

    def test_local_assignment_and_arith(self):
        assign, = self._first("int r0 = 1 + 2;")
        assert isinstance(assign, LocalAssign)
        assert assign.expr == BinOp("+", Const(1), Const(2))

    def test_register_deref(self):
        body = self._first("int r0 = READ_ONCE(*x); int r1 = READ_ONCE(*r0);")
        second = body[1]
        assert second.addr == Reg("r0")


class TestControlFlow:
    def test_if_with_braces(self):
        text = """
C t
{ x=0; y=0; }
P0(int *x, int *y)
{
    int r0 = READ_ONCE(*x);
    if (r0) {
        WRITE_ONCE(*y, 1);
    } else {
        WRITE_ONCE(*y, 2);
    }
}
"""
        body = parse_litmus(text).threads[0].body
        branch = body[1]
        assert isinstance(branch, If)
        assert len(branch.then) == 1 and len(branch.orelse) == 1

    def test_if_single_statement(self):
        text = """
C t
{ x=0; y=0; }
P0(int *x, int *y)
{
    int r0 = READ_ONCE(*x);
    if (r0 == 1)
        WRITE_ONCE(*y, 1);
}
"""
        branch = parse_litmus(text).threads[0].body[1]
        assert isinstance(branch, If)
        assert branch.cond == BinOp("==", Reg("r0"), Const(1))


class TestInitSection:
    def test_pointer_init(self):
        text = "C t\n{ p=&x; x=3; }\nP0(int **p) { int r0 = READ_ONCE(*p); }\n"
        program = parse_litmus(text)
        assert program.init["p"] == Pointer("x")
        assert program.init["x"] == 3

    def test_negative_init(self):
        text = "C t\n{ x=-1; }\nP0(int *x) { int r0 = READ_ONCE(*x); }\n"
        assert parse_litmus(text).init["x"] == -1

    def test_typed_init_entries(self):
        text = "C t\n{ int x = 4; int *p = &x; }\nP0(int *x) { int r0 = READ_ONCE(*x); }\n"
        program = parse_litmus(text)
        assert program.init == {"x": 4, "p": Pointer("x")}

    def test_default_zero(self):
        text = "C t\n{ x; }\nP0(int *x) { int r0 = READ_ONCE(*x); }\n"
        assert parse_litmus(text).init["x"] == 0


class TestConditions:
    def _cond(self, text):
        full = f"C t\n{{ x=0; }}\nP0(int *x) {{ int r0 = READ_ONCE(*x); }}\n{text}"
        return parse_litmus(full).condition

    def test_not_exists(self):
        assert isinstance(self._cond("~exists (0:r0=1)"), NotExists)

    def test_forall(self):
        assert isinstance(self._cond("forall (0:r0=0)"), Forall)

    def test_location_clause(self):
        condition = self._cond("exists (x=2)")
        assert condition.body == LocValue("x", 2)

    def test_disjunction(self):
        condition = self._cond("exists (0:r0=0 \\/ 0:r0=1)")
        assert isinstance(condition.body, Or)

    def test_negated_clause(self):
        condition = self._cond("exists (~(0:r0=1))")
        assert isinstance(condition.body, Not)

    def test_pointer_value(self):
        condition = self._cond("exists (0:r0=&x)")
        assert condition.body == RegValue(0, "r0", Pointer("x"))

    def test_parenthesised_conjunction(self):
        condition = self._cond("exists ((0:r0=0 /\\ x=0) \\/ 0:r0=1)")
        assert isinstance(condition.body, Or)


class TestComments:
    def test_c_and_ocaml_comments_ignored(self):
        text = """
C commented
(* an ocaml-style comment *)
{ x=0; }
P0(int *x)
{
    // line comment
    int r0 = READ_ONCE(*x); /* block */
}
exists (0:r0=0)
"""
        program = parse_litmus(text)
        assert program.name == "commented"
        assert len(program.threads[0]) == 1


class TestLibraryRoundTrip:
    def test_every_library_source_parses(self):
        from repro.litmus import library

        for name in library.all_names():
            program = library.get(name)
            assert program.name == name
            assert program.num_threads >= 1
            assert program.condition is not None


class TestLibraryLookup:
    def test_unknown_name_suggests_close_matches(self):
        from repro.litmus import library

        with pytest.raises(KeyError) as excinfo:
            library.get("MP+wmb+rnb")
        message = str(excinfo.value)
        assert "did you mean" in message
        assert "MP+wmb+rmb" in message

    def test_unknown_name_without_close_match(self):
        from repro.litmus import library

        with pytest.raises(KeyError) as excinfo:
            library.get("completely-unrelated-name")
        assert "all_names()" in str(excinfo.value)


class TestErrorLocations:
    """ParseError carries path:line:column provenance."""

    def test_located_error_in_thread_body(self):
        text = (
            "C bad\n"          # line 1
            "\n"
            "{ x=0; }\n"       # line 3
            "\n"
            "P0(int *x)\n"     # line 5
            "{\n"              # line 6
            "    WRITE_ONCE(*x 1);\n"  # line 7: missing comma
            "}\n"
        )
        with pytest.raises(ParseError) as excinfo:
            parse_litmus(text, path="bad.litmus")
        error = excinfo.value
        assert error.path == "bad.litmus"
        assert error.line == 7
        assert error.column is not None
        assert str(error).startswith("bad.litmus:7:")

    def test_located_error_points_at_offending_token(self):
        text = "C bad\nP0(int *x)\n{\n    smp_mb(;\n}\n"
        with pytest.raises(ParseError) as excinfo:
            parse_litmus(text)
        assert excinfo.value.line == 4
        # Column points at the ';' where ')' was expected.
        assert excinfo.value.column == text.splitlines()[3].index(";") + 1

    def test_unexpected_character_located(self):
        text = "C bad\n{ x=0; }\nP0(int *x)\n{\n    @bogus;\n}\n"
        with pytest.raises(ParseError) as excinfo:
            parse_litmus(text)
        assert excinfo.value.line == 5

    def test_message_without_location_renders_plain(self):
        error = ParseError("boom")
        assert str(error) == "boom"
        located = ParseError("boom", line=3, column=9, path="t.litmus")
        assert str(located) == "t.litmus:3:9: boom"

    def test_internal_slips_become_parse_errors(self):
        # A lone "P17(...)" thread triggers the thread-id check; whatever
        # malformed input reaches deeper code must still surface as
        # ParseError, never a raw KeyError/IndexError/ValueError.
        with pytest.raises(ParseError):
            parse_litmus("C bad\nP1(int *x)\n{\n}\n")
