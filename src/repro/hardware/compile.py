"""Compiling LK litmus tests to architecture-level programs.

This plays the role of the kernel's per-architecture headers: each LK
primitive becomes the machine-level access/fence sequence the kernel
actually emits on that architecture (see :mod:`repro.hardware.archspec`).
The result is an ordinary :class:`~repro.litmus.ast.Program` whose events
carry machine tags, ready to be judged by the axiomatic architecture
models or executed by the operational simulator.

RCU primitives have no machine-level equivalent (klitmus links against the
kernel's RCU); by default they are kept as-is — the operational simulator
implements grace-period semantics natively — but ``rcu="error"`` makes
compilation fail instead, which the axiomatic-model experiments use to
skip RCU tests.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.events import (
    ACQUIRE,
    MB,
    ONCE,
    RB_DEP,
    RCU_LOCK,
    RCU_UNLOCK,
    RELEASE,
    RMB,
    SYNC_RCU,
    WMB,
)
from repro.hardware.archspec import ArchSpec, PLAIN
from repro.litmus.ast import (
    CmpXchg,
    Fence,
    If,
    Instruction,
    Load,
    LocalAssign,
    Program,
    Rmw,
    Store,
    Thread,
)

_RCU_TAGS = (RCU_LOCK, RCU_UNLOCK, SYNC_RCU)
_LK_FENCE_TAGS = (MB, RMB, WMB, RB_DEP)


class CompileError(Exception):
    """Raised when a primitive cannot be compiled for the target."""


def compile_program(program: Program, arch: ArchSpec, rcu: str = "keep") -> Program:
    """Compile ``program`` for ``arch``.

    ``rcu`` is ``"keep"`` (RCU events pass through, for the operational
    simulator) or ``"error"`` (raise :class:`CompileError` on RCU
    primitives, for the axiomatic architecture models).
    """
    if rcu not in ("keep", "error"):
        raise ValueError(f"rcu must be 'keep' or 'error', not {rcu!r}")
    threads = tuple(
        Thread(tuple(_compile_body(thread.body, arch, rcu)))
        for thread in program.threads
    )
    return Program(
        name=f"{program.name}@{arch.name}",
        threads=threads,
        init=dict(program.init),
        condition=program.condition,
    )


def _fences(tags: Iterable[str]) -> List[Instruction]:
    return [Fence(tag) for tag in tags]


def _compile_body(
    body: Sequence[Instruction], arch: ArchSpec, rcu: str
) -> List[Instruction]:
    out: List[Instruction] = []
    for ins in body:
        out.extend(_compile_instruction(ins, arch, rcu))
    return out


def _compile_instruction(
    ins: Instruction, arch: ArchSpec, rcu: str
) -> List[Instruction]:
    if isinstance(ins, LocalAssign):
        return [ins]

    if isinstance(ins, Fence):
        if ins.tag in _RCU_TAGS:
            if rcu == "error":
                raise CompileError(
                    f"RCU primitive F[{ins.tag}] has no machine-level "
                    f"equivalent on {arch.name}"
                )
            return [ins]
        if ins.tag in _LK_FENCE_TAGS:
            return _fences(arch.fence_map.get(ins.tag, ()))
        raise CompileError(f"unknown fence tag {ins.tag!r}")

    if isinstance(ins, Load):
        after: List[Instruction] = []
        if ins.rb_dep:
            after = _fences(arch.fence_map.get(RB_DEP, ()))
        if ins.tag == ACQUIRE:
            tag, before_tags, after_tags = arch.acquire_load
            return (
                _fences(before_tags)
                + [Load(ins.reg, ins.addr, tag)]
                + _fences(after_tags)
                + after
            )
        if ins.tag in (ONCE, PLAIN):
            return [Load(ins.reg, ins.addr, PLAIN)] + after
        raise CompileError(f"unknown load tag {ins.tag!r}")

    if isinstance(ins, Store):
        if ins.tag == RELEASE:
            tag, before_tags, after_tags = arch.release_store
            return (
                _fences(before_tags)
                + [Store(ins.addr, ins.value, tag)]
                + _fences(after_tags)
            )
        if ins.tag in (ONCE, PLAIN):
            return [Store(ins.addr, ins.value, PLAIN)]
        raise CompileError(f"unknown store tag {ins.tag!r}")

    if isinstance(ins, Rmw):
        return _compile_rmw(ins, arch)

    if isinstance(ins, CmpXchg):
        # Approximation: the bracketing fences are emitted unconditionally
        # rather than only on success — strictly stronger, hence sound.
        before, after = _rmw_fences(ins.variant, arch)
        return (
            _fences(before)
            + [
                CmpXchg(
                    ins.reg, ins.addr, ins.expected, ins.new_value,
                    "xchg_relaxed",
                )
            ]
            + _fences(after)
        )

    if isinstance(ins, If):
        return [
            If(
                ins.cond,
                tuple(_compile_body(ins.then, arch, rcu)),
                tuple(_compile_body(ins.orelse, arch, rcu)),
            )
        ]

    raise CompileError(f"cannot compile {ins!r}")


def _rmw_fences(variant: str, arch: ArchSpec) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    if variant == "xchg":
        return arch.rmw_full_fences
    if variant == "xchg_acquire":
        return ((), arch.acquire_rmw_fences())
    if variant == "xchg_release":
        return (arch.release_rmw_fences(), ())
    return ((), ())


def _compile_rmw(ins: Rmw, arch: ArchSpec) -> List[Instruction]:
    before, after = _rmw_fences(ins.variant, arch)
    return (
        _fences(before)
        + [
            Rmw(
                ins.reg,
                ins.addr,
                ins.new_value,
                "xchg_relaxed",
                require_read_value=ins.require_read_value,
            )
        ]
        + _fences(after)
    )
