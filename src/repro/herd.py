"""The top-level simulator: run a model over a litmus test.

This plays the role of the herd tool (Section 5 of the paper): enumerate
the candidate executions of a test, keep the ones the model allows, and
judge the final-state condition.

The verdicts follow the paper's Table 5 vocabulary:

* for an ``exists`` condition — **Allow** if some allowed execution
  satisfies it, **Forbid** otherwise;
* for ``~exists`` — **Forbid** means the model indeed rules the witness
  out (the test "passes"), **Allow** means the witness is reachable;
* for ``forall`` — **Allow** if every allowed execution satisfies it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.executions.candidate import CandidateExecution
from repro.executions.enumerate import candidate_executions
from repro.litmus.ast import Program
from repro.litmus.outcomes import Exists, Forall, FinalState, NotExists
from repro.model import Model

ALLOW = "Allow"
FORBID = "Forbid"


@dataclass
class RunResult:
    """The outcome of running one model over one litmus test."""

    program: Program
    model_name: str
    #: Total candidate executions enumerated.
    candidates: int
    #: Executions the model allows.
    allowed: int
    #: Allowed executions whose final state satisfies the condition body.
    witnesses: int
    #: Distinct final states of allowed executions.
    states: Set[FinalState] = field(default_factory=set)
    #: One allowed execution matching the condition, if any (kept for
    #: explanation tooling).
    witness_execution: Optional[CandidateExecution] = None
    #: One forbidden execution matching the condition, if any.
    forbidden_witness: Optional[CandidateExecution] = None

    @property
    def verdict(self) -> str:
        """``Allow``/``Forbid`` for the test's target behaviour."""
        condition = self.program.condition
        if condition is None or isinstance(condition, (Exists, NotExists)):
            return ALLOW if self.witnesses > 0 else FORBID
        if isinstance(condition, Forall):
            return ALLOW if self.witnesses == self.allowed else FORBID
        raise TypeError(f"unknown condition {condition!r}")

    @property
    def observation(self) -> str:
        """herd-style observation summary: Never/Sometimes/Always."""
        if self.witnesses == 0:
            return "Never"
        if self.witnesses == self.allowed:
            return "Always"
        return "Sometimes"

    def describe(self) -> str:
        return (
            f"{self.program.name} under {self.model_name}: {self.verdict} "
            f"({self.witnesses} witnesses / {self.allowed} allowed / "
            f"{self.candidates} candidates)"
        )


def run_litmus(
    model: Model,
    program: Program,
    require_sc_per_location: bool = False,
    keep_states: bool = True,
) -> RunResult:
    """Run ``program`` against ``model`` and summarise the results.

    ``require_sc_per_location`` may be set for models known to include the
    Scpv axiom (all models in this package do) to speed up enumeration of
    large tests.
    """
    condition = program.condition
    result = RunResult(
        program=program,
        model_name=model.name,
        candidates=0,
        allowed=0,
        witnesses=0,
    )
    for execution in candidate_executions(
        program, require_sc_per_location=require_sc_per_location
    ):
        result.candidates += 1
        matches = (
            condition is None or condition.evaluate(execution.final_state)
        )
        if not model.allows(execution):
            if matches and result.forbidden_witness is None:
                result.forbidden_witness = execution
            continue
        result.allowed += 1
        if keep_states:
            result.states.add(execution.final_state)
        if matches:
            result.witnesses += 1
            if result.witness_execution is None:
                result.witness_execution = execution
    return result


def verdicts(
    models: List[Model], programs: List[Program], **kwargs
) -> Dict[str, Dict[str, str]]:
    """Verdict table: ``{test name: {model name: Allow/Forbid}}``."""
    table: Dict[str, Dict[str, str]] = {}
    for program in programs:
        row: Dict[str, str] = {}
        for model in models:
            row[model.name] = run_litmus(model, program, **kwargs).verdict
        table[program.name] = row
    return table
