"""Final-state conditions of litmus tests.

A litmus test ends with a condition such as::

    exists (1:r0=1 /\\ 1:r1=0)

which asks whether some allowed execution ends with thread 1's register
``r0`` holding 1 and ``r1`` holding 0.  Conditions can also constrain the
final value of shared locations (``x=2``).  The three quantifiers follow
herd: ``exists`` (is the witness reachable?), ``~exists`` (it must not be),
and ``forall`` (every allowed execution satisfies it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.events import Value


class Condition:
    """Base class of final-state predicates."""

    __slots__ = ()

    def evaluate(self, state: "FinalState") -> bool:
        raise NotImplementedError


@dataclass(frozen=True)
class FinalState:
    """The observable end state of one execution.

    ``registers`` maps ``(tid, reg_name)`` to the register's final value;
    ``memory`` maps each shared location to its final value (the last write
    in the coherence order).
    """

    registers: Dict[Tuple[int, str], Value]
    memory: Dict[str, Value]

    def __hash__(self) -> int:
        return hash(
            (
                frozenset(self.registers.items()),
                frozenset(self.memory.items()),
            )
        )


@dataclass(frozen=True)
class RegValue(Condition):
    """``tid:reg = value``"""

    tid: int
    reg: str
    value: Value

    def evaluate(self, state: FinalState) -> bool:
        return state.registers.get((self.tid, self.reg)) == self.value

    def __repr__(self) -> str:
        return f"{self.tid}:{self.reg}={self.value!r}"


@dataclass(frozen=True)
class LocValue(Condition):
    """``loc = value`` — final memory value."""

    loc: str
    value: Value

    def evaluate(self, state: FinalState) -> bool:
        return state.memory.get(self.loc) == self.value

    def __repr__(self) -> str:
        return f"{self.loc}={self.value!r}"


@dataclass(frozen=True)
class And(Condition):
    lhs: Condition
    rhs: Condition

    def evaluate(self, state: FinalState) -> bool:
        return self.lhs.evaluate(state) and self.rhs.evaluate(state)

    def __repr__(self) -> str:
        return f"({self.lhs!r} /\\ {self.rhs!r})"


@dataclass(frozen=True)
class Or(Condition):
    lhs: Condition
    rhs: Condition

    def evaluate(self, state: FinalState) -> bool:
        return self.lhs.evaluate(state) or self.rhs.evaluate(state)

    def __repr__(self) -> str:
        return f"({self.lhs!r} \\/ {self.rhs!r})"


@dataclass(frozen=True)
class Not(Condition):
    operand: Condition

    def evaluate(self, state: FinalState) -> bool:
        return not self.operand.evaluate(state)

    def __repr__(self) -> str:
        return f"~{self.operand!r}"


@dataclass(frozen=True)
class Exists(Condition):
    """``exists P``: some allowed execution's final state satisfies P."""

    body: Condition

    def evaluate(self, state: FinalState) -> bool:
        return self.body.evaluate(state)

    def __repr__(self) -> str:
        return f"exists {self.body!r}"


@dataclass(frozen=True)
class NotExists(Condition):
    """``~exists P``: no allowed execution's final state satisfies P."""

    body: Condition

    def evaluate(self, state: FinalState) -> bool:
        return self.body.evaluate(state)

    def __repr__(self) -> str:
        return f"~exists {self.body!r}"


@dataclass(frozen=True)
class Forall(Condition):
    """``forall P``: every allowed execution's final state satisfies P."""

    body: Condition

    def evaluate(self, state: FinalState) -> bool:
        return self.body.evaluate(state)

    def __repr__(self) -> str:
        return f"forall {self.body!r}"


def exists(body: Condition) -> Exists:
    return Exists(body)


def not_exists(body: Condition) -> NotExists:
    return NotExists(body)


def forall(body: Condition) -> Forall:
    return Forall(body)


def conj(*conditions: Condition) -> Condition:
    """Conjunction of one or more conditions."""
    if not conditions:
        raise ValueError("conj() needs at least one condition")
    result = conditions[0]
    for cond in conditions[1:]:
        result = And(result, cond)
    return result
