"""Tests for the LKMM-derived data-race detector."""

import pytest

from repro.analysis.races import (
    RACE_FREE,
    RACY,
    check_races,
    classify_library,
    race_order,
    races_in,
)
from repro.events import PLAIN
from repro.executions.enumerate import candidate_executions
from repro.litmus import library
from repro.litmus.parser import parse_litmus
from repro.lkmm import LinuxKernelModel
from repro.lkmm.model import LkmmRelations

MP_PLAIN = """
C MP+plain
{ x=0; y=0; }
P0(int *x, int *y) {
  *x = 1;
  WRITE_ONCE(*y, 1);
}
P1(int *x, int *y) {
  int r0 = READ_ONCE(*y);
  int r1 = *x;
}
exists (1:r0=1 /\\ 1:r1=0)
"""

# Fences alone do not save an *ungated* plain reader: in the execution
# where P1 misses the flag there is no ordering chain at all, exactly as
# the real LKMM judges it.
MP_PLAIN_FENCED = """
C MP+plain+wmb+rmb
{ x=0; y=0; }
P0(int *x, int *y) {
  *x = 1;
  smp_wmb();
  WRITE_ONCE(*y, 1);
}
P1(int *x, int *y) {
  int r0 = READ_ONCE(*y);
  smp_rmb();
  int r1 = *x;
}
exists (1:r0=1 /\\ 1:r1=0)
"""

# The classic race-free idiom: the plain read only executes once the
# marked flag has been observed, so every execution containing it has the
# wmb ; marked-rfe ; rmb chain ordering it after the plain write.
MP_PLAIN_GATED = """
C MP+plain-gated+wmb+rmb
{ x=0; y=0; }
P0(int *x, int *y) {
  *x = 1;
  smp_wmb();
  WRITE_ONCE(*y, 1);
}
P1(int *x, int *y) {
  int r0 = READ_ONCE(*y);
  if (r0 == 1) {
    smp_rmb();
    int r1 = *x;
  }
}
exists (1:r0=1 /\\ 1:r1=0)
"""

SB_PLAIN = """
C SB+plain
{ x=0; y=0; }
P0(int *x, int *y) {
  *x = 1;
  int r0 = *y;
}
P1(int *x, int *y) {
  *y = 1;
  int r1 = *x;
}
exists (0:r0=0 /\\ 1:r1=0)
"""


class TestVerdicts:
    def test_plain_mp_is_racy(self):
        report = check_races(parse_litmus(MP_PLAIN))
        assert report.racy
        assert report.verdict == RACY
        assert report.pair is not None
        a, b = report.pair
        assert a.loc == b.loc == "x"
        assert a.tid != b.tid
        assert a.has_tag(PLAIN) or b.has_tag(PLAIN)

    def test_ungated_fenced_plain_mp_still_racy(self):
        # Racy in the execution where the reader misses the flag.
        report = check_races(parse_litmus(MP_PLAIN_FENCED))
        assert report.racy

    def test_gated_fenced_plain_mp_race_free(self):
        report = check_races(parse_litmus(MP_PLAIN_GATED))
        assert not report.racy
        assert report.verdict == RACE_FREE
        assert report.consistent > 0

    def test_plain_sb_is_racy(self):
        assert check_races(parse_litmus(SB_PLAIN)).racy

    def test_marked_mp_race_free(self):
        report = check_races(library.get("MP"))
        assert not report.racy
        assert report.pair is None
        assert report.consistent == report.candidates > 0

    def test_marked_sb_race_free(self):
        assert not check_races(library.get("SB")).racy


class TestWitness:
    def test_witness_is_consistent_and_explained(self):
        report = check_races(parse_litmus(MP_PLAIN))
        assert report.witness is not None
        assert LinuxKernelModel().check(report.witness).allowed
        assert "data race on 'x'" in report.explanation
        assert "not synchronisation" in report.explanation
        assert report.explanation in report.describe()

    def test_race_free_describe_is_one_line(self):
        report = check_races(library.get("MP"))
        assert report.describe() == (
            f"MP: Race-free ({report.consistent} consistent / "
            f"{report.candidates} candidates)"
        )


class TestRaceOrder:
    def test_plain_rfe_is_not_synchronisation(self):
        # In MP+plain, the execution where d reads a's plain write has a
        # plain rfe edge; hb contains it, race_order must not.
        program = parse_litmus(MP_PLAIN)
        for execution in candidate_executions(
            program, require_sc_per_location=True
        ):
            rel = LkmmRelations(execution)
            order = race_order(rel)
            plain_rfe = [
                (w, r)
                for (w, r) in execution.rfe.pairs
                if w.has_tag(PLAIN) and r.has_tag(PLAIN)
            ]
            for pair in plain_rfe:
                assert pair in rel.hb
                assert pair not in order

    def test_marked_rfe_is_synchronisation(self):
        program = library.get("MP")
        found = False
        for execution in candidate_executions(
            program, require_sc_per_location=True
        ):
            rel = LkmmRelations(execution)
            order = race_order(rel)
            for pair in execution.rfe.pairs:
                found = True
                assert pair in order
        assert found

    def test_races_in_symmetric_free_on_marked_test(self):
        for execution in candidate_executions(
            library.get("SB+mbs"), require_sc_per_location=True
        ):
            assert races_in(execution) == []


class TestLibrary:
    def test_whole_library_is_race_free(self):
        # Every shipped test uses marked accesses (or plain ones ordered
        # by the spinlock emulation), so none should be racy.
        reports = classify_library()
        racy = [name for name, report in reports.items() if report.racy]
        assert racy == []
        assert len(reports) == len(library.all_names())

    def test_subset_selection(self):
        reports = classify_library(names=["MP", "SB"])
        assert sorted(reports) == ["MP", "SB"]
