"""Tests for the forbidden-execution explainer."""

import pytest

from repro.executions import candidate_executions
from repro.litmus import library
from repro.lkmm import LinuxKernelModel, explain_forbidden


def witness(name):
    program = library.get(name)
    return next(
        x
        for x in candidate_executions(program)
        if program.condition.evaluate(x.final_state)
    )


def benign(name):
    program = library.get(name)
    return next(
        x
        for x in candidate_executions(program)
        if not program.condition.evaluate(x.final_state)
    )


class TestExplain:
    def test_allowed_execution(self):
        assert explain_forbidden(benign("MP+wmb+rmb")) == "allowed"

    def test_hb_cycle_named(self):
        text = explain_forbidden(witness("MP+wmb+rmb"))
        assert "Hb" in text
        assert "cycle:" in text

    def test_figure4_cycle_edges(self):
        # Figure 4: the control dependency is a load-bearing edge of the
        # forbidding cycle (the explainer may find the 2-edge ctrl;prop
        # form rather than the paper's 4-edge ppo;rfe;ppo;rfe form).
        text = explain_forbidden(witness("LB+ctrl+mb"))
        assert "cycle:" in text
        assert "ctrl" in text or "ppo" in text

    def test_pb_violation_explained(self):
        text = explain_forbidden(witness("SB+mbs"))
        assert "Pb" in text

    def test_rcu_violation_explained(self):
        text = explain_forbidden(witness("RCU-MP"))
        assert "Rcu" in text
        assert "rcu-path" in text

    def test_at_violation_explained(self):
        text = explain_forbidden(witness("At-inc"))
        assert "At" in text
        assert "rmw" in text

    def test_execution_rendered(self):
        text = explain_forbidden(witness("MP+wmb+rmb"))
        assert "W[once]" in text and "R[once]" in text
        assert "rf:" in text and "co:" in text

    def test_custom_model(self):
        core = LinuxKernelModel(with_rcu=False)
        # RCU-MP is allowed by the core model: no explanation produced.
        assert explain_forbidden(witness("RCU-MP"), core) == "allowed"
