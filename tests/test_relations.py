"""Unit and property-based tests for the relational algebra."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.events import Event, ONCE, READ
from repro.relations import (
    EventSet,
    Relation,
    empty_relation,
    least_fixpoint,
    relation_from_order,
)


def _events(n):
    return [
        Event(eid=i, tid=0, po_index=i, kind=READ, tag=ONCE, loc="x", value=0)
        for i in range(n)
    ]


EVENTS = _events(6)
UNIVERSE = frozenset(EVENTS)


def rel(*pairs):
    return Relation([(EVENTS[a], EVENTS[b]) for a, b in pairs], UNIVERSE)


def eset(*indices):
    return EventSet([EVENTS[i] for i in indices], UNIVERSE)


class TestEventSet:
    def test_union_intersection_difference(self):
        a, b = eset(0, 1, 2), eset(1, 2, 3)
        assert (a | b) == eset(0, 1, 2, 3)
        assert (a & b) == eset(1, 2)
        assert (a - b) == eset(0)

    def test_complement(self):
        assert (~eset(0, 1)) == eset(2, 3, 4, 5)

    def test_identity(self):
        ident = eset(0, 2).identity()
        assert (EVENTS[0], EVENTS[0]) in ident
        assert (EVENTS[0], EVENTS[2]) not in ident
        assert len(ident) == 2

    def test_product(self):
        product = eset(0, 1).product(eset(2))
        assert set(product.pairs) == {
            (EVENTS[0], EVENTS[2]),
            (EVENTS[1], EVENTS[2]),
        }

    def test_filter(self):
        assert eset(0, 1, 2).filter(lambda e: e.eid > 0) == eset(1, 2)

    def test_is_empty(self):
        assert eset().is_empty()
        assert not eset(0).is_empty()


class TestRelationBasics:
    def test_union_intersection_difference(self):
        a, b = rel((0, 1), (1, 2)), rel((1, 2), (2, 3))
        assert (a | b) == rel((0, 1), (1, 2), (2, 3))
        assert (a & b) == rel((1, 2))
        assert (a - b) == rel((0, 1))

    def test_inverse(self):
        assert rel((0, 1), (2, 3)).inverse() == rel((1, 0), (3, 2))

    def test_sequence(self):
        assert rel((0, 1)).sequence(rel((1, 2))) == rel((0, 2))

    def test_sequence_no_match_is_empty(self):
        assert rel((0, 1)).sequence(rel((2, 3))).is_empty()

    def test_optional_adds_identity_over_universe(self):
        optional = rel((0, 1)).optional()
        assert (EVENTS[5], EVENTS[5]) in optional
        assert (EVENTS[0], EVENTS[1]) in optional

    def test_transitive_closure(self):
        closure = rel((0, 1), (1, 2), (2, 3)).transitive_closure()
        assert (EVENTS[0], EVENTS[3]) in closure
        assert (EVENTS[3], EVENTS[0]) not in closure

    def test_transitive_closure_of_cycle_is_reflexive(self):
        closure = rel((0, 1), (1, 0)).transitive_closure()
        assert (EVENTS[0], EVENTS[0]) in closure
        assert (EVENTS[1], EVENTS[1]) in closure

    def test_reflexive_transitive_closure(self):
        closure = rel((0, 1)).reflexive_transitive_closure()
        assert (EVENTS[4], EVENTS[4]) in closure
        assert (EVENTS[0], EVENTS[1]) in closure

    def test_complement(self):
        complement = rel((0, 1)).complement()
        assert (EVENTS[0], EVENTS[1]) not in complement
        assert (EVENTS[1], EVENTS[0]) in complement
        assert len(complement) == len(UNIVERSE) ** 2 - 1

    def test_restrict(self):
        r = rel((0, 1), (2, 3))
        assert r.restrict(domain=eset(0)) == rel((0, 1))
        assert r.restrict(range_=eset(3)) == rel((2, 3))

    def test_domain_range(self):
        r = rel((0, 1), (2, 3))
        assert r.domain() == eset(0, 2)
        assert r.range() == eset(1, 3)


class TestChecks:
    def test_acyclic_on_dag(self):
        assert rel((0, 1), (1, 2), (0, 2)).is_acyclic()

    def test_cyclic_detected(self):
        assert not rel((0, 1), (1, 2), (2, 0)).is_acyclic()

    def test_self_loop_is_cycle(self):
        assert not rel((3, 3)).is_acyclic()

    def test_find_cycle_returns_closed_path(self):
        cycle = rel((0, 1), (1, 2), (2, 0)).find_cycle()
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        # Each step is an edge of the relation.
        r = rel((0, 1), (1, 2), (2, 0))
        for a, b in zip(cycle, cycle[1:]):
            assert (a, b) in r

    def test_find_cycle_none_on_dag(self):
        assert rel((0, 1), (1, 2)).find_cycle() is None

    def test_irreflexive(self):
        assert rel((0, 1)).is_irreflexive()
        assert not rel((0, 0)).is_irreflexive()

    def test_total_order(self):
        order = relation_from_order([EVENTS[0], EVENTS[1], EVENTS[2]], UNIVERSE)
        assert order.is_total_order_on(EVENTS[:3])
        assert not order.is_total_order_on(EVENTS[:4])


class TestFixpoint:
    def test_least_fixpoint_transitive_closure(self):
        base = rel((0, 1), (1, 2))
        result = least_fixpoint(
            lambda r: base | r.sequence(base) | base.sequence(r), UNIVERSE
        )
        assert result == base.transitive_closure()

    def test_least_fixpoint_empty(self):
        result = least_fixpoint(lambda r: r, UNIVERSE)
        assert result.is_empty()


# -- property-based tests ------------------------------------------------------

pair_strategy = st.tuples(
    st.integers(min_value=0, max_value=5), st.integers(min_value=0, max_value=5)
)
relation_strategy = st.frozensets(pair_strategy, max_size=20).map(
    lambda pairs: rel(*pairs)
)


class TestRelationProperties:
    @given(relation_strategy, relation_strategy)
    def test_union_commutative(self, a, b):
        assert (a | b) == (b | a)

    @given(relation_strategy, relation_strategy, relation_strategy)
    def test_sequence_associative(self, a, b, c):
        assert a.sequence(b).sequence(c) == a.sequence(b.sequence(c))

    @given(relation_strategy)
    def test_inverse_involution(self, a):
        assert a.inverse().inverse() == a

    @given(relation_strategy)
    def test_transitive_closure_is_transitive(self, a):
        closure = a.transitive_closure()
        assert closure.sequence(closure).pairs <= closure.pairs

    @given(relation_strategy)
    def test_transitive_closure_contains_base(self, a):
        assert a.pairs <= a.transitive_closure().pairs

    @given(relation_strategy)
    def test_transitive_closure_idempotent(self, a):
        once = a.transitive_closure()
        assert once.transitive_closure() == once

    @given(relation_strategy)
    def test_star_equals_plus_plus_id(self, a):
        star = a.reflexive_transitive_closure()
        plus = a.transitive_closure()
        ident = {(e, e) for e in UNIVERSE}
        assert star.pairs == plus.pairs | ident

    @given(relation_strategy, relation_strategy)
    def test_sequence_distributes_over_union(self, a, b):
        c = rel((0, 1), (2, 3))
        assert (a | b).sequence(c) == a.sequence(c) | b.sequence(c)

    @given(relation_strategy)
    def test_acyclic_iff_closure_irreflexive(self, a):
        assert a.is_acyclic() == a.transitive_closure().is_irreflexive()

    @given(relation_strategy, relation_strategy)
    def test_demorgan_for_relations(self, a, b):
        assert ~(a | b) == (~a) & (~b)
