"""Lexer and parser for the cat language subset.

cat identifiers may contain hyphens and dots (``po-loc``, ``rcu-path``);
since cat has no binary minus this is unambiguous.  Operator precedence,
loosest first: ``|``, ``;``, ``\\``, ``&``, ``*`` (cartesian); unary ``~``
and the postfix operators (``?``, ``+``, ``*``, ``^-1``) bind tightest.
A ``*`` is read as cartesian product when the next token can start an
expression, and as reflexive-transitive closure otherwise.
"""

from __future__ import annotations

import re
from typing import List, NoReturn, Optional, Tuple

from repro.cat.ast import (
    App,
    Cartesian,
    CatExpr,
    CatFile,
    CatStatement,
    Check,
    Compl,
    Diff,
    EmptyRel,
    Id,
    Include,
    Inter,
    Inverse,
    Let,
    LetBinding,
    Opt,
    Plus,
    Seq,
    SetId,
    Star,
    Union,
)


class CatParseError(Exception):
    """Malformed cat input, with source location when known.

    Renders compiler-style — ``path:line:column: message`` — mirroring
    :class:`repro.litmus.parser.ParseError`.  Locations are 1-based and
    any part may be absent.
    """

    def __init__(
        self,
        message: str,
        line: Optional[int] = None,
        column: Optional[int] = None,
        path: Optional[str] = None,
    ):
        super().__init__(message)
        self.message = message
        self.line = line
        self.column = column
        self.path = path

    def __str__(self) -> str:
        parts = []
        if self.path is not None:
            parts.append(str(self.path))
        if self.line is not None:
            parts.append(str(self.line))
            if self.column is not None:
                parts.append(str(self.column))
        if not parts:
            return self.message
        return f"{':'.join(parts)}: {self.message}"


_TOKEN_RE = re.compile(
    r"""
    (?P<comment>\(\*.*?\*\)|//[^\n]*)
  | (?P<string>"[^"]*")
  | (?P<invop>\^-1)
  | (?P<name>[A-Za-z_][A-Za-z0-9_.\-]*)
  | (?P<num>0)
  | (?P<op>[|;&\\~?+*\[\]()=,])
  | (?P<ws>\s+)
    """,
    re.VERBOSE | re.DOTALL,
)

_CHECK_KINDS = ("acyclic", "irreflexive", "empty")
_KEYWORDS = {"let", "rec", "and", "as", "flag", "include"} | set(_CHECK_KINDS)


def _tokenize(text: str) -> Tuple[List[str], List[Tuple[int, int]]]:
    """Tokens plus the 1-based (line, column) each token starts at."""
    tokens: List[str] = []
    positions: List[Tuple[int, int]] = []
    pos = 0
    line = 1
    line_start = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise CatParseError(
                f"unexpected character {text[pos]!r}",
                line=line,
                column=pos - line_start + 1,
            )
        start = pos
        pos = match.end()
        group = match.group()
        if match.lastgroup not in ("ws", "comment"):
            tokens.append(group)
            positions.append((line, start - line_start + 1))
        newlines = group.count("\n")
        if newlines:
            line += newlines
            line_start = start + group.rfind("\n") + 1
    return tokens, positions


class _Cursor:
    def __init__(
        self,
        tokens: List[str],
        positions: Optional[List[Tuple[int, int]]] = None,
    ):
        self.tokens = tokens
        self.positions = (
            positions if positions is not None else [(1, 1)] * len(tokens)
        )
        self.idx = 0

    def _position(self) -> Tuple[Optional[int], Optional[int]]:
        if not self.positions:
            return None, None
        i = min(self.idx, len(self.positions) - 1)
        return self.positions[i]

    def fail(self, message: str) -> "NoReturn":
        """Raise a :class:`CatParseError` located at the cursor."""
        line, column = self._position()
        raise CatParseError(message, line=line, column=column)

    def peek(self, offset: int = 0) -> Optional[str]:
        i = self.idx + offset
        return self.tokens[i] if i < len(self.tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            self.fail("unexpected end of input")
        self.idx += 1
        return token

    def expect(self, token: str) -> None:
        if self.peek() is None:
            self.fail(f"expected {token!r}, got end of input")
        got = self.next()
        if got != token:
            self.idx -= 1
            self.fail(f"expected {token!r}, got {got!r}")

    def accept(self, token: str) -> bool:
        if self.peek() == token:
            self.idx += 1
            return True
        return False

    @property
    def exhausted(self) -> bool:
        return self.idx >= len(self.tokens)


def parse_cat(
    text: str,
    default_name: str = "cat-model",
    path: Optional[str] = None,
) -> CatFile:
    """Parse a cat model from source text.

    ``path``, when given, is attached to any :class:`CatParseError` so
    the error renders as ``path:line:column: message``; stray
    ``KeyError``/``IndexError``/``ValueError`` slips are converted to
    :class:`CatParseError` too.
    """
    try:
        return _parse_cat(text, default_name)
    except CatParseError as error:
        if error.path is None:
            error.path = path
        raise
    except (KeyError, IndexError, ValueError) as error:
        raise CatParseError(
            f"malformed cat model ({type(error).__name__}: {error})",
            path=path,
        ) from error


def _parse_cat(text: str, default_name: str) -> CatFile:
    cursor = _Cursor(*_tokenize(text))
    name = default_name
    # Optional leading model name: a quoted string or a bare identifier
    # that is not a keyword and is not followed by statement syntax.
    first = cursor.peek()
    if first is not None and first.startswith('"'):
        name = cursor.next().strip('"')
    elif (
        first is not None
        and first not in _KEYWORDS
        and re.fullmatch(r"[A-Za-z_][A-Za-z0-9_.\-]*", first)
        and cursor.peek(1) in (None, "let", "include", "flag", *_CHECK_KINDS, '"')
    ):
        name = cursor.next()

    statements: List[CatStatement] = []
    while not cursor.exhausted:
        statements.append(_parse_statement(cursor))
    return CatFile(name, tuple(statements))


def parse_expr_text(text: str) -> CatExpr:
    """Parse a single cat expression (no statements).

    Used by the relational-IR round-trip tests: the canonical pretty form
    of every :class:`repro.analysis.catir.ir.Node` is valid cat syntax
    and must parse back to an expression that recompiles to the same
    node.
    """
    cursor = _Cursor(*_tokenize(text))
    expr = _parse_expr(cursor)
    if not cursor.exhausted:
        cursor.fail(
            f"trailing tokens after expression: {cursor.peek()!r}"
        )
    return expr


def _parse_statement(cursor: _Cursor) -> CatStatement:
    token = cursor.peek()
    if token == "include":
        cursor.next()
        path = cursor.next()
        if not path.startswith('"'):
            cursor.idx -= 1
            cursor.fail(f"include expects a string, got {path!r}")
        return Include(path.strip('"'))
    if token == "let":
        return _parse_let(cursor)
    flag = cursor.accept("flag")
    negated = cursor.accept("~")
    kind = cursor.next()
    if kind not in _CHECK_KINDS:
        cursor.idx -= 1
        cursor.fail(f"expected a check or let, got {kind!r}")
    expr = _parse_expr(cursor)
    name = None
    if cursor.accept("as"):
        name = cursor.next()
    return Check(kind, expr, name, negated=negated, flag=flag)


def _parse_let(cursor: _Cursor) -> Let:
    cursor.expect("let")
    recursive = cursor.accept("rec")
    bindings = [_parse_binding(cursor)]
    while cursor.accept("and"):
        bindings.append(_parse_binding(cursor))
    return Let(tuple(bindings), recursive=recursive)


def _parse_binding(cursor: _Cursor) -> LetBinding:
    name = cursor.next()
    params: Tuple[str, ...] = ()
    if cursor.accept("("):
        names: List[str] = []
        while not cursor.accept(")"):
            names.append(cursor.next())
            cursor.accept(",")
        params = tuple(names)
    cursor.expect("=")
    return LetBinding(name, _parse_expr(cursor), params)


# -- expressions -------------------------------------------------------------

_PRIMARY_START = re.compile(r"[A-Za-z_(\[~]|0")


def _starts_expression(token: Optional[str]) -> bool:
    if token is None or token in _KEYWORDS:
        return False
    return _PRIMARY_START.match(token) is not None


def _parse_expr(cursor: _Cursor) -> CatExpr:
    return _parse_union(cursor)


def _parse_union(cursor: _Cursor) -> CatExpr:
    lhs = _parse_seq(cursor)
    while cursor.accept("|"):
        lhs = Union(lhs, _parse_seq(cursor))
    return lhs


def _parse_seq(cursor: _Cursor) -> CatExpr:
    lhs = _parse_diff(cursor)
    while cursor.accept(";"):
        lhs = Seq(lhs, _parse_diff(cursor))
    return lhs


def _parse_diff(cursor: _Cursor) -> CatExpr:
    lhs = _parse_inter(cursor)
    while cursor.accept("\\"):
        lhs = Diff(lhs, _parse_inter(cursor))
    return lhs


def _parse_inter(cursor: _Cursor) -> CatExpr:
    lhs = _parse_cartesian(cursor)
    while cursor.accept("&"):
        lhs = Inter(lhs, _parse_cartesian(cursor))
    return lhs


def _parse_cartesian(cursor: _Cursor) -> CatExpr:
    lhs = _parse_unary(cursor)
    # "*" is cartesian product only when followed by the start of an
    # expression; otherwise it was consumed as a postfix closure already.
    while cursor.peek() == "*" and _starts_expression(cursor.peek(1)):
        cursor.next()
        lhs = Cartesian(lhs, _parse_unary(cursor))
    return lhs


def _parse_unary(cursor: _Cursor) -> CatExpr:
    if cursor.accept("~"):
        return Compl(_parse_unary(cursor))
    return _parse_postfix(cursor)


def _parse_postfix(cursor: _Cursor) -> CatExpr:
    expr = _parse_primary(cursor)
    while True:
        token = cursor.peek()
        if token == "?":
            cursor.next()
            expr = Opt(expr)
        elif token == "+":
            cursor.next()
            expr = Plus(expr)
        elif token == "^-1":
            cursor.next()
            expr = Inverse(expr)
        elif token == "*" and not _starts_expression(cursor.peek(1)):
            cursor.next()
            expr = Star(expr)
        else:
            return expr


def _parse_primary(cursor: _Cursor) -> CatExpr:
    token = cursor.peek()
    if token is None:
        cursor.fail("unexpected end of expression")
    if token == "(":
        cursor.next()
        expr = _parse_expr(cursor)
        cursor.expect(")")
        return expr
    if token == "[":
        cursor.next()
        expr = _parse_expr(cursor)
        cursor.expect("]")
        return SetId(expr)
    if token == "0":
        cursor.next()
        return EmptyRel()
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_.\-]*", token):
        cursor.next()
        if cursor.peek() == "(":
            cursor.next()
            args: List[CatExpr] = []
            while not cursor.accept(")"):
                args.append(_parse_expr(cursor))
                cursor.accept(",")
            return App(token, tuple(args))
        return Id(token)
    cursor.fail(f"unexpected token {token!r} in expression")
