"""E16 — systematic variation sweeps (Section 5's validation method).

For each communication skeleton (MP, SB, LB, R, 2+2W, WRC) sweep every
combination of program-order edges, judge each variation under the LK
model, and check:

* spot verdicts that anchor each family to the paper (e.g. the MP family
  contains MP -> Allow and MP+wmb+rmb -> Forbid);
* **monotonicity**: replacing an edge with a stronger one (po -> wmb ->
  mb -> grace period, addr -> addr+rb-dep, ...) never flips a verdict
  from Forbid back to Allow.
"""

from __future__ import annotations

import pytest

from repro.diy.families import FAMILIES, check_monotonicity, family
from repro.herd import run_litmus

from conftest import once, print_table

#: Verdicts pinned by the paper / the model's definitions, per family.
ANCHORS = {
    "MP": {
        ("PodRR", "PodWW"): "Allow",
        ("RmbdRR", "WmbdWW"): "Forbid",       # Figure 2
        ("DpAddrdR", "WmbdWW"): "Allow",      # Alpha
        ("DpAddrRbDepdR", "WmbdWW"): "Forbid",
        ("AcqdR", "ReldW"): "Forbid",
        ("SyncdRR", "SyncdWW"): "Forbid",
    },
    "SB": {
        ("PodWR", "PodWR"): "Allow",
        ("MbdWR", "MbdWR"): "Forbid",         # Figure 6
        ("MbdWR", "PodWR"): "Allow",
        ("SyncdWR", "MbdWR"): "Forbid",
    },
    "LB": {
        ("PodRW", "PodRW"): "Allow",
        ("DpCtrldW", "MbdRW"): "Forbid",      # Figure 4
        ("DpDatadW", "DpDatadW"): "Forbid",   # no thin air
        ("ReldW", "PodRW"): "Allow",
    },
    "2+2W": {
        ("PodWW", "PodWW"): "Allow",
        ("WmbdWW", "WmbdWW"): "Allow",        # pb needs strong fences
        ("MbdWW", "MbdWW"): "Forbid",
    },
    "R": {
        ("PodWR", "PodWW"): "Allow",
        ("MbdWR", "MbdWW"): "Forbid",
    },
    "WRC": {
        ("PodRW", "PodRR"): "Allow",
        ("DpDatadW", "AcqdR"): "Allow",       # needs cumulativity
        ("ReldW", "RmbdRR"): "Forbid",        # Figure 5
        ("MbdRW", "MbdRR"): "Forbid",
    },
}


@pytest.mark.parametrize("family_name", sorted(FAMILIES))
def test_family_sweep(benchmark, lkmm, family_name):
    def experiment():
        verdicts = {}
        for member in family(family_name):
            verdicts[member.po_edges] = run_litmus(
                lkmm, member.program
            ).verdict
        return verdicts

    verdicts = once(benchmark, experiment)
    forbid = sum(1 for v in verdicts.values() if v == "Forbid")
    print(
        f"\n{family_name} family: {len(verdicts)} variations, "
        f"{forbid} Forbid / {len(verdicts) - forbid} Allow"
    )

    for edges, expected in ANCHORS[family_name].items():
        assert verdicts[edges] == expected, (family_name, edges)

    violations = check_monotonicity(verdicts)
    assert not violations, (
        f"{family_name}: strengthening flipped Forbid back to Allow: "
        f"{violations[:3]}"
    )


def test_family_totals(benchmark, lkmm):
    """The overall sweep: several hundred systematically generated tests,
    all judged, all monotone."""

    def experiment():
        rows = []
        total = 0
        for family_name in sorted(FAMILIES):
            verdicts = {}
            for member in family(family_name):
                verdicts[member.po_edges] = run_litmus(
                    lkmm, member.program
                ).verdict
            total += len(verdicts)
            forbid = sum(1 for v in verdicts.values() if v == "Forbid")
            rows.append(
                (family_name, len(verdicts), forbid, len(verdicts) - forbid)
            )
        return rows, total

    rows, total = once(benchmark, experiment)
    print_table(
        f"Systematic variation sweep ({total} tests)",
        ("Family", "variations", "Forbid", "Allow"),
        rows,
    )
    assert total >= 150
