"""An operational weak-memory simulator — the klitmus substitute.

The paper runs each litmus test billions of times as a kernel module and
histograms the final states (Section 5.1).  This simulator plays that
role: it *executes* an architecture-level program (produced by
:mod:`repro.hardware.compile`) under a randomised scheduler, with the
machinery that makes real hardware weak:

* a per-thread **store buffer**: a store becomes visible to its own thread
  immediately (forwarding) but to others only when the buffer drains —
  this alone yields TSO behaviours (SB) on x86;
* an **out-of-order window** (weak architectures only): an instruction may
  complete before earlier ones, unless an architecture rule, a fence, a
  same-location access, or a register dependency (address/data) forbids
  it; stores and everything else wait for unresolved branches (no
  speculative stores), which is why control dependencies order R -> W;
* native **RCU grace periods**: ``synchronize_rcu`` snapshots the threads
  currently inside a read-side critical section and cannot complete until
  each of them has left it, exactly the "wait for pre-existing readers"
  behaviour of the kernel's implementation.

The simulator is deliberately *at least as strong* as the corresponding
axiomatic model (e.g. it is multicopy atomic and never reorders dependent
loads, unlike the Alpha model): every outcome it can produce is allowed by
the architecture model, mirroring the paper's situation where "the
machines are stronger than required by our model".

Beyond final states, every run records a full *trace* — which write each
read observed (rf), the order writes reached memory (co), and the
dependency taints — from which :mod:`repro.hardware.trace` rebuilds a
:class:`~repro.executions.candidate.CandidateExecution`, enabling
execution-level (not merely state-level) validation against the axiomatic
models.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.events import (
    Pointer,
    RCU_LOCK,
    RCU_UNLOCK,
    SYNC_RCU,
    Value,
)
from repro.hardware.archspec import ArchSpec
from repro.litmus.ast import (
    BinOp,
    CmpXchg,
    Const,
    Expr,
    Fence,
    If,
    Instruction,
    Load,
    LocalAssign,
    Program,
    Reg,
    Rmw,
    Store,
    UnOp,
)
from repro.litmus.outcomes import FinalState

_LK_SPECIALS = (RCU_LOCK, RCU_UNLOCK, SYNC_RCU)

_NO_TAINTS: FrozenSet[int] = frozenset()


class SimulationError(Exception):
    """Raised when the simulator cannot make progress (deadlock)."""


@dataclass
class TraceEvent:
    """One recorded dynamic event (access or fence) of a run."""

    event_id: int
    tid: int
    po_index: int
    kind: str  # "R" | "W" | "F"
    tag: str
    loc: Optional[str] = None
    value: Optional[Value] = None
    addr_taints: FrozenSet[int] = _NO_TAINTS
    data_taints: FrozenSet[int] = _NO_TAINTS
    ctrl_taints: FrozenSet[int] = _NO_TAINTS


@dataclass
class RunTrace:
    """The full record of one run: events, rf, co, rmw pairs."""

    events: List[TraceEvent] = field(default_factory=list)
    #: read event id -> write event id it observed.
    rf: Dict[int, int] = field(default_factory=dict)
    #: location -> write event ids in the order they reached memory
    #: (initialising write first).
    co_order: Dict[str, List[int]] = field(default_factory=dict)
    #: (read id, write id) pairs of read-modify-writes.
    rmw_pairs: List[Tuple[int, int]] = field(default_factory=list)
    #: location -> id of its initialising write.
    init_ids: Dict[str, int] = field(default_factory=dict)
    _next_id: int = 0

    def new_id(self) -> int:
        event_id = self._next_id
        self._next_id += 1
        return event_id


@dataclass
class _PendingSync:
    """An in-flight synchronize_rcu: waits for the snapshotted readers."""

    thread: int
    waiting_for: Set[int]


class _ThreadState:
    """Runtime state of one simulated thread."""

    def __init__(self, tid: int, body: Sequence[Instruction]):
        self.tid = tid
        #: Flattened instruction stream; grows as branches resolve.
        self.stream: List[Instruction] = list(body)
        #: Indices of completed instructions.
        self.done: Set[int] = set()
        #: First index that is not yet complete.
        self.head = 0
        self.regs: Dict[str, Value] = {}
        #: Register -> ids of the dynamic reads its value derives from.
        self.taints: Dict[str, FrozenSet[int]] = {}
        #: Reads controlling every instruction from here on (resolved
        #: branches' condition taints).
        self.ctrl: FrozenSet[int] = _NO_TAINTS
        #: FIFO store buffer of (location, value, write event id).
        self.buffer: List[Tuple[str, Value, int]] = []
        self.rcu_depth = 0

    def advance_head(self) -> None:
        while self.head < len(self.stream) and self.head in self.done:
            self.head += 1

    @property
    def finished(self) -> bool:
        self.advance_head()
        return self.head >= len(self.stream) and not self.buffer


class _Memory:
    """Shared memory with write provenance."""

    def __init__(self, program: Program, trace: RunTrace):
        self.values: Dict[str, Value] = {}
        self.writer: Dict[str, int] = {}
        self.trace = trace
        for loc in program.locations():
            value = program.initial_value(loc)
            init_id = trace.new_id()
            trace.init_ids[loc] = init_id
            trace.events.append(
                TraceEvent(init_id, -1, len(trace.init_ids) - 1, "W", "once", loc, value)
            )
            trace.co_order.setdefault(loc, []).append(init_id)
            self.values[loc] = value
            self.writer[loc] = init_id

    def commit(self, loc: str, value: Value, write_id: int) -> None:
        self.values[loc] = value
        self.writer[loc] = write_id
        self.trace.co_order.setdefault(loc, []).append(write_id)


class OperationalSimulator:
    """Runs one architecture-level program to completion, many times."""

    def __init__(self, program: Program, arch: ArchSpec):
        self.program = program
        self.arch = arch

    # -- public API ------------------------------------------------------

    def run_once(self, rng: random.Random) -> FinalState:
        """One complete run under a random schedule; returns the final
        state (registers and memory)."""
        return self.run_once_traced(rng)[0]

    def run_once_traced(
        self, rng: random.Random
    ) -> Tuple[FinalState, RunTrace]:
        """One complete run; returns the final state and the full trace."""
        trace = RunTrace()
        memory = _Memory(self.program, trace)
        threads = [
            _ThreadState(tid, thread.body)
            for tid, thread in enumerate(self.program.threads)
        ]
        syncs: List[_PendingSync] = []

        while True:
            actions = self._eligible_actions(threads, memory, syncs)
            if not actions:
                if all(t.finished for t in threads) and not syncs:
                    break
                raise SimulationError(
                    f"no eligible action in {self.program.name} "
                    f"(deadlock at heads "
                    f"{[(t.tid, t.head) for t in threads]})"
                )
            kind, tid, index = actions[rng.randrange(len(actions))]
            thread = threads[tid]
            if kind == "drain":
                loc, value, write_id = thread.buffer.pop(0)
                memory.commit(loc, value, write_id)
            elif kind == "sync-done":
                syncs[:] = [s for s in syncs if s.thread != tid]
                thread.done.add(index)
            else:
                self._execute(thread, index, memory, threads, syncs, trace)

        registers = {
            (t.tid, name): value
            for t in threads
            for name, value in t.regs.items()
        }
        return FinalState(registers, memory.values), trace

    def sample(
        self,
        runs: int,
        seed: int = 0,
        rng: Optional[random.Random] = None,
    ) -> Dict[FinalState, int]:
        """Run ``runs`` times; histogram of final states.

        Scheduling randomness comes exclusively from ``rng`` when given,
        else from a fresh ``random.Random(seed)`` — never from global
        ``random`` state — so a fixed seed reproduces the exact histogram
        across processes and simulator instances.
        """
        if rng is None:
            rng = random.Random(seed)
        histogram: Dict[FinalState, int] = {}
        for _ in range(runs):
            state = self.run_once(rng)
            histogram[state] = histogram.get(state, 0) + 1
        return histogram

    # -- scheduling -------------------------------------------------------

    def _eligible_actions(
        self,
        threads: List[_ThreadState],
        memory: _Memory,
        syncs: List[_PendingSync],
    ) -> List[Tuple[str, int, int]]:
        actions: List[Tuple[str, int, int]] = []
        for thread in threads:
            if thread.buffer:
                actions.append(("drain", thread.tid, -1))
            thread.advance_head()
            window = self.arch.window if self.arch.out_of_order else 1
            limit = min(len(thread.stream), thread.head + window)
            for index in range(thread.head, limit):
                if index in thread.done:
                    continue
                ins = thread.stream[index]
                if not self._may_start(thread, index, ins, memory, syncs):
                    # An unresolved branch or blocking fence also stops
                    # anything later from being considered.
                    if self._blocks_window(ins):
                        break
                    continue
                actions.append(("execute", thread.tid, index))
                if self._blocks_window(ins):
                    break
        for sync in syncs:
            if not any(
                threads[tid].rcu_depth > 0 for tid in sync.waiting_for
            ):
                # All snapshotted readers have left their RSCS.
                thread = threads[sync.thread]
                index = next(
                    i
                    for i in range(thread.head, len(thread.stream))
                    if i not in thread.done
                    and isinstance(thread.stream[i], Fence)
                    and thread.stream[i].tag == SYNC_RCU
                )
                actions.append(("sync-done", sync.thread, index))
        return actions

    def _blocks_window(self, ins: Instruction) -> bool:
        """Instructions nothing may be reordered past (in fetch order)."""
        if isinstance(ins, If):
            return True  # no speculation past unresolved branches
        if isinstance(ins, (Rmw, CmpXchg)):
            return True
        if isinstance(ins, Fence) and ins.tag in _LK_SPECIALS:
            return True
        return False

    def _may_start(
        self,
        thread: _ThreadState,
        index: int,
        ins: Instruction,
        memory: _Memory,
        syncs: List[_PendingSync],
    ) -> bool:
        if isinstance(ins, Fence) and ins.tag == SYNC_RCU:
            # Starting a grace period is always possible (completion is the
            # separate "sync-done" action), but only once.
            if any(s.thread == thread.tid for s in syncs):
                return False
        # Register dependencies: every register the instruction needs must
        # have been produced already (producers are always po-earlier).
        if not self._regs_ready(thread, index, ins):
            return False
        # Reordering against pending earlier instructions.
        for earlier_index in range(thread.head, index):
            if earlier_index in thread.done:
                continue
            if not self._may_pass(thread.stream[earlier_index], ins):
                return False
        # A spin_lock can only start when the lock value matches.
        if isinstance(ins, Rmw) and ins.require_read_value is not None:
            loc = self._eval_addr(ins.addr, thread.regs)
            current, _ = self._buffered_value(thread, loc, memory)
            if current != ins.require_read_value:
                return False
        return True

    def _regs_ready(
        self, thread: _ThreadState, index: int, ins: Instruction
    ) -> bool:
        needed: Set[str] = set()
        for expr in _expr_operands(ins):
            _collect_regs(expr, needed)
        if not needed:
            return True
        produced: Set[str] = set(thread.regs)
        # Registers produced by *pending* earlier instructions don't count.
        for earlier_index in range(thread.head, index):
            if earlier_index in thread.done:
                continue
            earlier = thread.stream[earlier_index]
            target = _written_register(earlier)
            if target is not None:
                produced.discard(target)
        return needed <= produced

    def _may_pass(self, earlier: Instruction, later: Instruction) -> bool:
        """May ``later`` complete while ``earlier`` is still pending?"""
        if isinstance(earlier, (If, Rmw, CmpXchg)):
            return False
        if isinstance(later, (Rmw, CmpXchg)):
            return False
        if isinstance(earlier, LocalAssign) or isinstance(later, LocalAssign):
            return True
        if isinstance(earlier, Fence):
            if earlier.tag in _LK_SPECIALS:
                return False
            rule = self.arch.fence_rule(earlier.tag)
            if isinstance(later, Fence):
                return False  # fences stay ordered with each other
            later_kind = "R" if isinstance(later, Load) else "W"
            # later may pass the fence iff the fence blocks no (k, later)
            # pair for any earlier kind k — conservatively, iff later's
            # kind never appears as the blocked later side.
            return all(b != later_kind for (_, b) in rule.blocks)
        if isinstance(later, Fence):
            if later.tag in _LK_SPECIALS:
                return False
            rule = self.arch.fence_rule(later.tag)
            earlier_kind = "R" if isinstance(earlier, Load) else "W"
            return all(a != earlier_kind for (a, _) in rule.blocks)
        if not self.arch.out_of_order:
            return False
        # Same-location accesses stay in order (coherence).
        earlier_loc = _static_location(earlier)
        later_loc = _static_location(later)
        if earlier_loc is None or later_loc is None or earlier_loc == later_loc:
            return False
        # Acquire loads / release stores (instruction-based, e.g. ARMv8).
        if isinstance(earlier, Load) and earlier.tag == "ldar":
            return False
        if isinstance(later, Store) and later.tag == "stlr":
            return False
        return True

    # -- execution --------------------------------------------------------

    def _execute(
        self,
        thread: _ThreadState,
        index: int,
        memory: _Memory,
        threads: List[_ThreadState],
        syncs: List[_PendingSync],
        trace: RunTrace,
    ) -> None:
        ins = thread.stream[index]

        if isinstance(ins, LocalAssign):
            value, taints = self._eval_tainted(ins.expr, thread)
            thread.regs[ins.reg] = value
            thread.taints[ins.reg] = taints
            thread.done.add(index)
            return

        if isinstance(ins, Fence):
            if ins.tag == RCU_LOCK:
                thread.rcu_depth += 1
            elif ins.tag == RCU_UNLOCK:
                thread.rcu_depth -= 1
            elif ins.tag == SYNC_RCU:
                # Full-fence entry: drain, then wait for current readers.
                self._drain(thread, memory)
                waiting = {
                    t.tid
                    for t in threads
                    if t.tid != thread.tid and t.rcu_depth > 0
                }
                trace.events.append(
                    TraceEvent(
                        trace.new_id(), thread.tid, index, "F", ins.tag,
                        ctrl_taints=thread.ctrl,
                    )
                )
                syncs.append(_PendingSync(thread.tid, waiting))
                return  # completion happens via the "sync-done" action
            else:
                if self.arch.fence_rule(ins.tag).drains:
                    self._drain(thread, memory)
            trace.events.append(
                TraceEvent(
                    trace.new_id(), thread.tid, index, "F", ins.tag,
                    ctrl_taints=thread.ctrl,
                )
            )
            thread.done.add(index)
            return

        if isinstance(ins, Load):
            loc, addr_taints = self._eval_addr_tainted(ins.addr, thread)
            value, source = self._buffered_value(thread, loc, memory)
            read_id = trace.new_id()
            trace.events.append(
                TraceEvent(
                    read_id, thread.tid, index, "R", ins.tag, loc, value,
                    addr_taints=addr_taints, ctrl_taints=thread.ctrl,
                )
            )
            trace.rf[read_id] = source
            thread.regs[ins.reg] = value
            thread.taints[ins.reg] = frozenset({read_id})
            thread.done.add(index)
            return

        if isinstance(ins, Store):
            loc, addr_taints = self._eval_addr_tainted(ins.addr, thread)
            value, data_taints = self._eval_tainted(ins.value, thread)
            write_id = trace.new_id()
            trace.events.append(
                TraceEvent(
                    write_id, thread.tid, index, "W", ins.tag, loc, value,
                    addr_taints=addr_taints, data_taints=data_taints,
                    ctrl_taints=thread.ctrl,
                )
            )
            if self.arch.store_buffer:
                thread.buffer.append((loc, value, write_id))
            else:
                memory.commit(loc, value, write_id)
            thread.done.add(index)
            return

        if isinstance(ins, Rmw):
            # Atomic: drain the buffer, then read-modify-write memory.
            self._drain(thread, memory)
            loc, addr_taints = self._eval_addr_tainted(ins.addr, thread)
            old = memory.values[loc]
            read_id = trace.new_id()
            trace.events.append(
                TraceEvent(
                    read_id, thread.tid, index, "R", ins.read_tag, loc, old,
                    addr_taints=addr_taints, ctrl_taints=thread.ctrl,
                )
            )
            trace.rf[read_id] = memory.writer[loc]
            thread.regs[ins.reg] = old
            thread.taints[ins.reg] = frozenset({read_id})
            new_value, data_taints = self._eval_tainted(ins.new_value, thread)
            write_id = trace.new_id()
            trace.events.append(
                TraceEvent(
                    write_id, thread.tid, index, "W", ins.write_tag, loc, new_value,
                    addr_taints=addr_taints,
                    data_taints=data_taints | {read_id},
                    ctrl_taints=thread.ctrl,
                )
            )
            memory.commit(loc, new_value, write_id)
            trace.rmw_pairs.append((read_id, write_id))
            thread.done.add(index)
            return

        if isinstance(ins, CmpXchg):
            self._drain(thread, memory)
            loc, addr_taints = self._eval_addr_tainted(ins.addr, thread)
            old = memory.values[loc]
            expected, _ = self._eval_tainted(ins.expected, thread)
            read_id = trace.new_id()
            trace.events.append(
                TraceEvent(
                    read_id, thread.tid, index, "R", "once", loc, old,
                    addr_taints=addr_taints, ctrl_taints=thread.ctrl,
                )
            )
            trace.rf[read_id] = memory.writer[loc]
            thread.regs[ins.reg] = old
            thread.taints[ins.reg] = frozenset({read_id})
            if old == expected:
                new_value, data_taints = self._eval_tainted(ins.new_value, thread)
                write_id = trace.new_id()
                trace.events.append(
                    TraceEvent(
                        write_id, thread.tid, index, "W", "once", loc,
                        new_value, addr_taints=addr_taints,
                        data_taints=data_taints | {read_id},
                        ctrl_taints=thread.ctrl,
                    )
                )
                memory.commit(loc, new_value, write_id)
                trace.rmw_pairs.append((read_id, write_id))
            thread.done.add(index)
            return

        if isinstance(ins, If):
            cond, taints = self._eval_tainted(ins.cond, thread)
            taken = bool(cond) if not isinstance(cond, Pointer) else True
            branch = list(ins.then if taken else ins.orelse)
            thread.stream[index + 1 : index + 1] = branch
            thread.ctrl = thread.ctrl | taints
            thread.done.add(index)
            return

        raise SimulationError(f"cannot simulate {ins!r}")

    def _drain(self, thread: _ThreadState, memory: _Memory) -> None:
        for loc, value, write_id in thread.buffer:
            memory.commit(loc, value, write_id)
        thread.buffer.clear()

    def _buffered_value(
        self, thread: _ThreadState, loc: str, memory: _Memory
    ) -> Tuple[Value, int]:
        """The value visible to ``thread`` at ``loc`` and the id of the
        write providing it (store forwarding first)."""
        for buffered_loc, value, write_id in reversed(thread.buffer):
            if buffered_loc == loc:
                return value, write_id
        return memory.values[loc], memory.writer[loc]

    # -- expression evaluation -------------------------------------------

    def _eval(self, expr: Expr, regs: Dict[str, Value]) -> Value:
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, Reg):
            return regs.get(expr.name, 0)
        if isinstance(expr, BinOp):
            return expr.apply(self._eval(expr.lhs, regs), self._eval(expr.rhs, regs))
        if isinstance(expr, UnOp):
            return expr.apply(self._eval(expr.operand, regs))
        raise SimulationError(f"cannot evaluate {expr!r}")

    def _eval_tainted(
        self, expr: Expr, thread: _ThreadState
    ) -> Tuple[Value, FrozenSet[int]]:
        value = self._eval(expr, thread.regs)
        taints: Set[int] = set()
        regs: Set[str] = set()
        _collect_regs(expr, regs)
        for name in regs:
            taints |= thread.taints.get(name, _NO_TAINTS)
        return value, frozenset(taints)

    def _eval_addr(self, expr: Expr, regs: Dict[str, Value]) -> str:
        value = self._eval(expr, regs)
        if not isinstance(value, Pointer):
            raise SimulationError(f"non-pointer address {value!r}")
        return value.loc

    def _eval_addr_tainted(
        self, expr: Expr, thread: _ThreadState
    ) -> Tuple[str, FrozenSet[int]]:
        value, taints = self._eval_tainted(expr, thread)
        if not isinstance(value, Pointer):
            raise SimulationError(f"non-pointer address {value!r}")
        return value.loc, taints


# -- static helpers ----------------------------------------------------------


def _expr_operands(ins: Instruction) -> List[Expr]:
    if isinstance(ins, Load):
        return [ins.addr]
    if isinstance(ins, Store):
        return [ins.addr, ins.value]
    if isinstance(ins, Rmw):
        # new_value may reference the destination register (the value just
        # read), which the RMW itself produces — don't require it.
        needed = []
        _collect_regs_excluding(ins.new_value, ins.reg, needed)
        return [ins.addr] + needed
    if isinstance(ins, CmpXchg):
        needed = []
        _collect_regs_excluding(ins.new_value, ins.reg, needed)
        return [ins.addr, ins.expected] + needed
    if isinstance(ins, If):
        return [ins.cond]
    if isinstance(ins, LocalAssign):
        return [ins.expr]
    return []


def _collect_regs(expr: Expr, out: Set[str]) -> None:
    if isinstance(expr, Reg):
        out.add(expr.name)
    elif isinstance(expr, BinOp):
        _collect_regs(expr.lhs, out)
        _collect_regs(expr.rhs, out)
    elif isinstance(expr, UnOp):
        _collect_regs(expr.operand, out)


def _collect_regs_excluding(expr: Expr, excluded: str, out: List[Expr]) -> None:
    regs: Set[str] = set()
    _collect_regs(expr, regs)
    regs.discard(excluded)
    out.extend(Reg(name) for name in regs)


def _written_register(ins: Instruction) -> Optional[str]:
    if isinstance(ins, (Load, Rmw, CmpXchg)):
        return ins.reg
    if isinstance(ins, LocalAssign):
        return ins.reg
    return None


def _static_location(ins: Instruction) -> Optional[str]:
    """The statically-known location of an access, or None if dynamic."""
    addr = ins.addr if isinstance(ins, (Load, Store)) else None
    if isinstance(addr, Const) and isinstance(addr.value, Pointer):
        return addr.value.loc
    return None
