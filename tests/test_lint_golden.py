"""Golden snapshot of lint finding codes over the library and the models.

Freezes which checker fires on which input, by stable code.  If a checker
legitimately changes behaviour, regenerate and review::

    PYTHONPATH=src python benchmarks/regen_lint_golden.py
    git diff tests/data/lint_golden.json
"""

import json
from pathlib import Path

from repro.analysis.catlint import lint_all_models
from repro.analysis.litmuslint import lint_library

GOLDEN_PATH = Path(__file__).parent / "data" / "lint_golden.json"


def current_snapshot():
    return {
        "library": {
            name: sorted(f"{f.code}:{f.category}" for f in findings)
            for name, findings in lint_library().items()
        },
        "models": {
            name: sorted(f"{f.code}:{f.category}" for f in findings)
            for name, findings in lint_all_models().items()
        },
    }


class TestLintGolden:
    def test_snapshot_matches(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        assert current_snapshot() == golden, (
            "lint findings drifted from tests/data/lint_golden.json; if "
            "intentional, regenerate with "
            "`PYTHONPATH=src python benchmarks/regen_lint_golden.py` "
            "and review the diff"
        )

    def test_snapshot_covers_whole_library(self):
        from repro.litmus import library

        golden = json.loads(GOLDEN_PATH.read_text())
        assert sorted(golden["library"]) == library.all_names()

    def test_no_errors_anywhere(self):
        # The snapshot may contain warnings (the intended lock hand-off),
        # but never error codes: the tree must stay `repro-lint`-gate
        # clean.
        from repro.analysis.findings import CATEGORIES, ERROR

        error_codes = {
            code for code, severity in CATEGORIES.values() if severity == ERROR
        }
        golden = json.loads(GOLDEN_PATH.read_text())
        for section in golden.values():
            for name, codes in section.items():
                fired = {entry.split(":", 1)[0] for entry in codes}
                assert not fired & error_codes, name
