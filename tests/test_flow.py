"""Tests for the dataflow framework and the path-sensitive checkers."""

import pytest

from repro.analysis.flow import (
    Cfg,
    ConstantPropagation,
    Liveness,
    ReachingDefinitions,
    RegionAnalysis,
    UNINIT,
    VARIES,
    build_cfg,
    check_dependencies,
    check_locks,
    check_rcu,
    environment,
    fold_expr,
    lint_program_flow,
    solve,
)
from repro.litmus.ast import BinOp, If, Reg
from repro.litmus.parser import parse_litmus


def program(text):
    return parse_litmus(text)


def categories(findings):
    return [f.category for f in findings]


def findings_for(text, category=None):
    found = lint_program_flow(program(text))
    if category is None:
        return found
    return [f for f in found if f.category == category]


# ---------------------------------------------------------------------------
# CFG construction
# ---------------------------------------------------------------------------


class TestCfg:
    def test_straight_line_is_one_block(self):
        prog = program(
            "C t\n{ x=0; }\n"
            "P0(int *x) { WRITE_ONCE(*x, 1); int r0 = READ_ONCE(*x); }\n"
            "exists (0:r0=1)\n"
        )
        cfg = prog.threads[0].cfg()
        assert len(cfg.blocks) == 1
        assert len(cfg.entry.instructions) == 2
        assert cfg.path_count() == 1

    def test_if_makes_a_diamond(self):
        prog = program(
            "C t\n{ x=0; y=0; }\n"
            "P0(int *x, int *y) {\n"
            "  int r0 = READ_ONCE(*x);\n"
            "  if (r0) { WRITE_ONCE(*y, 1); } else { WRITE_ONCE(*y, 2); }\n"
            "  WRITE_ONCE(*y, 3);\n"
            "}\n"
            "exists (0:r0=1)\n"
        )
        cfg = prog.threads[0].cfg()
        assert len(cfg.blocks) == 4  # entry, then, else, join
        entry = cfg.entry
        assert isinstance(entry.branch, If)
        assert len(entry.succs) == 2
        assert cfg.exit.instructions  # the trailing store lands in the join
        assert cfg.path_count() == 2

    def test_block_ids_increase_along_edges(self):
        prog = program(
            "C t\n{ x=0; }\n"
            "P0(int *x) {\n"
            "  int r0 = READ_ONCE(*x);\n"
            "  if (r0) { if (r0) { WRITE_ONCE(*x, 1); } }\n"
            "  WRITE_ONCE(*x, 2);\n"
            "}\n"
            "exists (0:r0=1)\n"
        )
        cfg = prog.threads[0].cfg()
        for block in cfg.blocks:
            for succ in block.succs:
                assert succ > block.bid  # topological: the DAG invariant
        assert cfg.path_count() == 3

    def test_program_cfgs_matches_threads(self):
        prog = program(
            "C t\n{ x=0; }\n"
            "P0(int *x) { WRITE_ONCE(*x, 1); }\n"
            "P1(int *x) { int r0 = READ_ONCE(*x); }\n"
            "exists (1:r0=1)\n"
        )
        cfgs = prog.cfgs()
        assert len(cfgs) == 2
        assert all(isinstance(cfg, Cfg) for cfg in cfgs)


# ---------------------------------------------------------------------------
# The solver and the concrete analyses
# ---------------------------------------------------------------------------


DIAMOND = (
    "C t\n{ x=0; y=0; }\n"
    "P0(int *x, int *y) {\n"
    "  int r0 = READ_ONCE(*x);\n"
    "  int r1 = 0;\n"
    "  if (r0) { r1 = 1; }\n"
    "  WRITE_ONCE(*y, r1);\n"
    "}\n"
    "P1(int *x) { WRITE_ONCE(*x, 1); }\n"
    "exists (0:r0=1)\n"
)


class TestAnalyses:
    def test_reaching_definitions_merge_at_join(self):
        cfg = program(DIAMOND).threads[0].cfg()
        result = solve(cfg, ReachingDefinitions(cfg))
        exit_value = result.at_exit()
        r1_sites = {site for reg, site in exit_value if reg == "r1"}
        assert len(r1_sites) == 2  # both assignments reach the final store
        assert UNINIT not in r1_sites

    def test_liveness_respects_exit_live(self):
        cfg = program(DIAMOND).threads[0].cfg()
        live_at_entry = solve(cfg, Liveness(exit_live={"r0"})).at_exit()
        # Nothing is live before the first instruction: r0 is defined here.
        assert "r0" not in live_at_entry

    def test_constant_propagation_joins_to_varies(self):
        cfg = program(DIAMOND).threads[0].cfg()
        result = solve(cfg, ConstantPropagation())
        exit_env = dict(result.at_exit())
        assert exit_env["r1"] == VARIES  # 0 on one path, 1 on the other

    def test_region_analysis_tracks_paths_separately(self):
        prog = program(
            "C t\n{ x=0; }\n"
            "P0(int *x) {\n"
            "  int r0 = READ_ONCE(*x);\n"
            "  if (r0) { rcu_read_lock(); }\n"
            "  rcu_read_unlock();\n"
            "}\n"
            "exists (0:r0=1)\n"
        )
        cfg = prog.threads[0].cfg()
        result = solve(cfg, RegionAnalysis())
        depths = {d for d, _ in result.at_exit()}
        assert depths == {0}  # both paths recover, but ...
        # ... the unlock itself sees both depth-0 and depth-1 states:
        states_at_unlock = [
            value for _, ins, value in result.states()
            if getattr(ins, "tag", None) == "rcu-unlock"
        ]
        assert {d for d, _ in states_at_unlock[0]} == {0, 1}

    def test_fold_expr_identities(self):
        r = Reg("r0")
        assert fold_expr(BinOp("^", r, r)) == 0
        assert fold_expr(BinOp("-", r, r)) == 0
        assert fold_expr(BinOp("==", r, r)) == 1
        assert fold_expr(BinOp("*", r, BinOp("^", r, r))) == 0
        assert fold_expr(r) is None
        assert fold_expr(r, {"r0": 7}) == 7

    def test_environment_drops_varies(self):
        assert environment([("a", 3), ("b", VARIES)]) == {"a": 3}


# ---------------------------------------------------------------------------
# RCU checker — including the acceptance example
# ---------------------------------------------------------------------------


class TestRcuChecker:
    def test_conditionally_opened_section_flagged(self):
        # The acceptance example: lock under `if`, unlock unconditional.
        findings = findings_for(
            "C t\n{ x=0; }\n"
            "P0(int *x) {\n"
            "  int r0 = READ_ONCE(*x);\n"
            "  if (r0) { rcu_read_lock(); }\n"
            "  rcu_read_unlock();\n"
            "}\n"
            "P1(int *x) { WRITE_ONCE(*x, 1); }\n"
            "exists (0:r0=1)\n",
            "rcu-unbalanced",
        )
        assert len(findings) == 1
        assert "some path" in findings[0].message
        assert findings[0].is_error
        assert findings[0].line == 6  # the rcu_read_unlock() line

    def test_unlock_without_lock_on_every_path(self):
        findings = findings_for(
            "C t\n{ x=0; }\n"
            "P0(int *x) { rcu_read_unlock(); int r0 = READ_ONCE(*x); }\n"
            "P1(int *x) { WRITE_ONCE(*x, 1); }\n"
            "exists (0:r0=1)\n",
            "rcu-unbalanced",
        )
        assert len(findings) == 1
        assert "every path" in findings[0].message

    def test_section_left_open_at_exit(self):
        findings = findings_for(
            "C t\n{ x=0; }\n"
            "P0(int *x) { rcu_read_lock(); int r0 = READ_ONCE(*x); }\n"
            "P1(int *x) { WRITE_ONCE(*x, 1); }\n"
            "exists (0:r0=1)\n",
            "rcu-unbalanced",
        )
        assert len(findings) == 1
        assert "thread exit" in findings[0].message

    def test_sync_rcu_inside_read_side_section(self):
        findings = findings_for(
            "C t\n{ x=0; }\n"
            "P0(int *x) {\n"
            "  rcu_read_lock();\n"
            "  synchronize_rcu();\n"
            "  int r0 = READ_ONCE(*x);\n"
            "  rcu_read_unlock();\n"
            "}\n"
            "P1(int *x) { WRITE_ONCE(*x, 1); }\n"
            "exists (0:r0=1)\n",
            "rcu-sync-in-critical-section",
        )
        assert len(findings) == 1
        assert "deadlock" in findings[0].message

    def test_over_nesting(self):
        body = "rcu_read_lock(); " * 3 + "int r0 = READ_ONCE(*x); " + (
            "rcu_read_unlock(); " * 3
        )
        findings = findings_for(
            "C t\n{ x=0; }\n"
            f"P0(int *x) {{ {body} }}\n"
            "P1(int *x) { WRITE_ONCE(*x, 1); }\n"
            "exists (0:r0=1)\n",
            "rcu-over-nesting",
        )
        assert len(findings) == 1
        assert not findings[0].is_error

    def test_balanced_nesting_is_clean(self):
        from repro.litmus import library

        assert check_rcu(library.get("RCU-MP+nested")) == []
        assert check_rcu(library.get("RCU-MP")) == []


# ---------------------------------------------------------------------------
# Lock checker
# ---------------------------------------------------------------------------


class TestLockChecker:
    def test_double_lock_self_deadlock(self):
        findings = findings_for(
            "C t\n{ l=0; x=0; }\n"
            "P0(int *l, int *x) {\n"
            "  spin_lock(l);\n"
            "  spin_lock(l);\n"
            "  WRITE_ONCE(*x, 1);\n"
            "  spin_unlock(l);\n"
            "}\n"
            "P1(int *x) { int r0 = READ_ONCE(*x); }\n"
            "exists (1:r0=1)\n",
            "double-lock",
        )
        assert len(findings) == 1
        assert findings[0].is_error
        assert findings[0].line == 5  # the second spin_lock(l)

    def test_conditional_double_lock_is_some_path(self):
        findings = findings_for(
            "C t\n{ l=0; x=0; }\n"
            "P0(int *l, int *x) {\n"
            "  int r0 = READ_ONCE(*x);\n"
            "  if (r0) { spin_lock(l); }\n"
            "  spin_lock(l);\n"
            "  spin_unlock(l);\n"
            "}\n"
            "P1(int *x) { WRITE_ONCE(*x, 1); }\n"
            "exists (0:r0=1)\n",
            "double-lock",
        )
        assert len(findings) == 1
        assert "some path" in findings[0].message

    def test_unlock_without_lock_warns(self):
        findings = findings_for(
            "C t\n{ l=1; x=0; }\n"
            "P0(int *l, int *x) { WRITE_ONCE(*x, 1); spin_unlock(l); }\n"
            "P1(int *l, int *x) { spin_lock(l); int r0 = READ_ONCE(*x); }\n"
            "exists (1:r0=1)\n",
        )
        assert "unlock-without-lock" in categories(findings)
        assert "lock-held-at-exit" in categories(findings)
        assert not any(f.is_error for f in findings)

    def test_balanced_locking_is_clean(self):
        from repro.litmus import library

        assert check_locks(library.get("lock-mutex")) == []
        assert check_locks(library.get("SB+unlock-lock")) == []


# ---------------------------------------------------------------------------
# Fragile dependencies — including the acceptance example
# ---------------------------------------------------------------------------


class TestDependencyChecker:
    def test_xor_address_dependency_flagged(self):
        # The acceptance example: `y + (r0 ^ r0)` is an address dependency
        # a compiler folds to `y`.
        findings = findings_for(
            "C t\n{ x=0; y=0; }\n"
            "P0(int *x, int *y) {\n"
            "  int r0 = READ_ONCE(*x);\n"
            "  int r1 = READ_ONCE(*(y + (r0 ^ r0)));\n"
            "}\n"
            "P1(int *x, int *y) { WRITE_ONCE(*y, 1); smp_wmb(); "
            "WRITE_ONCE(*x, 1); }\n"
            "exists (0:r0=1 /\\ 0:r1=0)\n",
            "fragile-dependency",
        )
        assert len(findings) == 1
        assert "address dependency" in findings[0].message
        assert findings[0].line == 5  # the dependent READ_ONCE

    def test_data_dependency_minus_self(self):
        findings = findings_for(
            "C t\n{ x=0; y=0; }\n"
            "P0(int *x, int *y) {\n"
            "  int r0 = READ_ONCE(*x);\n"
            "  WRITE_ONCE(*y, r0 - r0);\n"
            "}\n"
            "P1(int *x) { WRITE_ONCE(*x, 1); }\n"
            "exists (0:r0=1)\n",
            "fragile-dependency",
        )
        assert len(findings) == 1
        assert "data dependency" in findings[0].message

    def test_folds_through_local_constants(self):
        # `r1 = r0 & 0` then using r1 is just as fragile as inlining it.
        findings = findings_for(
            "C t\n{ x=0; y=0; }\n"
            "P0(int *x, int *y) {\n"
            "  int r0 = READ_ONCE(*x);\n"
            "  int r1 = r0 & 0;\n"
            "  WRITE_ONCE(*y, r1);\n"
            "}\n"
            "P1(int *x) { WRITE_ONCE(*x, 1); }\n"
            "exists (0:r0=1)\n",
            "fragile-dependency",
        )
        assert len(findings) == 1

    def test_constant_control_dependency(self):
        findings = findings_for(
            "C t\n{ x=0; y=0; }\n"
            "P0(int *x, int *y) {\n"
            "  int r0 = READ_ONCE(*x);\n"
            "  if (r0 == r0) { WRITE_ONCE(*y, 1); }\n"
            "}\n"
            "P1(int *x) { WRITE_ONCE(*x, 1); }\n"
            "exists (0:r0=1)\n",
            "constant-condition",
        )
        assert len(findings) == 1
        assert "control dependency" in findings[0].message

    def test_real_dependencies_are_clean(self):
        from repro.litmus import library

        assert check_dependencies(library.get("LB+datas")) == []
        assert check_dependencies(library.get("LB+ctrl")) == []

    def test_plain_constants_not_flagged(self):
        findings = findings_for(
            "C t\n{ x=0; }\n"
            "P0(int *x) { WRITE_ONCE(*x, 1); }\n"
            "P1(int *x) { int r0 = READ_ONCE(*x); }\n"
            "exists (1:r0=1)\n",
        )
        assert "fragile-dependency" not in categories(findings)


# ---------------------------------------------------------------------------
# Dataflow lint: uninit reads, dead stores
# ---------------------------------------------------------------------------


class TestDataflowLint:
    def test_register_assigned_on_one_path_only(self):
        findings = findings_for(
            "C t\n{ x=0; y=0; }\n"
            "P0(int *x, int *y) {\n"
            "  int r0 = READ_ONCE(*x);\n"
            "  int r1;\n"
            "  if (r0) { r1 = 1; }\n"
            "  WRITE_ONCE(*y, r1);\n"
            "}\n"
            "P1(int *x) { WRITE_ONCE(*x, 1); }\n"
            "exists (0:r0=1)\n",
            "uninit-register-read",
        )
        assert len(findings) == 1
        assert "some path" in findings[0].message

    def test_both_arms_assign_is_clean(self):
        findings = findings_for(
            "C t\n{ x=0; y=0; }\n"
            "P0(int *x, int *y) {\n"
            "  int r0 = READ_ONCE(*x);\n"
            "  int r1;\n"
            "  if (r0) { r1 = 1; } else { r1 = 2; }\n"
            "  WRITE_ONCE(*y, r1);\n"
            "}\n"
            "P1(int *x) { WRITE_ONCE(*x, 1); }\n"
            "exists (0:r0=1)\n",
            "uninit-register-read",
        )
        assert findings == []

    def test_uninitialized_location_keeps_line(self):
        findings = findings_for(
            "C t\n{ }\n"
            "P0(int *x) { int r0 = READ_ONCE(*x); }\n"
            "exists (0:r0=0)\n",
            "uninitialized-read",
        )
        assert len(findings) == 1
        assert findings[0].line == 3

    def test_lint_program_flow_on_whole_library_has_no_errors(self):
        from repro.litmus import library

        for name in library.all_names():
            errors = [
                f for f in lint_program_flow(library.get(name)) if f.is_error
            ]
            assert errors == [], name


# ---------------------------------------------------------------------------
# Line numbers from the parser
# ---------------------------------------------------------------------------


class TestLineNumbers:
    def test_instructions_carry_lines(self):
        prog = program(
            "C t\n"            # line 1
            "{ x=0; }\n"       # line 2
            "P0(int *x) {\n"   # line 3
            "  WRITE_ONCE(*x, 1);\n"   # line 4
            "  int r0 = READ_ONCE(*x);\n"  # line 5
            "}\n"
            "exists (0:r0=1)\n"
        )
        body = prog.threads[0].body
        assert body[0].lineno == 4
        assert body[1].lineno == 5

    def test_if_body_lines(self):
        prog = program(
            "C t\n{ x=0; }\n"
            "P0(int *x) {\n"            # 3
            "  int r0 = READ_ONCE(*x);\n"  # 4
            "  if (r0) {\n"             # 5
            "    WRITE_ONCE(*x, 2);\n"  # 6
            "  }\n"
            "}\n"
            "exists (0:r0=1)\n"
        )
        branch = prog.threads[0].body[1]
        assert branch.lineno == 5
        assert branch.then[0].lineno == 6

    def test_dsl_programs_have_no_lines(self):
        from repro.litmus import library

        prog = program(library.SOURCES["MP"])
        # Parsed programs have lines; equality with DSL-built programs is
        # unaffected because lineno does not participate in comparison.
        assert prog.threads[0].body[0].lineno is not None
        assert prog == library.get("MP")
