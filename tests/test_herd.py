"""Tests for the top-level herd-style runner."""

import pytest

from repro.herd import ALLOW, FORBID, run_litmus, verdicts
from repro.litmus import dsl, library
from repro.lkmm import LinuxKernelModel


class TestRunLitmus:
    def test_counts_consistent(self, lkmm, mp_program):
        result = run_litmus(lkmm, mp_program)
        assert result.candidates == 4
        assert result.allowed == 3
        assert result.witnesses == 0
        assert result.verdict == FORBID

    def test_witness_execution_kept(self, lkmm, sb_program):
        result = run_litmus(lkmm, sb_program)
        assert result.verdict == ALLOW
        assert result.witness_execution is not None
        assert sb_program.condition.evaluate(
            result.witness_execution.final_state
        )

    def test_forbidden_witness_kept(self, lkmm, mp_program):
        result = run_litmus(lkmm, mp_program)
        assert result.forbidden_witness is not None
        assert mp_program.condition.evaluate(
            result.forbidden_witness.final_state
        )

    def test_states_collected(self, lkmm, mp_program):
        result = run_litmus(lkmm, mp_program)
        assert len(result.states) == 3

    def test_observation_summary(self, lkmm):
        result = run_litmus(lkmm, library.get("SB"))
        assert result.observation == "Sometimes"
        result = run_litmus(lkmm, library.get("MP+wmb+rmb"))
        assert result.observation == "Never"

    def test_describe_mentions_name_and_verdict(self, lkmm, mp_program):
        text = run_litmus(lkmm, mp_program).describe()
        assert "MP+wmb+rmb" in text and "Forbid" in text

    def test_forall_condition(self, lkmm):
        program = dsl.program(
            "forall-test",
            dsl.thread(dsl.write_once("x", 1)),
            condition=dsl.forall(dsl.LocValue("x", 1)),
        )
        assert run_litmus(lkmm, program).verdict == ALLOW

    def test_forall_fails_when_not_universal(self, lkmm):
        program = dsl.program(
            "forall-fail",
            dsl.thread(dsl.read_once("r0", "x")),
            dsl.thread(dsl.write_once("x", 1)),
            condition=dsl.forall(dsl.RegValue(0, "r0", 1)),
        )
        assert run_litmus(lkmm, program).verdict == FORBID

    def test_no_condition_counts_everything(self, lkmm):
        program = dsl.program("plain", dsl.thread(dsl.write_once("x", 1)))
        result = run_litmus(lkmm, program)
        assert result.witnesses == result.allowed == 1


class TestVerdictsTable:
    def test_multiple_models(self, lkmm, c11):
        table = verdicts([lkmm, c11], [library.get("RWC+mbs")])
        row = table["RWC+mbs"]
        assert row["LKMM"] == FORBID
        assert row["C11"] == ALLOW
