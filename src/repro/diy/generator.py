"""Synthesising litmus tests from cycles of relaxation edges.

Given a cycle such as ``Rfe PodRR Fre MbdWW`` the generator:

1. resolves the kind (read/write) and annotation of every node — node *i*
   is the target of edge *i-1* and the source of edge *i*;
2. groups nodes into threads (communication edges change thread) and
   assigns locations (communication edges stay on one location,
   program-order edges move to a different one);
3. emits the code, realising fences and dependencies (dependencies use
   the diy trick of a false computation, ``p + (r & 0)``, which preserves
   the value while carrying the taint);
4. builds the ``exists`` clause identifying exactly the cycle's execution:
   each read's value names its reads-from source (or 0 for an initial
   read), and multi-write locations pin the final value.

The systematic exploration of Section 5 ("cycles of edges of increasing
size") is :func:`generate_cycles`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.events import ACQUIRE, ONCE, Pointer, READ, RELEASE, WRITE
from repro.diy.edges import ANY, EDGES, Edge, edge
from repro.litmus.ast import (
    BinOp,
    Const,
    Fence,
    If,
    Instruction,
    Load,
    Program,
    Reg,
    Store,
    Thread,
)
from repro.litmus.outcomes import (
    Condition,
    Exists,
    LocValue,
    RegValue,
    conj,
    exists,
)


class CycleError(Exception):
    """Raised when a cycle cannot be realised as a litmus test."""


@dataclass
class _Node:
    index: int
    kind: str
    annot: str
    thread: int = -1
    loc: str = ""
    value: int = 0  # value written (writes only)
    reg: str = ""  # destination register (reads only)


def name_of_cycle(edge_names: Sequence[str]) -> str:
    return "+".join(edge_names)


def generate(edge_names: Sequence[str], name: Optional[str] = None) -> Program:
    """Build the litmus test realising the given cycle of edges."""
    if not edge_names:
        raise CycleError("empty cycle")
    edges = [edge(n) if isinstance(n, str) else n for n in edge_names]
    n = len(edges)

    # Rotate so the cycle starts just after an external edge: node 0 then
    # begins thread 0.
    externals = [i for i, e in enumerate(edges) if e.external]
    if not externals:
        raise CycleError("a cycle needs at least one communication edge")
    shift = (externals[-1] + 1) % n
    edges = edges[shift:] + edges[:shift]

    nodes = [_resolve_node(edges, i) for i in range(n)]
    _assign_threads(edges, nodes)
    _assign_locations(edges, nodes)
    _assign_values(edges, nodes)
    condition = _build_condition(edges, nodes)
    threads = _emit_threads(edges, nodes)

    init = {node.loc: 0 for node in nodes}
    return Program(
        name=name or name_of_cycle([e.name for e in edges]),
        threads=tuple(threads),
        init=init,
        condition=condition,
    )


# -- resolution ---------------------------------------------------------------


def _resolve_node(edges: List[Edge], index: int) -> _Node:
    outgoing = edges[index]
    incoming = edges[index - 1]
    kinds = {outgoing.src, incoming.tgt} - {ANY}
    if not kinds:
        raise CycleError(
            f"node {index} has no determined kind "
            f"(between {incoming.name} and {outgoing.name})"
        )
    if len(kinds) > 1:
        raise CycleError(
            f"node {index} must be both {' and '.join(sorted(kinds))} "
            f"(between {incoming.name} and {outgoing.name})"
        )
    # ``kinds`` has exactly one element here, but extract it with min()
    # rather than pop(): set iteration order depends on string hashes,
    # which vary across processes (PYTHONHASHSEED), and the generator
    # must be bit-for-bit deterministic across worker processes.
    kind = min(kinds)

    annots = {outgoing.src_annot, incoming.tgt_annot} - {None}
    if len(annots) > 1:
        raise CycleError(
            f"conflicting annotations at node {index}: {sorted(annots)}"
        )
    annot = min(annots) if annots else ONCE
    if annot == ACQUIRE and kind != READ:
        raise CycleError(f"acquire annotation on a write at node {index}")
    if annot == RELEASE and kind != WRITE:
        raise CycleError(f"release annotation on a read at node {index}")
    return _Node(index, kind, annot)


def _assign_threads(edges: List[Edge], nodes: List[_Node]) -> None:
    thread = 0
    for i, node in enumerate(nodes):
        node.thread = thread
        if edges[i].external:
            thread += 1
    # The final external edge wraps back to node 0 / thread 0, which is
    # guaranteed by the rotation in generate().


def _assign_locations(edges: List[Edge], nodes: List[_Node]) -> None:
    n = len(nodes)
    # Union-find over node indices: external edges identify locations.
    parent = list(range(n))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for i, e in enumerate(edges):
        if e.external:
            a, b = find(i), find((i + 1) % n)
            parent[a] = b

    # Internal ("different location") edges must join distinct classes.
    for i, e in enumerate(edges):
        if not e.external and find(i) == find((i + 1) % n):
            raise CycleError(
                f"edge {e.name} requires a location change but the cycle "
                "identifies both endpoints' locations"
            )

    names = ["x", "y", "z", "a", "b", "c", "d", "e"]
    class_loc: Dict[int, str] = {}
    for node in nodes:
        root = find(node.index)
        if root not in class_loc:
            if len(class_loc) >= len(names):
                raise CycleError("too many locations in cycle")
            class_loc[root] = names[len(class_loc)]
        node.loc = class_loc[root]


def _assign_values(edges: List[Edge], nodes: List[_Node]) -> None:
    by_loc: Dict[str, List[_Node]] = {}
    for node in nodes:
        if node.kind == WRITE:
            by_loc.setdefault(node.loc, []).append(node)
    for writes in by_loc.values():
        for value, node in enumerate(writes, start=1):
            node.value = value
    reads = 0
    for node in nodes:
        if node.kind == READ:
            node.reg = f"r{reads}"
            reads += 1


# -- the exists clause -------------------------------------------------------


def _build_condition(edges: List[Edge], nodes: List[_Node]) -> Exists:
    n = len(nodes)
    rf_source: Dict[int, _Node] = {}
    co_constraints: Dict[str, List[Tuple[_Node, _Node]]] = {}

    for i, e in enumerate(edges):
        src, tgt = nodes[i], nodes[(i + 1) % n]
        if e.comm == "rf":
            rf_source[tgt.index] = src
        elif e.comm == "co":
            co_constraints.setdefault(src.loc, []).append((src, tgt))

    # Fre(r, w): r's source must be co-before w.
    for i, e in enumerate(edges):
        if e.comm != "fr":
            continue
        read, write = nodes[i], nodes[(i + 1) % n]
        source = rf_source.get(read.index)
        if source is not None:
            co_constraints.setdefault(write.loc, []).append((source, write))

    clauses: List[Condition] = []
    for node in nodes:
        if node.kind != READ:
            continue
        source = rf_source.get(node.index)
        clauses.append(
            RegValue(node.thread, node.reg, source.value if source else 0)
        )

    # Locations with several writes: pin the final (co-maximal) value.
    writes_per_loc: Dict[str, List[_Node]] = {}
    for node in nodes:
        if node.kind == WRITE:
            writes_per_loc.setdefault(node.loc, []).append(node)
    for loc, writes in writes_per_loc.items():
        if len(writes) == 1:
            continue
        maximal = _co_maximal(writes, co_constraints.get(loc, []))
        clauses.append(LocValue(loc, maximal.value))

    return exists(conj(*clauses))


def _co_maximal(
    writes: List[_Node], constraints: List[Tuple[_Node, _Node]]
) -> _Node:
    """The unique co-maximal write, per the cycle's constraints."""
    dominated: Set[int] = {a.index for a, _ in constraints}
    candidates = [w for w in writes if w.index not in dominated]
    if len(candidates) != 1:
        raise CycleError(
            "cannot determine a unique final write for location "
            f"{writes[0].loc}: the cycle under-constrains coherence"
        )
    return candidates[0]


# -- code emission -------------------------------------------------------------


def _emit_threads(edges: List[Edge], nodes: List[_Node]) -> List[Thread]:
    n = len(nodes)
    threads: Dict[int, List[Instruction]] = {}
    for i, node in enumerate(nodes):
        incoming = edges[i - 1]
        body = threads.setdefault(node.thread, [])
        dep = incoming.dep if not incoming.external else None
        dep_reg = nodes[i - 1].reg if dep else ""
        instruction = _emit_access(node, dep, dep_reg)
        if not incoming.external and incoming.fence:
            body.append(Fence(incoming.fence))
        if dep == "ctrl":
            body.append(
                If(_false_guard(dep_reg), (instruction,), ())
            )
        else:
            body.append(instruction)
    return [threads[tid] and Thread(tuple(threads[tid])) for tid in sorted(threads)]


def _false_guard(reg: str) -> BinOp:
    """``(r & 0) == 0`` — always true, but control-dependent on r."""
    return BinOp("==", BinOp("&", Reg(reg), Const(0)), Const(0))


def _emit_access(node: _Node, dep: Optional[str], dep_reg: str) -> Instruction:
    addr = Const(Pointer(node.loc))
    if dep == "addr":
        # p + (r & 0): same address, tainted by r.
        addr = BinOp("+", addr, BinOp("&", Reg(dep_reg), Const(0)))
    if node.kind == READ:
        return Load(node.reg, addr, node.annot)
    value = Const(node.value)
    if dep == "data":
        value = BinOp("|", value, BinOp("&", Reg(dep_reg), Const(0)))
    return Store(addr, value, node.annot)


# -- systematic exploration -----------------------------------------------------


def canonical_cycle(edge_names: Sequence[str]) -> Tuple[str, ...]:
    """The lexicographically least rotation of a cycle of edge names.

    Rotations of a cycle describe the same test, so this tuple is the
    canonical identity used for deduplication — by :func:`generate_cycles`
    and by the corpus generator (:mod:`repro.corpus`).  Purely a function
    of the names: stable across processes and interpreter hash seeds.
    """
    names = tuple(str(n) for n in edge_names)
    return min(names[i:] + names[:i] for i in range(len(names)))


def generate_cycles(
    vocabulary: Sequence[str],
    length: int,
    max_tests: Optional[int] = None,
) -> Iterator[Program]:
    """Every realisable cycle of exactly ``length`` edges over
    ``vocabulary``, deduplicated up to rotation.

    This is the systematic-variation mode of Section 5: feed it increasing
    lengths to sweep the space of tests.
    """
    seen: Set[Tuple[str, ...]] = set()
    produced = 0
    for combo in itertools.product(vocabulary, repeat=length):
        canonical = canonical_cycle(combo)
        if canonical in seen:
            continue
        seen.add(canonical)
        try:
            program = generate(list(canonical))
        except CycleError:
            continue
        yield program
        produced += 1
        if max_tests is not None and produced >= max_tests:
            return
