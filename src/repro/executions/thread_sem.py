"""Per-thread semantics: from instructions to event traces.

Each thread of a litmus test is evaluated into the set of its possible
*traces*.  A trace fixes, for every dynamic read, the value it returns;
therefore evaluation is fully concrete along a trace, and conditionals
simply follow the arm selected by the (chosen) read values.  Enumeration
over read values uses the per-location *possible value sets* — the fixpoint
of "values any write can produce" seeded with the initial values.

Dependencies are computed by taint tracking, as herd does:

* a register written by a read is tainted by that read;
* the **address dependency** of an access collects the taints of its
  address expression;
* the **data dependency** of a write collects the taints of its value
  expression;
* after a conditional whose condition is tainted by a read, *every*
  subsequent event of the thread carries a **control dependency** from that
  read (herd's treatment: ``ctrl`` extends past the join point).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.events import FENCE, MB, Pointer, READ, Value, WRITE
from repro.litmus.ast import (
    Assume,
    BinOp,
    CmpXchg,
    Const,
    Expr,
    Fence,
    If,
    Instruction,
    Load,
    LocalAssign,
    Program,
    Reg,
    Rmw,
    Store,
    Thread,
    UnOp,
)


class SemanticsError(Exception):
    """Raised when a thread cannot be evaluated (e.g. non-pointer address)."""


#: A register environment: name -> (value, taints).  Taints are indices of
#: read events (within the trace being built) the value depends on.
RegEnv = Dict[str, Tuple[Value, FrozenSet[int]]]


@dataclass(frozen=True)
class ProtoEvent:
    """A thread-local event before global ids are assigned.

    ``addr_deps``/``data_deps``/``ctrl_deps`` hold trace-local indices of
    the read events this event depends on.
    """

    kind: str
    tag: str
    loc: Optional[str] = None
    value: Optional[Value] = None
    addr_deps: FrozenSet[int] = frozenset()
    data_deps: FrozenSet[int] = frozenset()
    ctrl_deps: FrozenSet[int] = frozenset()

    @property
    def is_read(self) -> bool:
        return self.kind == READ

    @property
    def is_write(self) -> bool:
        return self.kind == WRITE


@dataclass(frozen=True)
class ThreadTrace:
    """One possible trace of a thread.

    Attributes:
        events: The events, in program order.
        rmw_pairs: Pairs of indices ``(read, write)`` forming RMWs.
        final_regs: Register values at the end of the trace.
    """

    events: Tuple[ProtoEvent, ...]
    rmw_pairs: Tuple[Tuple[int, int], ...]
    final_regs: Dict[str, Value] = field(default_factory=dict, hash=False, compare=False)


ValueSets = Dict[str, Set[Value]]


def enumerate_thread_traces(
    thread: Thread, value_sets: ValueSets
) -> List[ThreadTrace]:
    """All traces of ``thread``, branching reads over ``value_sets``."""
    return list(_run(list(thread.body), {}, [], [], frozenset(), value_sets))


def _run(
    todo: List[Instruction],
    regs: RegEnv,
    events: List[ProtoEvent],
    rmw_pairs: List[Tuple[int, int]],
    ctrl: FrozenSet[int],
    value_sets: ValueSets,
) -> Iterator[ThreadTrace]:
    """DFS over the remaining instructions; yields complete traces."""
    if not todo:
        yield ThreadTrace(
            tuple(events),
            tuple(rmw_pairs),
            {name: value for name, (value, _) in regs.items()},
        )
        return

    ins, rest = todo[0], todo[1:]

    if isinstance(ins, LocalAssign):
        value, deps = _eval(ins.expr, regs)
        new_regs = dict(regs)
        new_regs[ins.reg] = (value, deps)
        yield from _run(rest, new_regs, events, rmw_pairs, ctrl, value_sets)
        return

    if isinstance(ins, Assume):
        value, _ = _eval(ins.cond, regs)
        if isinstance(value, Pointer) or value:
            yield from _run(rest, regs, events, rmw_pairs, ctrl, value_sets)
        return  # falsy assumption: the trace is discarded

    if isinstance(ins, Fence):
        fence = ProtoEvent(FENCE, ins.tag, ctrl_deps=ctrl)
        yield from _run(rest, regs, events + [fence], rmw_pairs, ctrl, value_sets)
        return

    if isinstance(ins, Store):
        loc, addr_deps = _eval_address(ins.addr, regs)
        value, data_deps = _eval(ins.value, regs)
        write = ProtoEvent(
            WRITE, ins.tag, loc, value, addr_deps, data_deps, ctrl
        )
        yield from _run(rest, regs, events + [write], rmw_pairs, ctrl, value_sets)
        return

    if isinstance(ins, Load):
        loc, addr_deps = _eval_address(ins.addr, regs)
        read_index = len(events)
        for chosen in _location_values(loc, value_sets):
            read = ProtoEvent(
                READ, ins.tag, loc, chosen, addr_deps, ctrl_deps=ctrl
            )
            new_events = events + [read]
            if ins.rb_dep:
                new_events.append(ProtoEvent(FENCE, "rb-dep", ctrl_deps=ctrl))
            new_regs = dict(regs)
            new_regs[ins.reg] = (chosen, frozenset({read_index}))
            yield from _run(
                rest, new_regs, new_events, rmw_pairs, ctrl, value_sets
            )
        return

    if isinstance(ins, Rmw):
        loc, addr_deps = _eval_address(ins.addr, regs)
        for chosen in _location_values(loc, value_sets):
            if ins.require_read_value is not None and chosen != ins.require_read_value:
                continue
            new_events = list(events)
            if ins.full_fences:
                new_events.append(ProtoEvent(FENCE, MB, ctrl_deps=ctrl))
            read_index = len(new_events)
            new_events.append(
                ProtoEvent(READ, ins.read_tag, loc, chosen, addr_deps, ctrl_deps=ctrl)
            )
            new_regs = dict(regs)
            new_regs[ins.reg] = (chosen, frozenset({read_index}))
            new_value, data_deps = _eval(ins.new_value, new_regs)
            write_index = len(new_events)
            new_events.append(
                ProtoEvent(
                    WRITE,
                    ins.write_tag,
                    loc,
                    new_value,
                    addr_deps,
                    data_deps | frozenset({read_index}),
                    ctrl,
                )
            )
            if ins.full_fences:
                new_events.append(ProtoEvent(FENCE, MB, ctrl_deps=ctrl))
            yield from _run(
                rest,
                new_regs,
                new_events,
                rmw_pairs + [(read_index, write_index)],
                ctrl,
                value_sets,
            )
        return

    if isinstance(ins, CmpXchg):
        loc, addr_deps = _eval_address(ins.addr, regs)
        expected, expected_deps = _eval(ins.expected, regs)
        from repro.litmus.ast import RMW_VARIANTS

        read_tag, write_tag, full_fences = RMW_VARIANTS[ins.variant]
        for chosen in _location_values(loc, value_sets):
            success = chosen == expected
            new_events = list(events)
            if success and full_fences:
                new_events.append(ProtoEvent(FENCE, MB, ctrl_deps=ctrl))
            read_index = len(new_events)
            # A failed cmpxchg provides no ordering: its read stays "once".
            tag = read_tag if success else "once"
            new_events.append(
                ProtoEvent(READ, tag, loc, chosen, addr_deps, ctrl_deps=ctrl)
            )
            new_regs = dict(regs)
            new_regs[ins.reg] = (chosen, frozenset({read_index}))
            new_rmw = list(rmw_pairs)
            if success:
                new_value, data_deps = _eval(ins.new_value, new_regs)
                write_index = len(new_events)
                new_events.append(
                    ProtoEvent(
                        WRITE,
                        write_tag,
                        loc,
                        new_value,
                        addr_deps,
                        data_deps | expected_deps | frozenset({read_index}),
                        ctrl,
                    )
                )
                new_rmw.append((read_index, write_index))
                if full_fences:
                    new_events.append(ProtoEvent(FENCE, MB, ctrl_deps=ctrl))
            yield from _run(
                rest, new_regs, new_events, new_rmw, ctrl, value_sets
            )
        return

    if isinstance(ins, If):
        cond, cond_deps = _eval(ins.cond, regs)
        if isinstance(cond, Pointer):
            taken = True  # non-NULL pointer
        else:
            taken = bool(cond)
        branch = list(ins.then if taken else ins.orelse)
        yield from _run(
            branch + rest, regs, events, rmw_pairs, ctrl | cond_deps, value_sets
        )
        return

    raise SemanticsError(f"unknown instruction {ins!r}")


def _location_values(loc: str, value_sets: ValueSets):
    values = value_sets.get(loc)
    if not values:
        return [0]
    return sorted(values, key=repr)


def _eval(expr: Expr, regs: RegEnv) -> Tuple[Value, FrozenSet[int]]:
    """Evaluate an expression, returning its value and read taints."""
    if isinstance(expr, Const):
        return expr.value, frozenset()
    if isinstance(expr, Reg):
        return regs.get(expr.name, (0, frozenset()))
    if isinstance(expr, BinOp):
        lhs, ldeps = _eval(expr.lhs, regs)
        rhs, rdeps = _eval(expr.rhs, regs)
        return expr.apply(lhs, rhs), ldeps | rdeps
    if isinstance(expr, UnOp):
        value, deps = _eval(expr.operand, regs)
        return expr.apply(value), deps
    raise SemanticsError(f"unknown expression {expr!r}")


def _eval_address(expr: Expr, regs: RegEnv) -> Tuple[str, FrozenSet[int]]:
    value, deps = _eval(expr, regs)
    if not isinstance(value, Pointer):
        raise SemanticsError(
            f"address expression {expr!r} evaluated to non-pointer {value!r}"
        )
    return value.loc, deps


def possible_value_sets(program: Program, max_rounds: Optional[int] = None) -> ValueSets:
    """Fixpoint of the per-location possible-value sets.

    Starts from the initial values and repeatedly re-evaluates every thread,
    adding any value some write can produce.  The fixpoint is reached in at
    most as many rounds as there are instructions (each round can only
    lengthen real read-to-write value chains by one); ``max_rounds`` guards
    against pathological programs.
    """
    if max_rounds is None:
        max_rounds = sum(_instruction_count(t.body) for t in program.threads) + 2

    values: ValueSets = {
        location: {program.initial_value(location)}
        for location in program.locations()
    }
    for _ in range(max_rounds):
        changed = False
        for thread in program.threads:
            for trace in enumerate_thread_traces(thread, values):
                for event in trace.events:
                    if event.is_write:
                        locs = values.setdefault(event.loc, {0})
                        if event.value not in locs:
                            locs.add(event.value)
                            changed = True
        if not changed:
            return values
    return values


def _instruction_count(body: Sequence[Instruction]) -> int:
    count = 0
    for ins in body:
        count += 1
        if isinstance(ins, If):
            count += _instruction_count(ins.then) + _instruction_count(ins.orelse)
    return count
