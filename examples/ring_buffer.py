#!/usr/bin/env python
"""The kernel ring-buffer idiom (Figure 4 of the paper).

``perf_output_put_handle()`` (kernel/events/ring_buffer.c) hands data
from the kernel to userspace through a ring buffer.  The kernel-side
consumer checks the producer's ``head`` before writing a new ``tail``;
the producer reads ``tail`` back with a full barrier.  The safety of the
protocol rests on a *control dependency* on one side and an ``smp_mb``
on the other — the paper's LB+ctrl+mb.

This example audits the idiom: the full version is safe, and removing
either ingredient (as a careless refactoring might) re-enables the
load-buffering outcome, which real ARMv7 machines exhibit.
"""

from repro import LinuxKernelModel, litmus_library, run_litmus
from repro.hardware import run_klitmus

VARIANTS = {
    "LB+ctrl+mb": "the real idiom: control dependency + smp_mb",
    "LB+ctrl": "fence removed — only the control dependency remains",
    "LB+po+mb": "dependency removed — only the fence remains",
    "LB": "both removed",
}


def main() -> None:
    model = LinuxKernelModel()

    print("Auditing the ring-buffer hand-off (LB family):\n")
    for name, description in VARIANTS.items():
        test = litmus_library.get(name)
        verdict = run_litmus(model, test).verdict
        marker = "SAFE  " if verdict == "Forbid" else "UNSAFE"
        print(f"  {marker}  {name:12s} {verdict:7s} — {description}")

    print(
        "\nOnly the full idiom forbids the out-of-order outcome. "
        "Checking what a\nweak machine actually does with the broken "
        "variants (simulated ARMv7):\n"
    )
    for name in ("LB+ctrl+mb", "LB"):
        counts = run_klitmus(litmus_library.get(name), "ARMv7", runs=4000)
        print(f"  {name:12s} observed {counts.summary()} times")

    print(
        "\nThe paper notes LB was observed on (other) ARMv7 machines "
        "[50, Sect. 7.1];\nthe model must therefore allow it, and the "
        "kernel must keep both the\ndependency and the barrier."
    )


if __name__ == "__main__":
    main()
