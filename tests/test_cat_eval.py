"""Tests for the cat evaluator."""

import pytest

from repro.cat import CatModel, CatError, load_model, builtin_environment
from repro.executions import candidate_executions
from repro.litmus import dsl, library
from repro.relations import EventSet, Relation


def first_execution(program):
    return next(iter(candidate_executions(program)))


@pytest.fixture(scope="module")
def mp_exec():
    return first_execution(library.get("MP+wmb+rmb"))


def check(source, execution):
    return CatModel.from_source(source).check(execution)


class TestBuiltins:
    def test_base_relations_present(self, mp_exec):
        env = builtin_environment(mp_exec)
        for name in ("po", "rf", "co", "addr", "data", "ctrl", "rmw",
                     "loc", "int", "ext", "id", "crit"):
            assert isinstance(env[name], Relation), name
        for name in ("_", "R", "W", "F", "M", "IW"):
            assert isinstance(env[name], EventSet), name

    def test_tag_sets(self, mp_exec):
        env = builtin_environment(mp_exec)
        assert len(env["Wmb"]) == 1
        assert len(env["Rmb"]) == 1
        assert len(env["Acquire"]) == 0

    def test_empty_universe_sets_defined(self, mp_exec):
        env = builtin_environment(mp_exec)
        assert env["Sync-rcu"].is_empty()


class TestEvaluation:
    def test_trivial_pass(self, mp_exec):
        assert check("acyclic po as ok", mp_exec).allowed

    def test_trivial_fail(self, mp_exec):
        result = check("empty po as bad", mp_exec)
        assert not result.allowed
        assert result.violations[0].axiom == "bad"

    def test_let_binding_used_by_check(self, mp_exec):
        source = "let fr = rf^-1 ; co\nacyclic po | rf | fr | co as sc"
        # MP+wmb+rmb's first candidate (both reads read 0) is SC here.
        assert check(source, mp_exec).allowed

    def test_function_application(self, mp_exec):
        source = "let twice(r) = r ; r\nempty twice(rf) as no-rf-chains"
        assert check(source, mp_exec).allowed

    def test_fencerel_builtin(self, mp_exec):
        source = "empty fencerel(Wmb) as has-wmb"
        result = check(source, mp_exec)
        assert not result.allowed  # there IS a wmb pair

    def test_set_operations(self, mp_exec):
        assert check("empty R & W as disjoint", mp_exec).allowed
        result = check("empty R | W as accesses", mp_exec)
        assert not result.allowed

    def test_cartesian_product(self, mp_exec):
        source = "empty (rf & (W * W)) as rf-to-writes"
        assert check(source, mp_exec).allowed

    def test_set_identity_restriction(self, mp_exec):
        source = "empty ([W] ; po ; [W]) \\ po as sanity"
        assert check(source, mp_exec).allowed

    def test_inverse_and_sequence(self, mp_exec):
        source = "irreflexive rf ; rf^-1 ; co as coherent-sources"
        # rf;rf^-1 is the identity on sourced writes; composing with co is
        # irreflexive since co is.
        assert check(source, mp_exec).allowed

    def test_complement(self, mp_exec):
        source = "empty ~(_ * _) as full-universe"
        assert check(source, mp_exec).allowed

    def test_recursive_definition_fixpoint(self, mp_exec):
        source = (
            "let rec tc = po | (tc ; tc)\n"
            "empty tc \\ po+ as closure-matches"
        )
        assert check(source, mp_exec).allowed

    def test_mutually_recursive_definitions(self, mp_exec):
        source = (
            "let rec a = po | (b ; b) and b = a\n"
            "empty a \\ po+ as mutual"
        )
        assert check(source, mp_exec).allowed

    def test_unbound_identifier_raises(self, mp_exec):
        with pytest.raises(CatError):
            check("acyclic nonexistent as x", mp_exec)

    def test_unknown_function_raises(self, mp_exec):
        with pytest.raises(CatError):
            check("acyclic mystery(po) as x", mp_exec)

    def test_flag_does_not_forbid(self, mp_exec):
        result = check("flag empty po as warn\nacyclic po as ok", mp_exec)
        assert result.allowed
        assert result.flags and result.flags[0].axiom == "warn"

    def test_negated_empty(self, mp_exec):
        assert check("~empty po as nonempty", mp_exec).allowed

    def test_violation_carries_cycle_witness(self):
        program = library.get("SB")
        source = "acyclic po | rf | (rf^-1 ; co) | co as sc"
        model = CatModel.from_source(source)
        violating = [
            x for x in candidate_executions(program)
            if not model.check(x).allowed
        ]
        assert violating
        violation = model.check(violating[0]).violations[0]
        assert violation.kind == "acyclic"
        assert len(violation.witness) >= 3


class TestLoadModel:
    def test_load_known_models(self):
        for name in ("lkmm", "c11", "sc", "tso"):
            model = load_model(name)
            assert model.name

    def test_unknown_model_raises(self):
        with pytest.raises(CatError):
            load_model("not-a-model")


class TestShippedModelSanity:
    def test_sc_forbids_sb_weak_outcome(self):
        sc = load_model("sc")
        program = library.get("SB")
        weak = [
            x
            for x in candidate_executions(program)
            if program.condition.evaluate(x.final_state)
        ]
        assert weak
        assert all(not sc.check(x).allowed for x in weak)

    def test_sc_allows_interleavings(self):
        sc = load_model("sc")
        program = library.get("SB")
        allowed = [
            x for x in candidate_executions(program) if sc.check(x).allowed
        ]
        assert len(allowed) == 3  # all except the store-buffering one
