"""Command-line tools: ``repro-herd``, ``repro-klitmus``, ``repro-diy``."""
