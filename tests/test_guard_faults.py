"""Fault-tolerant worker pools and deterministic fault injection.

The env-gated sweep at the bottom is the CI chaos lane: with
``REPRO_FAULT="crash:0.05,seed=8"`` exported, the golden verdict table
must come out byte-identical even while ~5% of worker tasks are being
killed mid-flight and recovered via retries.
"""

import json
import os
import signal
import time

import pytest

from repro import obs
from repro.cat.eval import load_model
from repro.guard import SweepJournal, faults, parse_fault_spec
from repro.herd import verdicts
from repro.kernel import parallel
from repro.litmus import library


SC = load_model("sc")


@pytest.fixture(autouse=True)
def _clean_pools_and_spec():
    """Each test starts with no pools and no fault override."""
    parallel.shutdown_pools()
    faults.set_spec(None)
    yield
    faults.set_spec(None)
    parallel.shutdown_pools()


def _double(value):
    return value * 2


def _boom(value):
    raise ValueError(f"task error on {value}")


# -- the REPRO_FAULT grammar ----------------------------------------------


def test_parse_fault_spec():
    spec = parse_fault_spec("crash:0.05,hang:0.01,slow:0.1,seed=8")
    assert spec.crash == 0.05
    assert spec.hang == 0.01
    assert spec.slow == 0.1
    assert spec.seed == 8
    assert parse_fault_spec(None) is None
    assert parse_fault_spec("   ") is None
    assert parse_fault_spec("seed=3").seed == 3


def test_parse_fault_spec_rejects_nonsense():
    with pytest.raises(ValueError):
        parse_fault_spec("crash:1.5")
    with pytest.raises(ValueError):
        parse_fault_spec("explode:0.5")


def test_injection_never_fires_in_parent():
    faults.set_spec(parse_fault_spec("crash:1.0"))
    assert not faults.in_worker()
    faults.maybe_inject("anything")  # would os._exit if armed here


def test_injection_is_deterministic():
    draws = {faults._unit(8, f"task:{i}:0") for i in range(32)}
    assert draws == {faults._unit(8, f"task:{i}:0") for i in range(32)}
    # The attempt number is part of the nonce: a task that crashed on
    # attempt 0 draws differently on attempt 1, so retries can succeed.
    assert faults._unit(8, "task:0:0") != faults._unit(8, "task:0:1")


# -- fault_tolerant_map ----------------------------------------------------


def test_fault_tolerant_map_plain():
    results = parallel.fault_tolerant_map(_double, list(range(8)), jobs=2)
    assert results == [value * 2 for value in range(8)]


def test_fault_tolerant_map_reraises_task_errors():
    with pytest.raises(ValueError, match="task error"):
        parallel.fault_tolerant_map(_boom, [1], jobs=2)


def test_fault_tolerant_map_on_result_ordering():
    seen = []
    results = parallel.fault_tolerant_map(
        _double, [1, 2, 3], jobs=2, on_result=lambda i, r: seen.append((i, r))
    )
    assert results == [2, 4, 6]
    assert sorted(seen) == [(0, 2), (1, 4), (2, 6)]


def test_crash_recovery_with_counters():
    """Injected worker crashes are retried to completion and counted."""
    faults.set_spec(parse_fault_spec("crash:0.4,seed=8"))
    payloads = list(range(10))
    with obs.collect() as collector:
        results = parallel.fault_tolerant_map(
            _double, payloads, jobs=2, max_attempts=10
        )
    assert results == [value * 2 for value in payloads]
    counters = collector.report().counters
    assert counters.get("guard.worker_deaths", 0) > 0
    assert counters.get("guard.retries", 0) > 0


def test_hang_recovery_with_deadline():
    """A hung worker trips the attempt deadline and the task is retried
    on a fresh pool."""
    faults.set_spec(parse_fault_spec("hang:0.3,seed=8"))
    with obs.collect() as collector:
        results = parallel.fault_tolerant_map(
            _double, list(range(6)), jobs=2, task_timeout=3.0
        )
    assert results == [value * 2 for value in range(6)]
    counters = collector.report().counters
    assert counters.get("guard.worker_hangs", 0) > 0
    assert counters.get("guard.retries", 0) > 0


def test_all_attempts_exhausted_raises():
    faults.set_spec(parse_fault_spec("crash:1.0,seed=8"))
    with pytest.raises(parallel.WorkerPoolError):
        parallel.fault_tolerant_map(_double, [1, 2], jobs=2, max_attempts=2)


def test_parallel_verdicts_survive_crashes():
    faults.set_spec(parse_fault_spec("crash:0.3,seed=8"))
    programs = [library.get(name) for name in ("SB", "MP+wmb+rmb", "LB", "R")]
    chaotic = verdicts([SC], programs, jobs=2)
    faults.set_spec(None)
    calm = verdicts([SC], programs)
    assert chaotic == calm


# -- orphaned workers and Ctrl-C -------------------------------------------


def _pids_alive(pids):
    alive = []
    for pid in pids:
        try:
            os.kill(pid, 0)
        except (ProcessLookupError, PermissionError):
            continue
        alive.append(pid)
    return alive


def _wait_dead(pids, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not _pids_alive(pids):
            return True
        time.sleep(0.05)
    return False


def test_shutdown_pools_kills_workers_and_is_idempotent():
    pool = parallel.persistent_pool(2)
    assert pool.map(_double, [21]) == [42]
    pids = pool.worker_pids()
    assert pids
    parallel.shutdown_pools()
    assert _wait_dead(pids), f"orphaned workers: {_pids_alive(pids)}"
    # Idempotent and re-entrant: safe from atexit, signal handlers, tests.
    parallel.shutdown_pools()
    parallel.shutdown_pools()


def test_keyboard_interrupt_terminates_pools():
    """Regression: Ctrl-C mid-sweep must not leave orphaned workers."""

    def interrupt(index, result):
        raise KeyboardInterrupt

    pool = parallel.persistent_pool(2)
    pool.map(_double, [1])  # executor spawns workers lazily
    pids = pool.worker_pids()
    assert pids
    with pytest.raises(KeyboardInterrupt):
        parallel.fault_tolerant_map(
            _double, list(range(4)), jobs=2, on_result=interrupt
        )
    assert _wait_dead(pids), f"orphaned workers: {_pids_alive(pids)}"
    assert not parallel._PERSISTENT_POOLS


def test_worker_pool_context_terminates():
    with parallel.worker_pool(2) as pool:
        assert pool.map(_double, [1, 2, 3]) == [2, 4, 6]
        pids = pool.worker_pids()
        assert pids
    assert _wait_dead(pids), f"orphaned workers: {_pids_alive(pids)}"


def test_workers_ignore_sigint():
    """Workers must survive a stray SIGINT (the parent owns interruption,
    e.g. a terminal delivers Ctrl-C to the whole process group)."""
    pool = parallel.persistent_pool(2)
    pool.map(_double, [1])  # ensure workers are up
    for pid in pool.worker_pids():
        os.kill(pid, signal.SIGINT)
    time.sleep(0.2)
    assert pool.map(_double, [2, 3]) == [4, 6]


# -- the sweep journal -----------------------------------------------------


def test_journal_roundtrip_and_resume(tmp_path):
    path = tmp_path / "sweep.jsonl"
    journal = SweepJournal(path, ["SC"])
    programs = [library.get(name) for name in ("SB", "MP+wmb+rmb", "LB")]
    first = verdicts([SC], programs, journal=journal)
    assert len(journal) == len(programs)

    # A resumed sweep reads rows back instead of re-running the tests.
    resumed_journal = SweepJournal(path, ["SC"])
    with obs.collect() as collector:
        second = verdicts([SC], programs, journal=resumed_journal)
    assert second == first
    counters = collector.report().counters
    assert counters.get("guard.journal_skips") == len(programs)
    assert counters.get("herd.SC.candidates", 0) == 0


def test_journal_parallel_resume(tmp_path):
    path = tmp_path / "sweep.jsonl"
    programs = [library.get(name) for name in ("SB", "MP+wmb+rmb", "LB", "R")]
    first = verdicts([SC], programs, jobs=2, journal=SweepJournal(path, ["SC"]))
    resumed = SweepJournal(path, ["SC"])
    assert len(resumed) == len(programs)
    second = verdicts([SC], programs, jobs=2, journal=resumed)
    assert second == first


def test_journal_tolerates_torn_lines_and_foreign_models(tmp_path):
    path = tmp_path / "sweep.jsonl"
    journal = SweepJournal(path, ["SC"])
    journal.record("SB", {"SC": "Allow"})
    with open(path, "a") as handle:
        handle.write(
            json.dumps(
                {"test": "LB", "models": ["LKMM"], "verdicts": {"LKMM": "Allow"}}
            )
            + "\n"
        )
        handle.write('{"test": "MP", "mod')  # torn mid-write
    reloaded = SweepJournal(path, ["SC"])
    assert reloaded.completed("SB") == {"SC": "Allow"}
    assert reloaded.completed("LB") is None  # different model mix
    assert reloaded.completed("MP") is None  # torn line skipped


# -- the CI chaos lane -----------------------------------------------------


@pytest.mark.skipif(
    not (faults.active_spec() and faults.active_spec().any()),
    reason="chaos lane: set REPRO_FAULT (e.g. crash:0.05,seed=8) to enable",
)
def test_golden_verdicts_survive_injected_faults():
    """The full golden table, computed on a crashing pool, must equal the
    checked-in goldens — recovery is invisible to results."""
    golden_path = os.path.join(
        os.path.dirname(__file__), "data", "verdicts_golden.json"
    )
    with open(golden_path) as handle:
        golden = json.load(handle)
    models = [load_model(name) for name in golden["models"]]
    programs = [library.get(name) for name in sorted(library.all_names())]
    with obs.collect() as collector:
        table = verdicts(
            models,
            programs,
            jobs=2,
            require_sc_per_location=golden["require_sc_per_location"],
        )
    assert table == golden["verdicts"]
    counters = collector.report().counters
    # The lane is pointless if nothing was actually injected + recovered.
    assert counters.get("guard.retries", 0) > 0
