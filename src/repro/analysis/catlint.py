"""Candidate-independent lint for cat models.

The cat evaluator (:mod:`repro.cat.eval`) only reports an unbound
identifier when a check actually *evaluates* the offending expression over
some candidate execution — a typo in a rarely-exercised branch of a model
can therefore survive until long after it was introduced.  This pass walks
a parsed :class:`~repro.cat.ast.CatFile` without any execution and flags:

* ``undefined-identifier`` — a name that is neither a builtin of the
  evaluation environment nor bound by an earlier ``let``;
* ``unknown-base-set`` — the same, for capitalised names, which by cat
  convention denote annotation sets (``Once``, ``Acquire``, ...): the
  likeliest typo in a model is a misspelt tag set;
* ``undefined-function`` — an application ``f(...)`` of an unknown
  function;
* ``unused-binding`` — a ``let`` binding never referenced by any later
  expression or check;
* ``shadowing`` — a ``let`` rebinding a builtin or an earlier binding;
* ``duplicate-check-name`` — two checks sharing one ``as`` name, which
  makes their violations indistinguishable in reports;
* ``missing-include`` — an ``include`` of a file absent from the models
  directory.

The builtin environment is derived from the same tables the evaluator
uses (:func:`repro.cat.eval.builtin_environment` and
:data:`repro.cat.eval.TAG_SETS`), so the two cannot drift apart silently.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set

from repro.analysis.findings import Finding
from repro.cat import MODELS_DIR, TAG_SETS, parse_cat
from repro.cat import ast as C

#: Builtin relations of the evaluation environment (see
#: :func:`repro.cat.eval.builtin_environment`).
BUILTIN_RELATIONS = frozenset(
    {"po", "rf", "co", "addr", "data", "ctrl", "rmw", "loc", "int", "ext",
     "id", "crit"}
)

#: Builtin event sets: the structural sets plus one set per annotation.
BUILTIN_SETS = frozenset({"_", "R", "W", "F", "M", "IW"}) | frozenset(TAG_SETS)

#: Builtin functions.
BUILTIN_FUNCTIONS = frozenset({"domain", "range", "fencerel"})

BUILTINS = BUILTIN_RELATIONS | BUILTIN_SETS


def lint_cat(
    cat_file: C.CatFile, source: Optional[str] = None
) -> List[Finding]:
    """Lint one parsed cat model; returns the findings (empty if clean)."""
    linter = _CatLinter(source or cat_file.name)
    linter.run(cat_file)
    return linter.finish()


def lint_cat_source(text: str, name: str = "cat-model") -> List[Finding]:
    """Lint cat model source text."""
    return lint_cat(parse_cat(text, default_name=name), source=name)


def lint_cat_path(path) -> List[Finding]:
    """Lint a cat model file."""
    path = Path(path)
    cat_file = parse_cat(path.read_text(), default_name=path.stem)
    return lint_cat(cat_file, source=str(path))


def lint_all_models() -> Dict[str, List[Finding]]:
    """Lint every shipped model in ``repro/cat/models/``."""
    return {
        path.name: lint_cat_path(path)
        for path in sorted(MODELS_DIR.glob("*.cat"))
    }


class _CatLinter:
    """Walks statements in order, tracking bindings and their uses."""

    def __init__(self, source: str):
        self.source = source
        self.findings: List[Finding] = []
        #: User bindings, in definition order: name -> kind ("value"/"function").
        self.bindings: Dict[str, str] = {}
        self.used: Set[str] = set()
        self.check_names: Set[str] = set()
        self.included: Set[str] = set()

    # -- driving ---------------------------------------------------------

    def run(self, cat_file: C.CatFile) -> None:
        for statement in cat_file.statements:
            if isinstance(statement, C.Include):
                self._include(statement)
            elif isinstance(statement, C.Let):
                self._let(statement)
            elif isinstance(statement, C.Check):
                self._check(statement)

    def finish(self) -> List[Finding]:
        for name in self.bindings:
            if name not in self.used:
                self._report(
                    "unused-binding",
                    f"'let {name}' is never used by a later definition or check",
                )
        return self.findings

    def _report(self, category: str, message: str) -> None:
        self.findings.append(Finding(self.source, category, message))

    # -- statements ------------------------------------------------------

    def _include(self, statement: C.Include) -> None:
        if statement.path in self.included:
            self._report(
                "duplicate-include", f'"{statement.path}" included twice'
            )
            return
        self.included.add(statement.path)
        path = MODELS_DIR / statement.path
        if not path.exists():
            self._report(
                "missing-include",
                f'included file "{statement.path}" not found in {MODELS_DIR}',
            )
            return
        # Bindings of the included file become visible here, exactly as in
        # the evaluator; its own findings are reported against its name.
        included = parse_cat(path.read_text(), default_name=path.stem)
        self.run(included)

    def _let(self, statement: C.Let) -> None:
        group = {binding.name for binding in statement.bindings}
        if len(group) < len(statement.bindings):
            self._report(
                "shadowing",
                "a 'let ... and ...' group binds the same name twice",
            )
        if statement.recursive:
            # Mutually recursive: all names are in scope in every body.
            for binding in statement.bindings:
                self._bind(binding)
            for binding in statement.bindings:
                self._expr(binding.expr, extra=set(binding.params))
        else:
            for binding in statement.bindings:
                self._expr(binding.expr, extra=set(binding.params))
                self._bind(binding)

    def _bind(self, binding: C.LetBinding) -> None:
        if binding.name in BUILTINS or binding.name in BUILTIN_FUNCTIONS:
            self._report(
                "shadowing",
                f"'let {binding.name}' shadows a builtin of the same name",
            )
        elif binding.name in self.bindings:
            self._report(
                "shadowing",
                f"'let {binding.name}' shadows an earlier binding",
            )
        self.bindings[binding.name] = "function" if binding.params else "value"

    def _check(self, statement: C.Check) -> None:
        self._expr(statement.expr, extra=set())
        if statement.name is not None:
            if statement.name in self.check_names:
                self._report(
                    "duplicate-check-name",
                    f"two checks are named 'as {statement.name}'",
                )
            self.check_names.add(statement.name)

    # -- expressions -----------------------------------------------------

    def _expr(self, expr: C.CatExpr, extra: Set[str]) -> None:
        if isinstance(expr, C.Id):
            self._name(expr.name, extra)
        elif isinstance(expr, C.App):
            if expr.func in self.bindings:
                self.used.add(expr.func)
                if self.bindings[expr.func] != "function":
                    self._report(
                        "undefined-function",
                        f"{expr.func!r} is a plain binding, not a function",
                    )
            elif expr.func not in BUILTIN_FUNCTIONS:
                self._report(
                    "undefined-function", f"unknown function {expr.func!r}"
                )
            for arg in expr.args:
                self._expr(arg, extra)
        elif isinstance(expr, (C.Union, C.Inter, C.Diff, C.Seq, C.Cartesian)):
            self._expr(expr.lhs, extra)
            self._expr(expr.rhs, extra)
        elif isinstance(expr, (C.Compl, C.Inverse, C.Opt, C.Plus, C.Star,
                               C.SetId)):
            self._expr(expr.operand, extra)
        # EmptyRel has no names.

    def _name(self, name: str, extra: Set[str]) -> None:
        if name in extra or name in BUILTINS:
            return
        if name in self.bindings:
            self.used.add(name)
            return
        if name[:1].isupper():
            known = ", ".join(sorted(BUILTIN_SETS))
            self._report(
                "unknown-base-set",
                f"unknown base set {name!r} (known sets: {known})",
            )
        else:
            self._report(
                "undefined-identifier", f"undefined identifier {name!r}"
            )


def describe_findings(findings: Iterable[Finding]) -> str:
    """Render findings one per line (used by tests and the CLI)."""
    return "\n".join(f.describe() for f in findings)
