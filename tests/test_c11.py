"""Tests for the C11 comparison model (Section 5.2)."""

import pytest

from repro.executions import candidate_executions
from repro.herd import run_litmus
from repro.litmus import library


class TestTable5C11Column:
    @pytest.mark.parametrize(
        "name",
        [n for n in library.TABLE5 if library.PAPER_VERDICTS[n]["C11"]],
    )
    def test_verdicts_match_paper(self, c11, name):
        expected = library.PAPER_VERDICTS[name]["C11"]
        assert run_litmus(c11, library.get(name)).verdict == expected


class TestLkVsC11Differences:
    """The three qualitative differences Section 5.2 highlights."""

    def test_smp_mb_restores_sc_but_c11_fence_does_not(self, lkmm, c11):
        # Figure 13: RWC+mbs — LK forbids, C11 allows.
        program = library.get("RWC+mbs")
        assert run_litmus(lkmm, program).verdict == "Forbid"
        assert run_litmus(c11, program).verdict == "Allow"

    def test_lk_respects_control_dependencies(self, lkmm, c11):
        # Figure 4: LB+ctrl+mb — LK forbids, C11 allows.
        program = library.get("LB+ctrl+mb")
        assert run_litmus(lkmm, program).verdict == "Forbid"
        assert run_litmus(c11, program).verdict == "Allow"

    def test_no_c11_equivalent_of_wmb(self, lkmm, c11):
        # Figure 14: WRC+wmb+acq — C11 forbids (release fence), LK allows.
        program = library.get("WRC+wmb+acq")
        assert run_litmus(lkmm, program).verdict == "Allow"
        assert run_litmus(c11, program).verdict == "Forbid"

    def test_peterz_allowed_by_c11(self, lkmm, c11):
        program = library.get("PeterZ")
        assert run_litmus(lkmm, program).verdict == "Forbid"
        assert run_litmus(c11, program).verdict == "Allow"


class TestC11Internals:
    def test_coherence_holds(self, c11):
        for name in ("CoRR", "CoWW", "CoWR", "CoRW"):
            assert run_litmus(c11, library.get(name)).verdict == "Forbid"

    def test_atomicity_holds(self, c11):
        assert run_litmus(c11, library.get("At-inc")).verdict == "Forbid"

    def test_release_acquire_synchronises(self, c11):
        assert run_litmus(c11, library.get("MP+po-rel+acq")).verdict == "Forbid"

    def test_sb_with_sc_fences_forbidden(self, c11):
        # The one seq_cst-fence guarantee original C11 does give.
        assert run_litmus(c11, library.get("SB+mbs")).verdict == "Forbid"

    def test_relaxed_lb_allowed(self, c11):
        # C11 has no out-of-thin-air protection for relaxed atomics.
        assert run_litmus(c11, library.get("LB")).verdict == "Allow"

    def test_c11_weaker_than_lk_on_corpus(self, lkmm, c11):
        """On the whole non-RCU corpus, count disagreements — they must
        only ever be on the documented difference tests."""
        expected_disagreements = {
            # The LK respects dependencies; C11 does not.
            "LB+ctrl+mb", "LB+datas", "S+wmb+data", "MP+wmb+addr-acq",
            # smp_mb restores SC; original C11 seq_cst fences do not
            # (they also never constrain modification order — the known
            # C++11 defect later fixed by P0668).
            "RWC+mbs", "PeterZ", "IRIW+mbs", "2+2W+mbs",
            # smp_wmb has no C11 equivalent (Figure 14).
            "WRC+wmb+acq",
            # rfi-rel-acq is an LK-specific guarantee.
            "MP+po-rel+rfi-acq",
            # A relaxed read of a release write does not synchronise in
            # C11, so the A-cumulative release chain has no counterpart.
            "ISA2+rel+rel+acq",
            # C++11 seq_cst fences never constrain modification order.
            "R+mbs", "3.2W+mbs",
        }
        disagreements = set()
        for name in library.all_names():
            if name.startswith("RCU") or "sync" in name or name == "lock-mutex":
                continue  # RCU primitives have no C11 counterpart
            program = library.get(name)
            a = run_litmus(lkmm, program).verdict
            b = run_litmus(c11, program).verdict
            if a != b:
                disagreements.add(name)
        assert disagreements <= expected_disagreements, disagreements
