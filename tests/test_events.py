"""Unit tests for repro.events."""

import pytest

from repro.events import (
    ACQUIRE,
    Event,
    FENCE,
    INIT_TID,
    MB,
    ONCE,
    Pointer,
    READ,
    WRITE,
    _index_to_label,
    fresh_labels,
)


def _event(eid, kind=READ, tag=ONCE, tid=0, po=0, loc="x", value=0):
    return Event(eid=eid, tid=tid, po_index=po, kind=kind, tag=tag, loc=loc, value=value)


class TestExports:
    def test_plain_is_public(self):
        import repro
        import repro.events

        assert "PLAIN" in repro.events.__all__
        assert repro.events.PLAIN == "plain"
        # Re-exported at the top level alongside Event and ONCE.
        assert repro.PLAIN == "plain"
        assert repro.Event is Event

    def test_all_names_resolve(self):
        import repro.events

        for name in repro.events.__all__:
            assert hasattr(repro.events, name)


class TestEvent:
    def test_kind_predicates(self):
        read = _event(0, READ)
        write = _event(1, WRITE)
        fence = Event(eid=2, tid=0, po_index=2, kind=FENCE, tag=MB)
        assert read.is_read and not read.is_write and not read.is_fence
        assert write.is_write and write.is_memory_access
        assert fence.is_fence and not fence.is_memory_access

    def test_init_events(self):
        init = Event(eid=0, tid=INIT_TID, po_index=0, kind=WRITE, tag=ONCE, loc="x", value=0)
        assert init.is_init
        assert not _event(1).is_init

    def test_identity_by_eid(self):
        a = _event(0)
        b = a.with_value(42)
        assert a == b  # same eid
        assert b.value == 42
        assert hash(a) == hash(b)

    def test_distinct_eids_differ(self):
        assert _event(0) != _event(1)

    def test_has_tag_includes_extra_tags(self):
        event = Event(
            eid=0, tid=0, po_index=0, kind=READ, tag=ONCE, loc="x",
            extra_tags=("rmw",),
        )
        assert event.has_tag(ONCE)
        assert event.has_tag("rmw")
        assert not event.has_tag(ACQUIRE)

    def test_repr_mentions_kind_and_location(self):
        event = _event(0, WRITE, ONCE, loc="y", value=3)
        text = repr(event)
        assert "W[once]" in text and "y" in text and "3" in text


class TestPointer:
    def test_repr(self):
        assert repr(Pointer("x")) == "&x"

    def test_equality_and_ordering(self):
        assert Pointer("x") == Pointer("x")
        assert Pointer("x") != Pointer("y")
        assert Pointer("a") < Pointer("b")

    def test_pointer_not_equal_to_int(self):
        assert Pointer("x") != 0


class TestLabels:
    def test_index_to_label(self):
        assert _index_to_label(0) == "a"
        assert _index_to_label(25) == "z"
        assert _index_to_label(26) == "aa"
        assert _index_to_label(27) == "ab"

    def test_fresh_labels_skip_fences(self):
        events = [
            _event(0, READ, tid=0, po=0),
            Event(eid=1, tid=0, po_index=1, kind=FENCE, tag=MB),
            _event(2, WRITE, tid=0, po=2),
        ]
        labelled = fresh_labels(events)
        labels = [e.label for e in labelled]
        assert labels == ["a", "", "b"]

    def test_fresh_labels_order_by_thread_then_po(self):
        events = [
            _event(0, READ, tid=1, po=0),
            _event(1, WRITE, tid=0, po=0),
        ]
        labelled = fresh_labels(events)
        by_eid = {e.eid: e.label for e in labelled}
        assert by_eid[1] == "a"  # thread 0 first
        assert by_eid[0] == "b"
