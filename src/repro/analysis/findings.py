"""The common finding type shared by the static-analysis passes.

Every pass (:mod:`repro.analysis.catlint`, :mod:`repro.analysis.litmuslint`,
:mod:`repro.analysis.flow.checkers`, :mod:`repro.analysis.races`) reports
its results as a list of :class:`Finding` so the ``repro-lint`` driver can
print, count, and serialise them uniformly.

Each finding category has a *stable code* (``RCU001``-style) and a default
*severity* registered in :data:`CATEGORIES`; the driver exits non-zero only
when an ``error``-severity finding is present, so heuristic or advisory
checks (severity ``warning``) never gate CI on their own.  Codes are part
of the tool's output contract — they are frozen by the golden snapshot in
``tests/data/lint_golden.json`` and must never be reused for a different
check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

#: Severity levels, in increasing order of badness.
INFO = "info"
WARNING = "warning"
ERROR = "error"

_SEVERITIES = (INFO, WARNING, ERROR)

#: category -> (stable code, default severity).  ``CAT*`` codes cover cat
#: models, ``LIT*`` the syntactic litmus lint, ``FLOW*`` the dataflow
#: lint, ``RCU*``/``LOCK*``/``DEP*`` the path-sensitive checkers, and
#: ``RACE*`` the execution-level race detector.
CATEGORIES: Dict[str, Tuple[str, str]] = {
    # cat-model lint (repro.analysis.catlint)
    "undefined-identifier": ("CAT001", ERROR),
    "unknown-base-set": ("CAT002", ERROR),
    "undefined-function": ("CAT003", ERROR),
    "unused-binding": ("CAT004", WARNING),
    "shadowing": ("CAT005", WARNING),
    "duplicate-check-name": ("CAT006", WARNING),
    "duplicate-include": ("CAT007", WARNING),
    "missing-include": ("CAT008", ERROR),
    "sort-mismatch": ("CAT009", ERROR),
    "empty-intersection": ("CAT010", WARNING),
    # semantic cat-model analyses (repro.analysis.catir.analyses)
    "dead-check": ("CAT011", WARNING),
    "redundant-check": ("CAT012", WARNING),
    "unreachable-binding": ("CAT013", WARNING),
    "implied-acyclicity": ("CAT014", WARNING),
    # syntactic litmus lint (repro.analysis.litmuslint)
    "uninitialized-read": ("LIT001", ERROR),
    "condition-unknown-register": ("LIT002", ERROR),
    "condition-unknown-thread": ("LIT003", ERROR),
    "condition-unknown-location": ("LIT004", ERROR),
    "plain-race": ("LIT005", WARNING),
    "dangling-fence": ("LIT006", WARNING),
    # dataflow lint (repro.analysis.flow.checkers)
    "uninit-register-read": ("FLOW001", ERROR),
    "dead-store": ("FLOW002", WARNING),
    # RCU read-side discipline
    "rcu-unbalanced": ("RCU001", ERROR),
    "rcu-sync-in-critical-section": ("RCU002", ERROR),
    "rcu-over-nesting": ("RCU003", WARNING),
    # spinlock discipline (the paper's Section 7 Rmw/CmpXchg encoding)
    "double-lock": ("LOCK001", ERROR),
    "unlock-without-lock": ("LOCK002", WARNING),
    "lock-held-at-exit": ("LOCK003", WARNING),
    # fragile syntactic dependencies
    "fragile-dependency": ("DEP001", WARNING),
    "constant-condition": ("DEP002", WARNING),
    # execution-level data races (repro.analysis.races)
    "data-race": ("RACE001", ERROR),
    # symbolic critical-cycle prover coverage (repro.analysis.symbolic)
    "static-undecided": ("LIT007", INFO),
    "static-coverage": ("LIT008", INFO),
}


@dataclass(frozen=True)
class Finding:
    """One static-analysis finding.

    Attributes:
        source: What was analysed — a cat model name, a litmus test name,
            or a file path.
        category: A stable machine-readable category such as
            ``undefined-identifier`` or ``rcu-unbalanced``.
        message: The human-readable description.
        code: The stable short code (``RCU001``); derived from
            :data:`CATEGORIES` when constructed via :meth:`of`.
        severity: ``error`` | ``warning`` | ``info``.
        line: 1-based source line of the offending construct, when known
            (litmus instructions carry the line the parser saw them on).
    """

    source: str
    category: str
    message: str
    code: str = "GEN000"
    severity: str = ERROR
    line: Optional[int] = None

    @classmethod
    def of(
        cls,
        source: str,
        category: str,
        message: str,
        line: Optional[int] = None,
        severity: Optional[str] = None,
    ) -> "Finding":
        """Build a finding, looking up code and default severity from the
        category registry.  An unregistered category is a programming
        error (it would silently float outside the output contract)."""
        try:
            code, default_severity = CATEGORIES[category]
        except KeyError:
            raise ValueError(f"unregistered finding category {category!r}") from None
        severity = severity if severity is not None else default_severity
        if severity not in _SEVERITIES:
            raise ValueError(f"unknown severity {severity!r}")
        return cls(source, category, message, code, severity, line)

    @property
    def is_error(self) -> bool:
        return self.severity == ERROR

    @property
    def location(self) -> str:
        """``source`` or ``source:line`` when the line is known."""
        if self.line is None:
            return self.source
        return f"{self.source}:{self.line}"

    def describe(self) -> str:
        return (
            f"{self.location}: {self.severity} {self.code} "
            f"{self.category}: {self.message}"
        )

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready dict (used by ``repro-lint --format json``)."""
        return {
            "source": self.source,
            "line": self.line,
            "code": self.code,
            "severity": self.severity,
            "category": self.category,
            "message": self.message,
        }

    def __str__(self) -> str:  # pragma: no cover - convenience alias
        return self.describe()


def describe_findings(findings: Iterable[Finding]) -> str:
    """Render findings one per line (used by tests and the CLI)."""
    return "\n".join(f.describe() for f in findings)


def count_errors(findings: Iterable[Finding]) -> int:
    """How many findings are ``error`` severity (the CI-gating count)."""
    return sum(1 for f in findings if f.is_error)


def findings_to_json(findings: Iterable[Finding]) -> str:
    """Findings as a JSON document (``repro-lint --format json``)."""
    import json

    items = [f.to_dict() for f in findings]
    return json.dumps(
        {
            "findings": items,
            "counts": {
                severity: sum(1 for f in items if f["severity"] == severity)
                for severity in _SEVERITIES
            },
        },
        indent=2,
    )


#: SARIF's level vocabulary ("note", not "info").
_SARIF_LEVELS = {INFO: "note", WARNING: "warning", ERROR: "error"}


def findings_to_sarif(findings: Iterable[Finding]) -> str:
    """Findings as minimal SARIF 2.1.0 (``repro-lint --format sarif``),
    enough for code-scanning UIs: one rule per category, one result per
    finding, the source name as the artifact URI."""
    import json

    findings = list(findings)
    rules = sorted({(f.code, f.category) for f in findings})
    results = []
    for f in findings:
        location: Dict[str, object] = {
            "artifactLocation": {"uri": f.source}
        }
        if f.line is not None:
            location["region"] = {"startLine": f.line}
        results.append(
            {
                "ruleId": f.code,
                "level": _SARIF_LEVELS[f.severity],
                "message": {"text": f.message},
                "locations": [{"physicalLocation": location}],
            }
        )
    return json.dumps(
        {
            "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro-lint",
                            "rules": [
                                {
                                    "id": code,
                                    "name": category,
                                    "defaultConfiguration": {
                                        "level": _SARIF_LEVELS[
                                            CATEGORIES[category][1]
                                        ]
                                    },
                                }
                                for code, category in rules
                            ],
                        }
                    },
                    "results": results,
                }
            ],
        },
        indent=2,
    )
