"""Tests for execution-trace recording and reconstruction.

The strongest validation loop in the repository: run a test on a
simulated machine, rebuild the exact candidate execution the machine
performed, and check it against the *axiomatic* architecture model and
the LK model.
"""

import random

import pytest

from repro.cat import load_model
from repro.hardware import compile_program, get_arch, sample_executions
from repro.hardware.opsim import OperationalSimulator
from repro.hardware.trace import build_execution
from repro.litmus import dsl, library


def traced_runs(name, arch_name, runs=40, seed=5, rcu="error"):
    return list(
        sample_executions(library.get(name), arch_name, runs, seed=seed, rcu=rcu)
    )


class TestReconstruction:
    def test_events_complete(self):
        (x,) = traced_runs("MP+wmb+rmb", "Power8", runs=1)
        # 2 init writes, 2 writes, 2 reads, and the lwsync fences.
        assert len([e for e in x.events if e.is_init]) == 2
        assert len([e for e in x.events if e.is_write and not e.is_init]) == 2
        assert len([e for e in x.events if e.is_read]) == 2
        assert len([e for e in x.events if e.is_fence]) == 2

    def test_rf_well_formed(self):
        for x in traced_runs("MP", "ARMv8", runs=25):
            assert len(x.rf) == len(x.reads)
            for w, r in x.rf.pairs:
                assert w.is_write and r.is_read
                assert w.loc == r.loc and w.value == r.value

    def test_co_total_with_init_first(self):
        program = dsl.program(
            "co-test",
            dsl.thread(dsl.write_once("x", 1)),
            dsl.thread(dsl.write_once("x", 2)),
        )
        arch = get_arch("Power8")
        compiled = compile_program(program, arch)
        simulator = OperationalSimulator(compiled, arch)
        _, trace = simulator.run_once_traced(random.Random(0))
        x = build_execution(trace)
        writes = [e for e in x.events if e.is_write and e.loc == "x"]
        assert x.co.is_total_order_on(writes)
        init = next(e for e in writes if e.is_init)
        assert all((init, w) in x.co for w in writes if w is not init)

    def test_dependencies_recorded(self):
        for x in traced_runs("MP+wmb+addr-rbdep", "Alpha", runs=10):
            assert len(x.addr) >= 1
            for r, target in x.addr.pairs:
                assert r.is_read

    def test_ctrl_recorded(self):
        for x in traced_runs("LB+ctrl+mb", "ARMv8", runs=10):
            # Whenever the branch was taken, its write carries ctrl.
            writes_y = [
                e for e in x.events
                if e.is_write and e.loc == "y" and not e.is_init
            ]
            for write in writes_y:
                assert any(b == write for _, b in x.ctrl.pairs)

    def test_rmw_recorded(self):
        for x in traced_runs("At-inc", "x86", runs=10):
            assert len(x.rmw) == 2
            for r, w in x.rmw.pairs:
                assert r.is_read and w.is_write and r.tid == w.tid


class TestExecutionLevelSoundness:
    @pytest.mark.parametrize("arch_name", ["x86", "Power8", "ARMv8", "ARMv7"])
    @pytest.mark.parametrize("name", ["SB", "MP", "LB", "WRC", "SB+mbs"])
    def test_traces_allowed_by_arch_model(self, arch_name, name):
        arch = get_arch(arch_name)
        model = load_model(arch.cat_model)
        for x in traced_runs(name, arch_name, runs=30):
            result = model.check(x)
            assert result.allowed, (
                f"{name}@{arch_name}: the machine performed an execution "
                f"its own model forbids: {result.describe()}\n{x.describe()}"
            )

    def test_traces_sc_per_location(self):
        for x in traced_runs("CoRR", "Power8", runs=30):
            assert (x.po_loc | x.com).is_acyclic()

    def test_rcu_traces_satisfy_lkmm(self):
        """Runs of RCU tests (grace periods simulated natively) yield
        executions the LK model allows — here the trace is at the LK
        level, so the LKMM itself is the reference."""
        from repro.lkmm import LinuxKernelModel

        lkmm = LinuxKernelModel()
        arch = get_arch("SC")
        for x in sample_executions(
            library.get("RCU-MP"), arch, runs=20, seed=9, rcu="keep"
        ):
            assert lkmm.allows(x)
