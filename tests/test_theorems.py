"""Tests for the Theorem 1 equivalence checker (Section 4.2)."""

import pytest

from repro.executions import candidate_executions
from repro.litmus import library
from repro.rcu import check_theorem1, check_theorem1_on_program
from repro.rcu.axiom import rcu_axiom_holds
from repro.rcu.theorems import check_theorem1_on_corpus

RCU_TESTS = [
    "RCU-MP",
    "RCU-deferred-free",
    "RCU-1GP-2RSCS",
    "RCU-2GP-2RSCS",
    "RCU-MP+nested",
    "SB+mb+sync",
]


class TestAxiom:
    def test_axiom_rejects_rcu_mp_witness(self):
        program = library.get("RCU-MP")
        witness = next(
            x
            for x in candidate_executions(program)
            if program.condition.evaluate(x.final_state)
        )
        assert not rcu_axiom_holds(witness)

    def test_axiom_accepts_benign(self):
        program = library.get("RCU-MP")
        benign = next(
            x
            for x in candidate_executions(program)
            if not program.condition.evaluate(x.final_state)
        )
        assert rcu_axiom_holds(benign)

    def test_axiom_counts_gps_vs_rscs(self):
        # 1 GP vs 2 RSCS: cycle has fewer GPs, axiom holds.
        program = library.get("RCU-1GP-2RSCS")
        for x in candidate_executions(program):
            assert rcu_axiom_holds(x)


class TestTheorem1:
    @pytest.mark.parametrize("name", RCU_TESTS)
    def test_equivalence_per_test(self, name):
        summary = check_theorem1_on_program(library.get(name))
        assert summary.holds, summary.describe()
        assert summary.executions > 0
        assert summary.agreements == summary.executions

    def test_single_execution_result(self):
        program = library.get("RCU-MP")
        witness = next(
            x
            for x in candidate_executions(program)
            if program.condition.evaluate(x.final_state)
        )
        result = check_theorem1(witness)
        assert result.equivalent
        assert not result.axioms_hold
        assert not result.law_holds

    def test_corpus_summary_accumulates(self):
        programs = [library.get("RCU-MP"), library.get("RCU-deferred-free")]
        summary = check_theorem1_on_corpus(programs)
        assert summary.executions == 8
        assert summary.holds

    def test_non_rcu_tests_trivially_agree(self):
        # Without RCU primitives both sides reduce to the Pb axiom.
        summary = check_theorem1_on_program(library.get("SB+mbs"))
        assert summary.holds
