"""The differential sweep: verdicts, budgets, journals, crash recovery.

The interruption drill at the bottom is the satellite the PR exists
for: a corpus sweep is killed mid-run by injected worker crashes
(``REPRO_FAULT`` lane, retries disabled), resumed against the same
journal with faults off, and the merged matrix must equal the matrix of
a sweep that was never interrupted.
"""

from __future__ import annotations

import pytest

from repro.corpus.generate import corpus_slice, program_digest
from repro.corpus.sweep import (
    CORPUS_MODELS,
    NOT_APPLICABLE,
    sweep_corpus,
    sweep_row,
)
from repro.diy import generate
from repro.guard import Budget, SweepJournal
from repro.herd import ALLOW, FORBID, INCONCLUSIVE
from repro.kernel import parallel
from repro.guard import faults, parse_fault_spec

MODEL_NAMES = [spec.name for spec in CORPUS_MODELS]


@pytest.fixture(autouse=True)
def _clean_pools_and_spec():
    parallel.shutdown_pools()
    faults.set_spec(None)
    yield
    faults.set_spec(None)
    parallel.shutdown_pools()


@pytest.fixture(scope="module")
def corpus():
    return corpus_slice(seed=0, start=0, stop=12)


def test_sweep_row_covers_battery():
    program = generate(["Rfe", "PodRW", "Rfe", "PodRW"])  # LB
    row = sweep_row(program)
    assert sorted(row) == sorted(MODEL_NAMES)
    assert row["LKMM"] == ALLOW  # plain LB is allowed by LKMM
    assert row["x86-TSO"] == FORBID  # and forbidden on TSO


def test_rcu_tests_are_na_under_hardware_models():
    program = generate(["SyncdWW", "Rfe", "PodRR", "Fre"])
    row = sweep_row(program)
    assert row["LKMM"] in (ALLOW, FORBID)
    for hw in ("x86-TSO", "ARMv8", "Power"):
        assert row[hw] == NOT_APPLICABLE


def test_sweep_corpus_serial_matches_per_row(corpus):
    result = sweep_corpus(corpus)
    assert result.complete
    assert result.swept == len(corpus)
    for test in corpus:
        assert result.matrix[test.name] == sweep_row(test.program)


def test_sweep_corpus_parallel_matches_serial(corpus):
    serial = sweep_corpus(corpus)
    par = sweep_corpus(corpus, jobs=2)
    assert par.matrix == serial.matrix
    assert par.complete


def test_journal_rows_replay_with_digest(tmp_path, corpus):
    journal = SweepJournal(tmp_path / "sweep.jsonl", MODEL_NAMES)
    first = sweep_corpus(corpus, journal=journal)
    assert first.swept == len(corpus)
    # Second run: everything replays, nothing is re-judged.
    journal2 = SweepJournal(tmp_path / "sweep.jsonl", MODEL_NAMES)
    second = sweep_corpus(corpus, journal=journal2)
    assert second.swept == 0
    assert second.journal_skips == len(corpus)
    assert second.matrix == first.matrix


def test_stale_digest_forces_rerun(tmp_path, corpus):
    """A journal row whose digest no longer matches the corpus test is
    a *different program* wearing the same name — it must re-run."""
    journal = SweepJournal(tmp_path / "sweep.jsonl", MODEL_NAMES)
    victim = corpus[0]
    poisoned = {name: "Forbid" for name in MODEL_NAMES}
    journal.record(victim.name, poisoned, digest="0" * 16)
    result = sweep_corpus(corpus[:1], journal=journal)
    assert result.swept == 1  # not replayed
    assert result.matrix[victim.name] == sweep_row(victim.program)
    # Name-only rows (no digest) keep the legacy matching behaviour.
    legacy = SweepJournal(tmp_path / "legacy.jsonl", MODEL_NAMES)
    legacy.record(victim.name, poisoned)
    replay = sweep_corpus(corpus[:1], journal=legacy)
    assert replay.journal_skips == 1
    assert replay.matrix[victim.name] == poisoned


def test_inconclusive_rows_are_not_journaled(tmp_path, corpus):
    journal = SweepJournal(tmp_path / "sweep.jsonl", MODEL_NAMES)
    starved = Budget(max_states=1)
    result = sweep_corpus(corpus[:3], journal=journal, row_budget=starved)
    assert any(
        INCONCLUSIVE in row.values() for row in result.matrix.values()
    )
    # Journal only holds the conclusive rows (if any).
    for name in journal.completed_names():
        assert INCONCLUSIVE not in journal.completed(name).values()


def test_wall_budget_abandons_the_tail(corpus):
    result = sweep_corpus(corpus, wall_seconds=0.0)
    assert not result.complete
    assert sorted(result.abandoned) == sorted(t.name for t in corpus)
    assert result.matrix == {}


def test_interrupted_sweep_resumes_to_identical_matrix(tmp_path, corpus):
    """Kill the sweep mid-run (injected worker crashes, no retries),
    resume with the same journal, and demand the merged matrix be
    byte-identical to an uninterrupted sweep's."""
    baseline = sweep_corpus(corpus)

    faults.set_spec(parse_fault_spec("crash:0.4,seed=8"))
    journal = SweepJournal(tmp_path / "sweep.jsonl", MODEL_NAMES)
    with pytest.raises(parallel.WorkerPoolError):
        sweep_corpus(corpus, jobs=2, journal=journal, max_attempts=1)
    parallel.shutdown_pools()
    faults.set_spec(None)

    crashed_through = len(journal)
    assert crashed_through < len(corpus), "the crash lane should bite"

    journal2 = SweepJournal(tmp_path / "sweep.jsonl", MODEL_NAMES)
    resumed = sweep_corpus(corpus, jobs=2, journal=journal2)
    assert resumed.journal_skips == crashed_through
    assert resumed.swept == len(corpus) - crashed_through
    assert resumed.matrix == baseline.matrix


def test_journal_digests_round_trip(tmp_path, corpus):
    """Digests written by the sweep survive reload and verify."""
    journal = SweepJournal(tmp_path / "sweep.jsonl", MODEL_NAMES)
    sweep_corpus(corpus[:2], journal=journal)
    reloaded = SweepJournal(tmp_path / "sweep.jsonl", MODEL_NAMES)
    for test in corpus[:2]:
        assert (
            reloaded.completed(test.name, program_digest(test.program))
            is not None
        )
        assert reloaded.completed(test.name, "f" * 16) is None
