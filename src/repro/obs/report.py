"""The reporting half of :mod:`repro.obs`: :class:`RunReport` and exporters.

A :class:`RunReport` is the frozen, serialisable summary of one observed
run: named counters, gauges, aggregated span timings, and (optionally) the
raw span trace.  Reports merge associatively — worker shards produce one
each and the parent folds them together — which is what makes the
"serial totals == merged parallel totals" property of the counters
testable (``tests/test_obs.py``).

JSON schema (``repro-herd --trace-json``, ``BENCH_obs.json`` entries)::

    {
      "counters": {"enumerate.candidates": 96, ...},
      "gauges":   {"herd.jobs": 2, ...},
      "spans":    {"herd.run": {"count": 1, "total_s": 0.01, "max_s": 0.01},
                   ...},
      "trace":    [{"name": "model.LKMM", "start_s": 0.0012,
                    "duration_s": 0.0003, "depth": 2, "parent": "herd.run"},
                   ...]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List


class SpanStat:
    """Aggregated statistics of one span name."""

    __slots__ = ("count", "total_s", "max_s")

    def __init__(self, count: int = 0, total_s: float = 0.0, max_s: float = 0.0):
        self.count = count
        self.total_s = total_s
        self.max_s = max_s

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "max_s": self.max_s,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SpanStat n={self.count} total={self.total_s:.6f}s>"


@dataclass
class RunReport:
    """The serialisable outcome of one observed run."""

    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    #: span name -> {"count", "total_s", "max_s"}.
    spans: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Raw span events (only populated when tracing was requested).
    trace: List[Dict[str, Any]] = field(default_factory=list)

    # -- merging ---------------------------------------------------------

    def merge(self, other: "RunReport") -> "RunReport":
        """Fold ``other`` into this report (in place; returns self)."""
        for name, n in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + n
        self.gauges.update(other.gauges)
        for name, stat in other.spans.items():
            mine = self.spans.get(name)
            if mine is None:
                self.spans[name] = dict(stat)
            else:
                mine["count"] += stat["count"]
                mine["total_s"] += stat["total_s"]
                mine["max_s"] = max(mine["max_s"], stat["max_s"])
        self.trace.extend(other.trace)
        return self

    # -- (de)serialisation ----------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "spans": {name: dict(stat) for name, stat in self.spans.items()},
            "trace": list(self.trace),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunReport":
        return cls(
            counters=dict(data.get("counters", {})),
            gauges=dict(data.get("gauges", {})),
            spans={k: dict(v) for k, v in data.get("spans", {}).items()},
            trace=list(data.get("trace", ())),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        return cls.from_dict(json.loads(text))

    # -- human output ----------------------------------------------------

    def format_profile(self) -> str:
        """The ``--profile`` table: spans by total time, then counters."""
        lines: List[str] = []
        if self.spans:
            rows = sorted(
                self.spans.items(), key=lambda kv: -kv[1]["total_s"]
            )
            name_w = max(len("span"), *(len(name) for name, _ in rows))
            lines.append("Profile (spans, by total time)")
            header = (
                f"  {'span'.ljust(name_w)}  {'calls':>8}  "
                f"{'total (s)':>10}  {'mean (ms)':>10}  {'max (ms)':>10}"
            )
            lines.append(header)
            lines.append("  " + "-" * (len(header) - 2))
            for name, stat in rows:
                calls = int(stat["count"])
                mean_ms = (
                    stat["total_s"] / calls * 1000.0 if calls else 0.0
                )
                lines.append(
                    f"  {name.ljust(name_w)}  {calls:>8d}  "
                    f"{stat['total_s']:>10.4f}  {mean_ms:>10.4f}  "
                    f"{stat['max_s'] * 1000.0:>10.4f}"
                )
        if self.counters:
            if lines:
                lines.append("")
            lines.append("Counters")
            name_w = max(len(name) for name in self.counters)
            for name in sorted(self.counters):
                lines.append(
                    f"  {name.ljust(name_w)}  {self.counters[name]:>12d}"
                )
        if self.gauges:
            lines.append("")
            lines.append("Gauges")
            name_w = max(len(name) for name in self.gauges)
            for name in sorted(self.gauges):
                lines.append(f"  {name.ljust(name_w)}  {self.gauges[name]}")
        return "\n".join(lines) if lines else "(no observations recorded)"
