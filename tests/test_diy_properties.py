"""Property-based tests for the diy generator (hypothesis).

The corpus machinery (``repro.corpus``) leans on diy holding a handful
of invariants for *every* realisable cycle, not just the hand-picked
ones in ``test_diy.py``:

* generated tests survive a writer→parser round-trip unchanged;
* generated tests are lint-clean (no error-severity findings — the
  foldable false-dependency warnings DEP001/DEP002 are expected);
* the cycle's promised structure holds: one thread per external edge,
  and the condition is an ``exists`` over the final state;
* generation is a pure function of the edge list;
* :func:`repro.diy.canonical_cycle` is rotation-invariant — the property
  that makes it a dedup key.

Cycles are drawn the same way the corpus generator builds them:
communication edges with kind-compatible program-order decorations in
the gaps, so every draw is realisable by construction (a residual
``CycleError`` is discarded via ``assume`` rather than masked).
"""

from __future__ import annotations

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.analysis.findings import count_errors
from repro.analysis.litmuslint import lint_program
from repro.corpus.generate import COMM_EDGES, slot_choices
from repro.diy import CycleError, canonical_cycle, generate
from repro.diy.edges import EDGES
from repro.litmus.outcomes import Exists
from repro.litmus.parser import parse_litmus
from repro.litmus.writer import write_litmus

PROPERTY_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def cycles(draw) -> list:
    """A realisable cycle: comm edges + kind-compatible decorations."""
    t = draw(st.integers(min_value=2, max_value=4))
    comm = [draw(st.sampled_from(COMM_EDGES)) for _ in range(t)]
    edges = []
    for i in range(t):
        src_kind = EDGES[comm[i]].tgt
        tgt_kind = EDGES[comm[(i + 1) % t]].src
        size = draw(st.integers(min_value=0, max_value=2))
        options = slot_choices(src_kind, tgt_kind, size)
        if not options:
            # A 0-gap needs matching kinds; gap 1 always offers Pod**.
            options = slot_choices(src_kind, tgt_kind, 1)
        choice = draw(st.sampled_from(options))
        edges.append(comm[i])
        edges.extend(choice)
    return edges


def _generate(edges):
    try:
        return generate(edges)
    except CycleError:
        assume(False)


@PROPERTY_SETTINGS
@given(cycles())
def test_round_trip(edges):
    program = _generate(edges)
    assert parse_litmus(write_litmus(program)) == program


@PROPERTY_SETTINGS
@given(cycles())
def test_lint_clean(edges):
    """Generated tests are lint-clean (no error-severity findings).
    The foldable false-dependency warnings DEP001/DEP002 are expected —
    diy's dependencies are intentionally compiler-fragile."""
    program = _generate(edges)
    findings = lint_program(program)
    assert count_errors(findings) == 0, [f.describe() for f in findings]


def test_ctrl_dep_read_cycles_are_lint_clean():
    """A ``DpCtrldR`` edge nests the dependent load inside a
    constant-false-guarded else-less branch; the dataflow solver prunes
    the infeasible arm, so the condition register is provably assigned
    on every feasible path — no FLOW001 (the old documented false
    positive), only the expected DEP002 constant-condition warning."""
    program = generate(["Fre", "Coe", "Coe", "MbdWR", "DpCtrldR"])
    findings = lint_program(program)
    assert count_errors(findings) == 0, [f.describe() for f in findings]


@PROPERTY_SETTINGS
@given(cycles())
def test_cycle_structure(edges):
    program = _generate(edges)
    external = sum(1 for name in edges if EDGES[name].external)
    assert program.num_threads == external
    assert isinstance(program.condition, Exists)
    # Every thread does something: an empty thread would mean an edge
    # was silently dropped from the cycle.
    assert all(thread.body for thread in program.threads)


@PROPERTY_SETTINGS
@given(cycles())
def test_generation_is_pure(edges):
    assert _generate(edges) == _generate(edges)


@PROPERTY_SETTINGS
@given(cycles(), st.integers(min_value=0, max_value=16))
def test_canonical_cycle_rotation_invariant(edges, k):
    rotation = edges[k % len(edges):] + edges[: k % len(edges)]
    assert canonical_cycle(rotation) == canonical_cycle(edges)
    # And the canonical form is itself a rotation of the input.
    assert sorted(canonical_cycle(edges)) == sorted(edges)
