"""The litmus-test corpus.

Contains every named test of the paper — the fifteen rows of Table 5 and
the tests of Figures 2, 4, 5, 6, 7, 9, 10, 11, 13 and 14 — plus the
classic variations used by the soundness experiments (Section 5).  Tests
are stored in the herd-style C litmus format and parsed on demand, so the
corpus also doubles as a parser test-bed.

``PAPER_VERDICTS`` records the Model and C11 columns of Table 5 verbatim;
the benchmarks compare our implementations against it.
"""

from __future__ import annotations

import difflib
from functools import lru_cache
from typing import Dict, List

from repro.litmus.ast import Program
from repro.litmus.parser import parse_litmus

#: Raw sources, keyed by test name.
SOURCES: Dict[str, str] = {}


def _register(source: str) -> None:
    program = parse_litmus(source)
    SOURCES[program.name] = source


# ---------------------------------------------------------------------------
# Table 5 tests
# ---------------------------------------------------------------------------

_register("""
C LB
{ x=0; y=0; }
P0(int *x, int *y)
{
    int r0 = READ_ONCE(*x);
    WRITE_ONCE(*y, 1);
}
P1(int *x, int *y)
{
    int r0 = READ_ONCE(*y);
    WRITE_ONCE(*x, 1);
}
exists (0:r0=1 /\\ 1:r0=1)
""")

# Figure 4: ring-buffer idiom (perf_output_put_handle()).
_register("""
C LB+ctrl+mb
{ x=0; y=0; }
P0(int *x, int *y)
{
    int r0 = READ_ONCE(*x);
    if (r0) {
        WRITE_ONCE(*y, 1);
    }
}
P1(int *x, int *y)
{
    int r0 = READ_ONCE(*y);
    smp_mb();
    WRITE_ONCE(*x, 1);
}
exists (0:r0=1 /\\ 1:r0=1)
""")

_register("""
C WRC
{ x=0; y=0; }
P0(int *x)
{
    WRITE_ONCE(*x, 1);
}
P1(int *x, int *y)
{
    int r0 = READ_ONCE(*x);
    WRITE_ONCE(*y, 1);
}
P2(int *x, int *y)
{
    int r0 = READ_ONCE(*y);
    int r1 = READ_ONCE(*x);
}
exists (1:r0=1 /\\ 2:r0=1 /\\ 2:r1=0)
""")

# Figure 14: allowed by the LK model, forbidden by C11.
_register("""
C WRC+wmb+acq
{ x=0; y=0; }
P0(int *x)
{
    WRITE_ONCE(*x, 1);
}
P1(int *x, int *y)
{
    int r0 = READ_ONCE(*x);
    smp_wmb();
    WRITE_ONCE(*y, 1);
}
P2(int *x, int *y)
{
    int r0 = smp_load_acquire(y);
    int r1 = READ_ONCE(*x);
}
exists (1:r0=1 /\\ 2:r0=1 /\\ 2:r1=0)
""")

# Figure 5: forbidden via A-cumulativity of release.
_register("""
C WRC+po-rel+rmb
{ x=0; y=0; }
P0(int *x)
{
    WRITE_ONCE(*x, 1);
}
P1(int *x, int *y)
{
    int r0 = READ_ONCE(*x);
    smp_store_release(y, 1);
}
P2(int *x, int *y)
{
    int r0 = READ_ONCE(*y);
    smp_rmb();
    int r1 = READ_ONCE(*x);
}
exists (1:r0=1 /\\ 2:r0=1 /\\ 2:r1=0)
""")

_register("""
C SB
{ x=0; y=0; }
P0(int *x, int *y)
{
    WRITE_ONCE(*x, 1);
    int r0 = READ_ONCE(*y);
}
P1(int *x, int *y)
{
    WRITE_ONCE(*y, 1);
    int r0 = READ_ONCE(*x);
}
exists (0:r0=0 /\\ 1:r0=0)
""")

# Figure 6: the wait-event/wakeup idiom.
_register("""
C SB+mbs
{ x=0; y=0; }
P0(int *x, int *y)
{
    WRITE_ONCE(*x, 1);
    smp_mb();
    int r0 = READ_ONCE(*y);
}
P1(int *x, int *y)
{
    WRITE_ONCE(*y, 1);
    smp_mb();
    int r0 = READ_ONCE(*x);
}
exists (0:r0=0 /\\ 1:r0=0)
""")

_register("""
C MP
{ x=0; y=0; }
P0(int *x, int *y)
{
    WRITE_ONCE(*x, 1);
    WRITE_ONCE(*y, 1);
}
P1(int *x, int *y)
{
    int r0 = READ_ONCE(*y);
    int r1 = READ_ONCE(*x);
}
exists (1:r0=1 /\\ 1:r1=0)
""")

# Figures 1 and 2: the message-passing idiom.
_register("""
C MP+wmb+rmb
{ x=0; y=0; }
P0(int *x, int *y)
{
    WRITE_ONCE(*x, 1);
    smp_wmb();
    WRITE_ONCE(*y, 1);
}
P1(int *x, int *y)
{
    int r0 = READ_ONCE(*y);
    smp_rmb();
    int r1 = READ_ONCE(*x);
}
exists (1:r0=1 /\\ 1:r1=0)
""")

# Figure 7: resolving races between perf monitoring and CPU hotplug [90].
# Following the paper's walk-through: b is overwritten by c (fr), the
# release d is read by e (rf), f is overwritten by a (fr), and the two
# smp_mb fences close the pb cycle.
_register("""
C PeterZ
{ x=0; y=0; z=0; }
P0(int *x, int *y)
{
    WRITE_ONCE(*x, 1);
    smp_mb();
    int r0 = READ_ONCE(*y);
}
P1(int *y, int *z)
{
    WRITE_ONCE(*y, 1);
    smp_store_release(z, 1);
}
P2(int *z, int *x)
{
    int r0 = READ_ONCE(*z);
    smp_mb();
    int r1 = READ_ONCE(*x);
}
exists (0:r0=0 /\\ 2:r0=1 /\\ 2:r1=0)
""")

# The same communication shape with all synchronisation removed.
_register("""
C PeterZ-No-Synchro
{ x=0; y=0; z=0; }
P0(int *x, int *y)
{
    WRITE_ONCE(*x, 1);
    int r0 = READ_ONCE(*y);
}
P1(int *y, int *z)
{
    WRITE_ONCE(*y, 1);
    WRITE_ONCE(*z, 1);
}
P2(int *z, int *x)
{
    int r0 = READ_ONCE(*z);
    int r1 = READ_ONCE(*x);
}
exists (0:r0=0 /\\ 2:r0=1 /\\ 2:r1=0)
""")

# Figure 11: the deferred-free idiom; the reads are "swapped" with respect
# to RCU-MP, and unlike with fences the pattern remains forbidden.
_register("""
C RCU-deferred-free
{ x=0; y=0; }
P0(int *x, int *y)
{
    rcu_read_lock();
    int r0 = READ_ONCE(*x);
    int r1 = READ_ONCE(*y);
    rcu_read_unlock();
}
P1(int *x, int *y)
{
    WRITE_ONCE(*x, 1);
    synchronize_rcu();
    WRITE_ONCE(*y, 1);
}
exists (0:r0=0 /\\ 0:r1=1)
""")

# Figure 10: message passing with RCU read-side critical section.
_register("""
C RCU-MP
{ x=0; y=0; }
P0(int *x, int *y)
{
    rcu_read_lock();
    int r0 = READ_ONCE(*x);
    int r1 = READ_ONCE(*y);
    rcu_read_unlock();
}
P1(int *x, int *y)
{
    WRITE_ONCE(*y, 1);
    synchronize_rcu();
    WRITE_ONCE(*x, 1);
}
exists (0:r0=1 /\\ 0:r1=0)
""")

_register("""
C RWC
{ x=0; y=0; }
P0(int *x)
{
    WRITE_ONCE(*x, 1);
}
P1(int *x, int *y)
{
    int r0 = READ_ONCE(*x);
    int r1 = READ_ONCE(*y);
}
P2(int *x, int *y)
{
    WRITE_ONCE(*y, 1);
    int r0 = READ_ONCE(*x);
}
exists (1:r0=1 /\\ 1:r1=0 /\\ 2:r0=0)
""")

# Figure 13: forbidden by the LK model (smp_mb "restores SC"), allowed by
# C11's original seq_cst fences.
_register("""
C RWC+mbs
{ x=0; y=0; }
P0(int *x)
{
    WRITE_ONCE(*x, 1);
}
P1(int *x, int *y)
{
    int r0 = READ_ONCE(*x);
    smp_mb();
    int r1 = READ_ONCE(*y);
}
P2(int *x, int *y)
{
    WRITE_ONCE(*y, 1);
    smp_mb();
    int r0 = READ_ONCE(*x);
}
exists (1:r0=1 /\\ 1:r1=0 /\\ 2:r0=0)
""")

# ---------------------------------------------------------------------------
# Other figures
# ---------------------------------------------------------------------------

# Figure 9: address dependency feeding an acquire (task_rq_lock() idiom).
# The pointer p initially points at z; P0 publishes &y.
_register("""
C MP+wmb+addr-acq
{ x=0; y=0; z=0; p=&z; }
P0(int *x, int **p, int *y)
{
    WRITE_ONCE(*x, 1);
    smp_wmb();
    WRITE_ONCE(*p, &y);
}
P1(int *x, int **p)
{
    int r0 = READ_ONCE(*p);
    int r1 = smp_load_acquire(*r0);
    int r2 = READ_ONCE(*x);
}
exists (1:r0=&y /\\ 1:r2=0)
""")

# Pointer publication *without* a read barrier: the read-read address
# dependency alone is not preserved (Alpha may reorder dependent loads),
# so the dereference can see the pre-initialisation value.
_register("""
C MP+wmb+addr
{ y=0; z=0; p=&z; }
P0(int **p, int *y)
{
    WRITE_ONCE(*y, 1);
    smp_wmb();
    WRITE_ONCE(*p, &y);
}
P1(int **p)
{
    int r0 = READ_ONCE(*p);
    int r1 = READ_ONCE(*r0);
}
exists (1:r0=&y /\\ 1:r1=0)
""")

# ... but with an smp_read_barrier_depends the dependency is restored
# (strong-rrdep = rrdep+ & rb-dep).
_register("""
C MP+wmb+addr-rbdep
{ y=0; z=0; p=&z; }
P0(int **p, int *y)
{
    WRITE_ONCE(*y, 1);
    smp_wmb();
    WRITE_ONCE(*p, &y);
}
P1(int **p)
{
    int r0 = READ_ONCE(*p);
    smp_read_barrier_depends();
    int r1 = READ_ONCE(*r0);
}
exists (1:r0=&y /\\ 1:r1=0)
""")

# rcu_dereference carries its own rb-dep (Table 4): same guarantee.
_register("""
C MP+wmb+rcu-deref
{ y=0; z=0; p=&z; }
P0(int **p, int *y)
{
    WRITE_ONCE(*y, 1);
    smp_wmb();
    rcu_assign_pointer(*p, &y);
}
P1(int **p)
{
    int r0 = rcu_dereference(*p);
    int r1 = READ_ONCE(*r0);
}
exists (1:r0=&y /\\ 1:r1=0)
""")

# ---------------------------------------------------------------------------
# Variations used in the experiments (Section 5's systematic variations)
# ---------------------------------------------------------------------------

# Figure 4 with the fence removed: allowed (observed on ARMv7).
_register("""
C LB+ctrl
{ x=0; y=0; }
P0(int *x, int *y)
{
    int r0 = READ_ONCE(*x);
    if (r0) {
        WRITE_ONCE(*y, 1);
    }
}
P1(int *x, int *y)
{
    int r0 = READ_ONCE(*y);
    WRITE_ONCE(*x, 1);
}
exists (0:r0=1 /\\ 1:r0=1)
""")

# Figure 4 with the dependency removed: allowed.
_register("""
C LB+po+mb
{ x=0; y=0; }
P0(int *x, int *y)
{
    int r0 = READ_ONCE(*x);
    WRITE_ONCE(*y, 1);
}
P1(int *x, int *y)
{
    int r0 = READ_ONCE(*y);
    smp_mb();
    WRITE_ONCE(*x, 1);
}
exists (0:r0=1 /\\ 1:r0=1)
""")

# Load buffering with data dependencies on both sides: forbidden — the LK
# model "does not have out-of-thin-air values" (Section 7).
_register("""
C LB+datas
{ x=0; y=0; }
P0(int *x, int *y)
{
    int r0 = READ_ONCE(*x);
    WRITE_ONCE(*y, r0);
}
P1(int *x, int *y)
{
    int r0 = READ_ONCE(*y);
    WRITE_ONCE(*x, r0);
}
exists (0:r0=1 /\\ 1:r0=1)
""")

_register("""
C MP+po-rel+acq
{ x=0; y=0; }
P0(int *x, int *y)
{
    WRITE_ONCE(*x, 1);
    smp_store_release(y, 1);
}
P1(int *x, int *y)
{
    int r0 = smp_load_acquire(y);
    int r1 = READ_ONCE(*x);
}
exists (1:r0=1 /\\ 1:r1=0)
""")

# Release into acquire chained through an internal read (rfi-rel-acq).
_register("""
C MP+po-rel+rfi-acq
{ x=0; y=0; z=0; }
P0(int *x, int *y)
{
    WRITE_ONCE(*x, 1);
    smp_store_release(y, 1);
}
P1(int *x, int *y, int *z)
{
    int r0 = READ_ONCE(*y);
    smp_store_release(z, r0);
    int r1 = smp_load_acquire(z);
    int r2 = READ_ONCE(*x);
}
exists (1:r0=1 /\\ 1:r1=1 /\\ 1:r2=0)
""")

_register("""
C MP+mbs
{ x=0; y=0; }
P0(int *x, int *y)
{
    WRITE_ONCE(*x, 1);
    smp_mb();
    WRITE_ONCE(*y, 1);
}
P1(int *x, int *y)
{
    int r0 = READ_ONCE(*y);
    smp_mb();
    int r1 = READ_ONCE(*x);
}
exists (1:r0=1 /\\ 1:r1=0)
""")

_register("""
C IRIW
{ x=0; y=0; }
P0(int *x)
{
    WRITE_ONCE(*x, 1);
}
P1(int *x, int *y)
{
    int r0 = READ_ONCE(*x);
    int r1 = READ_ONCE(*y);
}
P2(int *y)
{
    WRITE_ONCE(*y, 1);
}
P3(int *x, int *y)
{
    int r0 = READ_ONCE(*y);
    int r1 = READ_ONCE(*x);
}
exists (1:r0=1 /\\ 1:r1=0 /\\ 3:r0=1 /\\ 3:r1=0)
""")

_register("""
C IRIW+mbs
{ x=0; y=0; }
P0(int *x)
{
    WRITE_ONCE(*x, 1);
}
P1(int *x, int *y)
{
    int r0 = READ_ONCE(*x);
    smp_mb();
    int r1 = READ_ONCE(*y);
}
P2(int *y)
{
    WRITE_ONCE(*y, 1);
}
P3(int *x, int *y)
{
    int r0 = READ_ONCE(*y);
    smp_mb();
    int r1 = READ_ONCE(*x);
}
exists (1:r0=1 /\\ 1:r1=0 /\\ 3:r0=1 /\\ 3:r1=0)
""")

_register("""
C 2+2W
{ x=0; y=0; }
P0(int *x, int *y)
{
    WRITE_ONCE(*x, 1);
    WRITE_ONCE(*y, 2);
}
P1(int *x, int *y)
{
    WRITE_ONCE(*y, 1);
    WRITE_ONCE(*x, 2);
}
exists (x=1 /\\ y=1)
""")

# Write-propagation cycles are only forbidden when every non-rf link is
# covered by a *strong* fence (the pb axiom), so 2+2W stays allowed with
# smp_wmb — the model is deliberately weaker than Power here ...
_register("""
C 2+2W+wmbs
{ x=0; y=0; }
P0(int *x, int *y)
{
    WRITE_ONCE(*x, 1);
    smp_wmb();
    WRITE_ONCE(*y, 2);
}
P1(int *x, int *y)
{
    WRITE_ONCE(*y, 1);
    smp_wmb();
    WRITE_ONCE(*x, 2);
}
exists (x=1 /\\ y=1)
""")

# ... while with smp_mb the pb axiom kicks in and the cycle is forbidden.
_register("""
C 2+2W+mbs
{ x=0; y=0; }
P0(int *x, int *y)
{
    WRITE_ONCE(*x, 1);
    smp_mb();
    WRITE_ONCE(*y, 2);
}
P1(int *x, int *y)
{
    WRITE_ONCE(*y, 1);
    smp_mb();
    WRITE_ONCE(*x, 2);
}
exists (x=1 /\\ y=1)
""")

# S: write-to-write causality through a read.
_register("""
C S+wmb+data
{ x=0; y=0; }
P0(int *x, int *y)
{
    WRITE_ONCE(*x, 2);
    smp_wmb();
    WRITE_ONCE(*y, 1);
}
P1(int *x, int *y)
{
    int r0 = READ_ONCE(*y);
    WRITE_ONCE(*x, r0);
}
exists (1:r0=1 /\\ x=2)
""")

# ---------------------------------------------------------------------------
# Coherence (Scpv) and atomicity (At) tests
# ---------------------------------------------------------------------------

_register("""
C CoRR
{ x=0; }
P0(int *x)
{
    WRITE_ONCE(*x, 1);
}
P1(int *x)
{
    int r0 = READ_ONCE(*x);
    int r1 = READ_ONCE(*x);
}
exists (1:r0=1 /\\ 1:r1=0)
""")

_register("""
C CoWW
{ x=0; }
P0(int *x)
{
    WRITE_ONCE(*x, 1);
    WRITE_ONCE(*x, 2);
}
exists (x=1)
""")

_register("""
C CoWR
{ x=0; }
P0(int *x)
{
    WRITE_ONCE(*x, 1);
    int r0 = READ_ONCE(*x);
}
P1(int *x)
{
    WRITE_ONCE(*x, 2);
}
exists (0:r0=0)
""")

_register("""
C CoRW
{ x=0; }
P0(int *x)
{
    int r0 = READ_ONCE(*x);
    WRITE_ONCE(*x, 1);
}
P1(int *x)
{
    WRITE_ONCE(*x, 2);
}
exists (0:r0=2 /\\ x=2)
""")

# Atomicity: two concurrent atomic increments cannot both read 0.
_register("""
C At-inc
{ x=0; }
P0(int *x)
{
    int r0 = xchg(x, 1);
}
P1(int *x)
{
    int r0 = xchg(x, 2);
}
exists (0:r0=0 /\\ 1:r0=0 /\\ x=1)
""")

# xchg_relaxed still provides atomicity (At does not depend on ordering).
_register("""
C At-relaxed
{ x=0; }
P0(int *x)
{
    int r0 = xchg_relaxed(x, 1);
}
P1(int *x)
{
    int r0 = xchg_relaxed(x, 2);
}
exists (0:r0=0 /\\ 1:r0=0 /\\ x=1)
""")

# xchg is bracketed by full fences: it orders like smp_mb (SB shape).
_register("""
C SB+xchgs
{ x=0; y=0; a=0; b=0; }
P0(int *x, int *y, int *a)
{
    WRITE_ONCE(*x, 1);
    int r1 = xchg(a, 1);
    int r0 = READ_ONCE(*y);
}
P1(int *x, int *y, int *b)
{
    WRITE_ONCE(*y, 1);
    int r1 = xchg(b, 1);
    int r0 = READ_ONCE(*x);
}
exists (0:r0=0 /\\ 1:r0=0)
""")

# xchg_relaxed provides no ordering: the SB outcome stays allowed.
_register("""
C SB+xchg-relaxed
{ x=0; y=0; a=0; b=0; }
P0(int *x, int *y, int *a)
{
    WRITE_ONCE(*x, 1);
    int r1 = xchg_relaxed(a, 1);
    int r0 = READ_ONCE(*y);
}
P1(int *x, int *y, int *b)
{
    WRITE_ONCE(*y, 1);
    int r1 = xchg_relaxed(b, 1);
    int r0 = READ_ONCE(*x);
}
exists (0:r0=0 /\\ 1:r0=0)
""")

# ---------------------------------------------------------------------------
# Locking, emulated per Section 7
# ---------------------------------------------------------------------------

# Mutual exclusion: both critical sections reading the other's write of 0
# while writing 1 is impossible.
_register("""
C lock-mutex
{ l=0; x=0; }
P0(int *l, int *x)
{
    spin_lock(l);
    int r0 = READ_ONCE(*x);
    WRITE_ONCE(*x, 1);
    spin_unlock(l);
}
P1(int *l, int *x)
{
    spin_lock(l);
    int r0 = READ_ONCE(*x);
    WRITE_ONCE(*x, 2);
    spin_unlock(l);
}
exists (0:r0=0 /\\ 1:r0=0)
""")

# Message passing through a lock hand-off: the lock starts held (l=1), so
# P1's spin_lock can only succeed by reading P0's releasing store; the
# release-acquire pair then forces P1 to see the data write.
_register("""
C MP+unlock-acq
{ l=1; x=0; }
P0(int *l, int *x)
{
    WRITE_ONCE(*x, 1);
    spin_unlock(l);
}
P1(int *l, int *x)
{
    spin_lock(l);
    int r0 = READ_ONCE(*x);
}
exists (1:r0=0)
""")

# Unlock-lock on different CPUs does not give full ordering (the paper's
# Table 2 cites a fix for code incorrectly relying on fully ordered
# lock-unlock pairs [64]): the SB shape across a lock stays allowed.
_register("""
C SB+unlock-lock
{ l=0; x=0; y=0; }
P0(int *l, int *x, int *y)
{
    WRITE_ONCE(*x, 1);
    spin_lock(l);
    spin_unlock(l);
    int r0 = READ_ONCE(*y);
}
P1(int *x, int *y)
{
    WRITE_ONCE(*y, 1);
    smp_mb();
    int r0 = READ_ONCE(*x);
}
exists (0:r0=0 /\\ 1:r0=0)
""")

# ---------------------------------------------------------------------------
# Additional RCU tests
# ---------------------------------------------------------------------------

# Two grace periods versus two critical sections: still forbidden
# (at least as many GPs as RSCSes in the cycle).
_register("""
C RCU-2GP-2RSCS
{ x=0; y=0; z=0; }
P0(int *x, int *y)
{
    rcu_read_lock();
    int r0 = READ_ONCE(*x);
    WRITE_ONCE(*y, 1);
    rcu_read_unlock();
}
P1(int *y, int *z)
{
    int r0 = READ_ONCE(*y);
    synchronize_rcu();
    WRITE_ONCE(*z, 1);
}
P2(int *z, int *w)
{
    rcu_read_lock();
    int r0 = READ_ONCE(*z);
    WRITE_ONCE(*w, 1);
    rcu_read_unlock();
}
P3(int *w, int *x)
{
    int r0 = READ_ONCE(*w);
    synchronize_rcu();
    WRITE_ONCE(*x, 1);
}
exists (0:r0=1 /\\ 1:r0=1 /\\ 2:r0=1 /\\ 3:r0=1)
""")

# One grace period versus two critical sections: allowed (fewer GPs than
# RSCSes in the cycle — the rule of thumb of Theorem 1).
_register("""
C RCU-1GP-2RSCS
{ x=0; y=0; z=0; }
P0(int *x, int *y)
{
    rcu_read_lock();
    int r0 = READ_ONCE(*x);
    WRITE_ONCE(*y, 1);
    rcu_read_unlock();
}
P1(int *y, int *z)
{
    int r0 = READ_ONCE(*y);
    synchronize_rcu();
    WRITE_ONCE(*z, 1);
}
P2(int *z, int *x)
{
    rcu_read_lock();
    int r0 = READ_ONCE(*z);
    WRITE_ONCE(*x, 1);
    rcu_read_unlock();
}
exists (0:r0=1 /\\ 1:r0=1 /\\ 2:r0=1)
""")

# synchronize_rcu acts as a strong fence (gp is in strong-fence): the SB
# shape with one mb replaced by a grace period is forbidden.
_register("""
C SB+mb+sync
{ x=0; y=0; }
P0(int *x, int *y)
{
    WRITE_ONCE(*x, 1);
    smp_mb();
    int r0 = READ_ONCE(*y);
}
P1(int *x, int *y)
{
    WRITE_ONCE(*y, 1);
    synchronize_rcu();
    int r0 = READ_ONCE(*x);
}
exists (0:r0=0 /\\ 1:r0=0)
""")

# Nested read-side critical sections: only the outermost pair delimits the
# RSCS; the pattern of RCU-MP stays forbidden with nesting.
_register("""
C RCU-MP+nested
{ x=0; y=0; }
P0(int *x, int *y)
{
    rcu_read_lock();
    rcu_read_lock();
    int r0 = READ_ONCE(*x);
    rcu_read_unlock();
    int r1 = READ_ONCE(*y);
    rcu_read_unlock();
}
P1(int *x, int *y)
{
    WRITE_ONCE(*y, 1);
    synchronize_rcu();
    WRITE_ONCE(*x, 1);
}
exists (0:r0=1 /\\ 0:r1=0)
""")


# ---------------------------------------------------------------------------
# Classic shapes beyond Table 5 (ISA2, R, 3.2W, ...)
# ---------------------------------------------------------------------------

# ISA2: a release chain through a middleman thread.  The A-cumulativity of
# the releases links the whole chain (rfe? ; po-rel), so the stale read is
# forbidden...
_register("""
C ISA2+rel+rel+acq
{ x=0; y=0; z=0; }
P0(int *x, int *y)
{
    WRITE_ONCE(*x, 1);
    smp_store_release(y, 1);
}
P1(int *y, int *z)
{
    int r0 = READ_ONCE(*y);
    smp_store_release(z, 1);
}
P2(int *z, int *x)
{
    int r0 = smp_load_acquire(z);
    int r1 = READ_ONCE(*x);
}
exists (1:r0=1 /\\ 2:r0=1 /\\ 2:r1=0)
""")

# ... whereas a data dependency in the middle thread orders locally (ppo)
# but is not a cumulative link, so the chain does not propagate: allowed.
_register("""
C ISA2+rel+data+acq
{ x=0; y=0; z=0; }
P0(int *x, int *y)
{
    WRITE_ONCE(*x, 1);
    smp_store_release(y, 1);
}
P1(int *y, int *z)
{
    int r0 = READ_ONCE(*y);
    WRITE_ONCE(*z, r0);
}
P2(int *z, int *x)
{
    int r0 = smp_load_acquire(z);
    int r1 = READ_ONCE(*x);
}
exists (1:r0=1 /\\ 2:r0=1 /\\ 2:r1=0)
""")

# R: a coherence edge against a from-read.
_register("""
C R
{ x=0; y=0; }
P0(int *x, int *y)
{
    WRITE_ONCE(*x, 1);
    WRITE_ONCE(*y, 1);
}
P1(int *x, int *y)
{
    WRITE_ONCE(*y, 2);
    int r0 = READ_ONCE(*x);
}
exists (y=2 /\\ 1:r0=0)
""")

_register("""
C R+mbs
{ x=0; y=0; }
P0(int *x, int *y)
{
    WRITE_ONCE(*x, 1);
    smp_mb();
    WRITE_ONCE(*y, 1);
}
P1(int *x, int *y)
{
    WRITE_ONCE(*y, 2);
    smp_mb();
    int r0 = READ_ONCE(*x);
}
exists (y=2 /\\ 1:r0=0)
""")

# 3.2W: a three-thread coherence cycle.
_register("""
C 3.2W
{ x=0; y=0; z=0; }
P0(int *x, int *y)
{
    WRITE_ONCE(*x, 1);
    WRITE_ONCE(*y, 2);
}
P1(int *y, int *z)
{
    WRITE_ONCE(*y, 1);
    WRITE_ONCE(*z, 2);
}
P2(int *z, int *x)
{
    WRITE_ONCE(*z, 1);
    WRITE_ONCE(*x, 2);
}
exists (x=1 /\\ y=1 /\\ z=1)
""")

_register("""
C 3.2W+mbs
{ x=0; y=0; z=0; }
P0(int *x, int *y)
{
    WRITE_ONCE(*x, 1);
    smp_mb();
    WRITE_ONCE(*y, 2);
}
P1(int *y, int *z)
{
    WRITE_ONCE(*y, 1);
    smp_mb();
    WRITE_ONCE(*z, 2);
}
P2(int *z, int *x)
{
    WRITE_ONCE(*z, 1);
    smp_mb();
    WRITE_ONCE(*x, 2);
}
exists (x=1 /\\ y=1 /\\ z=1)
""")

# Load buffering protected by release/acquire on both sides.
_register("""
C LB+rels+acqs
{ x=0; y=0; }
P0(int *x, int *y)
{
    int r0 = smp_load_acquire(x);
    smp_store_release(y, 1);
}
P1(int *x, int *y)
{
    int r0 = smp_load_acquire(y);
    smp_store_release(x, 1);
}
exists (0:r0=1 /\\ 1:r0=1)
""")

# Store buffering is NOT forbidden by release/acquire (there is no
# write-to-read ordering in either po-rel or acq-po).
_register("""
C SB+rel+acq
{ x=0; y=0; }
P0(int *x, int *y)
{
    smp_store_release(x, 1);
    int r0 = smp_load_acquire(y);
}
P1(int *x, int *y)
{
    smp_store_release(y, 1);
    int r0 = smp_load_acquire(x);
}
exists (0:r0=0 /\\ 1:r0=0)
""")

# Control dependencies order reads against WRITES only (rwdep is
# restricted to R x W): a ctrl-protected read is still reorderable.
_register("""
C MP+wmb+ctrl
{ x=0; y=0; }
P0(int *x, int *y)
{
    WRITE_ONCE(*x, 1);
    smp_wmb();
    WRITE_ONCE(*y, 1);
}
P1(int *x, int *y)
{
    int r0 = READ_ONCE(*y);
    int r1 = 0;
    if (r0 == 1) {
        r1 = READ_ONCE(*x);
    }
}
exists (1:r0=1 /\\ 1:r1=0)
""")

# rrdep includes dep;rfi: a pointer bounced through a private location
# still forms a (strong, given rb-dep) read-read dependency.
_register("""
C MP+wmb+rfi-rbdep
{ y=0; z=0; p=&z; q=&z; }
P0(int **p, int *y)
{
    WRITE_ONCE(*y, 1);
    smp_wmb();
    WRITE_ONCE(*p, &y);
}
P1(int **p, int **q)
{
    int r0 = READ_ONCE(*p);
    WRITE_ONCE(*q, r0);
    int r1 = READ_ONCE(*q);
    smp_read_barrier_depends();
    int r2 = READ_ONCE(*r1);
}
exists (1:r0=&y /\\ 1:r1=&y /\\ 1:r2=0)
""")

# An smp_mb is NOT a substitute for the grace period: with an unordered
# reader (no fences, no RSCS), the updater's full fence cannot forbid the
# MP outcome.
_register("""
C RCU-MP+mb
{ x=0; y=0; }
P0(int *x, int *y)
{
    rcu_read_lock();
    int r0 = READ_ONCE(*x);
    int r1 = READ_ONCE(*y);
    rcu_read_unlock();
}
P1(int *x, int *y)
{
    WRITE_ONCE(*y, 1);
    smp_mb();
    WRITE_ONCE(*x, 1);
}
exists (0:r0=1 /\\ 0:r1=0)
""")


#: The rows of Table 5, in the paper's order.
TABLE5: List[str] = [
    "LB",
    "LB+ctrl+mb",
    "WRC",
    "WRC+wmb+acq",
    "WRC+po-rel+rmb",
    "SB",
    "SB+mbs",
    "MP",
    "MP+wmb+rmb",
    "PeterZ-No-Synchro",
    "PeterZ",
    "RCU-deferred-free",
    "RCU-MP",
    "RWC",
    "RWC+mbs",
]

#: Table 5's "Model" and "C11" columns, verbatim from the paper.  ``None``
#: marks the dashes (RCU tests have no C11 counterpart).
PAPER_VERDICTS: Dict[str, Dict[str, object]] = {
    "LB": {"LK": "Allow", "C11": "Allow"},
    "LB+ctrl+mb": {"LK": "Forbid", "C11": "Allow"},
    "WRC": {"LK": "Allow", "C11": "Allow"},
    "WRC+wmb+acq": {"LK": "Allow", "C11": "Forbid"},
    "WRC+po-rel+rmb": {"LK": "Forbid", "C11": "Forbid"},
    "SB": {"LK": "Allow", "C11": "Allow"},
    "SB+mbs": {"LK": "Forbid", "C11": "Forbid"},
    "MP": {"LK": "Allow", "C11": "Allow"},
    "MP+wmb+rmb": {"LK": "Forbid", "C11": "Forbid"},
    "PeterZ-No-Synchro": {"LK": "Allow", "C11": "Allow"},
    "PeterZ": {"LK": "Forbid", "C11": "Allow"},
    "RCU-deferred-free": {"LK": "Forbid", "C11": None},
    "RCU-MP": {"LK": "Forbid", "C11": None},
    "RWC": {"LK": "Allow", "C11": "Allow"},
    "RWC+mbs": {"LK": "Forbid", "C11": "Allow"},
}

#: Expected LK verdicts for the non-Table-5 corpus (derived from the
#: paper's prose and the model's definitions; checked by the test suite).
EXTRA_VERDICTS: Dict[str, str] = {
    "MP+wmb+addr-acq": "Forbid",  # Figure 9
    "MP+wmb+addr": "Allow",       # Alpha may reorder dependent reads
    "MP+wmb+addr-rbdep": "Forbid",
    "MP+wmb+rcu-deref": "Forbid",
    "LB+ctrl": "Allow",           # Figure 4 with the fence removed
    "LB+po+mb": "Allow",          # Figure 4 with the dependency removed
    "LB+datas": "Forbid",         # no out-of-thin-air (Section 7)
    "MP+po-rel+acq": "Forbid",
    "MP+po-rel+rfi-acq": "Forbid",
    "MP+mbs": "Forbid",
    "IRIW": "Allow",
    "IRIW+mbs": "Forbid",
    "2+2W": "Allow",
    "2+2W+wmbs": "Allow",
    "2+2W+mbs": "Forbid",
    "S+wmb+data": "Forbid",
    "CoRR": "Forbid",
    "CoWW": "Forbid",
    "CoWR": "Forbid",
    "CoRW": "Forbid",
    "At-inc": "Forbid",
    "At-relaxed": "Forbid",
    "SB+xchgs": "Forbid",
    "SB+xchg-relaxed": "Allow",
    "lock-mutex": "Forbid",
    "MP+unlock-acq": "Forbid",
    "SB+unlock-lock": "Allow",
    "RCU-2GP-2RSCS": "Forbid",
    "RCU-1GP-2RSCS": "Allow",
    "SB+mb+sync": "Forbid",
    "RCU-MP+nested": "Forbid",
    "ISA2+rel+rel+acq": "Forbid",
    "ISA2+rel+data+acq": "Allow",  # deps are local, not cumulative links
    "R": "Allow",
    "R+mbs": "Forbid",
    "3.2W": "Allow",
    "3.2W+mbs": "Forbid",
    "LB+rels+acqs": "Forbid",
    "SB+rel+acq": "Allow",
    "MP+wmb+ctrl": "Allow",  # ctrl orders reads against writes only
    "MP+wmb+rfi-rbdep": "Forbid",
    "RCU-MP+mb": "Allow",  # mb is no substitute for a grace period
}


@lru_cache(maxsize=None)
def get(name: str) -> Program:
    """The named test, parsed.

    An unknown name raises :class:`KeyError` with close-match suggestions
    (``get("MP+wmb+rnb")`` suggests ``MP+wmb+rmb``) rather than dumping
    the whole catalogue.
    """
    try:
        source = SOURCES[name]
    except KeyError:
        close = difflib.get_close_matches(name, SOURCES, n=3, cutoff=0.5)
        if close:
            hint = f"did you mean {' or '.join(repr(c) for c in close)}?"
        else:
            hint = f"see all_names() for the {len(SOURCES)} known tests"
        raise KeyError(f"unknown litmus test {name!r}; {hint}") from None
    return parse_litmus(source)


def all_names() -> List[str]:
    return sorted(SOURCES)


def all_tests() -> List[Program]:
    return [get(name) for name in all_names()]


def table5_tests() -> List[Program]:
    return [get(name) for name in TABLE5]
