"""Tests for the operational simulator (the klitmus substitute)."""

import random

import pytest

from repro.hardware import compile_program, get_arch
from repro.hardware.opsim import OperationalSimulator
from repro.litmus import dsl, library


def simulator(name, arch_name):
    arch = get_arch(arch_name)
    compiled = compile_program(library.get(name), arch, rcu="keep")
    return OperationalSimulator(compiled, arch), library.get(name).condition


def observed(name, arch_name, runs=2000, seed=1):
    sim, condition = simulator(name, arch_name)
    histogram = sim.sample(runs, seed=seed)
    return sum(
        count for state, count in histogram.items() if condition.evaluate(state)
    )


class TestSequentialBaseline:
    def test_sc_is_sequentially_consistent(self):
        # Under the SC spec none of the classic weak outcomes appear.
        for name in ("SB", "MP", "LB", "WRC", "RWC"):
            assert observed(name, "SC", runs=1500) == 0

    def test_deterministic_single_thread(self):
        program = dsl.program(
            "single",
            dsl.thread(dsl.write_once("x", 1), dsl.read_once("r0", "x")),
        )
        arch = get_arch("x86")
        sim = OperationalSimulator(compile_program(program, arch), arch)
        state = sim.run_once(random.Random(0))
        assert state.registers[(0, "r0")] == 1  # store forwarding
        assert state.memory["x"] == 1


class TestTsoBehaviour:
    def test_store_buffering_observed_on_x86(self):
        assert observed("SB", "x86") > 0

    def test_mp_never_reorders_on_x86(self):
        assert observed("MP", "x86") == 0

    def test_lb_never_on_x86(self):
        assert observed("LB", "x86") == 0

    def test_mfence_kills_store_buffering(self):
        assert observed("SB+mbs", "x86") == 0


class TestWeakBehaviour:
    @pytest.mark.parametrize("arch", ["Power8", "ARMv8", "ARMv7"])
    def test_weak_archs_show_mp_and_lb(self, arch):
        assert observed("MP", arch) > 0
        assert observed("LB", arch) > 0

    @pytest.mark.parametrize("arch", ["Power8", "ARMv8", "ARMv7"])
    def test_fences_restore_order(self, arch):
        assert observed("MP+wmb+rmb", arch) == 0
        assert observed("SB+mbs", arch) == 0

    def test_dependency_orders_lb(self):
        # LB+datas: data dependencies forbid the cycle operationally too.
        assert observed("LB+datas", "Power8") == 0

    def test_ctrl_plus_mb_forbidden(self):
        assert observed("LB+ctrl+mb", "ARMv8") == 0

    def test_wmb_acq_difference_between_power_and_arm(self):
        # lwsync orders R->W so Power forbids WRC+wmb+acq; ARMv8's dmb.st
        # does not, so the outcome is reachable there (cf. Table 5: the LK
        # model allows it).
        assert observed("WRC+wmb+acq", "Power8") == 0


class TestAtomicsAndLocks:
    def test_rmw_atomicity(self):
        assert observed("At-inc", "Power8") == 0
        assert observed("At-relaxed", "ARMv8") == 0

    def test_spinlock_mutual_exclusion(self):
        assert observed("lock-mutex", "Power8", runs=800) == 0

    def test_lock_handoff(self):
        assert observed("MP+unlock-acq", "ARMv8", runs=800) == 0


class TestRcuOperationalSemantics:
    @pytest.mark.parametrize("arch", ["Power8", "ARMv8", "ARMv7", "x86"])
    def test_rcu_mp_never_observed(self, arch):
        assert observed("RCU-MP", arch, runs=1500) == 0

    @pytest.mark.parametrize("arch", ["Power8", "x86"])
    def test_rcu_deferred_free_never_observed(self, arch):
        assert observed("RCU-deferred-free", arch, runs=1500) == 0

    def test_grace_period_waits_for_reader(self):
        # A GP-only SB-like test: sync acts as a full fence.
        assert observed("SB+mb+sync", "Power8", runs=1500) == 0

    def test_nested_rscs(self):
        assert observed("RCU-MP+nested", "ARMv8", runs=1000) == 0


class TestReproducibility:
    """Determinism contract: all randomness flows through one explicit rng.

    These pin the deflaked API — any code path that falls back to global
    ``random`` state or per-process hashing breaks one of them.
    """

    def test_same_seed_same_histogram(self):
        sim, _ = simulator("SB", "Power8")
        assert sim.sample(300, seed=7) == sim.sample(300, seed=7)

    def test_different_seeds_differ(self):
        sim, _ = simulator("SB", "Power8")
        assert sim.sample(300, seed=1) != sim.sample(300, seed=2)

    def test_fresh_instances_agree(self):
        # Determinism must not depend on simulator instance state.
        first, _ = simulator("MP", "ARMv8")
        second, _ = simulator("MP", "ARMv8")
        assert first.sample(300, seed=11) == second.sample(300, seed=11)

    def test_injected_rng_matches_seed(self):
        sim, _ = simulator("SB", "Power8")
        assert sim.sample(300, rng=random.Random(7)) == sim.sample(
            300, seed=7
        )

    def test_global_random_state_is_untouched(self):
        sim, _ = simulator("SB", "Power8")
        random.seed(1234)
        before = random.getstate()
        sim.sample(200, seed=3)
        assert random.getstate() == before

    def test_run_klitmus_deterministic(self):
        from repro.hardware import run_klitmus

        program = library.get("SB")
        first = run_klitmus(program, "Power8", runs=300, seed=5)
        second = run_klitmus(program, "Power8", runs=300, seed=5)
        assert first.histogram == second.histogram
        assert first.observed == second.observed

    def test_run_klitmus_accepts_injected_rng(self):
        from repro.hardware import run_klitmus

        program = library.get("SB")
        first = run_klitmus(
            program, "Power8", runs=300, rng=random.Random(42)
        )
        second = run_klitmus(
            program, "Power8", runs=300, rng=random.Random(42)
        )
        assert first.histogram == second.histogram

    def test_sample_executions_deterministic(self):
        from repro.hardware.trace import sample_executions

        program = library.get("MP")

        def final_states(**kwargs):
            return [
                sorted(
                    (e.tid, e.po_index, e.kind, e.loc, e.value)
                    for e in x.events
                )
                for x in sample_executions(program, "Power8", 50, **kwargs)
            ]

        assert final_states(seed=9) == final_states(seed=9)
        assert final_states(rng=random.Random(9)) == final_states(seed=9)
