"""The relational bytecode VM (:mod:`repro.kernel.vm`) must be invisible.

Kernel v2 adds three batching layers — the bytecode VM with shared
trace-invariant registers, the verdict-table early exit / verdict-only
candidate skipping, and persistent worker pools.  None of them may change
a single observable result:

* a four-way property test runs random diy-generated litmus tests under
  the VM, the check-plan interpreter (``REPRO_KERNEL_VM=0``), the
  statement walker (``REPRO_CHECK_PLAN=0``) and the frozenset reference
  backend, demanding identical run summaries;
* the frozen golden verdict table must hold with the VM on *and* off;
* per-candidate ``ModelResult``s (violations, witnesses included) must be
  identical between the VM and the plan evaluator;
* the sweep accelerations (early exit, verdict-only skipping) must keep
  every verdict while provably scanning less;
* unit tests pin the lowered program shape, the popcount fallback and
  persistent-pool reuse.
"""

from __future__ import annotations

import json
from contextlib import ExitStack
from pathlib import Path

import pytest
from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.cat import load_model
from repro.diy.edges import EDGES
from repro.diy.generator import CycleError, generate
from repro.executions.enumerate import candidate_executions
from repro.herd import run_litmus, run_litmus_many, verdicts
from repro.kernel import config as kconfig
from repro.kernel import parallel as kparallel
from repro.kernel import vm
from repro.kernel.bitrel import _popcount, _popcount_fallback
from repro.litmus import library
from repro.obs import core as obs

GOLDEN_PATH = Path(__file__).parent / "data" / "verdicts_golden.json"

#: The four equivalence lanes: each disables one more layer.
CONFIGS = {
    "vm": (kconfig.BITSET, True, True, True),
    "plan": (kconfig.BITSET, True, True, False),
    "walker": (kconfig.BITSET, True, False, False),
    "reference": (kconfig.FROZENSET, False, False, False),
}


def _configured(name: str) -> ExitStack:
    backend, incremental, check_plan, use_vm = CONFIGS[name]
    stack = ExitStack()
    stack.enter_context(kconfig.use_backend(backend))
    stack.enter_context(kconfig.use_incremental(incremental))
    stack.enter_context(kconfig.use_check_plan(check_plan))
    stack.enter_context(kconfig.use_vm(use_vm))
    return stack


def _summary(model, program):
    result = run_litmus(model, program, require_sc_per_location=True)
    return (
        result.verdict,
        result.candidates,
        result.allowed,
        result.witnesses,
        result.states,
    )


@pytest.fixture(scope="module")
def lkmm_cat():
    return load_model("lkmm")


# -- lowered program shape -------------------------------------------------


def test_lowered_program_streams(lkmm_cat):
    plan = lkmm_cat._check_plan()
    program = plan.vm_program()
    assert program is not None
    assert program.prelude, "lkmm has trace-invariant structure"
    assert program.main, "lkmm has rf/co-dependent structure"
    # The prelude never touches the witness relations; the main stream
    # loads both.
    prelude_loads = {
        program.names[instr[2]]
        for instr in program.prelude
        if instr[0] == vm.LOAD_BASE
    }
    main_loads = {
        program.names[instr[2]]
        for instr in program.main
        if instr[0] == vm.LOAD_BASE
    }
    assert not prelude_loads & {"rf", "co"}
    assert {"rf", "co"} <= main_loads
    # lkmm's let-rec rcu group lowers to a fixpoint meta-instruction.
    assert any(instr[0] == vm.FIXPOINT for instr in program.main)
    # Checks keep the plan's order and labels.
    assert [c.label for c in program.checks] == [
        c.label for c in plan.checks
    ]


def test_program_describe_smoke(lkmm_cat):
    text = lkmm_cat._check_plan().vm_program().describe()
    assert "prelude" in text and "main" in text


# -- per-candidate equivalence ----------------------------------------------


@pytest.mark.parametrize("name", ["MP+wmb+rmb", "WRC+wmb+acq", "IRIW+mbs"])
def test_vm_model_results_identical(lkmm_cat, name):
    """Violations — axiom names, kinds *and* witnesses — match the plan
    evaluator on every candidate, not just the allowed bit."""
    program = library.get(name)
    for execution in candidate_executions(program):
        with _configured("vm"):
            fast = lkmm_cat.check(execution)
        with _configured("plan"):
            reference = lkmm_cat.check(execution)
        assert fast.allowed == reference.allowed
        assert fast.violations == reference.violations


def test_vm_unavailable_on_frozenset_backend(lkmm_cat):
    """With frozenset relations there are no dense rows: the VM declines
    and the plan evaluator answers, identically."""
    program = library.get("MP+wmb+rmb")
    with kconfig.use_backend(kconfig.FROZENSET):
        with kconfig.use_vm(True):
            vm_on = _summary(lkmm_cat, program)
        with kconfig.use_vm(False):
            vm_off = _summary(lkmm_cat, program)
    assert vm_on == vm_off


# -- random litmus tests: four-way equivalence -------------------------------


@st.composite
def edge_cycles(draw):
    names = sorted(EDGES)
    length = draw(st.integers(min_value=3, max_value=5))
    return [draw(st.sampled_from(names)) for _ in range(length)]


@given(edge_cycles())
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.filter_too_much, HealthCheck.too_slow],
)
def test_random_cycles_four_way_equivalence(edges):
    try:
        program = generate(edges)
    except CycleError:
        assume(False)
    model = load_model("lkmm")
    summaries = {}
    for name in CONFIGS:
        with _configured(name):
            summaries[name] = _summary(model, program)
    assert (
        summaries["vm"]
        == summaries["plan"]
        == summaries["walker"]
        == summaries["reference"]
    )


# -- golden snapshot under both VM lanes -------------------------------------


@pytest.mark.parametrize("vm_lane", [False, True])
def test_golden_verdicts_both_vm_lanes(vm_lane):
    golden = json.loads(GOLDEN_PATH.read_text())
    models = [load_model(name) for name in golden["models"]]
    programs = [library.get(name) for name in sorted(library.all_names())]
    with kconfig.use_vm(vm_lane):
        computed = verdicts(
            models,
            programs,
            require_sc_per_location=golden["require_sc_per_location"],
        )
    assert computed == golden["verdicts"]


# -- sweep accelerations ------------------------------------------------------


def test_early_exit_keeps_verdicts(lkmm_cat):
    reduced_somewhere = False
    for name in library.all_names():
        program = library.get(name)
        full = run_litmus_many([lkmm_cat], program)[lkmm_cat.name]
        fast = run_litmus_many(
            [lkmm_cat], program, stop_when_decided=True
        )[lkmm_cat.name]
        assert fast.verdict == full.verdict, name
        assert fast.candidates <= full.candidates, name
        if fast.candidates < full.candidates:
            reduced_somewhere = True
    assert reduced_somewhere, "early exit never fired across the library"


def test_verdict_only_keeps_verdicts(lkmm_cat):
    for name in library.all_names():
        program = library.get(name)
        full = run_litmus_many([lkmm_cat], program)[lkmm_cat.name]
        fast = run_litmus_many([lkmm_cat], program, verdict_only=True)[lkmm_cat.name]
        assert fast.verdict == full.verdict, name
        # Enumeration is untouched; only model checks are skipped.
        assert fast.candidates == full.candidates, name


def test_early_exit_stops_at_first_witness(lkmm_cat):
    # WRC+wmb+acq is Allow: the scan must stop strictly before the full
    # candidate count once the witness is found.
    program = library.get("WRC+wmb+acq")
    full = run_litmus_many([lkmm_cat], program)[lkmm_cat.name]
    fast = run_litmus_many(
        [lkmm_cat], program, stop_when_decided=True
    )[lkmm_cat.name]
    assert full.verdict == fast.verdict == "Allow"
    assert fast.candidates < full.candidates


def test_verdicts_gate_on_vm_switch(lkmm_cat):
    """REPRO_KERNEL_VM=0 restores the exhaustive PR 4 sweep: same
    verdicts, full candidate scan."""
    programs = [library.get("MP+wmb+rmb"), library.get("WRC+wmb+acq")]
    with kconfig.use_vm(True):
        fast = verdicts([lkmm_cat], programs)
    with kconfig.use_vm(False):
        slow = verdicts([lkmm_cat], programs)
    assert fast == slow


# -- observability -------------------------------------------------------------


def test_vm_counters_published(lkmm_cat):
    # 2+2W has one trace skeleton and four rf x co candidates, so the
    # shared prelude register file must be hit by the three siblings.
    program = library.get("2+2W")
    with _configured("vm"), obs.collect() as collector:
        run_litmus(lkmm_cat, program)
    counters = collector.counters
    assert counters.get("vm.runs", 0) > 0
    assert counters.get("vm.prelude_builds", 0) >= 1
    assert any(name.startswith("vm.op.") for name in counters)
    # Siblings of the first candidate reuse the shared prelude registers.
    assert counters.get("vm.prelude_hits", 0) > 0


# -- persistent pools -----------------------------------------------------------


def test_persistent_pool_reused_across_sweeps(lkmm_cat):
    programs = [library.get(name) for name in sorted(library.all_names())[:4]]
    kparallel.shutdown_pools()
    try:
        with obs.collect() as collector:
            first = verdicts([lkmm_cat], programs, jobs=2)
            second = verdicts([lkmm_cat], programs, jobs=2)
        assert first == second
        assert collector.counters.get("parallel.pool_spawn", 0) == 1
        assert collector.counters.get("parallel.pool_reuse", 0) >= 1
    finally:
        kparallel.shutdown_pools()


# -- popcount fallback ------------------------------------------------------------


@given(st.integers(min_value=0, max_value=(1 << 256) - 1))
@settings(max_examples=200, deadline=None)
def test_popcount_fallback_matches(mask):
    assert _popcount_fallback(mask) == _popcount(mask)


def test_popcount_prefers_native_when_available():
    if hasattr(int, "bit_count"):
        assert _popcount is int.bit_count
    else:  # pragma: no cover - Python 3.9 only
        assert _popcount is _popcount_fallback
