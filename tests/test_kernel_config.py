"""Regression tests for :mod:`repro.kernel.config` env handling.

The original implementation read ``REPRO_RELATION_BACKEND`` /
``REPRO_INCREMENTAL`` once at import time, so per-test toggling required a
subprocess.  The config now re-reads the environment on every query (with
a last-raw-value parse cache) and layers process-local overrides on top.
These tests exercise exactly the behaviours that regression would break:

* ``monkeypatch.setenv`` changes take effect immediately, same process;
* overrides (``set_backend`` / the context managers) beat the env and
  restore cleanly, including when nested;
* invalid env values raise lazily at query time, not import time;
* the actual :class:`~repro.relations.Relation` representation follows.
"""

from __future__ import annotations

import pytest

from repro.kernel import config
from repro.litmus import library
from repro.herd import run_litmus
from repro.lkmm import LinuxKernelModel
from repro.relations import Relation


@pytest.fixture(autouse=True)
def clean_overrides():
    """Each test starts (and its neighbours end) with no overrides."""
    config.set_backend(None)
    config.set_incremental(None)
    yield
    config.set_backend(None)
    config.set_incremental(None)


class TestEnvReRead:
    def test_backend_env_change_is_seen_immediately(self, monkeypatch):
        monkeypatch.setenv("REPRO_RELATION_BACKEND", "frozenset")
        assert config.backend() == "frozenset"
        monkeypatch.setenv("REPRO_RELATION_BACKEND", "bitset")
        assert config.backend() == "bitset"
        monkeypatch.delenv("REPRO_RELATION_BACKEND")
        assert config.backend() == "bitset"  # the default

    def test_incremental_env_change_is_seen_immediately(self, monkeypatch):
        monkeypatch.setenv("REPRO_INCREMENTAL", "0")
        assert not config.incremental_enabled()
        monkeypatch.setenv("REPRO_INCREMENTAL", "1")
        assert config.incremental_enabled()
        monkeypatch.delenv("REPRO_INCREMENTAL")
        assert config.incremental_enabled()  # the default

    def test_env_value_is_normalised(self, monkeypatch):
        monkeypatch.setenv("REPRO_RELATION_BACKEND", "  FrozenSet ")
        assert config.backend() == "frozenset"

    @pytest.mark.parametrize("falsy", ["0", "false", "no", "off"])
    def test_incremental_falsy_spellings(self, monkeypatch, falsy):
        monkeypatch.setenv("REPRO_INCREMENTAL", falsy)
        assert not config.incremental_enabled()

    def test_invalid_backend_raises_at_query_time(self, monkeypatch):
        monkeypatch.setenv("REPRO_RELATION_BACKEND", "linked-list")
        with pytest.raises(ValueError, match="linked-list"):
            config.backend()
        # And recovers once the env is fixed — no poisoned cache.
        monkeypatch.setenv("REPRO_RELATION_BACKEND", "bitset")
        assert config.backend() == "bitset"

    def test_relations_follow_env_per_case(self, monkeypatch):
        """The point of the fix: backends toggle per test case, in-process.

        The bitset representation indexes events; the frozenset reference
        stores plain pairs.  Build one Relation under each env setting and
        check the representation actually switched.
        """
        events = frozenset()
        monkeypatch.setenv("REPRO_RELATION_BACKEND", "frozenset")
        reference = Relation([], events)
        monkeypatch.setenv("REPRO_RELATION_BACKEND", "bitset")
        bitset = Relation([], events)
        assert reference._dense is None and reference._pairs == frozenset()
        assert bitset._dense is not None

    def test_verdict_invariant_across_env_backends(self, monkeypatch):
        """Same verdict under both env-selected backends, one process."""
        model = LinuxKernelModel()
        program = library.get("MP+wmb+rmb")
        monkeypatch.setenv("REPRO_RELATION_BACKEND", "frozenset")
        monkeypatch.setenv("REPRO_INCREMENTAL", "0")
        reference = run_litmus(model, program)
        monkeypatch.setenv("REPRO_RELATION_BACKEND", "bitset")
        monkeypatch.setenv("REPRO_INCREMENTAL", "1")
        fast = run_litmus(model, program)
        assert reference.verdict == fast.verdict == "Forbid"
        assert reference.candidates == fast.candidates


class TestOverrides:
    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RELATION_BACKEND", "frozenset")
        config.set_backend("bitset")
        assert config.backend() == "bitset"
        config.set_backend(None)
        assert config.backend() == "frozenset"

    def test_set_backend_validates(self):
        with pytest.raises(ValueError, match="linked-list"):
            config.set_backend("linked-list")

    def test_use_backend_restores(self, monkeypatch):
        monkeypatch.setenv("REPRO_RELATION_BACKEND", "frozenset")
        with config.use_backend("bitset"):
            assert config.backend() == "bitset"
        assert config.backend() == "frozenset"

    def test_use_backend_restores_on_error(self):
        before = config.backend()
        other = "frozenset" if before == "bitset" else "bitset"
        with pytest.raises(RuntimeError):
            with config.use_backend(other):
                raise RuntimeError()
        assert config.backend() == before

    def test_nested_use_backend(self):
        before = config.backend()
        with config.use_backend("frozenset"):
            with config.use_backend("bitset"):
                assert config.backend() == "bitset"
            assert config.backend() == "frozenset"
        assert config.backend() == before

    def test_use_incremental_restores(self, monkeypatch):
        monkeypatch.setenv("REPRO_INCREMENTAL", "1")
        with config.use_incremental(False):
            assert not config.incremental_enabled()
        assert config.incremental_enabled()
