"""The relaxation-edge vocabulary for cycle-based test generation.

Every edge constrains the kinds of its endpoints (read or write) and says
how it is realised: communication edges become reads-from / from-reads /
coherence relationships between threads, program-order edges become code
(possibly with a fence or a dependency) within one thread.  The names
follow diy's conventions (``Pod`` = program order, different location;
``Dp`` = dependency; fence edges by fence name).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.events import READ, WRITE

#: Kind wildcards for endpoint constraints.
ANY = "_"


@dataclass(frozen=True)
class Edge:
    """One relaxation edge.

    Attributes:
        name: diy-style name.
        src: Required kind of the source node (``R``, ``W`` or ``_``).
        tgt: Required kind of the target node.
        external: True for communication edges (thread changes, location
            stays); False for program-order edges (thread stays, location
            changes).
        comm: For external edges: ``rf``, ``fr`` or ``co``.
        fence: LK fence tag to insert between the two accesses.
        dep: Dependency carried by the edge: ``addr``, ``data`` or
            ``ctrl`` (source must be a read).
        src_annot / tgt_annot: Access annotation forced on an endpoint
            (``acquire`` on a read, ``release`` on a write).
    """

    name: str
    src: str
    tgt: str
    external: bool = False
    comm: Optional[str] = None
    fence: Optional[str] = None
    dep: Optional[str] = None
    src_annot: Optional[str] = None
    tgt_annot: Optional[str] = None

    def matches_src(self, kind: str) -> bool:
        return self.src == ANY or self.src == kind

    def matches_tgt(self, kind: str) -> bool:
        return self.tgt == ANY or self.tgt == kind

    def __str__(self) -> str:
        return self.name


def _mk(edges) -> Dict[str, Edge]:
    return {e.name: e for e in edges}


EDGES: Dict[str, Edge] = _mk(
    [
        # -- communication (external, same location) ----------------------
        Edge("Rfe", WRITE, READ, external=True, comm="rf"),
        Edge("Fre", READ, WRITE, external=True, comm="fr"),
        Edge("Coe", WRITE, WRITE, external=True, comm="co"),
        # -- plain program order (internal, different location) -----------
        Edge("PodRR", READ, READ),
        Edge("PodRW", READ, WRITE),
        Edge("PodWR", WRITE, READ),
        Edge("PodWW", WRITE, WRITE),
        # -- fences ---------------------------------------------------------
        Edge("MbdRR", READ, READ, fence="mb"),
        Edge("MbdRW", READ, WRITE, fence="mb"),
        Edge("MbdWR", WRITE, READ, fence="mb"),
        Edge("MbdWW", WRITE, WRITE, fence="mb"),
        Edge("WmbdWW", WRITE, WRITE, fence="wmb"),
        Edge("RmbdRR", READ, READ, fence="rmb"),
        Edge("RbDepdRR", READ, READ, fence="rb-dep"),
        Edge("SyncdRR", READ, READ, fence="sync-rcu"),
        Edge("SyncdRW", READ, WRITE, fence="sync-rcu"),
        Edge("SyncdWR", WRITE, READ, fence="sync-rcu"),
        Edge("SyncdWW", WRITE, WRITE, fence="sync-rcu"),
        # -- dependencies (source must be a read) --------------------------
        Edge("DpAddrdR", READ, READ, dep="addr"),
        # Address dependency *plus* smp_read_barrier_depends: the
        # combination that forms strong-rrdep (an rb-dep fence alone
        # provides no ordering; it only restores dependency ordering).
        Edge("DpAddrRbDepdR", READ, READ, dep="addr", fence="rb-dep"),
        Edge("DpAddrdW", READ, WRITE, dep="addr"),
        Edge("DpDatadW", READ, WRITE, dep="data"),
        Edge("DpCtrldW", READ, WRITE, dep="ctrl"),
        Edge("DpCtrldR", READ, READ, dep="ctrl"),
        # -- acquire / release annotations ---------------------------------
        Edge("AcqdR", READ, READ, src_annot="acquire"),
        Edge("AcqdW", READ, WRITE, src_annot="acquire"),
        Edge("ReldW", ANY, WRITE, tgt_annot="release"),
    ]
)


def edge(name: str) -> Edge:
    """Look up an edge by its diy-style name."""
    try:
        return EDGES[name]
    except KeyError:
        raise KeyError(
            f"unknown edge {name!r}; known: {sorted(EDGES)}"
        ) from None
