"""Path-sensitive checkers over the dataflow framework.

Four checkers, all reporting through the shared
:class:`~repro.analysis.findings.Finding` machinery and registered with
``repro-lint`` via :data:`CHECKERS` /
:func:`repro.analysis.litmuslint.lint_program`:

* :func:`check_rcu` — RCU read-side discipline: an ``rcu_read_unlock()``
  reachable at nesting depth 0 (unbalanced on some path), a read-side
  section still open at thread exit, a grace-period wait
  (``synchronize_rcu()``) reachable inside a read-side section (the
  self-deadlock the paper's Section 6 axioms make formal), and
  over-nested sections;
* :func:`check_locks` — spinlock discipline over the paper's Section 7
  ``Rmw``/``CmpXchg`` encoding: double-lock self-deadlock,
  unlock-without-lock (legitimate for cross-thread hand-offs, hence a
  warning), lock held at thread exit;
* :func:`check_dependencies` — *fragile* syntactic dependencies: an
  address/data/control dependency whose expression a compiler may legally
  evaluate to a constant (``r ^ r``, ``r - r``, ``r * 0``, ``r & 0``,
  reflexive comparisons — also through constant-propagated locals), so
  the ordering the LKMM derives from it does not survive compilation
  (cf. "Bridging the Gap between Programming Languages and Hardware Weak
  Memory Models");
* :func:`check_dataflow` — the precise replacements for the old
  single-pass heuristics: uninitialised shared-location reads, register
  reads that may precede any assignment on some path, and dead local
  stores (by liveness).

Soundness note: litmus CFGs are acyclic with finitely many paths, so the
region analysis tracks the *exact* set of (rcu-depth, held-locks) states
per point — "on some path" findings name a real path, and clean output
means no path misbehaves.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.events import Pointer, RCU_LOCK, RCU_UNLOCK, SYNC_RCU
from repro.litmus.ast import (
    CmpXchg,
    Expr,
    Fence,
    If,
    Instruction,
    Load,
    LocalAssign,
    Program,
    Rmw,
    Store,
)
from repro.analysis.findings import Finding
from repro.analysis.flow.analyses import (
    ConstantPropagation,
    Liveness,
    ReachingDefinitions,
    RegionAnalysis,
    UNINIT,
    cfg_registers,
    environment,
    expr_registers,
    fold_expr,
    instruction_uses,
    lock_acquire_is_blocking,
    lock_acquire_location,
    lock_release_location,
    program_lock_locations,
    static_location,
)
from repro.analysis.flow.cfg import Cfg
from repro.analysis.flow.dataflow import DataflowResult, solve

#: Deeper nesting than this is reported as ``rcu-over-nesting``.  Nesting
#: is legal (RCU-MP+nested in the library nests to depth 2, the axioms of
#: Section 6 match outermost brackets), but depth beyond this in a litmus
#: test almost always means a missing unlock rather than intent.
MAX_RCU_NESTING = 2


class _ThreadFlow:
    """All analyses for one thread, computed lazily and shared between
    checkers so each CFG is solved at most once per analysis."""

    def __init__(self, tid: int, cfg: Cfg, lock_locations: FrozenSet[str],
                 condition_regs: FrozenSet[str]):
        self.tid = tid
        self.cfg = cfg
        self.lock_locations = lock_locations
        self.condition_regs = condition_regs
        self._results: Dict[str, DataflowResult] = {}

    def region(self) -> DataflowResult:
        if "region" not in self._results:
            self._results["region"] = solve(
                self.cfg, RegionAnalysis(self.lock_locations)
            )
        return self._results["region"]

    def reaching(self) -> DataflowResult:
        if "reaching" not in self._results:
            self._results["reaching"] = solve(
                self.cfg, ReachingDefinitions(self.cfg)
            )
        return self._results["reaching"]

    def liveness(self) -> DataflowResult:
        if "liveness" not in self._results:
            self._results["liveness"] = solve(
                self.cfg, Liveness(self.condition_regs)
            )
        return self._results["liveness"]

    def constants(self) -> DataflowResult:
        if "constants" not in self._results:
            self._results["constants"] = solve(self.cfg, ConstantPropagation())
        return self._results["constants"]


def _condition_registers_by_thread(program: Program) -> Dict[int, Set[str]]:
    from repro.analysis.litmuslint import _condition_registers

    by_tid: Dict[int, Set[str]] = {}
    for tid, reg in _condition_registers(program.condition):
        by_tid.setdefault(tid, set()).add(reg)
    return by_tid


def _thread_flows(program: Program) -> List[_ThreadFlow]:
    cfgs = program.cfgs()
    locks = program_lock_locations(cfgs)
    condition_regs = _condition_registers_by_thread(program)
    return [
        _ThreadFlow(tid, cfg, locks, frozenset(condition_regs.get(tid, ())))
        for tid, cfg in enumerate(cfgs)
    ]


def lint_program_flow(program: Program) -> List[Finding]:
    """Run every path-sensitive checker over one program."""
    flows = _thread_flows(program)
    findings: List[Finding] = []
    for checker in CHECKERS:
        findings.extend(checker(program, flows))
    return findings


# ---------------------------------------------------------------------------
# RCU discipline
# ---------------------------------------------------------------------------


def _path_qualifier(bad: int, total: int) -> str:
    return "every path" if bad == total else "some path"


def check_rcu(program: Program, flows: Optional[List[_ThreadFlow]] = None) -> List[Finding]:
    flows = flows if flows is not None else _thread_flows(program)
    findings: List[Finding] = []
    for flow in flows:
        region = flow.region()
        for _, ins, states in region.states():
            if not isinstance(ins, Fence) or not states:
                continue
            depths = sorted(d for d, _ in states)
            if ins.tag == RCU_UNLOCK and 0 in depths:
                unmatched = sum(1 for d in depths if d == 0)
                findings.append(Finding.of(
                    program.name,
                    "rcu-unbalanced",
                    f"P{flow.tid}: rcu_read_unlock() without a matching "
                    f"rcu_read_lock() on {_path_qualifier(unmatched, len(depths))}",
                    line=ins.lineno,
                ))
            elif ins.tag == RCU_LOCK and depths[-1] + 1 > MAX_RCU_NESTING:
                findings.append(Finding.of(
                    program.name,
                    "rcu-over-nesting",
                    f"P{flow.tid}: rcu_read_lock() nests read-side "
                    f"sections to depth {depths[-1] + 1} "
                    f"(> {MAX_RCU_NESTING}) — missing an unlock?",
                    line=ins.lineno,
                ))
            elif ins.tag == SYNC_RCU and depths[-1] > 0:
                inside = sum(1 for d in depths if d > 0)
                findings.append(Finding.of(
                    program.name,
                    "rcu-sync-in-critical-section",
                    f"P{flow.tid}: synchronize_rcu() is reachable inside "
                    f"an RCU read-side section on "
                    f"{_path_qualifier(inside, len(depths))} — the grace "
                    "period can never end (self-deadlock)",
                    line=ins.lineno,
                ))
        exit_states = region.at_exit()
        open_depths = sorted(d for d, _ in exit_states if d > 0)
        if open_depths:
            findings.append(Finding.of(
                program.name,
                "rcu-unbalanced",
                f"P{flow.tid}: an RCU read-side section (depth "
                f"{open_depths[-1]}) is still open at thread exit on "
                f"{_path_qualifier(len(open_depths), len(exit_states))}",
            ))
    return findings


# ---------------------------------------------------------------------------
# Lock discipline
# ---------------------------------------------------------------------------


def check_locks(program: Program, flows: Optional[List[_ThreadFlow]] = None) -> List[Finding]:
    flows = flows if flows is not None else _thread_flows(program)
    findings: List[Finding] = []
    for flow in flows:
        if not flow.lock_locations:
            continue
        region = flow.region()
        for _, ins, states in region.states():
            if not states:
                continue
            acquired = lock_acquire_location(ins)
            if acquired is not None and lock_acquire_is_blocking(ins):
                holding = sum(1 for _, held in states if acquired in held)
                if holding:
                    findings.append(Finding.of(
                        program.name,
                        "double-lock",
                        f"P{flow.tid}: spin_lock({acquired!r}) while "
                        f"already holding it on "
                        f"{_path_qualifier(holding, len(states))} — "
                        "self-deadlock",
                        line=ins.lineno,
                    ))
            released = lock_release_location(ins, flow.lock_locations)
            if released is not None:
                free = sum(1 for _, held in states if released not in held)
                if free:
                    findings.append(Finding.of(
                        program.name,
                        "unlock-without-lock",
                        f"P{flow.tid}: spin_unlock({released!r}) without "
                        f"holding the lock on "
                        f"{_path_qualifier(free, len(states))} (legitimate "
                        "only as a cross-thread lock hand-off)",
                        line=ins.lineno,
                    ))
        exit_states = region.at_exit()
        still_held: Set[str] = set()
        for _, held in exit_states:
            still_held |= held
        for lock in sorted(still_held):
            holding = sum(1 for _, held in exit_states if lock in held)
            findings.append(Finding.of(
                program.name,
                "lock-held-at-exit",
                f"P{flow.tid}: lock {lock!r} is still held at thread exit "
                f"on {_path_qualifier(holding, len(exit_states))}",
            ))
    return findings


# ---------------------------------------------------------------------------
# Fragile dependencies
# ---------------------------------------------------------------------------


def _tainted_registers(cfg: Cfg) -> FrozenSet[str]:
    """Registers that may (transitively) carry a read's value — the ones
    whose use in an address/data/control expression creates a dependency
    edge in the model (:mod:`repro.executions.thread_sem`)."""
    tainted: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for _, ins in cfg.instructions():
            if isinstance(ins, (Load, Rmw, CmpXchg)):
                if ins.reg not in tainted:
                    tainted.add(ins.reg)
                    changed = True
            elif isinstance(ins, LocalAssign):
                if ins.reg not in tainted and expr_registers(ins.expr) & tainted:
                    tainted.add(ins.reg)
                    changed = True
    return frozenset(tainted)


def _describe_constant(value) -> str:
    if isinstance(value, Pointer):
        return f"&{value.loc}"
    return repr(value)


def check_dependencies(
    program: Program, flows: Optional[List[_ThreadFlow]] = None
) -> List[Finding]:
    flows = flows if flows is not None else _thread_flows(program)
    findings: List[Finding] = []
    for flow in flows:
        tainted = _tainted_registers(flow.cfg)
        constants = flow.constants()
        for _, ins, state in constants.states():
            env = environment(state or ())
            for kind, expr in _dependency_expressions(ins):
                regs = expr_registers(expr)
                if isinstance(ins, (Rmw, CmpXchg)):
                    regs = regs - {ins.reg}  # the RMW's own read, not a dep
                if not regs & tainted:
                    if kind == "control" and fold_expr(expr, env) is not None:
                        value = fold_expr(expr, env)
                        findings.append(Finding.of(
                            program.name,
                            "constant-condition",
                            f"P{flow.tid}: branch condition {expr!r} is "
                            f"always {_describe_constant(value)} — one arm "
                            "is dead code",
                            line=ins.lineno,
                        ))
                    continue
                value = fold_expr(expr, env)
                if value is None:
                    continue
                if kind == "control":
                    findings.append(Finding.of(
                        program.name,
                        "constant-condition",
                        f"P{flow.tid}: control dependency through "
                        f"{expr!r} is fragile — the condition always "
                        f"evaluates to {_describe_constant(value)}, so a "
                        "compiler may drop the branch and the ordering "
                        "with it",
                        line=ins.lineno,
                    ))
                else:
                    findings.append(Finding.of(
                        program.name,
                        "fragile-dependency",
                        f"P{flow.tid}: {kind} dependency through {expr!r} "
                        f"is fragile — it always evaluates to "
                        f"{_describe_constant(value)}, and a compiler may "
                        "constant-fold the dependency away (the test's "
                        "verdict would not survive compilation)",
                        line=ins.lineno,
                    ))
    return findings


def _dependency_expressions(ins: Instruction) -> List[Tuple[str, Expr]]:
    """The (kind, expression) pairs of an instruction that give rise to
    dependency edges: ``address``/``data``/``control``."""
    if isinstance(ins, Load):
        return [("address", ins.addr)]
    if isinstance(ins, Store):
        return [("address", ins.addr), ("data", ins.value)]
    if isinstance(ins, Rmw):
        return [("address", ins.addr), ("data", ins.new_value)]
    if isinstance(ins, CmpXchg):
        return [
            ("address", ins.addr),
            ("data", ins.expected),
            ("data", ins.new_value),
        ]
    if isinstance(ins, If):
        return [("control", ins.cond)]
    return []


# ---------------------------------------------------------------------------
# Precise uninit / dead-store lint (replaces the old heuristics)
# ---------------------------------------------------------------------------


def check_dataflow(
    program: Program, flows: Optional[List[_ThreadFlow]] = None
) -> List[Finding]:
    flows = flows if flows is not None else _thread_flows(program)
    findings: List[Finding] = []
    findings.extend(_check_uninit_locations(program, flows))
    for flow in flows:
        findings.extend(_check_uninit_registers(program, flow))
        findings.extend(_check_dead_stores(program, flow))
    return findings


def _check_uninit_locations(
    program: Program, flows: List[_ThreadFlow]
) -> List[Finding]:
    """A location that is read but never written by any thread and not
    initialised: herd silently defaults it to 0, so the test "works"
    while testing nothing."""
    reads: Dict[str, Optional[int]] = {}
    written: Set[str] = set()
    for flow in flows:
        for _, ins in flow.cfg.instructions():
            for is_write, addr in _accesses(ins):
                loc = static_location(addr)
                if loc is None:
                    if is_write:
                        return []  # a store through a pointer may hit anything
                    continue
                if is_write:
                    written.add(loc)
                elif loc not in reads:
                    reads[loc] = ins.lineno
    findings = []
    for loc in sorted(set(reads) - written - set(program.init)):
        findings.append(Finding.of(
            program.name,
            "uninitialized-read",
            f"location {loc!r} is read but never written and not "
            "initialised (herd defaults it to 0 — is that intended?)",
            line=reads[loc],
        ))
    return findings


def _accesses(ins: Instruction) -> List[Tuple[bool, Expr]]:
    if isinstance(ins, Load):
        return [(False, ins.addr)]
    if isinstance(ins, Store):
        return [(True, ins.addr)]
    if isinstance(ins, (Rmw, CmpXchg)):
        return [(False, ins.addr), (True, ins.addr)]
    return []


def _check_uninit_registers(program: Program, flow: _ThreadFlow) -> List[Finding]:
    reaching = flow.reaching()
    findings = []
    reported: Set[Tuple[str, Optional[int]]] = set()
    for _, ins, state in reaching.states():
        for reg in sorted(instruction_uses(ins)):
            if (reg, UNINIT) not in state:
                continue
            definite = not any(
                pair[0] == reg and pair[1] != UNINIT for pair in state
            )
            key = (reg, ins.lineno)
            if key in reported:
                continue
            reported.add(key)
            qualifier = "" if definite else " on some path"
            findings.append(Finding.of(
                program.name,
                "uninit-register-read",
                f"P{flow.tid}: register {reg!r} may be read before "
                f"assignment{qualifier}",
                line=ins.lineno,
            ))
    exit_state = reaching.at_exit()
    for reg in sorted(flow.condition_regs):
        if (reg, UNINIT) not in exit_state:
            continue
        if not any(pair[0] == reg and pair[1] != UNINIT for pair in exit_state):
            continue  # never assigned at all: condition-unknown-register
        findings.append(Finding.of(
            program.name,
            "uninit-register-read",
            f"condition reads {flow.tid}:{reg}, which may be unassigned "
            "at the end of some path",
        ))
    return findings


def _check_dead_stores(program: Program, flow: _ThreadFlow) -> List[Finding]:
    liveness = flow.liveness()
    findings = []
    for _, ins, live_after in liveness.states():
        # Loads and RMWs are exempt: their *event* matters even when the
        # fetched value is ignored (e.g. SB+xchgs discards it).
        if isinstance(ins, LocalAssign) and ins.reg not in live_after:
            findings.append(Finding.of(
                program.name,
                "dead-store",
                f"P{flow.tid}: the value assigned to register "
                f"{ins.reg!r} here is never used",
                line=ins.lineno,
            ))
    return findings


#: The checker registry ``repro-lint`` runs (besides the syntactic lint).
CHECKERS = (check_rcu, check_locks, check_dependencies, check_dataflow)
