"""Shared helpers for the reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper's evaluation
(see the experiment index in DESIGN.md), asserts that the *shape* matches
the paper — who wins, which outcomes are forbidden, where the models
disagree — and reports timings via pytest-benchmark.  Run with::

    pytest benchmarks/ --benchmark-only -s

(-s shows the regenerated tables.)
"""

from __future__ import annotations

import pytest

from repro.cat import load_model
from repro.lkmm import LinuxKernelModel


def once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer.

    Most experiments here take seconds; repeating them for statistical
    rounds would multiply the suite's runtime for no insight.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def lkmm():
    return LinuxKernelModel()


@pytest.fixture(scope="session")
def lkmm_cat():
    return load_model("lkmm")


@pytest.fixture(scope="session")
def c11():
    return load_model("c11")


def print_table(title, headers, rows):
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
        for i in range(len(headers))
    ]
    print(f"\n{title}")
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
