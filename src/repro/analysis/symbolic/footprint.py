"""From a final-state condition to pinned communication edges.

A litmus condition like ``exists (1:r0=1 /\\ x=2)`` constrains *every*
execution that satisfies it: the read feeding ``1:r0`` must read from a
write of 1 to its location, and the coherence-maximal write to ``x`` must
be the one writing 2.  When those writers are unique in the skeleton, the
condition *pins* communication edges — facts the prover may assume while
deciding whether a forbidden cycle is unavoidable.

The resolution here is deliberately narrow and, within its fragment,
exact:

* only conjunctions of ``tid:reg = v`` and ``loc = v`` atoms (the shape
  the diy generator and the stock library overwhelmingly use) — ``\\/``,
  ``~`` and ``forall`` bodies raise :class:`Unsupported`;
* a register atom resolves through the skeleton's final register origins:
  a constant origin is discharged (or refutes the condition) outright; a
  read origin pins that read's returned value, and the rf source is
  pinned when exactly one write (or the initialising write) can supply
  the value.  Candidate sources are *all* same-location writes of that
  value — including po-later ones in the same thread, which the
  enumerator genuinely offers as rf sources;
* a location atom pins the coherence-maximal write the same way.

Zero candidates is not a failure — it proves the condition unsatisfiable
(``trivially_false``), which *is* a static verdict.  Writes of unknown
(trace-dependent) values make candidate sets indeterminate and raise
:class:`Unsupported` instead.

From the pins, :func:`guaranteed_edges` derives the edges present in
every condition-satisfying execution, and :func:`scenarios` enumerates
the per-location coherence orders those executions can still choose,
yielding one :class:`~repro.analysis.symbolic.match.EdgeSet` per case —
an exhaustive partition, so "every scenario has a forbidden cycle"
really covers every condition-satisfying execution.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.litmus.ast import Program
from repro.litmus.outcomes import And, Condition, LocValue, RegValue

from repro.analysis.symbolic.match import EdgeSet, Key, Pair
from repro.analysis.symbolic.skeleton import (
    ProgramSkeleton,
    SkelEvent,
    UNKNOWN,
    Unsupported,
)

#: Per-location coherence scenarios beyond this are not enumerated; the
#: prover falls back to the guaranteed-edge intersection.
SCENARIO_CAP = 64


@dataclass
class Footprint:
    """What the condition body forces on every satisfying execution."""

    #: The condition body can never evaluate to True (e.g. a register
    #: compared against a value nothing writes) — an immediate verdict.
    trivially_false: bool = False
    #: Read events whose returned value is fixed: read key -> (source
    #: write key or None for the initialising write, the pinned value).
    read_pins: Dict[Key, Tuple[Optional[Key], object]] = field(
        default_factory=dict
    )
    #: Locations whose coherence-maximal write is fixed.
    comax_pins: Dict[str, Key] = field(default_factory=dict)
    #: The register atoms, kept for witness filtering on the Allow path.
    reg_values: Dict[Tuple[int, str], object] = field(default_factory=dict)


def _conjuncts(condition: Condition) -> List[Condition]:
    if isinstance(condition, And):
        return _conjuncts(condition.lhs) + _conjuncts(condition.rhs)
    if isinstance(condition, (RegValue, LocValue)):
        return [condition]
    raise Unsupported(f"condition atom {condition!r} outside the fragment")


def _value_candidates(
    skeleton: ProgramSkeleton, program: Program, loc: str, value: object
) -> Tuple[List[SkelEvent], bool]:
    """Skeleton writes that can supply ``value`` at ``loc``, plus whether
    the initialising write also can."""
    candidates = []
    for write in skeleton.writes_to(loc):
        if write.value is UNKNOWN:
            raise Unsupported(
                f"write of a trace-dependent value to {loc!r}"
            )
        if write.value == value:
            candidates.append(write)
    return candidates, program.initial_value(loc) == value


def resolve_footprint(
    skeleton: ProgramSkeleton, condition: Condition
) -> Footprint:
    """Resolve a condition body against the skeleton.

    Raises :class:`Unsupported` outside the conjunction-of-atoms
    fragment; returns ``trivially_false`` when the body is provably
    unsatisfiable over all candidate executions.
    """
    program = skeleton.program
    footprint = Footprint()

    def refuted() -> Footprint:
        footprint.trivially_false = True
        return footprint

    for atom in _conjuncts(condition):
        if isinstance(atom, RegValue):
            if not 0 <= atom.tid < len(skeleton.threads):
                return refuted()
            origin = skeleton.threads[atom.tid].final_regs.get(atom.reg)
            if origin is None:
                return refuted()  # never assigned: absent from final state
            tag, payload = origin
            if tag == "const":
                if payload != atom.value:
                    return refuted()
                continue  # satisfied in every execution
            if tag != "read":
                raise Unsupported(
                    f"register {atom.tid}:{atom.reg} has an opaque origin"
                )
            footprint.reg_values[(atom.tid, atom.reg)] = atom.value
            read = skeleton.threads[atom.tid].events[payload]
            pinned = footprint.read_pins.get(read.key)
            if pinned is not None:
                if pinned[1] != atom.value:
                    return refuted()  # one read, two required values
                continue
            candidates, init_ok = _value_candidates(
                skeleton, program, read.loc, atom.value
            )
            candidates = [w for w in candidates if w.key != read.key]
            total = len(candidates) + (1 if init_ok else 0)
            if total == 0:
                return refuted()  # no writer can supply the value
            if total > 1:
                raise Unsupported(
                    f"{total} possible rf sources for {read.describe()}"
                )
            source = candidates[0].key if candidates else None
            footprint.read_pins[read.key] = (source, atom.value)
        else:  # LocValue
            writes = skeleton.writes_to(atom.loc)
            candidates, init_ok = _value_candidates(
                skeleton, program, atom.loc, atom.value
            )
            if not writes:
                if not init_ok:
                    return refuted()
                continue  # untouched location keeps its initial value
            # With writes present, the final value is the co-max write's.
            if not candidates:
                return refuted()
            if len(candidates) > 1:
                raise Unsupported(
                    f"{len(candidates)} possible final writes to {atom.loc!r}"
                )
            pinned = footprint.comax_pins.get(atom.loc)
            if pinned is not None and pinned != candidates[0].key:
                return refuted()
            footprint.comax_pins[atom.loc] = candidates[0].key
    return footprint


def guaranteed_edges(
    skeleton: ProgramSkeleton, footprint: Footprint
) -> EdgeSet:
    """Edges present in *every* execution satisfying the condition."""
    rf: set = set()
    co: set = set()
    fr: set = set()
    for read_key, (source, _value) in footprint.read_pins.items():
        read = skeleton.event(read_key)
        if source is not None:
            rf.add((source, read_key))
            comax = footprint.comax_pins.get(read.loc)
            if comax is not None and comax != source:
                # Source precedes the pinned co-max write, so the read
                # from-reads it in every satisfying execution.
                fr.add((read_key, comax))
        else:
            # Reading the initialising write: every skeleton write to the
            # location is coherence-after it.
            for write in skeleton.writes_to(read.loc):
                fr.add((read_key, write.key))
    for loc, comax in footprint.comax_pins.items():
        for write in skeleton.writes_to(loc):
            if write.key != comax:
                co.add((write.key, comax))
    return EdgeSet(frozenset(rf), frozenset(co), frozenset(fr))


def _location_orders(
    writes: List[SkelEvent], comax: Optional[Key]
) -> List[Tuple[Key, ...]]:
    keys = [w.key for w in writes]
    if comax is not None:
        rest = [k for k in keys if k != comax]
        return [p + (comax,) for p in itertools.permutations(rest)]
    return list(itertools.permutations(keys))


def scenarios(
    skeleton: ProgramSkeleton,
    footprint: Footprint,
    cap: int = SCENARIO_CAP,
) -> List[EdgeSet]:
    """One :class:`EdgeSet` per coherence-order choice the satisfying
    executions can make — an exhaustive partition of those executions.

    Locations with at most one skeleton write have a fixed coherence
    order.  For the rest, every permutation (restricted by a pinned
    co-max write) becomes a scenario; past ``cap`` total scenarios the
    guaranteed intersection is returned alone, which only loses
    precision, never soundness.
    """
    base = guaranteed_edges(skeleton, footprint)
    multi: List[List[Tuple[Key, ...]]] = []
    count = 1
    for loc in sorted({w.loc for w in skeleton.accesses() if w.loc}):
        writes = skeleton.writes_to(loc)
        if len(writes) < 2:
            continue
        orders = _location_orders(writes, footprint.comax_pins.get(loc))
        count *= len(orders)
        if count > cap:
            return [base]
        multi.append(orders)
    if not multi:
        return [base]
    results: List[EdgeSet] = []
    for combo in itertools.product(*multi):
        co: set = set(base.co)
        fr: set = set(base.fr)
        for order in combo:
            for i, earlier in enumerate(order):
                for later in order[i + 1:]:
                    co.add((earlier, later))
            # A pinned read from a write in this order from-reads every
            # coherence-later write.
            position = {key: i for i, key in enumerate(order)}
            for read_key, (source, _v) in footprint.read_pins.items():
                if source in position:
                    for later in order[position[source] + 1:]:
                        fr.add((read_key, later))
        results.append(EdgeSet(base.rf, frozenset(co), frozenset(fr)))
    return results
