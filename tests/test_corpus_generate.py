"""The corpus generator: determinism, uniqueness, cleanliness, scale.

The whole corpus programme rests on the stream being a *pure function*
of the seed — resumable sweeps, sharded generation, and the frozen
golden sample all assume that test #4711 is the same program on every
machine, every run, every ``PYTHONHASHSEED``.  These tests lock that,
plus the per-test guarantees (unique digests, lint-clean, realisable)
and the wave scheduling (early prefixes mix thread counts).
"""

from __future__ import annotations

import itertools
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.findings import count_errors
from repro.analysis.litmuslint import lint_program
from repro.corpus.generate import (
    CorpusTest,
    corpus_slice,
    generate_corpus,
    program_digest,
    rcu_wrap,
    slice_digests,
)
from repro.diy import generate
from repro.diy.edges import EDGES
from repro.litmus.parser import parse_litmus
from repro.litmus.writer import write_litmus

PREFIX = 150


@pytest.fixture(scope="module")
def prefix():
    return corpus_slice(seed=0, start=0, stop=PREFIX)


def test_prefix_is_unique_and_clean(prefix):
    assert len(prefix) == PREFIX
    assert len({t.digest for t in prefix}) == PREFIX
    assert len({t.program.name for t in prefix}) == PREFIX
    for test in prefix:
        assert count_errors(lint_program(test.program)) == 0


def test_metadata_matches_program(prefix):
    for test in prefix:
        assert test.threads == test.program.num_threads
        assert test.digest == program_digest(test.program)
        external = sum(1 for e in test.edges if EDGES[e].external)
        assert external == test.threads


def test_wave_scheduling_mixes_thread_counts(prefix):
    """The first 150 tests must not be a monoculture: round-robin
    interleaving across thread counts is what makes small slices (CI
    smoke, golden sample) representative."""
    assert {t.threads for t in prefix} == {2, 3, 4, 5}


def test_same_seed_same_stream(prefix):
    again = corpus_slice(seed=0, start=0, stop=PREFIX)
    assert [t.digest for t in again] == [t.digest for t in prefix]
    assert [write_litmus(t.program) for t in again] == [
        write_litmus(t.program) for t in prefix
    ]


def test_target_truncates_prefix_stably(prefix):
    """A shorter run is a strict prefix of a longer one — sharded
    generation depends on it."""
    short = list(generate_corpus(seed=0, target=40))
    assert [t.digest for t in short] == [t.digest for t in prefix[:40]]
    middle = corpus_slice(seed=0, start=25, stop=60)
    assert [t.digest for t in middle] == [t.digest for t in prefix[25:60]]


def test_different_seed_different_stream(prefix):
    other = corpus_slice(seed=1, start=0, stop=40)
    assert [t.digest for t in other] != [t.digest for t in prefix[:40]]
    # ... but the same *tests* exist in both streams' full space; only
    # the order is seeded.  Spot-check: both seeds emit valid corpora.
    assert len({t.digest for t in other}) == 40


def test_round_trip_through_json(prefix):
    for test in prefix[:25]:
        clone = CorpusTest.from_json(test.to_json())
        assert clone == test
        assert clone.program == test.program


def test_rcu_variants_are_marked_and_meaningful(prefix):
    wrapped = [t for t in prefix if t.rcu_wrapped]
    assert wrapped, "the prefix should contain RCU critical-section variants"
    for test in wrapped[:10]:
        assert test.name.endswith("+rcu-lock")
        source = write_litmus(test.program)
        assert "rcu_read_lock" in source
        assert parse_litmus(source) == test.program


def test_rcu_wrap_requires_a_grace_period():
    no_sync = generate(["Rfe", "PodRW", "Rfe", "PodRW"])
    assert rcu_wrap(no_sync) == (None, ())
    with_sync = generate(["SyncdWW", "Rfe", "PodRR", "Fre"])
    variant, tids = rcu_wrap(with_sync)
    assert variant is not None
    assert tids  # the non-sync threads got the critical section
    assert variant.num_threads == with_sync.num_threads


def test_cross_process_determinism():
    """Two pool workers and the parent must agree on the same slices.

    Workers are fresh interpreter processes (spawned by
    ``kernel.parallel``), so this catches any dependence on per-process
    state — id() ordering, set iteration, an unseeded RNG.
    """
    from repro.kernel import parallel

    payloads = [(0, 0, 40), (0, 40, 80), (3, 0, 30)]
    local = [slice_digests(p) for p in payloads]
    try:
        remote = parallel.fault_tolerant_map(slice_digests, payloads, jobs=2)
    finally:
        parallel.shutdown_pools()
    assert remote == local


def test_hash_seed_independence(prefix):
    """The stream must not depend on ``PYTHONHASHSEED`` — digests are
    computed in a subprocess with a different hash seed."""
    script = (
        "from repro.corpus.generate import slice_digests\n"
        "print('\\n'.join(slice_digests((0, 0, 40))))\n"
    )
    src = str(Path(__file__).resolve().parent.parent / "src")
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": src, "PYTHONHASHSEED": "12345", "PATH": "/usr/bin"},
        check=True,
    )
    assert out.stdout.split() == [t.digest for t in prefix[:40]]


def test_ten_thousand_unique_tests():
    """The headline acceptance criterion, end to end."""
    digests = set()
    count = 0
    for test in generate_corpus(seed=0, target=10000):
        digests.add(test.digest)
        count += 1
    assert count == 10000
    assert len(digests) == 10000
