"""Tests for the native LK model: relations of Figure 8, axioms of
Figure 3, RCU axiom of Figure 12, and the paper's verdicts."""

import pytest

from repro.executions import candidate_executions
from repro.herd import run_litmus
from repro.litmus import dsl, library
from repro.lkmm import LinuxKernelModel
from repro.lkmm.model import LkmmRelations


def find_execution(program, predicate):
    for x in candidate_executions(program):
        if predicate(x):
            return x
    raise AssertionError("no matching execution")


def witness_execution(name):
    """The execution matching the test's exists clause (any rf/co)."""
    program = library.get(name)
    return find_execution(
        program, lambda x: program.condition.evaluate(x.final_state)
    )


class TestAuxiliaryRelations:
    def test_fencerel_mb(self):
        x = witness_execution("SB+mbs")
        rel = LkmmRelations(x)
        # Each thread: one (W, R) pair separated by smp_mb.
        pairs = [(a.kind, b.kind) for a, b in rel.mb.pairs]
        assert pairs.count(("W", "R")) == 2

    def test_rmb_restricted_to_reads(self):
        x = witness_execution("MP+wmb+rmb")
        rel = LkmmRelations(x)
        assert all(a.is_read and b.is_read for a, b in rel.rmb.pairs)
        assert len(rel.rmb) == 1

    def test_wmb_restricted_to_writes(self):
        x = witness_execution("MP+wmb+rmb")
        rel = LkmmRelations(x)
        assert all(a.is_write and b.is_write for a, b in rel.wmb.pairs)
        assert len(rel.wmb) == 1

    def test_acq_po_and_po_rel(self):
        x = witness_execution("MP+po-rel+acq")
        rel = LkmmRelations(x)
        assert len(rel.acq_po) == 1  # acquire -> following read
        assert any(b.has_tag("release") for _, b in rel.po_rel.pairs)

    def test_rfi_rel_acq(self):
        x = witness_execution("MP+po-rel+rfi-acq")
        rel = LkmmRelations(x)
        assert len(rel.rfi_rel_acq) == 1
        ((w, r),) = rel.rfi_rel_acq.pairs
        assert w.has_tag("release") and r.has_tag("acquire")
        assert w.tid == r.tid


class TestPpo:
    def test_ctrl_dependency_in_ppo(self):
        x = witness_execution("LB+ctrl+mb")
        rel = LkmmRelations(x)
        read = next(e for e in x.events if e.is_read and e.tid == 0)
        write = next(e for e in x.events if e.is_write and e.tid == 0 and not e.is_init)
        assert (read, write) in rel.rwdep
        assert (read, write) in rel.ppo

    def test_plain_po_not_in_ppo(self):
        x = witness_execution("MP")
        rel = LkmmRelations(x)
        reads = sorted(
            (e for e in x.events if e.is_read), key=lambda e: e.po_index
        )
        assert (reads[0], reads[1]) not in rel.ppo

    def test_addr_dep_alone_not_in_ppo(self):
        # Read-read address dependencies need rb-dep (Alpha).
        x = witness_execution("MP+wmb+addr")
        rel = LkmmRelations(x)
        assert rel.x.addr  # the dependency exists
        for pair in rel.x.addr.pairs:
            assert pair not in rel.ppo.pairs

    def test_addr_dep_with_rbdep_in_ppo(self):
        x = witness_execution("MP+wmb+addr-rbdep")
        rel = LkmmRelations(x)
        assert rel.strong_rrdep
        for pair in rel.strong_rrdep.pairs:
            assert pair in rel.ppo.pairs

    def test_rrdep_prefix_extends_ppo(self):
        # Figure 9: (c, e) in ppo via rrdep* ; acq-po.
        x = witness_execution("MP+wmb+addr-acq")
        rel = LkmmRelations(x)
        pointer_read = next(
            e for e in x.events if e.is_read and e.loc == "p"
        )
        x_read = next(e for e in x.events if e.is_read and e.loc == "x")
        assert (pointer_read, x_read) in rel.ppo


class TestPropAndCumulativity:
    def test_a_cumulativity_of_release(self):
        # Figure 5: (a, c) in cumul-fence via rfe? ; po-rel.
        x = witness_execution("WRC+po-rel+rmb")
        rel = LkmmRelations(x)
        a = next(e for e in x.events if e.is_write and e.tid == 0 and not e.is_init)
        c = next(e for e in x.events if e.is_write and e.tid == 1 and not e.is_init)
        assert (a, c) in rel.cumul_fence

    def test_prop_includes_overwrite_then_fence(self):
        # Figure 2: (d, b) in prop.
        x = witness_execution("MP+wmb+rmb")
        rel = LkmmRelations(x)
        d = next(e for e in x.events if e.is_read and e.loc == "x")
        b = next(e for e in x.events if e.is_write and e.loc == "y" and not e.is_init)
        assert (d, b) in rel.prop

    def test_prop_contains_identity(self):
        x = witness_execution("MP")
        rel = LkmmRelations(x)
        some = next(iter(x.events))
        assert (some, some) in rel.prop


class TestAxioms:
    def test_scpv_forbids_coherence_violations(self, lkmm):
        for name in ("CoRR", "CoWW", "CoWR", "CoRW"):
            assert run_litmus(lkmm, library.get(name)).verdict == "Forbid"

    def test_at_forbids_intervening_write(self, lkmm):
        assert run_litmus(lkmm, library.get("At-inc")).verdict == "Forbid"
        result = lkmm.check(witness_execution("At-inc"))
        assert any(v.axiom == "At" for v in result.violations)

    def test_hb_violation_names_axiom(self, lkmm):
        result = lkmm.check(witness_execution("MP+wmb+rmb"))
        assert not result.allowed
        assert any(v.axiom == "Hb" for v in result.violations)

    def test_pb_violation_on_sb_mbs(self, lkmm):
        result = lkmm.check(witness_execution("SB+mbs"))
        assert any(v.axiom == "Pb" for v in result.violations)

    def test_rcu_violation_on_rcu_mp(self, lkmm):
        result = lkmm.check(witness_execution("RCU-MP"))
        assert any(v.axiom == "Rcu" for v in result.violations)

    def test_core_model_misses_rcu(self):
        core = LinuxKernelModel(with_rcu=False)
        x = witness_execution("RCU-MP")
        assert core.check(x).allowed  # without Figure 12, RCU-MP slips by


class TestPaperVerdicts:
    """The Model column of Table 5 and the figures, end to end."""

    @pytest.mark.parametrize("name", library.TABLE5)
    def test_table5_model_column(self, lkmm, name):
        expected = library.PAPER_VERDICTS[name]["LK"]
        assert run_litmus(lkmm, library.get(name)).verdict == expected

    @pytest.mark.parametrize(
        "name,expected", sorted(library.EXTRA_VERDICTS.items())
    )
    def test_extra_corpus(self, lkmm, name, expected):
        program = library.get(name)
        result = run_litmus(
            lkmm, program, require_sc_per_location=(name == "lock-mutex")
        )
        assert result.verdict == expected


class TestCrit:
    def test_nested_locks_match_outermost(self):
        x = witness_execution("RCU-MP+nested")
        rel = LkmmRelations(x)
        assert len(rel.crit) == 1
        ((lock, unlock),) = rel.crit.pairs
        # The outermost pair: first lock, last unlock.
        locks = [e for e in x.events if e.has_tag("rcu-lock")]
        unlocks = [e for e in x.events if e.has_tag("rcu-unlock")]
        assert lock == min(locks, key=lambda e: e.po_index)
        assert unlock == max(unlocks, key=lambda e: e.po_index)

    def test_gp_relation(self):
        x = witness_execution("RCU-MP")
        rel = LkmmRelations(x)
        sync = next(e for e in x.events if e.has_tag("sync-rcu"))
        before = next(
            e for e in x.events if e.is_write and e.tid == sync.tid
            and e.po_index < sync.po_index
        )
        after = next(
            e for e in x.events if e.is_write and e.tid == sync.tid
            and e.po_index > sync.po_index
        )
        assert (before, sync) in rel.gp
        assert (before, after) in rel.gp
