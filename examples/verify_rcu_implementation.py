#!/usr/bin/env python
"""Verifying an RCU implementation (Section 6 of the paper).

The userspace RCU implementation of Figure 15 (used by the Linux trace
tool) implements grace periods with per-thread counters ``rc[i]`` and a
two-phase flag ``gc``.  The paper proves (Theorem 2) that replacing the
RCU primitives of any program with this code preserves the fundamental
law.  Here we *check* that, exhaustively and bounded, on RCU-MP:

1. inline the implementation (P -> P', the paper's Figure 16);
2. enumerate every candidate execution of P' the LK model allows (with
   the implementation's wait loop unrolled up to a bound);
3. project each allowed outcome onto P's observables and confirm it is an
   outcome the LK model allows for P.
"""

from repro import LinuxKernelModel, litmus_library, run_litmus
from repro.litmus.writer import write_litmus
from repro.rcu import inline_rcu, verify_implementation


def main() -> None:
    program = litmus_library.get("RCU-MP")
    model = LinuxKernelModel()

    print("The specification program (RCU primitives as events):\n")
    print(write_litmus(program))
    print(f"LK verdict: {run_litmus(model, program).verdict}\n")

    inlined = inline_rcu(program, loop_bound=1)
    print(
        f"After inlining Figure 15 (P' = {inlined.name}): "
        f"{inlined.num_threads} threads over locations "
        f"{', '.join(inlined.locations())}"
    )
    print(
        "The updater's synchronize_rcu became: smp_mb; mutex_lock;\n"
        "two update_counter_and_wait phases (each flips the GP_PHASE bit\n"
        "of gc and re-reads rc[0] until the reader is quiescent);\n"
        "mutex_unlock; smp_mb.\n"
    )

    result = run_litmus(model, inlined, require_sc_per_location=True)
    print(f"Exhaustive check of P': {result.describe()}")
    print(
        "-> the witness outcome (reader sees the post-GP write but misses "
        "the\n   pre-GP one) is forbidden for the implementation too.\n"
    )

    report = verify_implementation(program, loop_bound=1)
    print(report.describe())
    print(
        "\nEvery outcome the implementation can produce is an outcome the\n"
        "specification allows (and here the sets coincide exactly), i.e.\n"
        "the bounded, finite-execution rendering of Theorem 2 holds."
    )


if __name__ == "__main__":
    main()
