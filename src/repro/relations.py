"""Relational algebra over events.

The cat language (Section 2 of the paper) manipulates two sorts of values:
*sets of events* and *binary relations over events*.  This module provides
both, with all the operators the paper's models use: union, intersection,
difference, complement, inverse, sequence, reflexive/transitive closures,
cartesian product, and the three constraint checks (`acyclic`,
`irreflexive`, `empty`).

Relations are immutable; every operator returns a new relation.  Both kinds
of value carry a *universe* (the event set of the candidate execution) so
that complement (`~r`) and reflexive closure (`r?`) are well defined.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.events import Event

Pair = Tuple[Event, Event]


class EventSet:
    """An immutable set of events with set-algebra operators."""

    __slots__ = ("events", "universe")

    def __init__(self, events: Iterable[Event], universe: FrozenSet[Event]):
        self.events: FrozenSet[Event] = frozenset(events)
        self.universe: FrozenSet[Event] = universe

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventSet):
            return NotImplemented
        return self.events == other.events

    def __hash__(self) -> int:
        return hash(self.events)

    def __repr__(self) -> str:
        names = sorted(repr(e) for e in self.events)
        return "{" + ", ".join(names) + "}"

    def _wrap(self, events: Iterable[Event]) -> "EventSet":
        return EventSet(events, self.universe)

    def union(self, other: "EventSet") -> "EventSet":
        return self._wrap(self.events | other.events)

    def intersection(self, other: "EventSet") -> "EventSet":
        return self._wrap(self.events & other.events)

    def difference(self, other: "EventSet") -> "EventSet":
        return self._wrap(self.events - other.events)

    def complement(self) -> "EventSet":
        return self._wrap(self.universe - self.events)

    def filter(self, predicate: Callable[[Event], bool]) -> "EventSet":
        return self._wrap(e for e in self.events if predicate(e))

    def is_empty(self) -> bool:
        return not self.events

    __or__ = union
    __and__ = intersection
    __sub__ = difference
    __invert__ = complement

    def identity(self) -> "Relation":
        """``[S]`` in cat: the identity relation restricted to this set."""
        return Relation(((e, e) for e in self.events), self.universe)

    def product(self, other: "EventSet") -> "Relation":
        """``S * T`` in cat: the cartesian product."""
        return Relation(
            ((a, b) for a in self.events for b in other.events), self.universe
        )

    __mul__ = product


class Relation:
    """An immutable binary relation over events.

    Supports the full cat operator suite.  Sequence (``;``) is implemented
    with a successor index for speed, since models chain long sequences
    over executions with dozens of events.
    """

    __slots__ = ("pairs", "universe", "_succ")

    def __init__(self, pairs: Iterable[Pair], universe: FrozenSet[Event]):
        self.pairs: FrozenSet[Pair] = frozenset(pairs)
        self.universe: FrozenSet[Event] = universe
        self._succ: Optional[Dict[Event, Set[Event]]] = None

    # -- basics ---------------------------------------------------------

    def __iter__(self) -> Iterator[Pair]:
        return iter(self.pairs)

    def __len__(self) -> int:
        return len(self.pairs)

    def __contains__(self, pair: Pair) -> bool:
        return pair in self.pairs

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.pairs == other.pairs

    def __hash__(self) -> int:
        return hash(self.pairs)

    def __repr__(self) -> str:
        shown = sorted(
            f"({a.label or a.eid},{b.label or b.eid})" for a, b in self.pairs
        )
        return "{" + ", ".join(shown) + "}"

    def _wrap(self, pairs: Iterable[Pair]) -> "Relation":
        return Relation(pairs, self.universe)

    def successors(self) -> Dict[Event, Set[Event]]:
        """Adjacency index, built lazily and cached."""
        if self._succ is None:
            succ: Dict[Event, Set[Event]] = {}
            for a, b in self.pairs:
                succ.setdefault(a, set()).add(b)
            self._succ = succ
        return self._succ

    # -- set algebra ----------------------------------------------------

    def union(self, other: "Relation") -> "Relation":
        return self._wrap(self.pairs | other.pairs)

    def intersection(self, other: "Relation") -> "Relation":
        return self._wrap(self.pairs & other.pairs)

    def difference(self, other: "Relation") -> "Relation":
        return self._wrap(self.pairs - other.pairs)

    def complement(self) -> "Relation":
        full = {(a, b) for a in self.universe for b in self.universe}
        return self._wrap(full - self.pairs)

    __or__ = union
    __and__ = intersection
    __sub__ = difference
    __invert__ = complement

    # -- relational operators -------------------------------------------

    def inverse(self) -> "Relation":
        """``r^-1``."""
        return self._wrap((b, a) for a, b in self.pairs)

    def sequence(self, other: "Relation") -> "Relation":
        """``r1 ; r2`` — relational composition."""
        succ = other.successors()
        out: Set[Pair] = set()
        for a, b in self.pairs:
            for c in succ.get(b, ()):
                out.add((a, c))
        return self._wrap(out)

    def optional(self) -> "Relation":
        """``r?`` — reflexive closure over the universe."""
        return self._wrap(self.pairs | {(e, e) for e in self.universe})

    def transitive_closure(self) -> "Relation":
        """``r+``."""
        succ = {a: set(bs) for a, bs in self.successors().items()}
        # Floyd-Warshall style saturation via BFS from every source node.
        closure: Set[Pair] = set()
        for start in succ:
            seen: Set[Event] = set()
            stack = list(succ[start])
            while stack:
                node = stack.pop()
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(succ.get(node, ()))
            closure.update((start, node) for node in seen)
        return self._wrap(closure)

    def reflexive_transitive_closure(self) -> "Relation":
        """``r*``."""
        return self._wrap(
            self.transitive_closure().pairs | {(e, e) for e in self.universe}
        )

    # -- restriction helpers ---------------------------------------------

    def restrict(
        self,
        domain: Optional[EventSet] = None,
        range_: Optional[EventSet] = None,
    ) -> "Relation":
        """Restrict domain and/or range to the given event sets."""
        pairs = self.pairs
        if domain is not None:
            pairs = {(a, b) for a, b in pairs if a in domain}
        if range_ is not None:
            pairs = {(a, b) for a, b in pairs if b in range_}
        return self._wrap(pairs)

    def domain(self) -> EventSet:
        return EventSet((a for a, _ in self.pairs), self.universe)

    def range(self) -> EventSet:
        return EventSet((b for _, b in self.pairs), self.universe)

    def filter(self, predicate: Callable[[Event, Event], bool]) -> "Relation":
        return self._wrap((a, b) for a, b in self.pairs if predicate(a, b))

    # -- checks -----------------------------------------------------------

    def is_empty(self) -> bool:
        return not self.pairs

    def is_irreflexive(self) -> bool:
        return all(a is not b and a != b for a, b in self.pairs)

    def is_acyclic(self) -> bool:
        """True iff the relation, viewed as a directed graph, has no cycle."""
        return self.find_cycle() is None

    def find_cycle(self) -> Optional[List[Event]]:
        """Return one cycle as ``[e0, e1, ..., e0]``, or ``None``.

        Used both for the acyclicity checks of the model and for producing
        the human-readable explanations of *why* an execution is forbidden
        (:mod:`repro.lkmm.explain`).
        """
        succ = self.successors()
        WHITE, GREY, BLACK = 0, 1, 2
        colour: Dict[Event, int] = {}
        parent: Dict[Event, Event] = {}

        for root in succ:
            if colour.get(root, WHITE) != WHITE:
                continue
            stack: List[Tuple[Event, Iterator[Event]]] = [
                (root, iter(succ.get(root, ())))
            ]
            colour[root] = GREY
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    state = colour.get(nxt, WHITE)
                    if state == GREY:
                        # Found a back edge: reconstruct the cycle.
                        cycle = [nxt, node]
                        cursor = node
                        while cursor != nxt:
                            cursor = parent[cursor]
                            cycle.append(cursor)
                        cycle.reverse()
                        # cycle currently [nxt, ..., node, nxt] reversed;
                        # normalise to start and end at the same event.
                        if cycle[0] != cycle[-1]:
                            cycle.append(cycle[0])
                        return cycle
                    if state == WHITE:
                        colour[nxt] = GREY
                        parent[nxt] = node
                        stack.append((nxt, iter(succ.get(nxt, ()))))
                        advanced = True
                        break
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return None

    def is_total_order_on(self, events: Iterable[Event]) -> bool:
        """True iff the relation is a strict total order on ``events``."""
        events = list(events)
        if not self.is_acyclic():
            return False
        pairs = self.pairs
        for i, a in enumerate(events):
            for b in events[i + 1:]:
                if (a, b) not in pairs and (b, a) not in pairs:
                    return False
        return True


def empty_relation(universe: FrozenSet[Event]) -> Relation:
    return Relation((), universe)


def relation_from_order(order: Sequence[Event], universe: FrozenSet[Event]) -> Relation:
    """Strict total order relation from a sequence (earlier -> later)."""
    pairs = [
        (order[i], order[j])
        for i in range(len(order))
        for j in range(i + 1, len(order))
    ]
    return Relation(pairs, universe)


def least_fixpoint(
    step: Callable[[Relation], Relation], universe: FrozenSet[Event]
) -> Relation:
    """Least fixpoint of a monotone function on relations.

    Used for cat ``let rec`` definitions such as the paper's ``rcu-path``
    (Figure 12).  Iteration starts from the empty relation and stops when
    one application adds nothing; monotonicity of the cat operators used in
    recursive definitions guarantees termination on finite universes.
    """
    current = empty_relation(universe)
    while True:
        nxt = step(current)
        if nxt.pairs == current.pairs:
            return current
        current = nxt
