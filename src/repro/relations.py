"""Relational algebra over events.

The cat language (Section 2 of the paper) manipulates two sorts of values:
*sets of events* and *binary relations over events*.  This module provides
both, with all the operators the paper's models use: union, intersection,
difference, complement, inverse, sequence, reflexive/transitive closures,
cartesian product, and the three constraint checks (`acyclic`,
`irreflexive`, `empty`).

Relations are immutable; every operator returns a new relation.  Both kinds
of value carry a *universe* (the event set of the candidate execution) so
that complement (`~r`) and reflexive closure (`r?`) are well defined.

Two interchangeable backends implement the operators (selected by
:mod:`repro.kernel.config`, default ``bitset``):

* **bitset** — events are mapped to dense indices ``0..n-1`` once per
  universe and the relation is held as adjacency bitmask rows
  (:mod:`repro.kernel.bitrel`); operators are word-parallel integer
  arithmetic.  ``pairs`` is materialised lazily on demand.
* **frozenset** — the original reference implementation over
  ``frozenset`` of event pairs.

Both produce identical results (``tests/test_kernel_equiv.py``); the
frozenset backend is kept as the executable specification of the bitset
one.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.events import Event
from repro.kernel import config as _config
from repro.kernel.bitrel import DenseRelation, index_for

Pair = Tuple[Event, Event]


class EventSet:
    """An immutable set of events with set-algebra operators."""

    __slots__ = ("events", "universe")

    def __init__(self, events: Iterable[Event], universe: FrozenSet[Event]):
        self.events: FrozenSet[Event] = frozenset(events)
        self.universe: FrozenSet[Event] = universe

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventSet):
            return NotImplemented
        return self.events == other.events

    def __hash__(self) -> int:
        return hash(self.events)

    def __repr__(self) -> str:
        names = sorted(repr(e) for e in self.events)
        return "{" + ", ".join(names) + "}"

    def _wrap(self, events: Iterable[Event]) -> "EventSet":
        return EventSet(events, self.universe)

    def union(self, other: "EventSet") -> "EventSet":
        return self._wrap(self.events | other.events)

    def intersection(self, other: "EventSet") -> "EventSet":
        return self._wrap(self.events & other.events)

    def difference(self, other: "EventSet") -> "EventSet":
        return self._wrap(self.events - other.events)

    def complement(self) -> "EventSet":
        return self._wrap(self.universe - self.events)

    def filter(self, predicate: Callable[[Event], bool]) -> "EventSet":
        return self._wrap(e for e in self.events if predicate(e))

    def is_empty(self) -> bool:
        return not self.events

    __or__ = union
    __and__ = intersection
    __sub__ = difference
    __invert__ = complement

    def identity(self) -> "Relation":
        """``[S]`` in cat: the identity relation restricted to this set."""
        return Relation(((e, e) for e in self.events), self.universe)

    def product(self, other: "EventSet") -> "Relation":
        """``S * T`` in cat: the cartesian product."""
        if _config.use_bitset():
            try:
                index = index_for(self.universe)
                self_mask = index.mask_of(self.events)
                other_mask = index.mask_of(other.events)
            except KeyError:
                pass
            else:
                rows = [
                    other_mask if self_mask & (1 << i) else 0
                    for i in range(index.n)
                ]
                return Relation._from_dense(
                    DenseRelation(index, rows), self.universe
                )
        return Relation(
            ((a, b) for a in self.events for b in other.events), self.universe
        )

    __mul__ = product


class Relation:
    """An immutable binary relation over events.

    Supports the full cat operator suite.  Internally either a
    :class:`~repro.kernel.bitrel.DenseRelation` (bitset backend) or a
    ``frozenset`` of pairs (reference backend); ``pairs`` is always
    available, materialised lazily from the dense form when needed.
    """

    __slots__ = ("universe", "_pairs", "_dense", "_succ")

    def __init__(self, pairs: Iterable[Pair], universe: FrozenSet[Event]):
        self.universe: FrozenSet[Event] = universe
        self._pairs: Optional[FrozenSet[Pair]] = None
        self._dense: Optional[DenseRelation] = None
        self._succ: Optional[Dict[Event, Set[Event]]] = None
        if _config.use_bitset():
            if not isinstance(pairs, (frozenset, set, list, tuple)):
                pairs = list(pairs)
            try:
                self._dense = DenseRelation.from_pairs(
                    index_for(universe), pairs
                )
                return
            except KeyError:
                # A pair mentions an event outside the universe; keep the
                # tolerant frozenset representation for this relation.
                pass
        self._pairs = frozenset(pairs)

    @classmethod
    def _from_dense(
        cls, dense: DenseRelation, universe: FrozenSet[Event]
    ) -> "Relation":
        relation = cls.__new__(cls)
        relation.universe = universe
        relation._pairs = None
        relation._dense = dense
        relation._succ = None
        return relation

    # -- backend plumbing ------------------------------------------------

    @property
    def pairs(self) -> FrozenSet[Pair]:
        if self._pairs is None:
            self._pairs = frozenset(self._dense.pairs())
        return self._pairs

    def _densify(self) -> Optional[DenseRelation]:
        """This relation's dense form, building and caching it if the
        bitset backend is active.  ``None`` when unavailable."""
        if self._dense is not None:
            return self._dense
        if not _config.use_bitset():
            return None
        try:
            self._dense = DenseRelation.from_pairs(
                index_for(self.universe), self._pairs
            )
        except KeyError:
            return None
        return self._dense

    def _dense_with(
        self, other: "Relation"
    ) -> Optional[Tuple[DenseRelation, DenseRelation]]:
        """Dense forms of both operands over one index, or ``None``."""
        if self.universe is not other.universe and self.universe != other.universe:
            return None
        mine = self._densify()
        if mine is None:
            return None
        theirs = other._densify()
        if theirs is None:
            return None
        return mine, theirs

    def __getstate__(self):
        return (self.pairs, self.universe)

    def __setstate__(self, state):
        self._pairs, self.universe = state
        self._dense = None
        self._succ = None

    # -- basics ---------------------------------------------------------

    def __iter__(self) -> Iterator[Pair]:
        return iter(self.pairs)

    def __len__(self) -> int:
        if self._pairs is None:
            return len(self._dense)
        return len(self._pairs)

    def __contains__(self, pair: Pair) -> bool:
        if self._pairs is None:
            return self._dense.contains(*pair)
        return pair in self._pairs

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        if (
            self._dense is not None
            and other._dense is not None
            and (
                self.universe is other.universe
                or self.universe == other.universe
            )
        ):
            return self._dense.equals(other._dense)
        return self.pairs == other.pairs

    def __hash__(self) -> int:
        return hash(self.pairs)

    def __repr__(self) -> str:
        shown = sorted(
            f"({a.label or a.eid},{b.label or b.eid})" for a, b in self.pairs
        )
        return "{" + ", ".join(shown) + "}"

    def _wrap(self, pairs: Iterable[Pair]) -> "Relation":
        return Relation(pairs, self.universe)

    def successors(self) -> Dict[Event, Set[Event]]:
        """Adjacency index, built lazily and cached."""
        if self._succ is None:
            succ: Dict[Event, Set[Event]] = {}
            if self._pairs is None:
                events = self._dense.index.events
                for i, row in enumerate(self._dense.rows):
                    if row:
                        succ[events[i]] = {
                            events[j]
                            for j in self._dense.successor_positions(i)
                        }
            else:
                for a, b in self._pairs:
                    succ.setdefault(a, set()).add(b)
            self._succ = succ
        return self._succ

    # -- set algebra ----------------------------------------------------

    def union(self, other: "Relation") -> "Relation":
        both = self._dense_with(other)
        if both is not None:
            return Relation._from_dense(both[0].union(both[1]), self.universe)
        return self._wrap(self.pairs | other.pairs)

    def intersection(self, other: "Relation") -> "Relation":
        both = self._dense_with(other)
        if both is not None:
            return Relation._from_dense(
                both[0].intersection(both[1]), self.universe
            )
        return self._wrap(self.pairs & other.pairs)

    def difference(self, other: "Relation") -> "Relation":
        both = self._dense_with(other)
        if both is not None:
            return Relation._from_dense(
                both[0].difference(both[1]), self.universe
            )
        return self._wrap(self.pairs - other.pairs)

    def complement(self) -> "Relation":
        dense = self._densify()
        if dense is not None:
            return Relation._from_dense(dense.complement(), self.universe)
        full = {(a, b) for a in self.universe for b in self.universe}
        return self._wrap(full - self.pairs)

    __or__ = union
    __and__ = intersection
    __sub__ = difference
    __invert__ = complement

    # -- relational operators -------------------------------------------

    def inverse(self) -> "Relation":
        """``r^-1``."""
        dense = self._densify()
        if dense is not None:
            return Relation._from_dense(dense.inverse(), self.universe)
        return self._wrap((b, a) for a, b in self.pairs)

    def sequence(self, other: "Relation") -> "Relation":
        """``r1 ; r2`` — relational composition."""
        both = self._dense_with(other)
        if both is not None:
            return Relation._from_dense(
                both[0].sequence(both[1]), self.universe
            )
        succ = other.successors()
        out: Set[Pair] = set()
        for a, b in self.pairs:
            for c in succ.get(b, ()):
                out.add((a, c))
        return self._wrap(out)

    def optional(self) -> "Relation":
        """``r?`` — reflexive closure over the universe."""
        dense = self._densify()
        if dense is not None:
            return Relation._from_dense(dense.optional(), self.universe)
        return self._wrap(self.pairs | {(e, e) for e in self.universe})

    def transitive_closure(self) -> "Relation":
        """``r+``."""
        dense = self._densify()
        if dense is not None:
            return Relation._from_dense(
                dense.transitive_closure(), self.universe
            )
        succ = {a: set(bs) for a, bs in self.successors().items()}
        # Floyd-Warshall style saturation via BFS from every source node.
        closure: Set[Pair] = set()
        for start in succ:
            seen: Set[Event] = set()
            stack = list(succ[start])
            while stack:
                node = stack.pop()
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(succ.get(node, ()))
            closure.update((start, node) for node in seen)
        return self._wrap(closure)

    def reflexive_transitive_closure(self) -> "Relation":
        """``r*``."""
        dense = self._densify()
        if dense is not None:
            return Relation._from_dense(
                dense.reflexive_transitive_closure(), self.universe
            )
        return self._wrap(
            self.transitive_closure().pairs | {(e, e) for e in self.universe}
        )

    # -- restriction helpers ---------------------------------------------

    def restrict(
        self,
        domain: Optional[EventSet] = None,
        range_: Optional[EventSet] = None,
    ) -> "Relation":
        """Restrict domain and/or range to the given event sets."""
        dense = self._densify()
        if dense is not None:
            try:
                domain_mask = (
                    None if domain is None else dense.index.mask_of(domain)
                )
                range_mask = (
                    None if range_ is None else dense.index.mask_of(range_)
                )
            except KeyError:
                pass
            else:
                return Relation._from_dense(
                    dense.restrict(domain_mask, range_mask), self.universe
                )
        pairs = self.pairs
        if domain is not None:
            pairs = {(a, b) for a, b in pairs if a in domain}
        if range_ is not None:
            pairs = {(a, b) for a, b in pairs if b in range_}
        return self._wrap(pairs)

    def domain(self) -> EventSet:
        if self._pairs is None:
            index = self._dense.index
            return EventSet(
                (
                    index.events[i]
                    for i, row in enumerate(self._dense.rows)
                    if row
                ),
                self.universe,
            )
        return EventSet((a for a, _ in self._pairs), self.universe)

    def range(self) -> EventSet:
        if self._pairs is None:
            index = self._dense.index
            mask = self._dense.range_mask()
            return EventSet(
                (index.events[i] for i in range(index.n) if mask & (1 << i)),
                self.universe,
            )
        return EventSet((b for _, b in self._pairs), self.universe)

    def filter(self, predicate: Callable[[Event, Event], bool]) -> "Relation":
        return self._wrap((a, b) for a, b in self.pairs if predicate(a, b))

    # -- checks -----------------------------------------------------------

    def is_empty(self) -> bool:
        if self._pairs is None:
            return self._dense.is_empty()
        return not self._pairs

    def is_irreflexive(self) -> bool:
        if self._pairs is None:
            return self._dense.is_irreflexive()
        return all(a is not b and a != b for a, b in self.pairs)

    def reflexive_pairs(self) -> List[Pair]:
        """The ``(e, e)`` pairs of the relation (irreflexivity witnesses)."""
        if self._pairs is None:
            index = self._dense.index
            mask = self._dense.reflexive_mask()
            return [
                (index.events[i], index.events[i])
                for i in range(index.n)
                if mask & (1 << i)
            ]
        return sorted(
            ((a, b) for a, b in self._pairs if a == b),
            key=lambda pair: pair[0].eid,
        )

    def is_acyclic(self) -> bool:
        """True iff the relation, viewed as a directed graph, has no cycle."""
        return self.find_cycle() is None

    def find_cycle(self) -> Optional[List[Event]]:
        """Return one cycle as ``[e0, e1, ..., e0]``, or ``None``.

        Used both for the acyclicity checks of the model and for producing
        the human-readable explanations of *why* an execution is forbidden
        (:mod:`repro.lkmm.explain`).
        """
        if self._pairs is None:
            return self._dense.find_cycle()
        succ = self.successors()
        WHITE, GREY, BLACK = 0, 1, 2
        colour: Dict[Event, int] = {}
        parent: Dict[Event, Event] = {}

        for root in succ:
            if colour.get(root, WHITE) != WHITE:
                continue
            stack: List[Tuple[Event, Iterator[Event]]] = [
                (root, iter(succ.get(root, ())))
            ]
            colour[root] = GREY
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    state = colour.get(nxt, WHITE)
                    if state == GREY:
                        # Found a back edge: reconstruct the cycle.
                        cycle = [nxt, node]
                        cursor = node
                        while cursor != nxt:
                            cursor = parent[cursor]
                            cycle.append(cursor)
                        cycle.reverse()
                        # cycle currently [nxt, ..., node, nxt] reversed;
                        # normalise to start and end at the same event.
                        if cycle[0] != cycle[-1]:
                            cycle.append(cycle[0])
                        return cycle
                    if state == WHITE:
                        colour[nxt] = GREY
                        parent[nxt] = node
                        stack.append((nxt, iter(succ.get(nxt, ()))))
                        advanced = True
                        break
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return None

    def is_total_order_on(self, events: Iterable[Event]) -> bool:
        """True iff the relation is a strict total order on ``events``."""
        events = list(events)
        if not self.is_acyclic():
            return False
        for i, a in enumerate(events):
            for b in events[i + 1:]:
                if (a, b) not in self and (b, a) not in self:
                    return False
        return True


def empty_relation(universe: FrozenSet[Event]) -> Relation:
    return Relation((), universe)


def relation_from_order(order: Sequence[Event], universe: FrozenSet[Event]) -> Relation:
    """Strict total order relation from a sequence (earlier -> later)."""
    pairs = [
        (order[i], order[j])
        for i in range(len(order))
        for j in range(i + 1, len(order))
    ]
    return Relation(pairs, universe)


def least_fixpoint(
    step: Callable[[Relation], Relation], universe: FrozenSet[Event]
) -> Relation:
    """Least fixpoint of a monotone function on relations.

    Used for cat ``let rec`` definitions such as the paper's ``rcu-path``
    (Figure 12).  Iteration starts from the empty relation and stops when
    one application adds nothing; monotonicity of the cat operators used in
    recursive definitions guarantees termination on finite universes.
    """
    current = empty_relation(universe)
    while True:
        nxt = step(current)
        if nxt == current:
            return current
        current = nxt
