"""Integer-indexed relation representation: adjacency bitset rows.

The frozenset-of-pairs representation of :class:`repro.relations.Relation`
is convenient but slow: every operator re-hashes event pairs, and closures
build large intermediate sets.  This module maps the events of one
execution to dense indices ``0..n-1`` once (:class:`EventIndex`) and
represents a relation as ``n`` Python integers, row ``i`` holding a
bitmask of the successors of event ``i``.  All cat operators then become
word-parallel bit operations:

* union / intersection / difference / complement — one ``|``/``&``/``&~``
  per row;
* sequence (``;``) — row ``i`` of ``r1 ; r2`` is the OR of the ``r2`` rows
  of ``r1``'s successors;
* transitive closure — bitset Floyd–Warshall (``n**2`` word operations);
* acyclicity — a DFS over bitmask rows, with cycle extraction for the
  model's violation witnesses.

Everything here is deterministic: events are indexed in ``eid`` order, so
two indices built independently for equal universes are interchangeable,
and DFS visits successors lowest-index first.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.events import Event
from repro.obs import core as _obs

Pair = Tuple[Event, Event]


def _bits(mask: int) -> Iterator[int]:
    """Indices of the set bits of ``mask``, lowest first."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def _popcount_fallback(mask: int) -> int:
    # Pure-Python popcount for Python 3.9, where int.bit_count does not
    # exist yet.  Benchmarked against the native path in
    # benchmarks/test_perf_kernel.py (micro-popcount row).
    return bin(mask).count("1")


# Native popcount when available (Python >= 3.10); int.bit_count used as
# an unbound method is the fastest spelling.
_popcount = getattr(int, "bit_count", _popcount_fallback)


class EventIndex:
    """A dense ``event -> 0..n-1`` mapping for one universe.

    Events are ordered by ``eid`` so the mapping is canonical: any two
    indices over equal universes assign the same position to each event.
    """

    __slots__ = ("universe", "events", "pos", "n", "full_row")

    def __init__(self, universe: Iterable[Event]):
        self.events: List[Event] = sorted(universe, key=lambda e: e.eid)
        self.universe = frozenset(self.events)
        self.pos: Dict[Event, int] = {e: i for i, e in enumerate(self.events)}
        self.n = len(self.events)
        self.full_row = (1 << self.n) - 1

    def mask_of(self, events: Iterable[Event]) -> int:
        """Bitmask of the given events.  Raises ``KeyError`` on strangers."""
        mask = 0
        pos = self.pos
        for event in events:
            mask |= 1 << pos[event]
        return mask


#: Bounded index cache, keyed by universe *identity*.  Universes repeat
#: heavily within one litmus run (every rf×co candidate of a trace
#: combination shares one frozenset object), so interning avoids
#: rebuilding the mapping.  Identity, not equality: events compare by
#: ``eid`` only, so equal-looking universes from different trace
#: combinations carry different payloads (values, kinds) and must not
#: share canonical events.  Each entry keeps a strong reference to its
#: universe so the id cannot be recycled while cached.
_INDEX_CACHE: Dict[int, Tuple[frozenset, EventIndex]] = {}
_INDEX_CACHE_LIMIT = 128


def index_for(universe: frozenset) -> EventIndex:
    key = id(universe)
    entry = _INDEX_CACHE.get(key)
    if entry is not None and entry[0] is universe:
        if _obs.ENABLED:
            _obs.count("bitrel.index_hit")
        return entry[1]
    if _obs.ENABLED:
        _obs.count("bitrel.index_miss")
    index = EventIndex(universe)
    if len(_INDEX_CACHE) >= _INDEX_CACHE_LIMIT:
        _INDEX_CACHE.clear()
    _INDEX_CACHE[key] = (universe, index)
    return index


class DenseRelation:
    """A binary relation as adjacency bitset rows over an :class:`EventIndex`.

    Instances are immutable by convention: operators return new instances
    and never mutate ``rows`` after construction.
    """

    __slots__ = ("index", "rows")

    def __init__(self, index: EventIndex, rows: List[int]):
        self.index = index
        self.rows = rows

    # -- construction ----------------------------------------------------

    @classmethod
    def empty(cls, index: EventIndex) -> "DenseRelation":
        return cls(index, [0] * index.n)

    @classmethod
    def from_pairs(cls, index: EventIndex, pairs: Iterable[Pair]) -> "DenseRelation":
        """Build from event pairs.  Raises ``KeyError`` if a pair mentions
        an event outside the index's universe."""
        rows = [0] * index.n
        pos = index.pos
        for a, b in pairs:
            rows[pos[a]] |= 1 << pos[b]
        return cls(index, rows)

    # -- conversion ------------------------------------------------------

    def pairs(self) -> Iterator[Pair]:
        events = self.index.events
        for i, row in enumerate(self.rows):
            source = events[i]
            for j in _bits(row):
                yield (source, events[j])

    def successor_positions(self, i: int) -> Iterator[int]:
        return _bits(self.rows[i])

    # -- set algebra -----------------------------------------------------

    def union(self, other: "DenseRelation") -> "DenseRelation":
        return DenseRelation(
            self.index, [a | b for a, b in zip(self.rows, other.rows)]
        )

    def intersection(self, other: "DenseRelation") -> "DenseRelation":
        return DenseRelation(
            self.index, [a & b for a, b in zip(self.rows, other.rows)]
        )

    def difference(self, other: "DenseRelation") -> "DenseRelation":
        return DenseRelation(
            self.index, [a & ~b for a, b in zip(self.rows, other.rows)]
        )

    def complement(self) -> "DenseRelation":
        full = self.index.full_row
        return DenseRelation(self.index, [full & ~row for row in self.rows])

    # -- relational operators --------------------------------------------

    def inverse(self) -> "DenseRelation":
        out = [0] * self.index.n
        for i, row in enumerate(self.rows):
            bit = 1 << i
            for j in _bits(row):
                out[j] |= bit
        return DenseRelation(self.index, out)

    def sequence(self, other: "DenseRelation") -> "DenseRelation":
        other_rows = other.rows
        out = []
        for row in self.rows:
            acc = 0
            for j in _bits(row):
                acc |= other_rows[j]
            out.append(acc)
        return DenseRelation(self.index, out)

    def optional(self) -> "DenseRelation":
        return DenseRelation(
            self.index, [row | (1 << i) for i, row in enumerate(self.rows)]
        )

    def transitive_closure(self) -> "DenseRelation":
        # Bitset Floyd–Warshall: after processing k, row i holds every node
        # reachable from i via intermediates <= k.
        rows = list(self.rows)
        for k, row_k in enumerate(rows):
            if not row_k:
                continue
            bit = 1 << k
            for i in range(len(rows)):
                if rows[i] & bit:
                    rows[i] |= rows[k]
        return DenseRelation(self.index, rows)

    def reflexive_transitive_closure(self) -> "DenseRelation":
        return self.transitive_closure().optional()

    def restrict(self, domain_mask: Optional[int], range_mask: Optional[int]) -> "DenseRelation":
        rows = self.rows
        if range_mask is not None:
            rows = [row & range_mask for row in rows]
        if domain_mask is not None:
            rows = [
                row if domain_mask & (1 << i) else 0
                for i, row in enumerate(rows)
            ]
        return DenseRelation(self.index, rows if rows is not self.rows else list(rows))

    def domain_mask(self) -> int:
        mask = 0
        for i, row in enumerate(self.rows):
            if row:
                mask |= 1 << i
        return mask

    def range_mask(self) -> int:
        mask = 0
        for row in self.rows:
            mask |= row
        return mask

    # -- checks ----------------------------------------------------------

    def __len__(self) -> int:
        return sum(_popcount(row) for row in self.rows)

    def is_empty(self) -> bool:
        return not any(self.rows)

    def contains(self, a: Event, b: Event) -> bool:
        pos = self.index.pos
        try:
            return bool(self.rows[pos[a]] & (1 << pos[b]))
        except KeyError:
            return False

    def reflexive_mask(self) -> int:
        """Bitmask of events related to themselves."""
        mask = 0
        for i, row in enumerate(self.rows):
            bit = 1 << i
            if row & bit:
                mask |= bit
        return mask

    def is_irreflexive(self) -> bool:
        return not self.reflexive_mask()

    def is_acyclic(self) -> bool:
        return self.find_cycle_positions() is None

    def find_cycle_positions(self) -> Optional[List[int]]:
        """One cycle as positions ``[i0, ..., i0]``, or ``None``.

        Mirrors the reference DFS (three-colour, iterative) so cycle
        witnesses have the same shape under both backends.
        """
        rows = self.rows
        n = self.index.n
        WHITE, GREY, BLACK = 0, 1, 2
        colour = [WHITE] * n
        parent = [0] * n

        for root in range(n):
            if colour[root] != WHITE or not rows[root]:
                continue
            colour[root] = GREY
            stack: List[Tuple[int, Iterator[int]]] = [(root, _bits(rows[root]))]
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    state = colour[nxt]
                    if state == GREY:
                        cycle = [nxt, node]
                        cursor = node
                        while cursor != nxt:
                            cursor = parent[cursor]
                            cycle.append(cursor)
                        cycle.reverse()
                        if cycle[0] != cycle[-1]:
                            cycle.append(cycle[0])
                        return cycle
                    if state == WHITE:
                        colour[nxt] = GREY
                        parent[nxt] = node
                        stack.append((nxt, _bits(rows[nxt])))
                        advanced = True
                        break
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return None

    def find_cycle(self) -> Optional[List[Event]]:
        positions = self.find_cycle_positions()
        if positions is None:
            return None
        events = self.index.events
        return [events[i] for i in positions]

    # -- equality --------------------------------------------------------

    def equals(self, other: "DenseRelation") -> bool:
        return self.rows == other.rows


def reaches(rows: List[int], start: int, targets: int) -> bool:
    """True iff some node in ``targets`` (a bitmask) is reachable from
    ``start`` in the graph given by ``rows``.

    Used by the incremental coherence-order pruner: after adding edges
    that all point *into* a new node ``w``, a new cycle exists iff ``w``
    reaches one of the edges' sources.
    """
    seen = 1 << start
    frontier = rows[start]
    while frontier:
        if frontier & targets:
            return True
        fresh = frontier & ~seen
        if not fresh:
            return False
        seen |= fresh
        acc = 0
        for j in _bits(fresh):
            acc |= rows[j]
        frontier = acc & ~seen
    return False
