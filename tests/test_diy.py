"""Tests for the diy-style cycle generator."""

import pytest

from repro.diy import CycleError, generate, generate_cycles
from repro.herd import run_litmus
from repro.litmus.outcomes import LocValue, RegValue
from repro.lkmm import LinuxKernelModel


@pytest.fixture(scope="module")
def lkmm():
    return LinuxKernelModel()


def verdict(lkmm, edges):
    return run_litmus(lkmm, generate(edges)).verdict


class TestGeneration:
    def test_mp_shape(self):
        program = generate(["Rfe", "PodRR", "Fre", "PodWW"])
        assert program.num_threads == 2
        assert len(program.locations()) == 2

    def test_three_thread_cycle(self):
        program = generate(["Rfe", "PodRW", "Rfe", "PodRR", "Fre", "PodWW"])
        assert program.num_threads == 3

    def test_condition_pins_rf_sources(self):
        program = generate(["Rfe", "PodRR", "Fre", "PodWW"])
        clauses = []

        def collect(c):
            if isinstance(c, (RegValue, LocValue)):
                clauses.append(c)
            else:
                for attr in ("lhs", "rhs", "body", "operand"):
                    if hasattr(c, attr):
                        collect(getattr(c, attr))

        collect(program.condition)
        values = sorted(c.value for c in clauses if isinstance(c, RegValue))
        assert values == [0, 1]  # one read from the write, one from init

    def test_coe_pins_final_value(self):
        program = generate(["Coe", "PodWW", "Coe", "PodWW"])  # 2+2W
        clauses = str(program.condition)
        assert "x=" in clauses or "y=" in clauses

    def test_fence_edges_emit_fences(self):
        program = generate(["Rfe", "RmbdRR", "Fre", "WmbdWW"])
        from repro.litmus.ast import Fence

        tags = {
            i.tag
            for t in program.threads
            for i in t.body
            if isinstance(i, Fence)
        }
        assert tags == {"rmb", "wmb"}

    def test_dependencies_realised(self):
        program = generate(["Rfe", "DpAddrdR", "Fre", "WmbdWW"])
        from repro.executions import candidate_executions

        x = next(iter(candidate_executions(program)))
        assert len(x.addr) >= 1

    def test_ctrl_dependency_realised(self):
        program = generate(["Rfe", "DpCtrldW", "Rfe", "MbdRW"])
        from repro.executions import candidate_executions

        x = next(iter(candidate_executions(program)))
        assert len(x.ctrl) >= 1


class TestValidation:
    def test_kind_conflict_rejected(self):
        # Rfe ends at a read; Coe must start at a write.
        with pytest.raises(CycleError):
            generate(["Rfe", "Coe"])

    def test_all_internal_cycle_rejected(self):
        with pytest.raises(CycleError):
            generate(["PodRR", "PodRR"])

    def test_location_merge_conflict_rejected(self):
        # A single po edge between two comm edges on the same pair of
        # nodes would identify the locations it must separate.
        with pytest.raises(CycleError):
            generate(["Rfe", "PodRR", "Fre"])

    def test_empty_cycle_rejected(self):
        with pytest.raises(CycleError):
            generate([])


class TestKnownVerdicts:
    """Generated cycles must get the same verdicts as the hand-written
    library tests of the same shape."""

    @pytest.mark.parametrize(
        "edges,expected",
        [
            (["Rfe", "PodRR", "Fre", "PodWW"], "Allow"),  # MP
            (["Rfe", "RmbdRR", "Fre", "WmbdWW"], "Forbid"),  # MP+wmb+rmb
            (["Fre", "PodWR", "Fre", "PodWR"], "Allow"),  # SB
            (["Fre", "MbdWR", "Fre", "MbdWR"], "Forbid"),  # SB+mbs
            (["Rfe", "DpCtrldW", "Rfe", "MbdRW"], "Forbid"),  # LB+ctrl+mb
            (["Rfe", "PodRW", "Rfe", "PodRW"], "Allow"),  # LB
            (["Rfe", "DpDatadW", "Rfe", "DpDatadW"], "Forbid"),  # LB+datas
            (["Rfe", "DpAddrdR", "Fre", "WmbdWW"], "Allow"),  # Alpha addr
            # An rb-dep fence alone restores nothing without a dependency:
            (["Rfe", "RbDepdRR", "Fre", "WmbdWW"], "Allow"),
            # ... but addr + rb-dep forms strong-rrdep:
            (["Rfe", "DpAddrRbDepdR", "Fre", "WmbdWW"], "Forbid"),
            (["Rfe", "AcqdR", "Fre", "ReldW"], "Forbid"),  # MP+rel+acq
            (["Rfe", "SyncdRR", "Fre", "WmbdWW"], "Forbid"),  # gp strong
            (["Coe", "WmbdWW", "Coe", "WmbdWW"], "Allow"),  # 2+2W+wmbs
            (["Coe", "MbdWW", "Coe", "MbdWW"], "Forbid"),  # 2+2W+mbs
        ],
    )
    def test_cycle_verdict(self, lkmm, edges, expected):
        assert verdict(lkmm, edges) == expected


class TestSystematicGeneration:
    def test_dedup_by_rotation(self):
        programs = list(generate_cycles(["Rfe", "Fre", "PodRR", "PodWW"], 4))
        names = [p.name for p in programs]
        assert len(names) == len(set(names))
        # MP appears once, not four times (one per rotation).
        mp_like = [n for n in names if set(n.split("+")) ==
                   {"Rfe", "PodRR", "Fre", "PodWW"}]
        assert len(mp_like) == 1

    def test_max_tests_bound(self):
        programs = list(
            generate_cycles(["Rfe", "Fre", "Coe", "PodRR", "PodWW"], 4, max_tests=5)
        )
        assert len(programs) == 5

    def test_generated_tests_are_runnable(self, lkmm):
        for program in generate_cycles(["Rfe", "Fre", "MbdRR", "MbdWR", "MbdWW"], 4, max_tests=10):
            result = run_litmus(lkmm, program)
            assert result.candidates > 0
