"""E1 — Table 5: simulations vs experimental results.

Regenerates the paper's main results table: for each of the fifteen
litmus tests, the LK-model verdict, klitmus-style observation counts on
the four simulated machines, and the C11 verdict.

Absolute counts differ from the paper (their testbed ran each test up to
33G times on real silicon; we sample a randomised simulator), but the
shape must match exactly:

* the Model column equals the paper's verbatim;
* the C11 column equals the paper's verbatim;
* every test the model *forbids* is observed 0 times on every machine
  (experimental soundness — the paper's headline claim);
* every count the paper reports as non-zero is non-zero here too.
"""

from __future__ import annotations

import pytest

from repro.hardware import run_klitmus
from repro.hardware.archspec import TABLE5_ARCHS
from repro.herd import run_litmus
from repro.litmus import library

from conftest import once, print_table

RUNS = 4000

#: Cells Table 5 reports as non-zero observations.
PAPER_NONZERO = {
    ("WRC", "Power8"), ("WRC", "ARMv8"),
    ("SB", "Power8"), ("SB", "ARMv8"), ("SB", "ARMv7"), ("SB", "x86"),
    ("MP", "Power8"), ("MP", "ARMv8"), ("MP", "ARMv7"),
    ("PeterZ-No-Synchro", "Power8"), ("PeterZ-No-Synchro", "ARMv8"),
    ("PeterZ-No-Synchro", "ARMv7"), ("PeterZ-No-Synchro", "x86"),
    ("RWC", "Power8"), ("RWC", "ARMv8"), ("RWC", "ARMv7"), ("RWC", "x86"),
}


def build_table5(lkmm, c11):
    rows = []
    for name in library.TABLE5:
        program = library.get(name)
        model_verdict = run_litmus(lkmm, program).verdict
        counts = {}
        for arch in TABLE5_ARCHS:
            counts[arch] = run_klitmus(program, arch, runs=RUNS)
        if library.PAPER_VERDICTS[name]["C11"] is None:
            c11_verdict = "-"
        else:
            c11_verdict = run_litmus(c11, program).verdict
        rows.append((name, model_verdict, counts, c11_verdict))
    return rows


def test_table5(benchmark, lkmm, c11):
    rows = once(benchmark, lambda: build_table5(lkmm, c11))

    display = [
        (name, verdict, *(counts[a].summary() for a in TABLE5_ARCHS), c11v)
        for name, verdict, counts, c11v in rows
    ]
    print_table(
        "Table 5 (reproduced): simulations vs simulated-hardware results",
        ("Test", "Model", *TABLE5_ARCHS, "C11"),
        display,
    )

    for name, model_verdict, counts, c11_verdict in rows:
        paper = library.PAPER_VERDICTS[name]
        # Model column: verbatim.
        assert model_verdict == paper["LK"], name
        # C11 column: verbatim.
        expected_c11 = paper["C11"] if paper["C11"] is not None else "-"
        assert c11_verdict == expected_c11, name
        for arch in TABLE5_ARCHS:
            observed = counts[arch].observed
            if model_verdict == "Forbid":
                # Soundness: a forbidden behaviour is never observed.
                assert observed == 0, f"{name} observed on {arch}"
            if (name, arch) in PAPER_NONZERO:
                assert observed > 0, f"{name} not observed on {arch}"


def test_table5_model_column_alone(benchmark, lkmm):
    """The Model column by itself (fast path, matches the paper 15/15)."""

    def column():
        return {
            name: run_litmus(lkmm, library.get(name)).verdict
            for name in library.TABLE5
        }

    verdicts = once(benchmark, column)
    for name, verdict in verdicts.items():
        assert verdict == library.PAPER_VERDICTS[name]["LK"]


def test_table5_c11_column_alone(benchmark, c11):
    """The C11 column by itself (13 comparable rows, matches 13/13)."""

    def column():
        return {
            name: run_litmus(c11, library.get(name)).verdict
            for name in library.TABLE5
            if library.PAPER_VERDICTS[name]["C11"] is not None
        }

    verdicts = once(benchmark, column)
    assert len(verdicts) == 13
    for name, verdict in verdicts.items():
        assert verdict == library.PAPER_VERDICTS[name]["C11"]
