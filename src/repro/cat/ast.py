"""Abstract syntax of the cat language subset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


class CatExpr:
    """Base class of cat expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class Id(CatExpr):
    """A reference to a binding or builtin (``po``, ``rfe``, ``Acquire``)."""

    name: str


@dataclass(frozen=True)
class EmptyRel(CatExpr):
    """The literal ``0`` — the empty relation."""


@dataclass(frozen=True)
class Union(CatExpr):
    lhs: CatExpr
    rhs: CatExpr


@dataclass(frozen=True)
class Inter(CatExpr):
    lhs: CatExpr
    rhs: CatExpr


@dataclass(frozen=True)
class Diff(CatExpr):
    lhs: CatExpr
    rhs: CatExpr


@dataclass(frozen=True)
class Seq(CatExpr):
    lhs: CatExpr
    rhs: CatExpr


@dataclass(frozen=True)
class Cartesian(CatExpr):
    """``S * T`` over two event sets."""

    lhs: CatExpr
    rhs: CatExpr


@dataclass(frozen=True)
class Compl(CatExpr):
    """``~e``."""

    operand: CatExpr


@dataclass(frozen=True)
class Inverse(CatExpr):
    """``e^-1``."""

    operand: CatExpr


@dataclass(frozen=True)
class Opt(CatExpr):
    """``e?`` — reflexive closure."""

    operand: CatExpr


@dataclass(frozen=True)
class Plus(CatExpr):
    """``e+`` — transitive closure."""

    operand: CatExpr


@dataclass(frozen=True)
class Star(CatExpr):
    """``e*`` — reflexive-transitive closure."""

    operand: CatExpr


@dataclass(frozen=True)
class SetId(CatExpr):
    """``[S]`` — the identity relation on event set S."""

    operand: CatExpr


@dataclass(frozen=True)
class App(CatExpr):
    """Function application ``f(e1, e2, ...)``."""

    func: str
    args: Tuple[CatExpr, ...]


# -- statements ---------------------------------------------------------------


class CatStatement:
    __slots__ = ()


@dataclass(frozen=True)
class LetBinding:
    """One binding: plain (``name = expr``) or functional
    (``name(params) = expr``)."""

    name: str
    expr: CatExpr
    params: Tuple[str, ...] = ()


@dataclass(frozen=True)
class Let(CatStatement):
    """``let [rec] b1 and b2 and ...``."""

    bindings: Tuple[LetBinding, ...]
    recursive: bool = False


@dataclass(frozen=True)
class Check(CatStatement):
    """``[flag] [~]acyclic|irreflexive|empty expr [as name]``."""

    kind: str  # "acyclic" | "irreflexive" | "empty"
    expr: CatExpr
    name: Optional[str] = None
    negated: bool = False
    flag: bool = False


@dataclass(frozen=True)
class Include(CatStatement):
    """``include "file.cat"``."""

    path: str


@dataclass(frozen=True)
class CatFile:
    """A parsed cat model: its name and statements."""

    name: str
    statements: Tuple[CatStatement, ...]


# -- pretty-printing ----------------------------------------------------------

#: Binding strength of each expression form, mirroring the parser's
#: loosest-first precedence ladder.  Binary operators are left-associative,
#: so the right operand is rendered one level tighter.
_LEVELS = {
    Union: 0,
    Seq: 1,
    Diff: 2,
    Inter: 3,
    Cartesian: 4,
    Compl: 5,
    Inverse: 6,
    Opt: 6,
    Plus: 6,
    Star: 6,
}

_BINARY_OPS = {Union: "|", Seq: ";", Diff: "\\", Inter: "&", Cartesian: "*"}

_POSTFIX_OPS = {Inverse: "^-1", Opt: "?", Plus: "+", Star: "*"}


def _pretty_expr(expr: CatExpr, min_level: int = 0) -> str:
    kind = type(expr)
    if kind is Id:
        return expr.name
    if kind is EmptyRel:
        return "0"
    if kind is SetId:
        return f"[{_pretty_expr(expr.operand)}]"
    if kind is App:
        args = ", ".join(_pretty_expr(arg) for arg in expr.args)
        return f"{expr.func}({args})"
    level = _LEVELS[kind]
    if kind in _BINARY_OPS:
        text = (
            f"{_pretty_expr(expr.lhs, level)} {_BINARY_OPS[kind]} "
            f"{_pretty_expr(expr.rhs, level + 1)}"
        )
    elif kind is Compl:
        text = f"~{_pretty_expr(expr.operand, level)}"
    else:
        text = f"{_pretty_expr(expr.operand, level)}{_POSTFIX_OPS[kind]}"
    if level < min_level:
        return f"({text})"
    return text


def _pretty_statement(stmt: CatStatement) -> str:
    if isinstance(stmt, Let):
        parts = []
        for binding in stmt.bindings:
            params = f"({', '.join(binding.params)})" if binding.params else ""
            parts.append(
                f"{binding.name}{params} = {_pretty_expr(binding.expr)}"
            )
        rec = "rec " if stmt.recursive else ""
        return f"let {rec}" + " and ".join(parts)
    if isinstance(stmt, Check):
        flag = "flag " if stmt.flag else ""
        neg = "~" if stmt.negated else ""
        name = f" as {stmt.name}" if stmt.name is not None else ""
        return f"{flag}{neg}{stmt.kind} {_pretty_expr(stmt.expr)}{name}"
    if isinstance(stmt, Include):
        return f'include "{stmt.path}"'
    raise TypeError(f"cannot pretty-print {stmt!r}")


def pretty(node) -> str:
    """Render an expression, statement, or whole :class:`CatFile` back to
    cat source with minimal parenthesization.  ``parse(pretty(x)) == x``
    for every parseable ``x`` — the property tests in
    ``tests/test_cat_parser.py`` pin this against the parser's precedence
    and associativity."""
    if isinstance(node, CatExpr):
        return _pretty_expr(node)
    if isinstance(node, CatStatement):
        return _pretty_statement(node)
    if isinstance(node, CatFile):
        lines = [f'"{node.name}"']
        lines.extend(_pretty_statement(stmt) for stmt in node.statements)
        return "\n".join(lines) + "\n"
    raise TypeError(f"cannot pretty-print {node!r}")
