"""Mining, reporting, and the golden freeze over synthetic matrices.

Synthetic verdict matrices make the classification semantics exact:
which rows count as disagreement, how signatures canonicalise, when a
soundness alert fires, and that the stratified sample covers every
signature deterministically.  A final end-to-end case runs the real
pipeline over a small generated corpus.
"""

from __future__ import annotations

import pytest

from repro.corpus.generate import corpus_slice
from repro.corpus.golden import (
    freeze_golden,
    load_golden,
    stratified_sample,
    verify_golden,
)
from repro.corpus.mine import mine, row_signature
from repro.corpus.report import stress_report
from repro.corpus.sweep import CORPUS_MODELS, SweepResult, sweep_corpus

ORDER = [spec.name for spec in CORPUS_MODELS]


def _result(rows, tests=None):
    result = SweepResult()
    result.matrix = rows
    result.tests = tests or {}
    result.swept = len(rows)
    return result


def _row(**verdicts):
    base = {name: "Allow" for name in ORDER}
    base.update(verdicts)
    return base


class TestSignatures:
    def test_unanimous_rows_collapse(self):
        assert row_signature(_row(), ORDER) == "all-Allow"
        forbid = {name: "Forbid" for name in ORDER}
        assert row_signature(forbid, ORDER) == "all-Forbid"

    def test_signature_lists_models_in_column_order(self):
        row = _row(C11="Forbid", Power="Forbid")
        assert row_signature(row, ORDER) == (
            "Allow:LKMM,LKMM-core,x86-TSO,ARMv8|Forbid:C11,Power"
        )

    def test_equal_rows_equal_signatures(self):
        a = _row(ARMv8="Forbid")
        b = dict(reversed(list(_row(ARMv8="Forbid").items())))
        assert row_signature(a, ORDER) == row_signature(b, ORDER)


class TestMine:
    def test_counts_and_density(self):
        from repro.corpus.generate import CorpusTest

        rows = {
            "a": _row(),
            "b": _row(C11="Forbid"),
            "c": _row(C11="Forbid"),
        }
        report = mine(_result(rows))
        assert report.total == 3
        assert report.agreeing == 1
        buckets = report.ranked_signatures()
        assert buckets[0].count == 2  # the C11 split leads
        assert buckets[0].exemplars == ["b", "c"]

    def test_na_and_inconclusive_do_not_disagree(self):
        rows = {
            "na": _row(**{"x86-TSO": "N/A", "ARMv8": "N/A", "Power": "N/A"}),
            "inc": _row(Power="Inconclusive"),
        }
        report = mine(_result(rows))
        assert report.agreeing == 2
        assert report.inconclusive_rows == 1

    def test_soundness_alert_fires_on_hw_allow_lkmm_forbid(self):
        rows = {
            "bad": _row(LKMM="Forbid", **{"LKMM-core": "Forbid"}),
            # hardware still Allow from _row() default -> 3 alerts
            "fine": _row(LKMM="Forbid", **{
                "LKMM-core": "Forbid", "C11": "Forbid",
                "x86-TSO": "Forbid", "ARMv8": "Forbid", "Power": "Forbid",
            }),
        }
        report = mine(_result(rows))
        assert sorted(report.soundness_alerts) == [
            ("bad", "ARMv8"), ("bad", "Power"), ("bad", "x86-TSO"),
        ]


class TestReport:
    def test_report_is_deterministic_and_complete(self):
        rows = {"a": _row(), "b": _row(C11="Forbid")}
        report = mine(_result(rows))
        text = stress_report(report)
        assert text == stress_report(mine(_result(dict(rows))))
        assert "## Soundness alerts" in text
        assert "## Disagreement signatures" in text
        assert "## Family leaderboard" in text
        assert "Tests judged:** 2" in text

    def test_alerts_render_loudly(self):
        rows = {"bad": _row(LKMM="Forbid")}
        text = stress_report(mine(_result(rows)))
        assert "Investigate" in text
        assert "`bad`" in text


class TestGolden:
    def test_stratified_sample_covers_every_signature(self):
        rows = {}
        for i in range(40):
            rows[f"maj{i}"] = _row()
        for i in range(4):
            rows[f"min{i}"] = _row(C11="Forbid")
        rows["solo"] = _row(Power="Forbid")
        result = _result(rows)
        names = stratified_sample(result, size=10, seed=0, order=ORDER)
        assert len(names) == 10
        signatures = {row_signature(rows[n], ORDER) for n in names}
        assert len(signatures) == 3  # every class represented
        assert names == stratified_sample(result, size=10, seed=0, order=ORDER)

    def test_sample_caps_at_population(self):
        rows = {"a": _row(), "b": _row(C11="Forbid")}
        assert len(stratified_sample(_result(rows), size=500)) == 2


def test_freeze_verify_round_trip(tmp_path):
    """The real pipeline: generate, sweep, freeze, reload, verify."""
    corpus = corpus_slice(seed=0, start=0, stop=10)
    result = sweep_corpus(corpus)
    path = tmp_path / "golden.jsonl"
    names = freeze_golden(result, path, size=6, seed=0)
    assert len(names) == 6
    entries = load_golden(path)
    assert [test.name for test, _ in entries] == sorted(names)
    for test, locked in entries:
        assert locked == result.matrix[test.name]
    assert verify_golden(path) == []

    # Corrupt one locked verdict: verify must name the cell.
    lines = path.read_text().splitlines()
    import json

    row = json.loads(lines[0])
    victim = row["name"]
    model = next(
        m for m, v in row["verdicts"].items() if v in ("Allow", "Forbid")
    )
    row["verdicts"][model] = (
        "Forbid" if row["verdicts"][model] == "Allow" else "Allow"
    )
    lines[0] = json.dumps(row, sort_keys=True)
    path.write_text("\n".join(lines) + "\n")
    mismatches = verify_golden(path)
    assert len(mismatches) == 1
    assert victim in mismatches[0] and model in mismatches[0]
