"""E10, E11 — the C11-comparison figures (Section 5.2)."""

from __future__ import annotations

import pytest

from repro.herd import run_litmus
from repro.litmus import library

from conftest import once, print_table


def test_fig13_rwc_mbs(benchmark, lkmm, c11):
    """Figure 13: smp_mb restores SC but C11's seq_cst fence does not —
    the LK model forbids RWC+mbs, C11 allows it."""

    def experiment():
        program = library.get("RWC+mbs")
        return (
            run_litmus(lkmm, program).verdict,
            run_litmus(c11, program).verdict,
        )

    lk_verdict, c11_verdict = once(benchmark, experiment)
    assert lk_verdict == "Forbid"
    assert c11_verdict == "Allow"


def test_fig14_wrc_wmb_acq(benchmark, lkmm, c11):
    """Figure 14: there is no ideal C11 equivalent of smp_wmb — C11's
    release fence forbids WRC+wmb+acq, which the LK model allows."""

    def experiment():
        program = library.get("WRC+wmb+acq")
        return (
            run_litmus(lkmm, program).verdict,
            run_litmus(c11, program).verdict,
        )

    lk_verdict, c11_verdict = once(benchmark, experiment)
    assert lk_verdict == "Allow"
    assert c11_verdict == "Forbid"


def test_lk_c11_disagreement_matrix(benchmark, lkmm, c11):
    """The full LK-vs-C11 comparison over the non-RCU corpus — the
    quantified version of Section 5.2's discussion."""

    def experiment():
        rows = []
        for name in library.all_names():
            if name.startswith("RCU") or "sync" in name or name == "lock-mutex":
                continue
            program = library.get(name)
            lk = run_litmus(lkmm, program).verdict
            c = run_litmus(c11, program).verdict
            rows.append((name, lk, c, "≠" if lk != c else ""))
        return rows

    rows = once(benchmark, experiment)
    print_table("LK vs C11 over the corpus", ("Test", "LK", "C11", ""), rows)

    disagreements = {name for name, lk, c, mark in rows if mark}
    # Every disagreement falls into one of the three documented classes:
    # dependencies, seq_cst fences, or wmb-vs-release-fence.  (LB+datas is
    # NOT here although C11-the-spec allows thin-air: herd-style
    # enumeration cannot construct out-of-thin-air values, so both models
    # report Forbid — the same artifact the real herd C11 model has.)
    assert disagreements == {
        "LB+ctrl+mb", "S+wmb+data", "MP+wmb+addr-acq",
        "MP+po-rel+rfi-acq", "ISA2+rel+rel+acq",
        "RWC+mbs", "PeterZ", "IRIW+mbs", "2+2W+mbs", "R+mbs", "3.2W+mbs",
        "WRC+wmb+acq",
    }
    # And in all but one of them C11 is the *weaker* model; the single
    # reverse case is Figure 14's wmb.
    stronger_c11 = {
        name for name, lk, c, mark in rows
        if mark and lk == "Allow" and c == "Forbid"
    }
    assert stronger_c11 == {"WRC+wmb+acq"}
