"""Evaluation of cat models over candidate executions.

Values in cat are event sets or binary relations; the evaluator is
dynamically typed and dispatches each operator on the operand kinds, as
herd does.  Recursive ``let rec`` groups are evaluated as simultaneous
least fixpoints starting from empty relations — the cat operators used in
recursive definitions are monotone, so iteration converges on finite
executions.

The builtin environment exposes:

* the base relations ``po``, ``rf``, ``co``, ``addr``, ``data``, ``ctrl``,
  ``rmw``, ``loc``, ``int``, ``ext``, ``id``;
* the event sets ``_``, ``R``, ``W``, ``F``, ``M``, ``IW``;
* one event set per annotation, capitalised (``Once``, ``Acquire``,
  ``Release``, ``Rmb``, ``Wmb``, ``Mb``, ``Rb-dep``, ``Rcu-lock``,
  ``Rcu-unlock``, ``Sync-rcu``, plus the architecture- and C11-level tags
  used by the comparison models);
* ``crit``, the outermost RCU lock/unlock matching (herd gets this from
  the bell layer; see :mod:`repro.executions.derived`);
* the builtin functions ``domain``, ``range``, and ``fencerel``.
"""

from __future__ import annotations

import itertools
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Set, Union as TUnion

from repro.cat import ast as C
from repro.cat.parser import CatParseError, parse_cat
from repro.events import FENCE
from repro.executions.candidate import CandidateExecution
from repro.executions.derived import crit_relation
from repro.guard import core as _guard
from repro.kernel import config as _config
from repro.model import AxiomViolation, Model, ModelResult
from repro.obs import core as _obs
from repro.relations import EventSet, Relation

#: Directory holding the shipped .cat model files.
MODELS_DIR = Path(__file__).parent / "models"


class CatError(Exception):
    """Raised for type or name errors during evaluation."""


Value = TUnion[Relation, EventSet, "CatFunction"]


class CatFunction:
    """A user-defined cat function (e.g. ``A-cumul``)."""

    def __init__(self, name, params, body, env):
        self.name = name
        self.params = params
        self.body = body
        self.env = env  # captured environment (lexical scoping)

    def __call__(self, evaluator: "_Evaluator", args: List[Value]) -> Value:
        if len(args) != len(self.params):
            raise CatError(
                f"{self.name} expects {len(self.params)} args, got {len(args)}"
            )
        inner = dict(self.env)
        inner.update(zip(self.params, args))
        return evaluator.eval(self.body, inner)


#: Annotation name (as it appears in cat files) -> event tag.
TAG_SETS: Dict[str, str] = {
    # Linux-kernel tags (Tables 3 and 4).
    "Once": "once",
    "Acquire": "acquire",
    "Release": "release",
    "Rmb": "rmb",
    "Wmb": "wmb",
    "Mb": "mb",
    "Rb-dep": "rb-dep",
    "Rcu-lock": "rcu-lock",
    "Rcu-unlock": "rcu-unlock",
    "Sync-rcu": "sync-rcu",
    "Plain": "plain",
    "Noop": "noop",
    # Architecture-level tags (repro.hardware.compile).
    "Sync": "sync",
    "Lwsync": "lwsync",
    "Isync": "isync",
    "Mfence": "mfence",
    "Dmb": "dmb",
    "Dmb-ld": "dmb-ld",
    "Dmb-st": "dmb-st",
    "Ldar": "ldar",
    "Stlr": "stlr",
    "Alpha-mb": "alpha-mb",
    "Alpha-wmb": "alpha-wmb",
    # C11 tags (the mapping of Section 5.2).
    "RLX": "rlx",
    "ACQ": "acq",
    "REL": "rel",
    "SC": "sc",
    "F-acq": "f-acq",
    "F-rel": "f-rel",
    "F-sc": "f-sc",
}


def builtin_environment(execution: CandidateExecution) -> Dict[str, Value]:
    """The initial cat environment for one execution.

    Everything except ``rf`` and ``co`` is trace-invariant, so the bulk of
    the environment is built once per trace combination (shared on the
    execution's skeleton) and only the witness relations are added per
    candidate.
    """

    def invariant() -> Dict[str, Value]:
        env: Dict[str, Value] = {
            "po": execution.po,
            "addr": execution.addr,
            "data": execution.data,
            "ctrl": execution.ctrl,
            "rmw": execution.rmw,
            "loc": execution.loc,
            "int": execution.int_,
            "ext": execution.ext,
            "id": execution.identity,
            "_": execution.all_events,
            "R": execution.reads,
            "W": execution.writes,
            "F": execution.fences,
            "M": execution.accesses,
            "IW": execution.initial_writes,
            "crit": crit_relation(execution),
        }
        for name, tag in TAG_SETS.items():
            env[name] = execution.tagged(tag)
        return env

    env = dict(execution.shared_memo("cat:base_env", invariant))
    env["rf"] = execution.rf
    env["co"] = execution.co
    return env


#: Builtin identifiers whose value varies with the execution witness; the
#: seed of the varying-name analysis below.
_VARYING_BUILTINS = frozenset({"rf", "co"})
#: Builtin functions (not environment entries; never varying by themselves).
_BUILTIN_FUNCS = frozenset({"domain", "range", "fencerel"})


def _free_identifiers(expr: C.CatExpr, out: Set[str]) -> None:
    """Collect the identifiers (and applied function names) of ``expr``."""
    if isinstance(expr, C.Id):
        out.add(expr.name)
        return
    if isinstance(expr, C.App):
        out.add(expr.func)
        for arg in expr.args:
            _free_identifiers(arg, out)
        return
    for attr in ("lhs", "rhs", "operand"):
        child = getattr(expr, attr, None)
        if child is not None:
            _free_identifiers(child, out)


def _analyse_invariance(statements: Sequence) -> List:
    """Per-statement rf/co-(in)dependence, in evaluation order.

    Walks the flattened statement list tracking the set of *varying*
    names — those whose value (transitively) depends on ``rf`` or ``co``.
    Returns, aligned with ``statements``: for a ``Let``, a list of
    per-binding booleans (True = trace-invariant, safe to memoise on the
    skeleton); for a ``Check``, one boolean for its expression.  The
    analysis is order-sensitive, so shadowing is handled conservatively:
    once a name goes varying it stays varying.
    """
    varying: Set[str] = set(_VARYING_BUILTINS)
    result: List = []
    for statement in statements:
        if isinstance(statement, C.Let):
            if statement.recursive:
                group = {b.name for b in statement.bindings}
                free: Set[str] = set()
                for binding in statement.bindings:
                    _free_identifiers(binding.expr, free)
                is_varying = bool((free - group - _BUILTIN_FUNCS) & varying)
                if is_varying:
                    varying.update(group)
                result.append([not is_varying] * len(statement.bindings))
            else:
                flags = []
                for binding in statement.bindings:
                    free = set()
                    _free_identifiers(binding.expr, free)
                    free -= set(binding.params)
                    free -= _BUILTIN_FUNCS
                    is_varying = bool(free & varying)
                    if is_varying:
                        varying.add(binding.name)
                    flags.append(not is_varying)
                result.append(flags)
        elif isinstance(statement, C.Check):
            free = set()
            _free_identifiers(statement.expr, free)
            result.append(not ((free - _BUILTIN_FUNCS) & varying))
        else:
            result.append(None)
    return result


def _coerce_relation(value: Value, context: str) -> Relation:
    if isinstance(value, Relation):
        return value
    if isinstance(value, EventSet):
        # herd coerces sets to identity relations in relation position.
        return value.identity()
    raise CatError(
        f"{context}: expected a relation, got {type(value).__name__}"
    )


def check_axiom(
    kind: str, name: str, negated: bool, value: Value
) -> Optional[AxiomViolation]:
    """Verdict for one check over an already-evaluated value.

    Shared by the statement-walking interpreter and the compiled check
    plan (:mod:`repro.analysis.catir.plan`), so the two paths cannot
    diverge on witness construction or negation handling.  ``empty`` on
    an event set keeps set semantics (each stray event is its own
    ``(e, e)`` witness); ``acyclic``/``irreflexive`` coerce a set to its
    identity relation first, as herd does.
    """
    if kind == "empty":
        if isinstance(value, EventSet):
            holds = value.is_empty()
            witness = tuple((e, e) for e in value)
        else:
            relation = _coerce_relation(value, "empty")
            holds = relation.is_empty()
            witness = tuple(relation.pairs)
        if negated:
            holds = not holds
            witness = ()
        if holds:
            return None
        return AxiomViolation(name, "empty", witness)

    relation = _coerce_relation(value, kind)
    if kind == "acyclic":
        cycle = relation.find_cycle()
        holds = cycle is None
        witness = tuple(cycle or ())
    elif kind == "irreflexive":
        reflexive = [a for a, b in relation.pairs if a == b]
        holds = not reflexive
        witness = tuple(reflexive[:1] * 2)
    else:  # pragma: no cover
        raise CatError(f"unknown check kind {kind!r}")
    if negated:
        holds = not holds
        witness = ()
    if holds:
        return None
    return AxiomViolation(name, kind, witness)


class _Evaluator:
    """Evaluates cat expressions in an environment."""

    def __init__(self, execution: CandidateExecution):
        self.x = execution
        self.universe = execution.universe

    # -- helpers ---------------------------------------------------------

    def _as_relation(self, value: Value, context: str) -> Relation:
        if isinstance(value, Relation):
            return value
        if isinstance(value, EventSet):
            # herd coerces sets to identity relations in relation position.
            return value.identity()
        raise CatError(f"{context}: expected a relation, got {type(value).__name__}")

    def _as_set(self, value: Value, context: str) -> EventSet:
        if isinstance(value, EventSet):
            return value
        raise CatError(f"{context}: expected an event set, got {type(value).__name__}")

    # -- evaluation --------------------------------------------------------

    def eval(self, expr: C.CatExpr, env: Dict[str, Value]) -> Value:
        if isinstance(expr, C.Id):
            try:
                return env[expr.name]
            except KeyError:
                raise CatError(f"unbound identifier {expr.name!r}") from None
        if isinstance(expr, C.EmptyRel):
            return Relation((), self.universe)
        if isinstance(expr, C.Union):
            lhs = self.eval(expr.lhs, env)
            rhs = self.eval(expr.rhs, env)
            if isinstance(lhs, EventSet) and isinstance(rhs, EventSet):
                return lhs | rhs
            return self._as_relation(lhs, "|") | self._as_relation(rhs, "|")
        if isinstance(expr, C.Inter):
            lhs = self.eval(expr.lhs, env)
            rhs = self.eval(expr.rhs, env)
            if isinstance(lhs, EventSet) and isinstance(rhs, EventSet):
                return lhs & rhs
            return self._as_relation(lhs, "&") & self._as_relation(rhs, "&")
        if isinstance(expr, C.Diff):
            lhs = self.eval(expr.lhs, env)
            rhs = self.eval(expr.rhs, env)
            if isinstance(lhs, EventSet) and isinstance(rhs, EventSet):
                return lhs - rhs
            return self._as_relation(lhs, "\\") - self._as_relation(rhs, "\\")
        if isinstance(expr, C.Seq):
            lhs = self._as_relation(self.eval(expr.lhs, env), ";")
            rhs = self._as_relation(self.eval(expr.rhs, env), ";")
            return lhs.sequence(rhs)
        if isinstance(expr, C.Cartesian):
            lhs = self._as_set(self.eval(expr.lhs, env), "*")
            rhs = self._as_set(self.eval(expr.rhs, env), "*")
            return lhs.product(rhs)
        if isinstance(expr, C.Compl):
            value = self.eval(expr.operand, env)
            if isinstance(value, EventSet):
                return value.complement()
            return self._as_relation(value, "~").complement()
        if isinstance(expr, C.Inverse):
            return self._as_relation(self.eval(expr.operand, env), "^-1").inverse()
        if isinstance(expr, C.Opt):
            return self._as_relation(self.eval(expr.operand, env), "?").optional()
        if isinstance(expr, C.Plus):
            return self._as_relation(
                self.eval(expr.operand, env), "+"
            ).transitive_closure()
        if isinstance(expr, C.Star):
            return self._as_relation(
                self.eval(expr.operand, env), "*"
            ).reflexive_transitive_closure()
        if isinstance(expr, C.SetId):
            return self._as_set(self.eval(expr.operand, env), "[]").identity()
        if isinstance(expr, C.App):
            return self._apply(expr, env)
        raise CatError(f"unknown cat expression {expr!r}")

    def _apply(self, expr: C.App, env: Dict[str, Value]) -> Value:
        args = [self.eval(arg, env) for arg in expr.args]
        if expr.func == "domain":
            return self._as_relation(args[0], "domain").domain()
        if expr.func == "range":
            return self._as_relation(args[0], "range").range()
        if expr.func == "fencerel":
            # fencerel(S) = (po & (_ x S)) ; po — events separated by a
            # fence in S.
            fence_set = self._as_set(args[0], "fencerel")
            x = self.x
            before = x.po.restrict(range_=fence_set)
            after = x.po.restrict(domain=fence_set)
            return before.sequence(after)
        func = env.get(expr.func)
        if isinstance(func, CatFunction):
            return func(self, args)
        raise CatError(f"unknown function {expr.func!r}")


#: Process-unique tokens for memo keys (id() is unsafe: recyclable).
_MODEL_TOKENS = itertools.count()


class CatModel(Model):
    """A consistency model defined by a cat file.

    On first use the statement list is flattened (includes expanded) and
    analysed for rf/co-dependence; ``let`` bindings and checks whose value
    cannot depend on the execution witness are then evaluated once per
    trace combination (memoised on the execution's shared skeleton) rather
    than once per candidate.
    """

    def __init__(self, cat_file: C.CatFile, name: Optional[str] = None):
        self.cat_file = cat_file
        self.name = name or cat_file.name
        self._token = next(_MODEL_TOKENS)
        self._flat: Optional[List] = None
        self._invariance: Optional[List] = None
        #: Lazily built compiled check plan (None = unavailable); see
        #: :meth:`_check_plan`.
        self._plan = None
        self._plan_tried = False

    def __getstate__(self):
        # Plans hold process-global interned IR nodes whose identity-based
        # sharing must not cross a pickle boundary (parallel shard
        # workers); each process rebuilds its own plan on first check.
        state = self.__dict__.copy()
        state["_plan"] = None
        state["_plan_tried"] = False
        return state

    @classmethod
    def from_source(cls, source: str, name: Optional[str] = None) -> "CatModel":
        return cls(parse_cat(source), name=name)

    @classmethod
    def from_path(cls, path, name: Optional[str] = None) -> "CatModel":
        path = Path(path)
        cat_file = parse_cat(
            path.read_text(), default_name=path.stem, path=str(path)
        )
        return cls(cat_file, name=name)

    def _flattened(self) -> List:
        if self._flat is None:
            out: List = []

            def walk(cat_file: C.CatFile) -> None:
                for statement in cat_file.statements:
                    if isinstance(statement, C.Include):
                        walk(_load_cat_file(statement.path))
                    elif isinstance(statement, (C.Let, C.Check)):
                        out.append(statement)
                    else:  # pragma: no cover - parser produces only the above
                        raise CatError(f"unknown statement {statement!r}")

            walk(self.cat_file)
            self._flat = out
            self._invariance = _analyse_invariance(out)
        return self._flat

    def check(self, execution: CandidateExecution) -> ModelResult:
        if _guard.ACTIVE:
            _guard._current.tick()  # budget safepoint: one per-candidate model check
        if _config.check_plan_enabled():
            plan = self._check_plan()
            if plan is not None:
                violations, flags = plan.run(execution, self.name)
                return self._result(violations, flags)
        evaluator = _Evaluator(execution)
        env = builtin_environment(execution)
        violations: List[AxiomViolation] = []
        flags: List[AxiomViolation] = []
        statements = self._flattened()
        invariance = self._invariance
        for index, statement in enumerate(statements):
            if isinstance(statement, C.Let):
                self._bind(
                    statement, evaluator, env, execution, invariance[index], index
                )
            else:
                if invariance[index]:
                    violation = execution.shared_memo(
                        ("cat", self._token, index),
                        lambda s=statement, i=index: self._check(
                            s, evaluator, env, i
                        ),
                    )
                else:
                    violation = self._check(statement, evaluator, env, index)
                if violation is not None:
                    (flags if statement.flag else violations).append(violation)
        return self._result(violations, flags)

    def _result(
        self, violations: List[AxiomViolation], flags: List[AxiomViolation]
    ) -> ModelResult:
        if _obs.ENABLED:
            _obs.count(f"cat.{self.name}.checks")
            for violation in violations:
                _obs.count(f"cat.{self.name}.violation.{violation.axiom}")
        result = ModelResult(allowed=not violations, violations=violations)
        result.flags = flags  # informational, does not affect the verdict
        return result

    def _check_plan(self):
        """The compiled check plan, or None when the model does not
        compile.  A compile failure is not an error here: the interpreter
        evaluates all value bindings eagerly, so its first ``check()``
        raises the equivalent :class:`CatError` — falling back keeps the
        two paths observably identical."""
        if not self._plan_tried:
            self._plan_tried = True
            from repro.analysis.catir.compile import compile_statements
            from repro.analysis.catir.plan import build_plan

            try:
                compiled = compile_statements(self._flattened(), self.name)
                self._plan = build_plan(compiled)
            except CatError:
                self._plan = None
        return self._plan

    def _bind(
        self,
        let: C.Let,
        evaluator: _Evaluator,
        env: Dict[str, Value],
        execution: CandidateExecution,
        invariant_flags: List[bool],
        stmt_index: int,
    ) -> None:
        if not let.recursive:
            for b_index, binding in enumerate(let.bindings):
                if binding.params:
                    # Function bindings are cheap to create; their bodies
                    # are (re-)evaluated per call site anyway.
                    env[binding.name] = CatFunction(
                        binding.name, binding.params, binding.expr, env.copy()
                    )
                elif invariant_flags[b_index]:
                    # The expression cannot reach rf/co, and every name it
                    # reads resolves to skeleton-shared values — so the
                    # result is identical across all sibling candidates.
                    env[binding.name] = execution.shared_memo(
                        ("cat", self._token, stmt_index, b_index),
                        lambda b=binding: self._timed_eval(
                            b, evaluator, env
                        ),
                    )
                else:
                    env[binding.name] = self._timed_eval(
                        binding, evaluator, env
                    )
            return
        group = "+".join(b.name for b in let.bindings)
        if invariant_flags and invariant_flags[0]:
            values = execution.shared_memo(
                ("cat", self._token, stmt_index),
                lambda: self._timed_eval_rec(let, evaluator, env, group),
            )
        else:
            values = self._timed_eval_rec(let, evaluator, env, group)
        env.update(values)

    def _timed_eval_rec(
        self, let: C.Let, evaluator: _Evaluator, env: Dict[str, Value], group: str
    ) -> Dict[str, Value]:
        with _obs.span(f"cat.let.{self.name}.rec.{group}"):
            return self._eval_rec(let, evaluator, env)

    def _timed_eval(
        self, binding, evaluator: _Evaluator, env: Dict[str, Value]
    ) -> Value:
        """Evaluate one non-function ``let`` binding under a span."""
        with _obs.span(f"cat.let.{self.name}.{binding.name}"):
            return evaluator.eval(binding.expr, env)

    def _eval_rec(
        self, let: C.Let, evaluator: _Evaluator, env: Dict[str, Value]
    ) -> Dict[str, Value]:
        """``let rec``: simultaneous least fixpoint from empty relations."""
        env = dict(env)
        for binding in let.bindings:
            if binding.params:
                raise CatError("recursive cat functions are not supported")
            env[binding.name] = Relation((), evaluator.universe)
        while True:
            changed = False
            for binding in let.bindings:
                new = evaluator._as_relation(
                    evaluator.eval(binding.expr, env), f"let rec {binding.name}"
                )
                if new != evaluator._as_relation(
                    env[binding.name], binding.name
                ):
                    env[binding.name] = new
                    changed = True
            if not changed:
                return {b.name: env[b.name] for b in let.bindings}

    def _check(
        self,
        check: C.Check,
        evaluator: _Evaluator,
        env: Dict[str, Value],
        index: int,
    ) -> Optional[AxiomViolation]:
        name = check.name or f"{check.kind}-{index}"
        with _obs.span(f"cat.check.{self.name}.{name}"):
            return self._check_inner(check, evaluator, env, name)

    def _check_inner(
        self,
        check: C.Check,
        evaluator: _Evaluator,
        env: Dict[str, Value],
        name: str,
    ) -> Optional[AxiomViolation]:
        value = evaluator.eval(check.expr, env)
        return check_axiom(check.kind, name, check.negated, value)


#: Parse caches: the shipped .cat files never change within a process, and
#: repro-lint / the equivalence suites load the same models for every test.
_CAT_FILE_CACHE: Dict[str, C.CatFile] = {}
_MODEL_CACHE: Dict[str, CatModel] = {}


def _load_cat_file(name: str) -> C.CatFile:
    cached = _CAT_FILE_CACHE.get(name)
    if _obs.ENABLED:
        _obs.count(
            "cat.file_cache_hit" if cached is not None else "cat.file_cache_miss"
        )
    if cached is None:
        path = MODELS_DIR / name
        if not path.exists():
            raise CatError(
                f"included cat file {name!r} not found in {MODELS_DIR}"
            )
        cached = parse_cat(
            path.read_text(), default_name=path.stem, path=str(path)
        )
        _CAT_FILE_CACHE[name] = cached
    return cached


def load_model(name: str) -> CatModel:
    """Load a shipped model by name (e.g. ``lkmm``, ``c11``, ``tso``).

    Models are parsed once per process and the instance is shared:
    :class:`CatModel` is immutable after its lazy statement flattening, so
    callers may freely reuse it across runs and threads of enumeration.
    """
    cached = _MODEL_CACHE.get(name)
    if _obs.ENABLED:
        _obs.count(
            "cat.model_cache_hit" if cached is not None else "cat.model_cache_miss"
        )
    if cached is None:
        path = MODELS_DIR / f"{name}.cat"
        if not path.exists():
            available = sorted(p.stem for p in MODELS_DIR.glob("*.cat"))
            raise CatError(f"unknown model {name!r}; available: {available}")
        cached = CatModel.from_path(path)
        _MODEL_CACHE[name] = cached
    return cached
