"""Tests for the model-diff analyzer and its CLI surface."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.catir.diff import (
    ModelDiff,
    bundled_model_names,
    diff_models,
    models_report,
)
from repro.analysis.catir.compile import compile_model, compile_source
from repro.tools.cli import lint_main

SNAPSHOT = Path(__file__).parent / "data" / "model_diff_lkmm_core.txt"

REGEN_HINT = (
    "model-diff snapshot drifted; if intentional, regenerate with "
    "`PYTHONPATH=src python -c \"from repro.analysis.catir.diff import "
    "diff_models; open('tests/data/model_diff_lkmm_core.txt','w')."
    "write(diff_models('lkmm','lkmm-core').describe())\"`"
)


class TestModelDiff:
    def test_self_diff_is_identical(self):
        for name in ("lkmm", "c11", "tso"):
            diff = diff_models(name, name)
            assert diff.identical, name
            assert not diff.renamed

    def test_lkmm_vs_core_snapshot(self):
        assert diff_models("lkmm", "lkmm-core").describe() == \
            SNAPSHOT.read_text(), REGEN_HINT

    def test_lkmm_vs_core_structure(self):
        diff = diff_models("lkmm", "lkmm-core")
        assert "po-loc" in diff.shared
        changed = {name for name, _, _ in diff.changed}
        assert "strong-fence" in changed  # RCU grace periods removed
        assert "rcu-path" in diff.only_left
        assert "coherence" in diff.shared_checks
        assert {c.label for c in diff.only_left_checks} == {"rcu"}

    def test_renamed_but_equal(self):
        # lkmm-core's strong-fence *is* lkmm's mb, under a new name —
        # found by node identity, not by name or text.
        diff = diff_models("lkmm", "lkmm-core")
        assert ("mb", "strong-fence") in diff.renamed

    def test_renamed_equal_on_synthetic_models(self):
        left = compile_source("let happens = po | rf\nacyclic happens")
        right = compile_source("let ordered = rf | po\nacyclic ordered")
        diff = ModelDiff(left, right)
        assert ("happens", "ordered") in diff.renamed

    def test_every_bundled_pair_diffs(self):
        names = bundled_model_names()
        assert len(names) == 9
        for left in names:
            for right in names:
                diff = diff_models(left, right)
                text = diff.describe()
                assert text.startswith("model diff:")
                if left == right:
                    assert diff.identical

    def test_shared_definitions_deterministic(self):
        a = diff_models("power", "armv7")
        b = diff_models("power", "armv7")
        assert a.describe() == b.describe()
        assert len(a.shared) >= 15  # the shared hardware skeleton

    def test_models_report_lists_all(self):
        report = models_report()
        for name in bundled_model_names():
            assert f"\n{name}: " in "\n" + report

    def test_compile_model_unknown(self):
        from repro.cat.eval import CatError

        with pytest.raises(CatError, match="unknown model"):
            compile_model("nonesuch")


class TestCli:
    def test_diff_models(self, capsys):
        assert lint_main(["--diff-models", "lkmm", "lkmm-core"]) == 0
        out = capsys.readouterr().out
        assert out == SNAPSHOT.read_text(), REGEN_HINT

    def test_diff_models_any_pair(self, capsys):
        assert lint_main(["--diff-models", "c11", "sc"]) == 0
        assert "model diff: C11 vs SC" in capsys.readouterr().out

    def test_diff_models_unknown(self, capsys):
        assert lint_main(["--diff-models", "lkmm", "nonesuch"]) == 2
        assert "unknown model" in capsys.readouterr().err

    def test_models_report_cli(self, capsys):
        assert lint_main(["--models"]) == 0
        out = capsys.readouterr().out
        assert "bundled cat models" in out
        assert "lkmm-core" in out
