"""Enumeration of all candidate executions of a litmus test.

The enumeration follows herd's structure:

1. compute per-location *possible value sets* (a fixpoint seeded with the
   initial values — :func:`repro.executions.thread_sem.possible_value_sets`);
2. enumerate every *trace* of every thread (each trace fixes the values its
   reads return and therefore its control-flow path);
3. for each combination of traces, enumerate every *reads-from* assignment
   (each read is mapped to a same-location write of the value it chose,
   including the implicit initialising writes) and every *coherence order*
   (a permutation of the non-initial writes per location, after the
   initialising write);
4. each combination yields one :class:`CandidateExecution`.

Reads whose chosen value is written nowhere have no rf source and are
pruned, which also discards the spurious values the fixpoint of step 1 may
over-approximate.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Tuple

from repro.events import Event, FENCE, INIT_TID, ONCE, READ, WRITE, _index_to_label
from repro.litmus.ast import Program
from repro.relations import Relation, relation_from_order
from repro.executions.candidate import CandidateExecution
from repro.executions.thread_sem import (
    ProtoEvent,
    ThreadTrace,
    enumerate_thread_traces,
    possible_value_sets,
)


def candidate_executions(
    program: Program,
    require_sc_per_location: bool = False,
) -> Iterator[CandidateExecution]:
    """Yield every candidate execution of ``program``.

    When ``require_sc_per_location`` is true, executions violating
    ``acyclic(po-loc | com)`` are filtered out during enumeration.  All the
    models shipped with this package include that axiom, so the filter
    never changes a verdict but dramatically shrinks the search space for
    the larger programs (e.g. the inlined RCU implementation of Section 6).
    """
    value_sets = possible_value_sets(program)
    per_thread: List[List[ThreadTrace]] = [
        enumerate_thread_traces(thread, value_sets) for thread in program.threads
    ]
    locations = program.locations()

    for traces in itertools.product(*per_thread):
        yield from _executions_of_traces(
            program, locations, traces, require_sc_per_location
        )


def count_candidate_executions(program: Program, **kwargs) -> int:
    """The number of candidate executions (mostly for tests and reports)."""
    return sum(1 for _ in candidate_executions(program, **kwargs))


def _executions_of_traces(
    program: Program,
    locations: List[str],
    traces: Tuple[ThreadTrace, ...],
    require_sc_per_location: bool,
) -> Iterator[CandidateExecution]:
    events: List[Event] = []
    eid = 0
    label_counter = 0

    # Implicit initialising writes, one per location.
    init_writes: Dict[str, Event] = {}
    for po_index, location in enumerate(locations):
        event = Event(
            eid=eid,
            tid=INIT_TID,
            po_index=po_index,
            kind=WRITE,
            tag=ONCE,
            loc=location,
            value=program.initial_value(location),
            label=f"i{location}",
        )
        init_writes[location] = event
        events.append(event)
        eid += 1

    # Thread events, with trace-local indices mapped to global events.
    po_pairs: List[Tuple[Event, Event]] = []
    addr_pairs: List[Tuple[Event, Event]] = []
    data_pairs: List[Tuple[Event, Event]] = []
    ctrl_pairs: List[Tuple[Event, Event]] = []
    rmw_pairs: List[Tuple[Event, Event]] = []
    final_regs: Dict[Tuple[int, str], object] = {}

    for tid, trace in enumerate(traces):
        local: List[Event] = []
        for po_index, proto in enumerate(trace.events):
            label = ""
            if proto.kind != FENCE:
                label = _index_to_label(label_counter)
                label_counter += 1
            event = Event(
                eid=eid,
                tid=tid,
                po_index=po_index,
                kind=proto.kind,
                tag=proto.tag,
                loc=proto.loc,
                value=proto.value,
                label=label,
            )
            eid += 1
            local.append(event)
            events.append(event)
        for i, a in enumerate(local):
            for b in local[i + 1:]:
                po_pairs.append((a, b))
        for index, proto in enumerate(trace.events):
            target = local[index]
            for read_index in proto.addr_deps:
                addr_pairs.append((local[read_index], target))
            for read_index in proto.data_deps:
                data_pairs.append((local[read_index], target))
            for read_index in proto.ctrl_deps:
                ctrl_pairs.append((local[read_index], target))
        for read_index, write_index in trace.rmw_pairs:
            rmw_pairs.append((local[read_index], local[write_index]))
        for reg, value in trace.final_regs.items():
            final_regs[(tid, reg)] = value

    universe = frozenset(events)
    po = Relation(po_pairs, universe)
    addr = Relation(addr_pairs, universe)
    data = Relation(data_pairs, universe)
    ctrl = Relation(ctrl_pairs, universe)
    rmw = Relation(rmw_pairs, universe)

    # Reads-from candidates.
    reads = [e for e in events if e.kind == READ]
    writes_by_loc: Dict[str, List[Event]] = {}
    for event in events:
        if event.kind == WRITE:
            writes_by_loc.setdefault(event.loc, []).append(event)

    rf_candidates: List[List[Event]] = []
    for read in reads:
        sources = [
            w
            for w in writes_by_loc.get(read.loc, [])
            if w.value == read.value and w is not read
        ]
        if not sources:
            return  # this trace combination chose an unwritable value
        rf_candidates.append(sources)

    # Coherence candidates: per location, init write first, then any
    # permutation of the remaining writes.
    co_orders_per_loc: List[List[List[Event]]] = []
    for location in locations:
        non_init = [
            w for w in writes_by_loc.get(location, []) if not w.is_init
        ]
        init = init_writes[location]
        orders = [
            [init] + list(perm) for perm in itertools.permutations(non_init)
        ]
        co_orders_per_loc.append(orders)

    for rf_choice in itertools.product(*rf_candidates):
        rf = Relation(zip(rf_choice, reads), universe)
        for co_combo in itertools.product(*co_orders_per_loc):
            co_pairs: List[Tuple[Event, Event]] = []
            for order in co_combo:
                co_pairs.extend(relation_from_order(order, universe).pairs)
            co = Relation(co_pairs, universe)
            execution = CandidateExecution(
                events, po, addr, data, ctrl, rmw, rf, co,
                final_regs=final_regs, name=program.name,
            )
            if require_sc_per_location and not (
                execution.po_loc | execution.com
            ).is_acyclic():
                continue
            yield execution
