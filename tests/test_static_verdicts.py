"""The symbolic prover's contract, frozen and cross-checked.

``tests/data/static_verdicts.json`` freezes what the critical-cycle
prover decides for the whole litmus library under the four golden
models (regenerated only by ``benchmarks/regen_static_verdicts.py``).
This suite holds the three guarantees the ISSUE demands:

* **soundness** — a statically decided cell NEVER contradicts the
  kernel: every ``Decided-*`` cell must equal the enumerated verdict in
  ``tests/data/verdicts_golden.json``, and over the 500-test golden
  corpus every decision must match the locked sweep rows, under both
  relation backends;
* **coverage** — at least 40% of the library is decided under LKMM,
  Forbid proofs enumerate zero candidates, and the drivers surface the
  ``static.decided`` counter;
* **stability** — the decided/unknown map itself must not drift
  silently (a matcher regression that loses proofs fails here with the
  exact cells named).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.symbolic import decide, static_verdict
from repro.cat import load_model
from repro.corpus.golden import load_golden
from repro.corpus.sweep import CORPUS_MODELS, NOT_APPLICABLE, _model
from repro.hardware import CompileError, compile_program, get_arch
from repro.kernel import config as kconfig
from repro.litmus import library
from repro.obs import core as obs

DATA = Path(__file__).parent / "data"
SNAPSHOT_PATH = DATA / "static_verdicts.json"
GOLDEN_PATH = DATA / "verdicts_golden.json"
CORPUS_PATH = DATA / "golden_corpus.jsonl"

REGEN_HINT = (
    "static-verdict snapshot drifted; if the change is intentional, rerun "
    "`PYTHONPATH=src python benchmarks/regen_static_verdicts.py` and "
    "review the diff"
)

BACKENDS = (kconfig.BITSET, kconfig.FROZENSET)


@pytest.fixture(scope="module")
def snapshot():
    return json.loads(SNAPSHOT_PATH.read_text())


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


def _models(snapshot):
    return [load_model(name) for name in snapshot["models"]]


def test_snapshot_covers_whole_library(snapshot):
    assert set(snapshot["static"]) == set(library.all_names()), REGEN_HINT


def test_decided_cells_match_enumerated_golden(snapshot, golden):
    """Soundness over the library: a static proof never contradicts the
    enumerated verdict the golden snapshot froze."""
    contradictions = []
    for test_name, row in snapshot["static"].items():
        for model_name, cell in row.items():
            if cell == "Unknown":
                continue
            static = cell.removeprefix("Decided-")
            enumerated = golden["verdicts"][test_name][model_name]
            if static != enumerated:
                contradictions.append(
                    f"{test_name}/{model_name}: static {static} "
                    f"vs enumerated {enumerated}"
                )
    assert contradictions == [], contradictions


@pytest.mark.parametrize("backend", BACKENDS)
def test_library_decisions_are_stable(snapshot, backend):
    """Drift guard, under both relation backends: the prover reproduces
    the frozen decided/unknown map cell for cell."""
    models = _models(snapshot)
    rsl = snapshot["require_sc_per_location"]
    drifted = []
    with kconfig.use_backend(backend):
        for test_name in sorted(snapshot["static"]):
            program = library.get(test_name)
            for model in models:
                decision = decide(
                    model, program, require_sc_per_location=rsl
                )
                cell = (
                    "Unknown"
                    if decision is None
                    else f"Decided-{decision.verdict}"
                )
                if cell != snapshot["static"][test_name][model.name]:
                    drifted.append(
                        f"{test_name}/{model.name} [{backend}]: "
                        f"{snapshot['static'][test_name][model.name]} "
                        f"-> {cell}"
                    )
    assert drifted == [], f"{drifted[:10]} {REGEN_HINT}"


def test_lkmm_coverage_floor(snapshot):
    """At least 40% of the library must stay statically decided under
    LKMM — the headline number of the ISSUE."""
    cells = [row["LKMM"] for row in snapshot["static"].values()]
    decided = sum(1 for cell in cells if cell != "Unknown")
    assert decided / len(cells) >= 0.40, f"{decided}/{len(cells)} decided"


def test_forbid_proofs_enumerate_nothing(snapshot):
    """A static Forbid is pure proof: deciding it must not enumerate a
    single candidate execution."""
    models = {model.name: model for model in _models(snapshot)}
    rsl = snapshot["require_sc_per_location"]
    checked = 0
    with obs.collect() as collector:
        for test_name, row in snapshot["static"].items():
            program = library.get(test_name)
            for model_name, cell in row.items():
                if cell != "Decided-Forbid":
                    continue
                decision = decide(
                    models[model_name],
                    program,
                    require_sc_per_location=rsl,
                )
                assert decision is not None and decision.verdict == "Forbid"
                checked += 1
    assert checked > 0
    assert collector.counters.get("enumerate.candidates", 0) == 0
    assert collector.counters.get("enumerate.trace_combos", 0) == 0


def test_static_counters_surface(snapshot):
    """The drivers' profile counters: decided and fallback both tick."""
    model = load_model("lkmm")
    with obs.collect() as collector:
        assert static_verdict(model, library.get("MP+wmb+rmb")) == "Forbid"
        assert static_verdict(model, library.get("LB+ctrl+mb")) is None
    assert collector.counters.get("static.decided") == 1
    assert collector.counters.get("static.fallback") == 1


def _corpus_cells():
    for test, locked in load_golden(CORPUS_PATH):
        for spec in CORPUS_MODELS:
            expected = locked[spec.name]
            if expected == NOT_APPLICABLE:
                continue
            program = test.program
            if spec.arch is not None:
                try:
                    program = compile_program(
                        program, get_arch(spec.arch), rcu="error"
                    )
                except CompileError:
                    continue
            yield test.name, spec, program, expected


@pytest.mark.parametrize("backend", BACKENDS)
def test_corpus_decisions_match_locked_rows(backend):
    """Soundness over the golden stress corpus: 500 generated tests,
    the full 6-model battery, both relation backends — a static decision
    must equal the locked enumerated verdict every single time."""
    contradictions = []
    with kconfig.use_backend(backend):
        for name, spec, program, expected in _corpus_cells():
            decision = decide(
                _model(spec.key), program, require_sc_per_location=True
            )
            if decision is not None and decision.verdict != expected:
                contradictions.append(
                    f"{name}/{spec.name} [{backend}]: static "
                    f"{decision.verdict} ({decision.reason}) "
                    f"vs locked {expected}"
                )
    assert contradictions == [], contradictions[:10]
