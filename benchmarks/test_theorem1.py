"""E13 — Theorem 1: the RCU axiom is equivalent to the fundamental law.

The paper proves the equivalence on paper; we *decide* both sides on
every candidate execution of (a) the RCU corpus and (b) a sweep of
diy-generated RCU cycles, and check they always agree.
"""

from __future__ import annotations

import pytest

from repro.diy import generate_cycles
from repro.litmus import library
from repro.rcu.theorems import Theorem1Summary, check_theorem1_on_program

from conftest import once

RCU_CORPUS = [
    "RCU-MP",
    "RCU-deferred-free",
    "RCU-MP+nested",
    "RCU-1GP-2RSCS",
    "RCU-2GP-2RSCS",
    "SB+mb+sync",
    # Non-RCU tests degenerate to the Pb axiom — the equivalence must
    # hold there too.
    "MP+wmb+rmb",
    "SB+mbs",
    "PeterZ",
]

#: Edge vocabulary mixing grace periods with fences and dependencies.
SYNC_VOCAB = ["Rfe", "Fre", "SyncdRR", "SyncdWW", "SyncdWR", "MbdRR", "PodWW"]


def test_theorem1_on_corpus(benchmark):
    def experiment():
        summary = Theorem1Summary()
        for name in RCU_CORPUS:
            check_theorem1_on_program(library.get(name), summary)
        return summary

    summary = once(benchmark, experiment)
    print(f"\n{summary.describe()}")
    assert summary.holds
    assert summary.executions >= 50


def test_theorem1_on_generated_cycles(benchmark):
    def experiment():
        summary = Theorem1Summary()
        for length in (4, 5):
            for program in generate_cycles(SYNC_VOCAB, length, max_tests=60):
                check_theorem1_on_program(program, summary)
        return summary

    summary = once(benchmark, experiment)
    print(f"\n{summary.describe()} (diy-generated)")
    assert summary.holds
    assert summary.executions >= 100
