"""Runtime configuration of the execution kernel.

Two independent switches, each settable via environment variable (read at
import time) or programmatically (context managers, used by the
equivalence tests and the benchmark harness):

* ``REPRO_RELATION_BACKEND`` — ``bitset`` (default) selects the
  integer-indexed adjacency-bitset representation of
  :class:`repro.relations.Relation`; ``frozenset`` selects the original
  pure-Python frozenset-of-pairs reference implementation.
* ``REPRO_INCREMENTAL`` — ``1`` (default) enables per-trace incremental
  checking: the trace-invariant structure of a candidate execution is
  computed once per trace combination and shared across all rf×co
  candidates, and coherence-order permutations are pruned incrementally
  against ``acyclic(po-loc | com)`` while they are extended.  ``0``
  restores the original behaviour (everything recomputed per candidate,
  complete candidates filtered after construction).

Both switches are observational no-ops: verdicts, witness counts and
final-state sets are identical under every combination (see
``tests/test_kernel_equiv.py``).
"""

from __future__ import annotations

import os
from contextlib import contextmanager

BITSET = "bitset"
FROZENSET = "frozenset"

_BACKENDS = (BITSET, FROZENSET)

_backend = os.environ.get("REPRO_RELATION_BACKEND", BITSET).strip().lower()
if _backend not in _BACKENDS:
    raise ValueError(
        f"REPRO_RELATION_BACKEND={_backend!r}: expected one of {_BACKENDS}"
    )

_incremental = os.environ.get("REPRO_INCREMENTAL", "1").strip() not in (
    "0",
    "false",
    "no",
    "off",
)


def backend() -> str:
    """The active relation backend name (``bitset`` or ``frozenset``)."""
    return _backend


def use_bitset() -> bool:
    return _backend == BITSET


def set_backend(name: str) -> None:
    global _backend
    if name not in _BACKENDS:
        raise ValueError(f"unknown backend {name!r}: expected one of {_BACKENDS}")
    _backend = name


def incremental_enabled() -> bool:
    return _incremental


def set_incremental(enabled: bool) -> None:
    global _incremental
    _incremental = bool(enabled)


@contextmanager
def use_backend(name: str):
    """Temporarily select a relation backend (for tests and benchmarks)."""
    previous = _backend
    set_backend(name)
    try:
        yield
    finally:
        set_backend(previous)


@contextmanager
def use_incremental(enabled: bool):
    """Temporarily enable/disable incremental checking."""
    previous = _incremental
    set_incremental(enabled)
    try:
        yield
    finally:
        set_incremental(previous)
