"""The static program skeleton: events that exist in *every* execution.

The symbolic prover (:mod:`repro.analysis.symbolic.prover`) reasons about
facts that hold across all candidate executions of a litmus test.  Its
foundation is the *skeleton*: one event list per thread whose structure —
kinds, locations, tags, fences, syntactic dependencies — is identical in
every trace the per-thread semantics (:mod:`repro.executions.thread_sem`)
can produce.  That is exactly the straight-line fragment: ``Load`` /
``Store`` / ``Fence`` / ``LocalAssign``, plus conditionals whose condition
folds to a compile-time constant (the diy generator's control-dependency
idiom, ``if ((r & 0) == 0) { ... }``) — those follow the same arm in every
trace, so splicing the taken arm in preserves the trace structure
verbatim, including herd's rule that a control dependency extends to every
event after the branch.

Anything that makes the *structure* trace-dependent — RMWs (a failed
``cmpxchg`` emits fewer events), ``Assume`` filters, branches on loaded
values, register-dependent addresses — raises :class:`Unsupported`, and
the prover falls back to full enumeration.  Values are tracked
symbolically: a constant where derivable (mirroring the identities of
:func:`repro.analysis.flow.analyses.fold_expr`, which hold in every
trace: ``x ^ x = 0``, ``x & 0 = 0``, ``x == x = 1``, ...), the
:data:`UNKNOWN` sentinel otherwise.  Taints stay *syntactic* exactly as
thread_sem computes them: ``r ^ r`` folds to 0 but still carries ``r``'s
read in its dependency set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.events import FENCE, Pointer, READ, Value, WRITE
from repro.litmus.ast import (
    BinOp,
    Const,
    Expr,
    Fence,
    If,
    Instruction,
    LitmusError,
    Load,
    LocalAssign,
    Program,
    Reg,
    Store,
    UnOp,
)


class Unsupported(Exception):
    """The program is outside the statically analysable fragment."""


class _Unknown:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "UNKNOWN"


#: Sentinel for "varies across traces" (distinct from any litmus value).
UNKNOWN = _Unknown()


@dataclass(frozen=True)
class SkelEvent:
    """One event of the skeleton, mirroring a trace's ``ProtoEvent`` but
    with symbolic values.  ``index`` is the event's position within its
    thread — identical to the trace-local index thread_sem assigns, so
    the dependency sets line up with real traces pair for pair."""

    tid: int
    index: int
    kind: str
    tag: str
    loc: Optional[str] = None
    value: object = None  # writes: constant or UNKNOWN
    addr_deps: FrozenSet[int] = frozenset()
    data_deps: FrozenSet[int] = frozenset()
    ctrl_deps: FrozenSet[int] = frozenset()

    @property
    def key(self) -> Tuple[int, int]:
        return (self.tid, self.index)

    def describe(self) -> str:
        body = self.loc if self.loc is not None else self.tag
        return f"P{self.tid}:{self.index}:{self.kind}{body or ''}"


#: A register's origin: ("const", value) when its final value is the same
#: compile-time constant in every trace, ("read", index) when it is
#: exactly the value returned by the thread's read at ``index``,
#: ("opaque", None) otherwise.
RegOrigin = Tuple[str, object]


@dataclass
class ThreadSkeleton:
    events: Tuple[SkelEvent, ...]
    #: Final register origins at thread exit.
    final_regs: Dict[str, RegOrigin]


@dataclass
class ProgramSkeleton:
    program: Program
    threads: Tuple[ThreadSkeleton, ...]

    def event(self, key: Tuple[int, int]) -> SkelEvent:
        tid, index = key
        return self.threads[tid].events[index]

    def accesses(self) -> List[SkelEvent]:
        return [
            event
            for thread in self.threads
            for event in thread.events
            if event.kind in (READ, WRITE)
        ]

    def writes_to(self, loc: str) -> List[SkelEvent]:
        return [
            event
            for thread in self.threads
            for event in thread.events
            if event.kind == WRITE and event.loc == loc
        ]

    def fences_between(self, a: SkelEvent, b: SkelEvent) -> List[SkelEvent]:
        """Fence events po-between two same-thread events."""
        if a.tid != b.tid:
            return []
        lo, hi = min(a.index, b.index), max(a.index, b.index)
        return [
            event
            for event in self.threads[a.tid].events[lo + 1:hi]
            if event.kind == FENCE
        ]


_SymValue = object  # a litmus Value, or UNKNOWN
_SymEnv = Dict[str, Tuple[_SymValue, FrozenSet[int], Optional[int]]]


def _eval_sym(expr: Expr, env: _SymEnv) -> Tuple[_SymValue, FrozenSet[int]]:
    """Symbolic mirror of ``thread_sem._eval``: the value every trace
    computes (or UNKNOWN), with the *syntactic* read taints every trace
    carries.  The identities follow fold_expr and are facts about all
    traces: whatever value ``x`` takes, ``x ^ x`` is 0."""
    if isinstance(expr, Const):
        return expr.value, frozenset()
    if isinstance(expr, Reg):
        value, taints, _ = env.get(expr.name, (0, frozenset(), None))
        return value, taints
    if isinstance(expr, UnOp):
        value, taints = _eval_sym(expr.operand, env)
        if value is UNKNOWN:
            return UNKNOWN, taints
        try:
            return expr.apply(value), taints
        except LitmusError:
            raise Unsupported(f"unevaluable expression {expr!r}")
    if isinstance(expr, BinOp):
        lhs, ltaints = _eval_sym(expr.lhs, env)
        rhs, rtaints = _eval_sym(expr.rhs, env)
        taints = ltaints | rtaints
        if lhs is not UNKNOWN and rhs is not UNKNOWN:
            try:
                return expr.apply(lhs, rhs), taints
            except LitmusError:
                raise Unsupported(f"unevaluable expression {expr!r}")
        if expr.lhs == expr.rhs:
            if expr.op in ("^", "-"):
                return 0, taints
            if expr.op in ("==", "<=", ">="):
                return 1, taints
            if expr.op in ("!=", "<", ">"):
                return 0, taints
        if expr.op in ("*", "&") and (lhs == 0 or rhs == 0):
            return 0, taints
        if expr.op == "&&" and (lhs == 0 or rhs == 0):
            return 0, taints
        if expr.op == "||" and (
            (lhs is not UNKNOWN and lhs != 0)
            or (rhs is not UNKNOWN and rhs != 0)
        ):
            return 1, taints
        return UNKNOWN, taints
    raise Unsupported(f"unknown expression {expr!r}")


def _static_loc(expr: Expr, env: _SymEnv) -> Tuple[str, FrozenSet[int]]:
    value, taints = _eval_sym(expr, env)
    if isinstance(value, Pointer):
        return value.loc, taints
    raise Unsupported(f"address {expr!r} is not a static pointer")


def _extract_thread(tid: int, body: Tuple[Instruction, ...]) -> ThreadSkeleton:
    events: List[SkelEvent] = []
    env: _SymEnv = {}
    ctrl: FrozenSet[int] = frozenset()

    def run(instructions) -> None:
        nonlocal ctrl
        for ins in instructions:
            if isinstance(ins, LocalAssign):
                value, taints = _eval_sym(ins.expr, env)
                source = None
                if isinstance(ins.expr, Reg):
                    source = env.get(
                        ins.expr.name, (0, frozenset(), None)
                    )[2]
                env[ins.reg] = (value, taints, source)
            elif isinstance(ins, Fence):
                events.append(
                    SkelEvent(tid, len(events), FENCE, ins.tag,
                              ctrl_deps=ctrl)
                )
            elif isinstance(ins, Store):
                loc, addr_deps = _static_loc(ins.addr, env)
                value, data_deps = _eval_sym(ins.value, env)
                events.append(
                    SkelEvent(tid, len(events), WRITE, ins.tag, loc,
                              UNKNOWN if value is UNKNOWN else value,
                              addr_deps, data_deps, ctrl)
                )
            elif isinstance(ins, Load):
                loc, addr_deps = _static_loc(ins.addr, env)
                read_index = len(events)
                events.append(
                    SkelEvent(tid, read_index, READ, ins.tag, loc,
                              addr_deps=addr_deps, ctrl_deps=ctrl)
                )
                if ins.rb_dep:
                    events.append(
                        SkelEvent(tid, len(events), FENCE, "rb-dep",
                                  ctrl_deps=ctrl)
                    )
                env[ins.reg] = (
                    UNKNOWN, frozenset({read_index}), read_index
                )
            elif isinstance(ins, If):
                value, taints = _eval_sym(ins.cond, env)
                if value is UNKNOWN:
                    raise Unsupported(
                        "branch on a value that varies across traces"
                    )
                taken = True if isinstance(value, Pointer) else bool(value)
                ctrl = ctrl | taints
                run(ins.then if taken else ins.orelse)
            else:
                raise Unsupported(f"unsupported instruction {ins!r}")

    run(body)
    final: Dict[str, RegOrigin] = {}
    for reg, (value, _, source) in env.items():
        if value is not UNKNOWN:
            final[reg] = ("const", value)
        elif source is not None:
            final[reg] = ("read", source)
        else:
            final[reg] = ("opaque", None)
    return ThreadSkeleton(tuple(events), final)


def extract_skeleton(program: Program) -> ProgramSkeleton:
    """The program's skeleton, or :class:`Unsupported`."""
    return ProgramSkeleton(
        program,
        tuple(
            _extract_thread(tid, tuple(thread.body))
            for tid, thread in enumerate(program.threads)
        ),
    )
