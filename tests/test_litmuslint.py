"""Tests for the litmus-test linter."""

import pytest

from repro.analysis.litmuslint import lint_library, lint_program
from repro.litmus import library
from repro.litmus.parser import parse_litmus


def categories(findings):
    return [f.category for f in findings]


def lint_text(text):
    return lint_program(parse_litmus(text))


class TestLibraryIsClean:
    def test_whole_library_has_no_errors(self):
        reports = lint_library()
        dirty = {
            name: [f.describe() for f in findings]
            for name, findings in reports.items()
            if any(f.is_error for f in findings)
        }
        assert dirty == {}
        assert len(reports) == len(library.all_names())

    def test_only_intended_warnings(self):
        # The lock hand-off test intentionally unlocks a lock another
        # thread took (and leaves it held on P1) — warnings, not errors.
        warnings = {
            (name, f.category)
            for name, findings in lint_library().items()
            for f in findings
        }
        assert warnings == {
            ("MP+unlock-acq", "unlock-without-lock"),
            ("MP+unlock-acq", "lock-held-at-exit"),
        }


class TestUninitializedRead:
    def test_read_of_never_written_location(self):
        findings = lint_text(
            "C t\n{ y=0; }\n"
            "P0(int *x, int *y) { int r0 = READ_ONCE(*x); "
            "WRITE_ONCE(*y, 1); }\n"
            "P1(int *y) { int r1 = READ_ONCE(*y); }\n"
            "exists (0:r0=0 /\\ 1:r1=1)\n"
        )
        assert "uninitialized-read" in categories(findings)
        assert "'x'" in [f for f in findings
                         if f.category == "uninitialized-read"][0].message

    def test_initialised_location_is_fine(self):
        findings = lint_text(
            "C t\n{ x=0; }\n"
            "P0(int *x) { WRITE_ONCE(*x, 1); }\n"
            "P1(int *x) { int r0 = READ_ONCE(*x); }\n"
            "exists (1:r0=1)\n"
        )
        assert findings == []

    def test_written_but_uninitialised_location_is_fine(self):
        # herd defaults it to 0 but a write exists, so the test is not
        # vacuous.
        findings = lint_text(
            "C t\n{ }\n"
            "P0(int *x) { WRITE_ONCE(*x, 1); }\n"
            "P1(int *x) { int r0 = READ_ONCE(*x); }\n"
            "exists (1:r0=1)\n"
        )
        assert "uninitialized-read" not in categories(findings)


class TestDeadStore:
    def test_dead_local_assign(self):
        findings = lint_text(
            "C t\n{ x=0; }\n"
            "P0(int *x) { int r0 = 7; WRITE_ONCE(*x, 1); }\n"
            "P1(int *x) { int r1 = READ_ONCE(*x); }\n"
            "exists (1:r1=1)\n"
        )
        assert "dead-store" in categories(findings)

    def test_overwritten_assign_is_dead(self):
        # The liveness-based check sees through reassignment, which the
        # old "never used at all" heuristic could not.
        findings = lint_text(
            "C t\n{ x=0; }\n"
            "P0(int *x) { int r0 = 7; r0 = 8; WRITE_ONCE(*x, r0); }\n"
            "P1(int *x) { int r1 = READ_ONCE(*x); }\n"
            "exists (1:r1=8)\n"
        )
        assert categories(findings).count("dead-store") == 1

    def test_load_destination_is_exempt(self):
        # The read *event* matters even when the value is ignored
        # (e.g. SB+xchgs ignores the fetched value).
        findings = lint_text(
            "C t\n{ x=0; }\n"
            "P0(int *x) { WRITE_ONCE(*x, 1); }\n"
            "P1(int *x) { int r0 = READ_ONCE(*x); }\n"
            "forall (x=1)\n"
        )
        assert "dead-store" not in categories(findings)

    def test_condition_use_counts(self):
        findings = lint_text(
            "C t\n{ x=0; }\n"
            "P0(int *x) { int r0 = 1; WRITE_ONCE(*x, r0); }\n"
            "P1(int *x) { int r1 = READ_ONCE(*x); }\n"
            "exists (1:r1=1)\n"
        )
        assert "dead-store" not in categories(findings)


class TestConditionChecks:
    def test_unknown_register(self):
        findings = lint_text(
            "C t\n{ x=0; }\n"
            "P0(int *x) { WRITE_ONCE(*x, 1); }\n"
            "P1(int *x) { int r0 = READ_ONCE(*x); }\n"
            "exists (1:r9=1)\n"
        )
        assert "condition-unknown-register" in categories(findings)

    def test_unknown_thread(self):
        findings = lint_text(
            "C t\n{ x=0; }\n"
            "P0(int *x) { WRITE_ONCE(*x, 1); }\n"
            "P1(int *x) { int r0 = READ_ONCE(*x); }\n"
            "exists (5:r0=1)\n"
        )
        assert "condition-unknown-thread" in categories(findings)

    def test_unknown_location(self):
        findings = lint_text(
            "C t\n{ x=0; }\n"
            "P0(int *x) { WRITE_ONCE(*x, 1); }\n"
            "P1(int *x) { int r0 = READ_ONCE(*x); }\n"
            "exists (1:r0=1 /\\ z=0)\n"
        )
        assert "condition-unknown-location" in categories(findings)


class TestPlainRaceHeuristic:
    def test_plain_conflict_flagged(self):
        findings = lint_text(
            "C t\n{ x=0; }\n"
            "P0(int *x) { *x = 1; }\n"
            "P1(int *x) { int r0 = *x; }\n"
            "exists (1:r0=1)\n"
        )
        assert "plain-race" in categories(findings)

    def test_marked_accesses_not_flagged(self):
        assert lint_program(library.get("MP")) == []

    def test_single_thread_plain_not_flagged(self):
        findings = lint_text(
            "C t\n{ x=0; y=0; }\n"
            "P0(int *x, int *y) { *x = 1; int r0 = *x; "
            "WRITE_ONCE(*y, r0); }\n"
            "P1(int *y) { int r1 = READ_ONCE(*y); }\n"
            "exists (1:r1=1)\n"
        )
        assert "plain-race" not in categories(findings)


class TestDanglingFence:
    def test_fence_at_end_of_thread(self):
        findings = lint_text(
            "C t\n{ x=0; }\n"
            "P0(int *x) { WRITE_ONCE(*x, 1); smp_wmb(); }\n"
            "P1(int *x) { int r0 = READ_ONCE(*x); }\n"
            "exists (1:r0=1)\n"
        )
        assert "dangling-fence" in categories(findings)

    def test_fence_between_accesses_is_fine(self):
        assert lint_program(library.get("MP+wmb+rmb")) == []

    def test_rcu_markers_exempt(self):
        # rcu_read_lock() legitimately opens a thread body.
        assert lint_program(library.get("RCU-MP")) == []
