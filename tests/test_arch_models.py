"""Tests for the axiomatic architecture models against Table 5's shape."""

import pytest

from repro.cat import load_model
from repro.hardware import compile_program, get_arch
from repro.herd import run_litmus
from repro.litmus import library


def arch_verdict(name, arch_name):
    arch = get_arch(arch_name)
    compiled = compile_program(library.get(name), arch, rcu="error")
    return run_litmus(load_model(arch.cat_model), compiled).verdict


#: Expected verdicts implied by Table 5: a non-zero observation count
#: means the architecture must Allow; fenced rows must Forbid everywhere.
TABLE5_ARCH_EXPECTATIONS = {
    "LB": {"Power8": "Allow", "ARMv8": "Allow", "ARMv7": "Allow", "x86": "Forbid"},
    "LB+ctrl+mb": {a: "Forbid" for a in ("Power8", "ARMv8", "ARMv7", "x86")},
    "WRC": {"Power8": "Allow", "ARMv8": "Allow", "ARMv7": "Allow", "x86": "Forbid"},
    "WRC+po-rel+rmb": {a: "Forbid" for a in ("Power8", "ARMv8", "ARMv7", "x86")},
    "SB": {a: "Allow" for a in ("Power8", "ARMv8", "ARMv7", "x86")},
    "SB+mbs": {a: "Forbid" for a in ("Power8", "ARMv8", "ARMv7", "x86")},
    "MP": {"Power8": "Allow", "ARMv8": "Allow", "ARMv7": "Allow", "x86": "Forbid"},
    "MP+wmb+rmb": {a: "Forbid" for a in ("Power8", "ARMv8", "ARMv7", "x86")},
    "PeterZ-No-Synchro": {a: "Allow" for a in ("Power8", "ARMv8", "ARMv7", "x86")},
    "PeterZ": {a: "Forbid" for a in ("Power8", "ARMv8", "ARMv7", "x86")},
    "RWC": {a: "Allow" for a in ("Power8", "ARMv8", "ARMv7", "x86")},
    "RWC+mbs": {a: "Forbid" for a in ("Power8", "ARMv8", "ARMv7", "x86")},
}


class TestTable5Shape:
    @pytest.mark.parametrize("test_name", sorted(TABLE5_ARCH_EXPECTATIONS))
    def test_row(self, test_name):
        for arch_name, expected in TABLE5_ARCH_EXPECTATIONS[test_name].items():
            assert arch_verdict(test_name, arch_name) == expected, (
                f"{test_name} on {arch_name}"
            )


class TestArchCharacter:
    def test_tso_preserves_everything_but_wr(self):
        # On x86 only store buffering is visible.
        assert arch_verdict("SB", "x86") == "Allow"
        assert arch_verdict("MP", "x86") == "Forbid"
        assert arch_verdict("LB", "x86") == "Forbid"
        assert arch_verdict("2+2W", "x86") == "Forbid"

    def test_power_respects_dependencies(self):
        assert arch_verdict("LB+datas", "Power8") == "Forbid"
        # Address dependencies order reads on Power — unlike Alpha.
        assert arch_verdict("MP+wmb+addr", "Power8") == "Forbid"

    def test_alpha_breaks_address_dependencies(self):
        # The famous one: dependent loads may be reordered (Section 3.2.2).
        assert arch_verdict("MP+wmb+addr", "Alpha") == "Allow"
        # smp_read_barrier_depends (mb on Alpha) restores the ordering.
        assert arch_verdict("MP+wmb+addr-rbdep", "Alpha") == "Forbid"

    def test_alpha_respects_dependencies_to_writes(self):
        assert arch_verdict("LB+datas", "Alpha") == "Forbid"

    def test_armv8_release_acquire(self):
        assert arch_verdict("MP+po-rel+acq", "ARMv8") == "Forbid"

    def test_lwsync_is_not_a_full_fence(self):
        # Power: wmb (lwsync) both sides does not forbid SB.
        from repro.litmus import dsl

        program = dsl.program(
            "SB+wmbs-ish",
            dsl.thread(
                dsl.write_once("x", 1), dsl.smp_wmb(), dsl.read_once("r0", "y")
            ),
            dsl.thread(
                dsl.write_once("y", 1), dsl.smp_wmb(), dsl.read_once("r0", "x")
            ),
            condition=dsl.exists_regs((0, "r0", 0), (1, "r0", 0)),
        )
        arch = get_arch("Power8")
        compiled = compile_program(program, arch)
        assert run_litmus(load_model("power"), compiled).verdict == "Allow"

    def test_sc_model_forbids_all_weakness(self):
        for name in ("SB", "MP", "LB", "WRC", "RWC", "2+2W"):
            assert arch_verdict(name, "SC") == "Forbid"

    def test_multicopy_atomicity_discriminator(self):
        # Plain IRIW is allowed everywhere weak (the readers may reorder
        # locally).  WRC with dependencies on both readers removes the
        # local reordering, leaving only write-propagation asymmetry:
        # Power (not multicopy atomic) still allows it, ARMv8 (MCA)
        # forbids it.
        from repro.diy import generate

        wrc_deps = generate(
            ["Rfe", "DpDatadW", "Rfe", "DpAddrdR", "Fre"], name="WRC+deps"
        )
        power = compile_program(wrc_deps, get_arch("Power8"), rcu="error")
        armv8 = compile_program(wrc_deps, get_arch("ARMv8"), rcu="error")
        assert run_litmus(load_model("power"), power).verdict == "Allow"
        assert run_litmus(load_model("armv8"), armv8).verdict == "Forbid"
        # Both architectures allow plain IRIW.
        assert arch_verdict("IRIW", "Power8") == "Allow"
        assert arch_verdict("IRIW", "ARMv8") == "Allow"

    def test_atomicity_everywhere(self):
        for arch in ("x86", "Power8", "ARMv8", "ARMv7", "Alpha", "SC"):
            assert arch_verdict("At-inc", arch) == "Forbid"
