"""Systematic test families (Section 5's "systematic variations").

The paper validates the model with "systematic variations of several
tests with all combinations of fences or dependencies".  This module
generates those families: a *family* fixes a communication skeleton
(MP, SB, LB, WRC, R, 2+2W) and sweeps every combination of program-order
edges compatible with it.

It also defines the *strength order* on edges (a plain program-order edge
is weaker than a wmb is weaker than an mb is weaker than a grace period,
...), which yields the family-level sanity property checked by
``benchmarks/test_families.py``: **strengthening edges can only flip a
verdict from Allow to Forbid, never back** — the model is monotone in its
synchronisation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.diy.generator import CycleError, generate
from repro.litmus.ast import Program

#: Program-order edge choices per endpoint-kind signature.
RR_EDGES = ["PodRR", "RmbdRR", "DpAddrdR", "DpAddrRbDepdR", "AcqdR",
            "MbdRR", "SyncdRR"]
RW_EDGES = ["PodRW", "DpDatadW", "DpCtrldW", "AcqdW", "ReldW", "MbdRW",
            "SyncdRW"]
WR_EDGES = ["PodWR", "MbdWR", "SyncdWR"]
WW_EDGES = ["PodWW", "WmbdWW", "ReldW", "MbdWW", "SyncdWW"]

#: edge -> the strictly weaker edges of the same signature.  The order is
#: reflexive-transitively closed by ``weaker_or_equal``.
_WEAKER: Dict[str, Tuple[str, ...]] = {
    # RR: everything is stronger than plain po; rb-dep strengthens the
    # bare address dependency; mb subsumes rmb/acquire; a grace period
    # subsumes mb (strong-fence = mb | gp).
    "RmbdRR": ("PodRR",),
    "DpAddrdR": ("PodRR",),
    "DpAddrRbDepdR": ("DpAddrdR", "PodRR"),
    "AcqdR": ("PodRR",),
    "MbdRR": ("RmbdRR", "AcqdR", "PodRR"),
    "SyncdRR": ("MbdRR", "RmbdRR", "AcqdR", "PodRR"),
    # RW.
    "DpDatadW": ("PodRW",),
    "DpCtrldW": ("PodRW",),
    "AcqdW": ("PodRW",),
    "MbdRW": ("DpDatadW", "DpCtrldW", "AcqdW", "PodRW"),
    "SyncdRW": ("MbdRW", "DpDatadW", "DpCtrldW", "AcqdW", "PodRW"),
    # WR.
    "MbdWR": ("PodWR",),
    "SyncdWR": ("MbdWR", "PodWR"),
    # WW.
    "WmbdWW": ("PodWW",),
    "MbdWW": ("WmbdWW", "PodWW"),
    "SyncdWW": ("MbdWW", "WmbdWW", "PodWW"),
}
# ReldW is both an RW and a WW choice; a release-annotated write is
# stronger than plain po on either signature.
_WEAKER["ReldW"] = ("PodRW", "PodWW")
_WEAKER["MbdRW"] = _WEAKER["MbdRW"] + ("ReldW",)
_WEAKER["SyncdRW"] = _WEAKER["SyncdRW"] + ("ReldW",)
_WEAKER["MbdWW"] = _WEAKER["MbdWW"] + ("ReldW",)
_WEAKER["SyncdWW"] = _WEAKER["SyncdWW"] + ("ReldW",)


def weaker_or_equal(weak: str, strong: str) -> bool:
    """True iff ``weak`` is the same edge as ``strong`` or strictly weaker
    (reflexive-transitive closure of the strength table)."""
    if weak == strong:
        return True
    seen = set()
    frontier = [strong]
    while frontier:
        edge = frontier.pop()
        for weaker in _WEAKER.get(edge, ()):
            if weaker == weak:
                return True
            if weaker not in seen:
                seen.add(weaker)
                frontier.append(weaker)
    return False


@dataclass(frozen=True)
class FamilyMember:
    """One variation: the program plus the program-order edges chosen."""

    program: Program
    po_edges: Tuple[str, ...]


#: family name -> (communication skeleton with None slots, slot choices).
FAMILIES: Dict[str, Tuple[Tuple[object, ...], Tuple[List[str], ...]]] = {
    # MP: Rfe then a read-side edge; Fre then a write-side edge.
    "MP": (("Rfe", None, "Fre", None), (RR_EDGES, WW_EDGES)),
    # SB: two write-to-read sides.
    "SB": (("Fre", None, "Fre", None), (WR_EDGES, WR_EDGES)),
    # LB: two read-to-write sides.
    "LB": (("Rfe", None, "Rfe", None), (RW_EDGES, RW_EDGES)),
    # R: coherence against from-read.
    "R": (("Coe", None, "Fre", None), (WR_EDGES, WW_EDGES)),
    # 2+2W: two coherence edges.
    "2+2W": (("Coe", None, "Coe", None), (WW_EDGES, WW_EDGES)),
    # WRC: three threads; writer, forwarder (read-to-write), reader.
    "WRC": (("Rfe", None, "Rfe", None, "Fre"), (RW_EDGES, RR_EDGES)),
}


def family(name: str) -> Iterator[FamilyMember]:
    """Every realisable variation of the named family."""
    try:
        skeleton, slot_choices = FAMILIES[name]
    except KeyError:
        raise KeyError(
            f"unknown family {name!r}; known: {sorted(FAMILIES)}"
        ) from None
    slots = [i for i, edge in enumerate(skeleton) if edge is None]
    for combo in itertools.product(*slot_choices):
        edges = list(skeleton)
        for slot, choice in zip(slots, combo):
            edges[slot] = choice
        try:
            program = generate(
                [str(e) for e in edges],
                name=f"{name}+" + "+".join(combo),
            )
        except CycleError:
            continue
        yield FamilyMember(program, tuple(combo))


def check_monotonicity(
    verdicts: Dict[Tuple[str, ...], str]
) -> List[Tuple[Tuple[str, ...], Tuple[str, ...]]]:
    """Find monotonicity violations in a family's verdict map.

    Returns pairs (weaker variation, stronger variation) where the weaker
    one is Forbid but the stronger one is Allow — the model would be
    incoherent if any existed.
    """
    violations = []
    for weak_edges, weak_verdict in verdicts.items():
        if weak_verdict != "Forbid":
            continue
        for strong_edges, strong_verdict in verdicts.items():
            if strong_verdict != "Allow":
                continue
            if len(weak_edges) != len(strong_edges):
                continue
            if all(
                weaker_or_equal(w, s)
                for w, s in zip(weak_edges, strong_edges)
            ):
                violations.append((weak_edges, strong_edges))
    return violations
