"""Resource governance and fault tolerance for the verification stack.

``repro.guard`` is the seam that keeps long verification campaigns alive:

* :mod:`repro.guard.core` — :class:`Budget` (wall clock, candidate count,
  rf×co exploration steps, soft memory ceiling) plus cooperative
  cancellation, checked at cheap safepoints inside the enumerator, the
  bytecode VM and the cat evaluator.  On exhaustion the run stops cleanly
  with an :class:`Interruption` provenance record instead of hanging.
* :mod:`repro.guard.faults` — deterministic, seeded fault injection
  (``REPRO_FAULT=crash:0.05,hang:0.01,slow:0.1,seed=8``) applied at
  worker-task granularity so the recovery machinery is exercised in CI.
* :mod:`repro.guard.journal` — an append-only JSONL checkpoint of
  completed (test × models) verdict rows, so an interrupted library sweep
  resumes instead of restarting.

The fault-tolerant pool driver itself lives in
:mod:`repro.kernel.parallel` (it owns the pools); it surfaces its
recovery activity through the ``guard.*`` observability counters.
"""

from repro.guard.core import (
    Budget,
    BudgetExceeded,
    Cancelled,
    CancelToken,
    Guard,
    GuardStop,
    Interruption,
    current,
    guard,
)
from repro.guard.faults import FaultSpec, maybe_inject, parse_fault_spec
from repro.guard.journal import SweepJournal

__all__ = [
    "Budget",
    "BudgetExceeded",
    "Cancelled",
    "CancelToken",
    "FaultSpec",
    "Guard",
    "GuardStop",
    "Interruption",
    "SweepJournal",
    "current",
    "guard",
    "maybe_inject",
    "parse_fault_spec",
]
