#!/usr/bin/env python
"""Quickstart: is this outcome possible under the Linux-kernel model?

The paper's Figure 1 message-passing program: one thread publishes data
then sets a flag; another reads the flag then the data.  We ask the model
whether the reader can see the flag set but the data stale — first with
the fences, then without.
"""

from repro import LinuxKernelModel, explain_forbidden, parse_litmus, run_litmus

FENCED = """
C MP+wmb+rmb
{ x=0; y=0; }
P0(int *x, int *y)
{
    WRITE_ONCE(*x, 1);   // the data
    smp_wmb();
    WRITE_ONCE(*y, 1);   // the flag
}
P1(int *x, int *y)
{
    int r1 = READ_ONCE(*y);
    smp_rmb();
    int r2 = READ_ONCE(*x);
}
exists (1:r1=1 /\\ 1:r2=0)
"""

UNFENCED = """
C MP
{ x=0; y=0; }
P0(int *x, int *y)
{
    WRITE_ONCE(*x, 1);
    WRITE_ONCE(*y, 1);
}
P1(int *x, int *y)
{
    int r1 = READ_ONCE(*y);
    int r2 = READ_ONCE(*x);
}
exists (1:r1=1 /\\ 1:r2=0)
"""


def main() -> None:
    model = LinuxKernelModel()

    for source in (FENCED, UNFENCED):
        test = parse_litmus(source)
        result = run_litmus(model, test)
        print(f"{result.describe()}")
        print(f"  condition: {test.condition!r}")
        print(f"  reachable final states: {len(result.states)}")
        if result.verdict == "Forbid" and result.forbidden_witness:
            print("  why the witness is forbidden:")
            for line in explain_forbidden(result.forbidden_witness).splitlines():
                print(f"    {line}")
        print()

    print(
        "With smp_wmb/smp_rmb the stale read is Forbidden; without them "
        "it is Allowed\n(and the operational simulator will actually show "
        "it — see examples/hardware_counts.py)."
    )


if __name__ == "__main__":
    main()
