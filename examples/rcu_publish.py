#!/usr/bin/env python
"""RCU end to end: publication, grace periods, and the fundamental law.

Three scenarios:

1. **Pointer publication** — ``rcu_assign_pointer`` / ``rcu_dereference``
   guarantee a reader that follows the published pointer sees the
   pointed-to data initialised (even on Alpha, thanks to the embedded
   read barrier).
2. **Deferred free** (Figure 11) — an updater unpublishes, waits a grace
   period, then frees; no reader can see both the unpublish and the free.
3. **The fundamental law vs the RCU axiom** (Theorem 1) — both
   formalisations are *decided* on every execution and always agree.
"""

from repro import LinuxKernelModel, litmus_library, run_litmus
from repro.executions import candidate_executions
from repro.rcu import check_theorem1, fundamental_law_holds
from repro.rcu.axiom import rcu_axiom_holds


def main() -> None:
    model = LinuxKernelModel()

    print("1. Pointer publication (MP+wmb+rcu-deref):")
    test = litmus_library.get("MP+wmb+rcu-deref")
    print(f"   {run_litmus(model, test).describe()}")
    print("   -> a reader dereferencing the published pointer always sees")
    print("      the initialised data.\n")

    print("2. Deferred free (RCU-deferred-free, Figure 11):")
    test = litmus_library.get("RCU-deferred-free")
    print(f"   {run_litmus(model, test).describe()}")
    print("   -> if the reader ran early enough to miss the unpublish, it")
    print("      cannot see the free either: its critical section cannot")
    print("      span the grace period.\n")

    print("3. Law vs axiom on every execution of the RCU corpus:")
    for name in ("RCU-MP", "RCU-deferred-free", "RCU-1GP-2RSCS", "RCU-2GP-2RSCS"):
        program = litmus_library.get(name)
        agreements = 0
        total = 0
        for execution in candidate_executions(program):
            total += 1
            result = check_theorem1(execution)
            assert result.equivalent, "Theorem 1 violated?!"
            agreements += 1
        print(f"   {name:20s} axiom == law on {agreements}/{total} executions")

    print(
        "\n   (RCU-1GP-2RSCS is Allowed: one grace period against two "
        "critical\n   sections — the rule of thumb says a cycle needs at "
        "least as many\n   grace periods as critical sections to be "
        "forbidden.)"
    )

    print("\n4. One forbidden execution, both ways:")
    program = litmus_library.get("RCU-MP")
    witness = next(
        x
        for x in candidate_executions(program)
        if program.condition.evaluate(x.final_state)
    )
    print(f"   law   says: {'satisfied' if fundamental_law_holds(witness) else 'violated'}")
    print(f"   axiom says: {'satisfied' if rcu_axiom_holds(witness) else 'violated'}")


if __name__ == "__main__":
    main()
