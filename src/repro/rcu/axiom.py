"""The RCU axiom (Figure 12).

The axiom requires ``rcu-path`` — a recursively defined relation pairing
events connected by a non-empty sequence of grace-period and
critical-section links in which there are *at least as many grace periods
as critical sections* — to be irreflexive.  The heavy lifting lives in
:class:`repro.lkmm.model.LkmmRelations`; this module provides the
standalone entry points used by the RCU experiments and theorem checks.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.events import Event, SYNC_RCU
from repro.executions.candidate import CandidateExecution
from repro.executions.derived import crit_relation
from repro.lkmm.model import LkmmRelations


def grace_periods(execution: CandidateExecution) -> List[Event]:
    """All ``synchronize_rcu`` events, in (tid, po) order."""
    return sorted(
        (e for e in execution.events if e.has_tag(SYNC_RCU)),
        key=lambda e: (e.tid, e.po_index),
    )


def critical_sections(
    execution: CandidateExecution,
) -> List[Tuple[Event, Event]]:
    """All outermost (lock, unlock) pairs, in (tid, po) order."""
    return sorted(
        crit_relation(execution).pairs,
        key=lambda pair: (pair[0].tid, pair[0].po_index),
    )


def rcu_axiom_holds(execution: CandidateExecution) -> bool:
    """``irreflexive(rcu-path)`` for this execution."""
    relations = LkmmRelations(execution, with_rcu=True)
    return all(a != b for a, b in relations.rcu_path.pairs)
