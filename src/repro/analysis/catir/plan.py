"""The check plan: executing a compiled model over candidate executions.

A :class:`CheckPlan` is the constant-folded, CSE'd execution front end for
:class:`repro.cat.eval.CatModel` (ROADMAP item 5).  Compilation has
already inlined every non-recursive ``let`` and function application and
*interned* the result, so the roots of all checks form one shared
subexpression DAG: a node like ``po-loc`` that five checks mention is a
single object, evaluated once per candidate — and, when it cannot depend
on the execution witness (``rf``/``co``), once per *trace skeleton* via
:meth:`CandidateExecution.shared_memo`, exactly like the interpreter's
invariance analysis but at sub-expression rather than ``let`` granularity.

Evaluation is demand-driven over the DAG (the schedule is the implicit
postorder of the lazy walk; :attr:`CheckPlan.schedule` exposes the
explicit order for inspection and tests).  Recursive groups are solved as
simultaneous least fixpoints with the same Gauss–Seidel iteration as the
interpreter; while a group is in flux, nodes that read it are memoised
per iteration only.

Verdict equivalence with the interpreter is by construction — both paths
funnel every check through :func:`repro.cat.eval.check_axiom` with the
same axiom label — and is pinned by the golden snapshot under
``REPRO_CHECK_PLAN`` in both settings.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from repro.cat.eval import (
    CatError,
    builtin_environment,
    check_axiom,
)
from repro.executions.candidate import CandidateExecution
from repro.kernel import config as _config
from repro.kernel import vm as _vm
from repro.model import AxiomViolation
from repro.obs import core as _obs
from repro.relations import EventSet, Relation

from repro.analysis.catir import ir
from repro.analysis.catir.compile import CompiledCheck, CompiledModel

#: Process-unique plan tokens for shared-memo keys (mirrors eval's
#: _MODEL_TOKENS; id() is unsafe because it is recyclable).
_PLAN_TOKENS = itertools.count()


class CheckPlan:
    """An executable plan for one compiled model."""

    def __init__(self, compiled: CompiledModel):
        self.compiled = compiled
        self.name = compiled.name
        self.token = next(_PLAN_TOKENS)
        #: Postorder over the union of all check-root DAGs (rec bodies
        #: walked once per group).  Shared nodes appear exactly once —
        #: the CSE the interning bought us, made visible.
        self.schedule: List[ir.Node] = []
        #: node -> stable position in the schedule (shared-memo key part).
        self.index: Dict[ir.Node, int] = {}
        seen_groups = set()
        stack: List[Tuple[ir.Node, bool]] = []

        def walk(root: ir.Node) -> None:
            stack.append((root, False))
            while stack:
                node, expanded = stack.pop()
                if node in self.index:
                    continue
                if expanded:
                    if node not in self.index:
                        self.index[node] = len(self.schedule)
                        self.schedule.append(node)
                    continue
                stack.append((node, True))
                if node.kind == "rec":
                    # Bodies scheduled after the rec node: the fixpoint
                    # starts each binding at the empty relation, so a rec
                    # reference is well-defined before its bodies.
                    if node.group_id not in seen_groups:
                        seen_groups.add(node.group_id)
                        for body in ir.group_of(node).bodies:
                            stack.append((body, False))
                else:
                    for op in reversed(node.operands):
                        stack.append((op, False))

        for check in compiled.checks:
            walk(check.root)
        self.checks: Tuple[CompiledCheck, ...] = compiled.checks
        #: Lazily lowered relational bytecode (repro.kernel.vm); ``None``
        #: after a failed attempt means "not lowerable, use the evaluator".
        self._vm_program = None
        self._vm_tried = False

    def vm_program(self):
        """The plan lowered to a :class:`repro.kernel.vm.VMProgram`, or
        ``None`` when some construct cannot be lowered (the demand-driven
        evaluator remains the executable specification)."""
        if not self._vm_tried:
            self._vm_tried = True
            try:
                self._vm_program = lower_plan(self)
            except CatError:
                self._vm_program = None
        return self._vm_program

    def run(
        self, execution: CandidateExecution, model_name: str
    ) -> Tuple[List[AxiomViolation], List[AxiomViolation]]:
        """Evaluate every check; returns ``(violations, flags)`` with the
        exact axiom labels and witnesses the interpreter would produce."""
        if _config.vm_enabled() and _config.use_bitset():
            program = self.vm_program()
            if program is not None:
                outcome = _vm.run_checks(program, execution, model_name)
                if outcome is not None:
                    return outcome
        evaluator = _PlanEvaluator(self, execution)
        violations: List[AxiomViolation] = []
        flags: List[AxiomViolation] = []
        for check in self.checks:
            if check.root.varying:
                violation = self._run_check(
                    check, evaluator, model_name
                )
            else:
                violation = execution.shared_memo(
                    ("catir", self.token, "check", check.index),
                    lambda c=check: self._run_check(
                        c, evaluator, model_name
                    ),
                )
            if violation is not None:
                (flags if check.flag else violations).append(violation)
        return violations, flags

    def _run_check(
        self,
        check: CompiledCheck,
        evaluator: "_PlanEvaluator",
        model_name: str,
    ) -> Optional[AxiomViolation]:
        with _obs.span(f"cat.check.{model_name}.{check.label}"):
            value = evaluator.eval(check.root)
            return check_axiom(
                check.kind, check.label, check.negated, value
            )


class _PlanEvaluator:
    """Demand-driven evaluation of the interned DAG for one execution."""

    def __init__(self, plan: CheckPlan, execution: CandidateExecution):
        self.plan = plan
        self.x = execution
        self.universe = execution.universe
        self.env = builtin_environment(execution)
        #: node -> value, for nodes outside any in-flux rec group.
        self.values: Dict[ir.Node, object] = {}
        #: rec node -> settled fixpoint value.
        self.solutions: Dict[ir.Node, Relation] = {}
        #: rec node -> current approximation (during solving only).
        self.current: Dict[ir.Node, Relation] = {}
        self.solving: frozenset = frozenset()
        self.iter_memo: Dict[ir.Node, object] = {}

    def eval(self, node: ir.Node):
        if node.kind == "rec":
            value = self.solutions.get(node)
            if value is not None:
                return value
            value = self.current.get(node)
            if value is not None:
                return value
            self._solve(ir.group_of(node))
            return self.solutions[node]
        if self.solving and (node.rec_ids & self.solving):
            # Depends on a group still being iterated: cache only within
            # the current Gauss-Seidel sweep.
            memo = self.iter_memo
        else:
            memo = self.values
        if node in memo:
            return memo[node]
        if not node.varying:
            value = self.x.shared_memo(
                ("catir", self.plan.token, self.plan.index[node]),
                lambda: self._compute(node),
            )
        else:
            value = self._compute(node)
        memo[node] = value
        return value

    def _solve(self, group: ir.RecGroup) -> None:
        empty = Relation((), self.universe)
        for rec_node in group.rec_nodes:
            self.current[rec_node] = empty
        outer = self.solving
        self.solving = outer | {group.gid}
        try:
            changed = True
            while changed:
                changed = False
                self.iter_memo = {}
                for rec_node, body in zip(group.rec_nodes, group.bodies):
                    new = self.eval(body)
                    if not isinstance(new, Relation):
                        new = self._as_relation(new)
                    if new != self.current[rec_node]:
                        self.current[rec_node] = new
                        changed = True
        finally:
            self.solving = outer
            self.iter_memo = {}
        for rec_node in group.rec_nodes:
            self.solutions[rec_node] = self.current.pop(rec_node)

    @staticmethod
    def _as_relation(value):
        if isinstance(value, EventSet):
            return value.identity()
        return value

    def _compute(self, node: ir.Node):
        kind = node.kind
        if kind == "base":
            try:
                return self.env[node.name]
            except KeyError:  # pragma: no cover - compiler validates names
                raise CatError(
                    f"unbound identifier {node.name!r}"
                ) from None
        if kind == "empty":
            if node.sort == ir.SET:
                return EventSet((), self.universe)
            return Relation((), self.universe)
        ops = [self.eval(op) for op in node.operands]
        if kind == "union":
            out = ops[0]
            for value in ops[1:]:
                out = out | value
            return out
        if kind == "inter":
            out = ops[0]
            for value in ops[1:]:
                out = out & value
            return out
        if kind == "diff":
            return ops[0] - ops[1]
        if kind == "seq":
            out = ops[0]
            for value in ops[1:]:
                out = out.sequence(value)
            return out
        if kind == "cartesian":
            return ops[0].product(ops[1])
        if kind == "compl":
            return ops[0].complement()
        if kind == "inverse":
            return ops[0].inverse()
        if kind == "opt":
            return ops[0].optional()
        if kind == "plus":
            return ops[0].transitive_closure()
        if kind == "star":
            return ops[0].reflexive_transitive_closure()
        if kind == "setid":
            return ops[0].identity()
        if kind == "domain":
            return ops[0].domain()
        if kind == "range":
            return ops[0].range()
        if kind == "fencerel":
            # Same definition as the interpreter: events separated in po
            # by a fence from the given set.
            fence_set = ops[0]
            before = self.x.po.restrict(range_=fence_set)
            after = self.x.po.restrict(domain=fence_set)
            return before.sequence(after)
        raise CatError(
            f"check plan cannot evaluate node kind {kind!r}"
        )  # pragma: no cover


# -- bytecode lowering ---------------------------------------------------

#: node kind -> (relation opcode, set opcode) for the sort-polymorphic
#: binary operators.
_BINARY_OPS = {
    "union": (_vm.UNION_REL, _vm.UNION_SET),
    "inter": (_vm.INTER_REL, _vm.INTER_SET),
    "diff": (_vm.DIFF_REL, _vm.DIFF_SET),
}

_UNARY_OPS = {
    "inverse": _vm.INVERSE,
    "opt": _vm.OPT,
    "plus": _vm.PLUS,
    "star": _vm.STAR,
    "setid": _vm.SETID,
    "domain": _vm.DOMAIN,
    "range": _vm.RANGE,
}


def lower_plan(plan: CheckPlan) -> "_vm.VMProgram":
    """Lower a check plan to relational bytecode.

    Register allocation is by node identity over the interned DAG, so the
    CSE the plan already has carries over: a shared node is computed by
    exactly one instruction.  Instructions split into the trace-invariant
    *prelude* (``node.varying`` false — runs once per skeleton) and the
    per-candidate *main* stream; nodes inside an in-flux ``let rec`` group
    go to that group's :data:`~repro.kernel.vm.FIXPOINT` segment instead,
    preserving the evaluator's Gauss–Seidel sweep semantics (a node shared
    by two bodies lands in the segment of the first body that needs it,
    exactly like the per-sweep ``iter_memo``).
    """
    names: Dict[str, int] = {}
    registers: Dict[ir.Node, int] = {}
    prelude: List[tuple] = []
    main: List[tuple] = []
    #: In-flux rec groups, innermost last: (gid, segment instruction list).
    active: List[Tuple[int, List[tuple]]] = []
    lowered_groups: set = set()
    counter = itertools.count()

    def name_index(name: str) -> int:
        index = names.get(name)
        if index is None:
            index = names[name] = len(names)
        return index

    def stream_for(node: ir.Node) -> List[tuple]:
        if not node.varying:
            return prelude
        for gid, segment in reversed(active):
            if gid in node.rec_ids:
                return segment
        return main

    def visit(node: ir.Node) -> int:
        register = registers.get(node)
        if register is not None:
            return register
        if node.kind == "rec":
            lower_group(ir.group_of(node))
            return registers[node]
        operand_regs = [visit(operand) for operand in node.operands]
        stream = stream_for(node)
        register = next(counter)
        kind = node.kind
        if kind == "base":
            stream.append(
                (_vm.LOAD_BASE, register, name_index(node.name), 0)
            )
        elif kind == "empty":
            opcode = _vm.EMPTY_SET if node.sort == ir.SET else _vm.EMPTY_REL
            stream.append((opcode, register, 0, 0))
        elif kind in _BINARY_OPS:
            if any(op.sort != node.sort for op in node.operands):
                raise CatError(f"mixed sorts under {kind}")
            opcode = _BINARY_OPS[kind][node.sort == ir.SET]
            stream.append(
                (opcode, register, operand_regs[0], operand_regs[1])
            )
            for extra in operand_regs[2:]:
                stream.append((opcode, register, register, extra))
        elif kind == "seq":
            stream.append(
                (_vm.SEQ, register, operand_regs[0], operand_regs[1])
            )
            for extra in operand_regs[2:]:
                stream.append((_vm.SEQ, register, register, extra))
        elif kind == "cartesian":
            if any(op.sort != ir.SET for op in node.operands):
                raise CatError("cartesian product of non-sets")
            stream.append(
                (_vm.CARTESIAN, register, operand_regs[0], operand_regs[1])
            )
        elif kind == "compl":
            opcode = (
                _vm.COMPL_SET if node.sort == ir.SET else _vm.COMPL_REL
            )
            stream.append((opcode, register, operand_regs[0], 0))
        elif kind == "fencerel":
            # The evaluator composes po restricted to the fence set; give
            # the fused opcode its po operand explicitly.
            po_register = visit(ir.base("po", ir.REL))
            stream.append(
                (_vm.FENCEREL, register, po_register, operand_regs[0])
            )
        elif kind in _UNARY_OPS:
            expects_set = kind == "setid"
            if (node.operands[0].sort == ir.SET) != expects_set:
                raise CatError(f"bad operand sort under {kind}")
            stream.append(
                (_UNARY_OPS[kind], register, operand_regs[0], 0)
            )
        else:
            raise CatError(f"cannot lower node kind {kind!r}")
        registers[node] = register
        return register

    def lower_group(group: ir.RecGroup) -> None:
        if group.gid in lowered_groups:
            return
        lowered_groups.add(group.gid)
        # Rec registers first, so body instructions can read them.
        for rec_node in group.rec_nodes:
            registers[rec_node] = next(counter)
        segments = []
        for rec_node, body in zip(group.rec_nodes, group.bodies):
            if body.sort != ir.REL:
                raise CatError("rec binding with a set-sorted body")
            segment: List[tuple] = []
            active.append((group.gid, segment))
            try:
                body_register = visit(body)
            finally:
                active.pop()
            segments.append(
                (tuple(segment), body_register, registers[rec_node])
            )
        # The fixpoint instruction itself belongs to the innermost still
        # in-flux group its bodies depend on (none, in every bundled
        # model — cat's statement order forbids forward references).
        outer_ids = frozenset().union(
            *(body.rec_ids for body in group.bodies)
        ) - {group.gid}
        stream = main
        for gid, segment in reversed(active):
            if gid in outer_ids:
                stream = segment
                break
        stream.append((_vm.FIXPOINT, 0, tuple(segments), 0))

    checks = []
    for check in plan.checks:
        register = visit(check.root)
        checks.append(
            _vm.VMCheck(
                check.kind,
                check.label,
                check.negated,
                check.flag,
                register,
                check.root.sort == ir.SET,
                not check.root.varying,
            )
        )

    return _vm.VMProgram(
        plan.token,
        plan.name,
        tuple(names),
        tuple(prelude),
        tuple(main),
        tuple(checks),
        next(counter),
    )


def build_plan(compiled: CompiledModel) -> CheckPlan:
    """Compile a :class:`CompiledModel` into an executable plan."""
    return CheckPlan(compiled)
