"""Tests for final-state conditions."""

import pytest

from repro.events import Pointer
from repro.litmus.outcomes import (
    And,
    Exists,
    FinalState,
    Forall,
    LocValue,
    Not,
    NotExists,
    Or,
    RegValue,
    conj,
    exists,
    forall,
    not_exists,
)


@pytest.fixture
def state():
    return FinalState(
        registers={(0, "r0"): 1, (1, "r1"): 0, (1, "rp"): Pointer("x")},
        memory={"x": 2, "y": 0},
    )


class TestAtoms:
    def test_reg_value(self, state):
        assert RegValue(0, "r0", 1).evaluate(state)
        assert not RegValue(0, "r0", 2).evaluate(state)

    def test_missing_register_is_false(self, state):
        assert not RegValue(5, "nope", 0).evaluate(state)

    def test_loc_value(self, state):
        assert LocValue("x", 2).evaluate(state)
        assert not LocValue("x", 0).evaluate(state)

    def test_pointer_values(self, state):
        assert RegValue(1, "rp", Pointer("x")).evaluate(state)
        assert not RegValue(1, "rp", Pointer("y")).evaluate(state)


class TestConnectives:
    def test_and_or_not(self, state):
        t = RegValue(0, "r0", 1)
        f = RegValue(0, "r0", 9)
        assert And(t, t).evaluate(state)
        assert not And(t, f).evaluate(state)
        assert Or(f, t).evaluate(state)
        assert Not(f).evaluate(state)

    def test_conj_builder(self, state):
        assert conj(RegValue(0, "r0", 1), LocValue("x", 2)).evaluate(state)
        with pytest.raises(ValueError):
            conj()


class TestQuantifiers:
    def test_wrappers(self):
        body = RegValue(0, "r0", 1)
        assert isinstance(exists(body), Exists)
        assert isinstance(not_exists(body), NotExists)
        assert isinstance(forall(body), Forall)

    def test_repr_readable(self):
        condition = exists(And(RegValue(1, "r0", 1), LocValue("x", 0)))
        text = repr(condition)
        assert "exists" in text and "1:r0=1" in text and "x=0" in text


class TestFinalState:
    def test_hashable(self, state):
        again = FinalState(dict(state.registers), dict(state.memory))
        assert state == again
        assert hash(state) == hash(again)
        assert len({state, again}) == 1
