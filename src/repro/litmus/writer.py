"""Serialising programs back to the C litmus format.

The inverse of :mod:`repro.litmus.parser`: render a
:class:`~repro.litmus.ast.Program` as herd-style C litmus text.  Used by
the ``repro-diy`` tool to emit generated tests as files, and by the
round-trip tests (parse(write(p)) must behave identically to p).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.events import Pointer
from repro.litmus.ast import (
    Assume,
    BinOp,
    CmpXchg,
    Const,
    Expr,
    Fence,
    If,
    Instruction,
    Load,
    LocalAssign,
    Program,
    Reg,
    Rmw,
    Store,
    Thread,
    UnOp,
)
from repro.litmus.outcomes import (
    And,
    Condition,
    Exists,
    Forall,
    LocValue,
    Not,
    NotExists,
    Or,
    RegValue,
)


class WriteError(Exception):
    """Raised when a program uses constructs the text format lacks."""


_FENCE_CALLS = {
    "mb": "smp_mb",
    "rmb": "smp_rmb",
    "wmb": "smp_wmb",
    "rb-dep": "smp_read_barrier_depends",
    "rcu-lock": "rcu_read_lock",
    "rcu-unlock": "rcu_read_unlock",
    "sync-rcu": "synchronize_rcu",
}


def write_litmus(program: Program) -> str:
    """Render ``program`` as C litmus text."""
    lines: List[str] = [f"C {program.name}", ""]

    locations = program.locations()
    init_entries = []
    for loc in locations:
        value = program.initial_value(loc)
        init_entries.append(f"{loc}={_value_text(value)};")
    lines.append("{ " + " ".join(init_entries) + " }")
    lines.append("")

    for tid, thread in enumerate(program.threads):
        params = ", ".join(f"int *{loc}" for loc in locations)
        lines.append(f"P{tid}({params})")
        lines.append("{")
        declared: Set[str] = set()
        _write_body(thread.body, lines, declared, indent=1)
        lines.append("}")
        lines.append("")

    if program.condition is not None:
        lines.append(_condition_text(program.condition))
    return "\n".join(lines) + "\n"


def _write_body(
    body, lines: List[str], declared: Set[str], indent: int
) -> None:
    pad = "    " * indent
    for ins in body:
        for text in _instruction_lines(ins, declared, indent):
            lines.append(pad + text if not text.startswith("    ") else text)


def _declare(register: str, declared: Set[str]) -> str:
    if register in declared:
        return register
    declared.add(register)
    return f"int {register}"


def _instruction_lines(
    ins: Instruction, declared: Set[str], indent: int
) -> List[str]:
    if isinstance(ins, Fence):
        call = _FENCE_CALLS.get(ins.tag)
        if call is None:
            raise WriteError(f"no C spelling for fence {ins.tag!r}")
        return [f"{call}();"]

    if isinstance(ins, Load):
        target = _declare(ins.reg, declared)
        addr = _addr_text(ins.addr)
        if ins.rb_dep:
            if ins.tag != "once":
                raise WriteError("rb-dep loads must be READ_ONCE-based")
            return [f"{target} = rcu_dereference({addr});"]
        if ins.tag == "once":
            return [f"{target} = READ_ONCE({addr});"]
        if ins.tag == "acquire":
            return [f"{target} = smp_load_acquire({addr});"]
        if ins.tag == "plain":
            return [f"{target} = {addr};"]
        raise WriteError(f"no C spelling for load tag {ins.tag!r}")

    if isinstance(ins, Store):
        addr = _addr_text(ins.addr)
        value = _expr_text(ins.value)
        if ins.tag == "once":
            return [f"WRITE_ONCE({addr}, {value});"]
        if ins.tag == "release":
            return [f"smp_store_release({addr}, {value});"]
        if ins.tag == "plain":
            return [f"{addr} = {value};"]
        raise WriteError(f"no C spelling for store tag {ins.tag!r}")

    if isinstance(ins, Rmw):
        target = _declare(ins.reg, declared)
        addr = _addr_text(ins.addr, deref=False)
        # spin_lock/spin_unlock round-trip through their own spelling.
        if ins.require_read_value == 0 and ins.variant == "xchg_acquire":
            return [f"spin_lock({addr});"]
        if ins.require_read_value is not None:
            raise WriteError("required read values only supported for locks")
        return [f"{target} = {ins.variant}({addr}, {_expr_text(ins.new_value)});"]

    if isinstance(ins, CmpXchg):
        target = _declare(ins.reg, declared)
        addr = _addr_text(ins.addr, deref=False)
        call = {"xchg": "cmpxchg", "xchg_relaxed": "cmpxchg_relaxed",
                "xchg_acquire": "cmpxchg_acquire",
                "xchg_release": "cmpxchg_release"}[ins.variant]
        return [
            f"{target} = {call}({addr}, {_expr_text(ins.expected)}, "
            f"{_expr_text(ins.new_value)});"
        ]

    if isinstance(ins, LocalAssign):
        target = _declare(ins.reg, declared)
        return [f"{target} = {_expr_text(ins.expr)};"]

    if isinstance(ins, If):
        lines: List[str] = [f"if ({_expr_text(ins.cond)}) {{"]
        inner: List[str] = []
        _write_body(ins.then, inner, declared, indent=1)
        lines.extend(inner)
        if ins.orelse:
            lines.append("} else {")
            inner = []
            _write_body(ins.orelse, inner, declared, indent=1)
            lines.extend(inner)
        lines.append("}")
        return lines

    if isinstance(ins, Assume):
        raise WriteError("assume() is a verification construct with no C form")

    raise WriteError(f"cannot serialise {ins!r}")


def _addr_text(expr: Expr, deref: bool = True) -> str:
    star = "*" if deref else ""
    if isinstance(expr, Const) and isinstance(expr.value, Pointer):
        return f"{star}{expr.value.loc}" if deref else expr.value.loc
    if isinstance(expr, Reg):
        return f"*{expr.name}" if deref else expr.name
    # Tainted address (diy false dependency): render the expression.
    return f"{star}({_expr_text(expr)})"


def _value_text(value) -> str:
    if isinstance(value, Pointer):
        return f"&{value.loc}"
    return str(value)


def _expr_text(expr: Expr) -> str:
    if isinstance(expr, Const):
        return _value_text(expr.value)
    if isinstance(expr, Reg):
        return expr.name
    if isinstance(expr, BinOp):
        return f"({_expr_text(expr.lhs)} {expr.op} {_expr_text(expr.rhs)})"
    if isinstance(expr, UnOp):
        return f"{expr.op}{_expr_text(expr.operand)}"
    raise WriteError(f"cannot serialise expression {expr!r}")


def _condition_text(condition: Condition) -> str:
    if isinstance(condition, Exists):
        return f"exists ({_clause_text(condition.body)})"
    if isinstance(condition, NotExists):
        return f"~exists ({_clause_text(condition.body)})"
    if isinstance(condition, Forall):
        return f"forall ({_clause_text(condition.body)})"
    raise WriteError(f"top-level condition must be quantified: {condition!r}")


def _clause_text(condition: Condition) -> str:
    if isinstance(condition, RegValue):
        return f"{condition.tid}:{condition.reg}={_value_text(condition.value)}"
    if isinstance(condition, LocValue):
        return f"{condition.loc}={_value_text(condition.value)}"
    if isinstance(condition, And):
        return f"{_clause_text(condition.lhs)} /\\ {_clause_text(condition.rhs)}"
    if isinstance(condition, Or):
        return f"({_clause_text(condition.lhs)} \\/ {_clause_text(condition.rhs)})"
    if isinstance(condition, Not):
        return f"~({_clause_text(condition.operand)})"
    raise WriteError(f"cannot serialise condition {condition!r}")
