"""Tests for the command-line tools."""

import pytest

from repro.tools.cli import diy_main, herd_main, klitmus_main, lint_main


class TestHerdCli:
    def test_library_test_by_name(self, capsys):
        assert herd_main(["--model", "lkmm-native", "MP+wmb+rmb"]) == 0
        out = capsys.readouterr().out
        assert "MP+wmb+rmb" in out and "Forbid" in out

    def test_cat_model_by_name(self, capsys):
        assert herd_main(["--model", "c11", "RWC+mbs"]) == 0
        assert "Allow" in capsys.readouterr().out

    def test_file_path(self, tmp_path, capsys):
        litmus = tmp_path / "t.litmus"
        litmus.write_text(
            "C filetest\n{ x=0; }\n"
            "P0(int *x) { WRITE_ONCE(*x, 1); }\n"
            "P1(int *x) { int r0 = READ_ONCE(*x); }\n"
            "exists (1:r0=1)\n"
        )
        assert herd_main(["--model", "lkmm-native", str(litmus)]) == 0
        assert "filetest" in capsys.readouterr().out

    def test_explain_flag(self, capsys):
        assert herd_main(
            ["--model", "lkmm-native", "--explain", "SB+mbs"]
        ) == 0
        out = capsys.readouterr().out
        assert "violated axiom" in out

    def test_multiple_tests(self, capsys):
        assert herd_main(["--model", "lkmm-native", "SB", "MP"]) == 0
        out = capsys.readouterr().out
        assert out.count("Allow") == 2

    def test_bench_flag_prints_vm_opcode_counts(self, capsys):
        assert herd_main(["--model", "lkmm", "--bench", "MP+wmb+rmb"]) == 0
        out = capsys.readouterr().out
        assert "kernel bench:" in out
        assert "vm.op.SEQ" in out
        assert "vm.runs" in out

    def test_bench_flag_reports_vm_off(self, capsys):
        from repro.kernel import config as kconfig

        with kconfig.use_vm(False):
            assert herd_main(
                ["--model", "lkmm", "--bench", "MP+wmb+rmb"]
            ) == 0
        assert "no bytecode executed" in capsys.readouterr().out


class TestKlitmusCli:
    def test_basic(self, capsys):
        assert klitmus_main(
            ["--arch", "x86", "--runs", "200", "SB"]
        ) == 0
        out = capsys.readouterr().out
        assert "SB on x86" in out and "/200" in out

    def test_histogram(self, capsys):
        assert klitmus_main(
            ["--arch", "Power8", "--runs", "100", "--histogram", "MP"]
        ) == 0
        assert "r0" in capsys.readouterr().out


class TestDiyCli:
    def test_generate_prints_litmus(self, capsys):
        assert diy_main(["Rfe", "RmbdRR", "Fre", "WmbdWW"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("C ")
        assert "P0(" in out and "P1(" in out and "exists" in out

    def test_generate_and_check(self, capsys):
        assert diy_main(["--check", "Rfe", "RmbdRR", "Fre", "WmbdWW"]) == 0
        assert "Forbid" in capsys.readouterr().out

    def test_output_file_round_trips(self, tmp_path, capsys):
        out_file = tmp_path / "generated.litmus"
        assert diy_main(
            ["-o", str(out_file), "Rfe", "RmbdRR", "Fre", "WmbdWW"]
        ) == 0
        # The written file is a valid litmus test usable by repro-herd.
        assert herd_main(["--model", "lkmm-native", str(out_file)]) == 0
        assert "Forbid" in capsys.readouterr().out


class TestHerdStates:
    def test_states_flag(self, capsys):
        assert herd_main(
            ["--model", "lkmm-native", "--states", "MP+wmb+rmb"]
        ) == 0
        out = capsys.readouterr().out
        assert "States 3" in out
        assert "Observation MP+wmb+rmb Never" in out


PLAIN_MP = (
    "C MP+plain\n{ x=0; y=0; }\n"
    "P0(int *x, int *y) { *x = 1; WRITE_ONCE(*y, 1); }\n"
    "P1(int *x, int *y) { int r0 = READ_ONCE(*y); int r1 = *x; }\n"
    "exists (1:r0=1 /\\ 1:r1=0)\n"
)


class TestHerdCheckRaces:
    def test_race_free_library_test(self, capsys):
        assert herd_main(
            ["--model", "lkmm-native", "--check-races", "MP"]
        ) == 0
        out = capsys.readouterr().out
        assert "MP: Race-free" in out

    def test_racy_file(self, tmp_path, capsys):
        litmus = tmp_path / "mp-plain.litmus"
        litmus.write_text(PLAIN_MP)
        assert herd_main(
            ["--model", "lkmm-native", "--check-races", str(litmus)]
        ) == 0
        out = capsys.readouterr().out
        assert "MP+plain: Racy" in out
        assert "data race on 'x'" in out

    def test_works_with_cat_model(self, capsys):
        # The race detector always uses the native LKMM, whatever --model.
        assert herd_main(["--model", "sc", "--check-races", "MP"]) == 0
        assert "Race-free" in capsys.readouterr().out


class TestLintCli:
    def test_clean_tree_exits_zero(self, capsys):
        # The library carries two intended lock hand-off warnings;
        # warnings never gate the exit status.
        assert lint_main(["--all-models", "--library"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_no_args_defaults_to_everything(self, capsys):
        assert lint_main([]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_seeded_cat_typo_exits_one(self, tmp_path, capsys):
        cat = tmp_path / "broken.cat"
        cat.write_text('"broken"\nlet com = rf | co | frr\nacyclic com as c\n')
        assert lint_main([str(cat)]) == 1
        out = capsys.readouterr().out
        assert "undefined-identifier" in out
        assert "'frr'" in out

    def test_seeded_uninitialized_read_exits_one(self, tmp_path, capsys):
        litmus = tmp_path / "uninit.litmus"
        litmus.write_text(
            "C uninit\n{ y=0; }\n"
            "P0(int *x, int *y) { int r0 = READ_ONCE(*x); "
            "WRITE_ONCE(*y, 1); }\n"
            "P1(int *y) { int r1 = READ_ONCE(*y); }\n"
            "exists (0:r0=0 /\\ 1:r1=1)\n"
        )
        assert lint_main([str(litmus)]) == 1
        assert "uninitialized-read" in capsys.readouterr().out

    def test_library_name_as_target(self, capsys):
        assert lint_main(["MP+wmb+rmb"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_races_flag_exits_one_on_racy_test(self, tmp_path, capsys):
        litmus = tmp_path / "mp-plain.litmus"
        litmus.write_text(PLAIN_MP)
        assert lint_main(["--races", str(litmus)]) == 1
        out = capsys.readouterr().out
        assert "MP+plain: Racy" in out
        assert "1 racy test(s)" in out

    def test_json_format(self, capsys):
        import json

        assert lint_main(["--format", "json", "MP+unlock-acq"]) == 0
        document = json.loads(capsys.readouterr().out)
        codes = {f["code"] for f in document["findings"]}
        assert codes == {"LOCK002", "LOCK003"}
        assert document["counts"]["warning"] == 2
        assert document["counts"]["error"] == 0

    def test_sarif_format(self, tmp_path, capsys):
        import json

        litmus = tmp_path / "uninit.litmus"
        litmus.write_text(
            "C uninit\n{ }\n"
            "P0(int *x) { int r0 = READ_ONCE(*x); }\n"
            "exists (0:r0=0)\n"
        )
        assert lint_main(["--format", "sarif", str(litmus)]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        results = run["results"]
        assert {r["ruleId"] for r in results} == {"LIT001"}
        assert results[0]["level"] == "error"
        location = results[0]["locations"][0]["physicalLocation"]
        assert location["region"]["startLine"] == 3

    def test_unknown_target_exits_two_with_suggestion(self, capsys):
        assert lint_main(["MP+wmb+rnb"]) == 2
        err = capsys.readouterr().err
        assert "did you mean" in err and "MP+wmb+rmb" in err

    def test_missing_cat_file_exits_two(self, capsys):
        assert lint_main(["no-such-file.cat"]) == 2
        assert "no-such-file.cat" in capsys.readouterr().err


class TestHerdRobustness:
    """Budget flags, exit codes, and the resume journal (repro-herd)."""

    def test_timeout_flag_degrades_to_inconclusive_exit_3(self, capsys):
        # A tiny candidate cap trips immediately on any test.
        code = herd_main(["--model", "sc", "--max-candidates", "1", "SB"])
        assert code == 3
        out = capsys.readouterr().out
        assert "Inconclusive" in out
        assert "[interrupted: candidates" in out

    def test_generous_budget_exits_zero(self, capsys):
        code = herd_main(["--model", "sc", "--timeout", "600", "SB"])
        assert code == 0
        assert "Inconclusive" not in capsys.readouterr().out

    def test_unknown_test_exits_2(self, capsys):
        assert herd_main(["--model", "sc", "NOPE-not-a-test"]) == 2
        assert "repro-herd:" in capsys.readouterr().err

    def test_parse_error_located_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.litmus"
        bad.write_text("C bad\nP0(int *x)\n{\n    smp_mb(;\n}\n")
        assert herd_main(["--model", "sc", str(bad)]) == 2
        err = capsys.readouterr().err
        assert f"{bad}:4:" in err

    def test_journal_resume_skips_completed(self, tmp_path, capsys):
        journal = tmp_path / "sweep.jsonl"
        args = ["--model", "sc", "--journal", str(journal), "SB", "MP"]
        assert herd_main(args) == 0
        first = capsys.readouterr().out
        assert "(journaled)" not in first
        assert journal.exists()
        # Second run replays both rows from the journal.
        assert herd_main(args) == 0
        second = capsys.readouterr().out
        assert second.count("(journaled)") == 2

    def test_inconclusive_not_journaled(self, tmp_path, capsys):
        journal = tmp_path / "sweep.jsonl"
        assert (
            herd_main(
                ["--model", "sc", "--journal", str(journal),
                 "--max-candidates", "1", "SB"]
            )
            == 3
        )
        capsys.readouterr()
        # The budget verdict was not checkpointed: a resumed run with a
        # real budget recomputes and journals it.
        assert herd_main(["--model", "sc", "--journal", str(journal), "SB"]) == 0
        assert "(journaled)" not in capsys.readouterr().out

    def test_lint_parse_error_located_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "broken.cat"
        bad.write_text("broken\nacyclic po ;;\n")
        assert lint_main([str(bad)]) == 2
        assert f"{bad}:2:" in capsys.readouterr().err
