"""The cat language: formal, executable consistency models.

cat (Alglave, Cousot, Maranget — "Syntax and semantics of the weak
consistency model specification language cat") lets one define a memory
model as a set of relational constraints over candidate executions.  The
paper's LK model is written in cat so that it is both *formal* (cat has a
formal semantics) and *executable* (by the herd simulator).

This package implements the cat subset the paper's models need:

* ``let`` / ``let rec ... and ...`` bindings, including least fixpoints for
  recursive definitions (the RCU axiom's ``rcu-path``);
* function definitions and applications (``A-cumul``, ``fencerel``);
* the operators ``|``, ``&``, ``\\``, ``;``, ``~``, ``?``, ``+``, ``*``,
  ``^-1``, ``[S]``, and cartesian product ``S * T``;
* the checks ``acyclic``, ``irreflexive``, ``empty`` (optionally negated
  with ``~`` and/or marked ``flag``).

Model files live in ``repro/cat/models/*.cat`` (:data:`MODELS_DIR`) and
are loaded with :func:`load_model`.  :mod:`repro.analysis.catlint` checks
them statically — without enumerating any candidate execution — against
the same builtin environment the evaluator uses.
"""

from repro.cat.eval import (
    CatModel,
    CatError,
    MODELS_DIR,
    TAG_SETS,
    builtin_environment,
    load_model,
)
from repro.cat.parser import parse_cat

__all__ = [
    "CatModel",
    "CatError",
    "MODELS_DIR",
    "TAG_SETS",
    "load_model",
    "parse_cat",
    "builtin_environment",
]
