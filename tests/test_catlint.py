"""Tests for the cat-model linter."""

import pytest

from repro.analysis.catlint import (
    lint_all_models,
    lint_cat_path,
    lint_cat_source,
)
from repro.cat.eval import MODELS_DIR


def categories(findings):
    return [f.category for f in findings]


class TestShippedModels:
    def test_all_shipped_models_lint_clean(self):
        reports = lint_all_models()
        assert reports, "no models found"
        dirty = {
            name: [f.describe() for f in findings]
            for name, findings in reports.items()
            if findings
        }
        assert dirty == {}

    def test_lkmm_model_file_directly(self):
        assert lint_cat_path(MODELS_DIR / "lkmm.cat") == []


class TestInjectedTypos:
    def test_undefined_identifier_flagged(self):
        # The evaluator would only catch 'frr' once a check evaluates it;
        # the linter catches it statically.
        findings = lint_cat_source(
            '"m"\nlet com = rf | co | frr\nacyclic com as c\n'
        )
        assert categories(findings) == ["undefined-identifier"]
        assert "'frr'" in findings[0].message

    def test_typo_injected_into_real_model(self):
        text = (MODELS_DIR / "lkmm.cat").read_text()
        broken = text.replace("rfe", "rfee", 1)
        findings = lint_cat_source(broken, name="lkmm-broken")
        assert "undefined-identifier" in categories(findings)

    def test_unknown_base_set_flagged_with_suggestions(self):
        findings = lint_cat_source('"m"\nlet a = po & (Onnce * _)\nacyclic a\n')
        assert "unknown-base-set" in categories(findings)
        assert "known sets:" in findings[0].message

    def test_undefined_function(self):
        findings = lint_cat_source('"m"\nlet a = fencerelx(Mb)\nacyclic a\n')
        assert "undefined-function" in categories(findings)

    def test_unused_binding(self):
        findings = lint_cat_source(
            '"m"\nlet dead = po\nacyclic rf as c\n'
        )
        assert categories(findings) == ["unused-binding"]

    def test_shadowing_builtin(self):
        findings = lint_cat_source('"m"\nlet po = rf\nacyclic po as c\n')
        assert "shadowing" in categories(findings)

    def test_shadowing_earlier_binding(self):
        findings = lint_cat_source(
            '"m"\nlet a = po\nlet a = rf\nacyclic a as c\n'
        )
        assert "shadowing" in categories(findings)

    def test_duplicate_check_name(self):
        findings = lint_cat_source(
            '"m"\nacyclic po as c\nacyclic rf as c\n'
        )
        assert "duplicate-check-name" in categories(findings)

    def test_missing_include(self):
        findings = lint_cat_source('"m"\ninclude "no-such.cat"\nacyclic po\n')
        assert "missing-include" in categories(findings)


class TestScoping:
    def test_let_rec_sees_itself(self):
        findings = lint_cat_source(
            '"m"\nlet rec r = po | (r ; r)\nacyclic r as c\n'
        )
        assert findings == []

    def test_function_params_in_scope(self):
        findings = lint_cat_source(
            '"m"\nlet twice(r) = r ; r\nacyclic twice(po) as c\n'
        )
        assert findings == []

    def test_findings_carry_source(self):
        findings = lint_cat_source('"m"\nacyclic nope as c\n', name="my-model")
        assert findings[0].source == "my-model"
        assert "my-model" in findings[0].describe()
