"""Tests for :mod:`repro.obs` — the observability layer itself.

The two load-bearing properties (ISSUE 4):

* **counter exactness under sharding** — a serial run and a merged
  parallel run of the same litmus test produce identical
  enumeration/judgement counters (``enumerate.*``, ``herd.*``,
  ``lkmm.*``); cache-occupancy counters (``skeleton.*``, ``bitrel.*``)
  are explicitly excluded, as workers build private caches;
* **span balance** — spans always close, even when the instrumented code
  raises, so :func:`repro.obs.active_spans` is empty after any observed
  block, and the per-name counts equal the number of spans entered.

Plus the supporting algebra: :class:`~repro.obs.RunReport` merge is
associative, serialisation round-trips, and the disabled path is a
no-op.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.herd import run_litmus, verdicts
from repro.kernel.parallel import run_litmus_parallel, verdicts_parallel
from repro.litmus import library
from repro.lkmm import LinuxKernelModel
from repro.obs import RunReport

#: Counter namespaces whose totals must be exact across sharding.
EXACT_PREFIXES = ("enumerate.", "herd.", "lkmm.", "cat.")
#: Cache counters depend on per-process cache state; never compared.
CACHE_PREFIXES = ("skeleton.", "bitrel.")


def exact_counters(report: RunReport):
    return {
        name: n
        for name, n in report.counters.items()
        if name.startswith(EXACT_PREFIXES)
    }


# -- disabled path ----------------------------------------------------------


class TestDisabled:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert obs.current() is None

    def test_span_is_shared_noop(self):
        first = obs.span("anything")
        second = obs.span("else")
        assert first is second  # the shared no-op singleton
        with first:
            assert obs.active_spans() == ()

    def test_count_and_gauge_are_noops(self):
        obs.count("never.recorded", 7)
        obs.gauge("never.recorded", 1.0)
        with obs.collect() as collector:
            pass
        assert collector.counters == {}


# -- collection basics ------------------------------------------------------


class TestCollect:
    def test_counters_gauges_spans(self):
        with obs.collect() as collector:
            assert obs.enabled()
            obs.count("a", 2)
            obs.count("a")
            obs.gauge("g", 4)
            with obs.span("outer"):
                with obs.span("inner"):
                    assert obs.active_spans() == ("outer", "inner")
        assert not obs.enabled()
        report = collector.report()
        assert report.counters == {"a": 3}
        assert report.gauges == {"g": 4}
        assert report.spans["outer"]["count"] == 1
        assert report.spans["inner"]["count"] == 1
        assert report.spans["inner"]["total_s"] <= report.spans["outer"]["total_s"]

    def test_nested_collect_shadows_outer(self):
        with obs.collect() as outer:
            obs.count("outer.only")
            with obs.collect() as inner:
                obs.count("inner.only")
            assert obs.current() is outer
            obs.count("outer.only")
        assert outer.counters == {"outer.only": 2}
        assert inner.counters == {"inner.only": 1}

    def test_trace_records_depth_and_parent(self):
        with obs.collect(trace=True) as collector:
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        events = collector.report().trace
        by_name = {event["name"]: event for event in events}
        assert by_name["inner"]["depth"] == 1
        assert by_name["inner"]["parent"] == "outer"
        assert by_name["outer"]["depth"] == 0
        assert by_name["outer"]["parent"] is None

    def test_no_trace_by_default(self):
        with obs.collect() as collector:
            with obs.span("s"):
                pass
        assert collector.report().trace == []


# -- span balance under exceptions ------------------------------------------


class Boom(RuntimeError):
    pass


class RaisingModel(LinuxKernelModel):
    """An LK model whose judgement blows up mid-check."""

    def check(self, execution, relations=None):
        with obs.span("raising.check"):
            raise Boom("mid-span failure")


class TestSpanBalance:
    def test_balance_after_direct_raise(self):
        with obs.collect() as collector:
            with pytest.raises(Boom):
                with obs.span("a"), obs.span("b"):
                    raise Boom()
        assert obs.active_spans() == ()
        report = collector.report()
        assert report.spans["a"]["count"] == 1
        assert report.spans["b"]["count"] == 1

    def test_balance_when_model_check_raises(self, mp_program):
        """A model raising inside ``herd.run`` leaves no dangling spans."""
        with obs.collect() as collector:
            with pytest.raises(Boom):
                run_litmus(RaisingModel(), mp_program)
        assert obs.active_spans() == ()
        report = collector.report()
        # The spans that were open at the raise all still closed exactly
        # as often as they opened.
        assert report.spans["raising.check"]["count"] == 1
        assert report.spans["herd.run"]["count"] == 1

    span_trees = st.recursive(
        st.tuples(st.sampled_from("abcd"), st.booleans()).map(
            lambda leaf: (leaf[0], leaf[1], ())
        ),
        lambda children: st.tuples(
            st.sampled_from("abcd"),
            st.booleans(),
            st.lists(children, max_size=3),
        ),
        max_leaves=12,
    )

    @given(tree=span_trees)
    @settings(max_examples=60, deadline=None)
    def test_spans_balance_for_random_trees(self, tree):
        """Replaying any span tree — raising nodes included — balances."""
        entered = []

        def execute(node):
            name, raises, children = node
            entered.append(name)
            with obs.span(name):
                for child in children:
                    try:
                        execute(child)
                    except Boom:
                        pass  # a sibling failing must not unbalance us
                if raises:
                    raise Boom(name)

        with obs.collect() as collector:
            try:
                execute(tree)
            except Boom:
                pass
        assert obs.active_spans() == ()
        report = collector.report()
        total_recorded = sum(
            stat["count"] for stat in report.spans.values()
        )
        assert total_recorded == len(entered)


# -- RunReport algebra -------------------------------------------------------

# total_s drawn from exact binary fractions so float addition stays
# associative and merge equality can be exact.
span_stats = st.fixed_dictionaries(
    {
        "count": st.integers(min_value=0, max_value=100),
        "total_s": st.integers(min_value=0, max_value=1 << 20).map(
            lambda n: n / 1024.0
        ),
        "max_s": st.integers(min_value=0, max_value=1 << 20).map(
            lambda n: n / 1024.0
        ),
    }
)
names = st.text(
    alphabet="abcdefgh.", min_size=1, max_size=12
)
reports = st.builds(
    RunReport,
    counters=st.dictionaries(names, st.integers(-1000, 1000), max_size=5),
    gauges=st.dictionaries(names, st.integers(0, 100), max_size=3),
    spans=st.dictionaries(names, span_stats, max_size=5),
)


class TestRunReport:
    @given(a=reports, b=reports, c=reports)
    @settings(max_examples=80, deadline=None)
    def test_merge_is_associative(self, a, b, c):
        left = (
            RunReport.from_dict(a.to_dict())
            .merge(RunReport.from_dict(b.to_dict()))
            .merge(RunReport.from_dict(c.to_dict()))
        )
        right = RunReport.from_dict(a.to_dict()).merge(
            RunReport.from_dict(b.to_dict()).merge(
                RunReport.from_dict(c.to_dict())
            )
        )
        assert left.counters == right.counters
        assert left.spans == right.spans

    @given(report=reports)
    @settings(max_examples=60, deadline=None)
    def test_merge_identity(self, report):
        merged = RunReport().merge(RunReport.from_dict(report.to_dict()))
        assert merged.to_dict() == report.to_dict()

    @given(report=reports)
    @settings(max_examples=60, deadline=None)
    def test_json_round_trip(self, report):
        assert (
            RunReport.from_json(report.to_json()).to_dict()
            == report.to_dict()
        )

    def test_absorb_matches_merge(self):
        """Collector.absorb (the worker fan-in path) agrees with merge."""
        worker = RunReport(
            counters={"x": 2},
            spans={"s": {"count": 1, "total_s": 0.5, "max_s": 0.5}},
        )
        with obs.collect() as collector:
            obs.count("x", 1)
            obs.absorb(worker.to_dict())
            obs.absorb(worker.to_dict())
        report = collector.report()
        assert report.counters == {"x": 5}
        assert report.spans["s"]["count"] == 2
        assert report.spans["s"]["total_s"] == pytest.approx(1.0)

    def test_format_profile_mentions_everything(self):
        report = RunReport(
            counters={"enumerate.candidates": 4},
            gauges={"parallel.jobs": 2},
            spans={"herd.run": {"count": 1, "total_s": 0.25, "max_s": 0.25}},
        )
        text = report.format_profile()
        assert "herd.run" in text
        assert "enumerate.candidates" in text
        assert "parallel.jobs" in text

    def test_format_profile_empty(self):
        assert RunReport().format_profile() == "(no observations recorded)"


# -- counter exactness under kernel.parallel sharding ------------------------


class TestShardingExactness:
    @pytest.mark.parametrize("name", ["SB", "MP+wmb+rmb", "LB+ctrl+mb"])
    def test_sharded_counters_match_serial(self, lkmm, name):
        program = library.get(name)
        with obs.collect() as serial:
            serial_result = run_litmus(lkmm, program)
        with obs.collect() as sharded:
            sharded_result = run_litmus_parallel(lkmm, program, jobs=2)
        assert serial_result.verdict == sharded_result.verdict
        assert exact_counters(serial.report()) == exact_counters(
            sharded.report()
        )

    def test_sharded_model_span_counts_match_serial(self, lkmm, sb_program):
        """Per-candidate model spans are also exact (one per judgement)."""
        with obs.collect() as serial:
            run_litmus(lkmm, sb_program)
        with obs.collect() as sharded:
            run_litmus_parallel(lkmm, sb_program, jobs=2)
        assert (
            serial.report().spans["model.LKMM"]["count"]
            == sharded.report().spans["model.LKMM"]["count"]
        )

    def test_program_distribution_counters_match_serial(self, lkmm):
        programs = [library.get("SB"), library.get("MP+wmb+rmb")]
        with obs.collect() as serial:
            serial_table = verdicts([lkmm], programs)
        with obs.collect() as parallel:
            parallel_table = verdicts_parallel([lkmm], programs, jobs=2)
        assert serial_table == parallel_table
        assert exact_counters(serial.report()) == exact_counters(
            parallel.report()
        )

    def test_cache_counters_are_process_local(self, lkmm, sb_program):
        """The exactness claim deliberately excludes cache counters."""
        from repro.kernel import config

        with obs.collect() as collector:
            run_litmus(lkmm, sb_program)
        cache_keys = [
            name
            for name in collector.report().counters
            if name.startswith(CACHE_PREFIXES)
        ]
        # The kernel caches only run under the fast configuration; when
        # they do, their counters exist (the suite would silently lose
        # coverage if instrumentation was dropped) but are not part of
        # exact_counters().
        if config.use_bitset() and config.incremental_enabled():
            assert cache_keys
        assert not any(
            name.startswith(CACHE_PREFIXES)
            for name in exact_counters(collector.report())
        )
