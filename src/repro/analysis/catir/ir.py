"""The relational IR: interned, normalized, typed cat expression nodes.

Every :class:`Node` is *hash-consed*: the smart constructors below first
normalize their operands (flattening, sorting, constant folding) and then
intern the result in a process-global table, so two structurally equal
expressions — even ones compiled from different models — are the *same*
object and node equality is identity.  That single property powers the
whole layer: common-subexpression elimination in the check plan is just
"same node", and the model-diff analyzer detects renamed-but-identical
relations by pointer comparison.

Sorts mirror the CAT009 inference of :mod:`repro.analysis.catlint`: a
node is either an event :data:`SET` or a binary :data:`REL`; the compiler
(:mod:`repro.analysis.catir.compile`) inserts explicit ``[S]`` coercions
where the evaluator would coerce implicitly, so sorts here are always
consistent.

Normalization applies only *structural* identities that hold for every
candidate execution — ``x | 0 = x``, ``x & 0 = 0``, ``0 ; x = 0``,
``x \\ x = 0``, ``[S] ; [T] = [S & T]``, ``id ; r = r``, ``~~x = x``,
closure collapses like ``(x+)* = x*`` and ``[S]* = id``.  Heuristic
facts (tag disjointness, ``po`` vs ``ext``) are deliberately *not*
folded here: they live in :mod:`repro.analysis.catir.analyses` and can
only ever produce warnings, never change what the check plan evaluates.

The canonical pretty form (:attr:`Node.pstr`) is valid cat syntax: it
parses back (``repro.cat.parser.parse_expr_text``) and recompiles to the
same node, and it doubles as the deterministic sort key that canonicalises
commutative operand order.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: The two cat sorts (same spelling as repro.analysis.catlint).
SET = "set"
REL = "relation"

#: Builtin relations that equal their own inverse.
SYMMETRIC_BASES = frozenset({"id", "loc", "int", "ext"})

#: Printing precedence, loosest first, mirroring the parser: ``|`` then
#: ``;`` then ``\`` then ``&`` then cartesian ``*`` then unary ``~`` then
#: the postfix operators; primaries bind tightest.
_LEVELS = {
    "union": 0,
    "seq": 1,
    "diff": 2,
    "inter": 3,
    "cartesian": 4,
    "compl": 5,
    "inverse": 6,
    "opt": 6,
    "plus": 6,
    "star": 6,
}
_PRIMARY_LEVEL = 7  # base, empty, rec, setid, domain, range, fencerel


class Node:
    """One interned IR node.  Never construct directly — use the smart
    constructors, which normalize and intern."""

    __slots__ = (
        "kind",
        "name",
        "operands",
        "sort",
        "varying",
        "rec_ids",
        "group_id",
        "pos",
        "pstr",
    )

    def __init__(self, kind, name, operands, sort, varying, rec_ids,
                 group_id, pos, pstr):
        self.kind = kind
        self.name = name
        self.operands: Tuple[Node, ...] = operands
        self.sort = sort
        #: True when the value can depend on the execution witness (rf/co).
        self.varying = varying
        #: Group ids of every ``let rec`` group referenced underneath.
        self.rec_ids = rec_ids
        self.group_id = group_id  # rec nodes only
        self.pos = pos  # rec nodes only: index within the group
        #: Canonical cat-syntax rendering (also the commutative sort key).
        self.pstr = pstr

    @property
    def level(self) -> int:
        return _LEVELS.get(self.kind, _PRIMARY_LEVEL)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ir:{self.sort} {self.pstr}>"


class RecGroup:
    """One interned ``let rec`` group: its names, the :class:`Node` per
    binding, and the compiled bodies (set once, after compilation)."""

    __slots__ = ("gid", "names", "rec_nodes", "bodies")

    def __init__(self, gid: int, names: Tuple[str, ...],
                 rec_nodes: Tuple[Node, ...]):
        self.gid = gid
        self.names = names
        self.rec_nodes = rec_nodes
        self.bodies: Tuple[Node, ...] = ()


#: Intern table: structural key -> the one Node for that structure.
_INTERN: Dict[tuple, Node] = {}
#: Registered rec groups by id, and by canonical body serialization.
_GROUPS: Dict[int, RecGroup] = {}
_GROUP_CANON: Dict[tuple, RecGroup] = {}
_GROUP_IDS = itertools.count()

#: Builtin identifiers whose value varies with the execution witness
#: (must agree with repro.cat.eval._VARYING_BUILTINS).
_VARYING_BASES = frozenset({"rf", "co"})


def _wrap(node: Node, parent_level: int) -> str:
    if node.level > parent_level:
        return node.pstr
    return f"({node.pstr})"


def _intern(kind, *, name=None, operands=(), sort=REL, group_id=None,
            pos=None, pstr=None, varying=None) -> Node:
    key = (kind, name, sort, group_id, pos, tuple(id(op) for op in operands))
    node = _INTERN.get(key)
    if node is not None:
        return node
    if varying is None:
        varying = any(op.varying for op in operands)
    rec_ids = frozenset().union(*(op.rec_ids for op in operands)) \
        if operands else frozenset()
    if kind == "rec":
        rec_ids = frozenset({group_id})
    node = Node(kind, name, tuple(operands), sort, varying, rec_ids,
                group_id, pos, pstr)
    _INTERN[key] = node
    return node


# -- leaves -------------------------------------------------------------------


def base(name: str, sort: str) -> Node:
    """A builtin relation or set (``po``, ``Acquire``, ``_``, ``id``)."""
    return _intern("base", name=name, sort=sort, pstr=name,
                   varying=name in _VARYING_BASES)


def empty(sort: str = REL) -> Node:
    """The empty relation (``0``) or the empty event set."""
    return _intern("empty", sort=sort, pstr="0", varying=False)


def rec(name: str, group_id: int, pos: int) -> Node:
    """A reference to one binding of a ``let rec`` group.

    Conservatively ``varying``: recursive groups in practice reach
    ``rf``/``co``, and soundness only requires never marking a varying
    node invariant.
    """
    return _intern("rec", name=name, sort=REL, group_id=group_id, pos=pos,
                   pstr=name, varying=True)


# -- commutative n-ary constructors -------------------------------------------


def _sort_key(node: Node):
    # pstr alone is ambiguous for rec nodes of different groups that share
    # a binding name; group identity breaks the tie deterministically.
    return (node.pstr, node.group_id if node.group_id is not None else -1,
            node.pos if node.pos is not None else -1)


def union(operands: Iterable[Node]) -> Node:
    ops: List[Node] = []
    sort = REL
    for op in operands:
        sort = op.sort
        if op.kind == "union":
            ops.extend(op.operands)
        elif op.kind != "empty":
            ops.append(op)
    seen: Dict[int, None] = {}
    unique = [op for op in ops
              if id(op) not in seen and seen.setdefault(id(op)) is None]
    if not unique:
        return empty(sort)
    if len(unique) == 1:
        return unique[0]
    unique.sort(key=_sort_key)
    pstr = " | ".join(_wrap(op, 0) for op in unique)
    return _intern("union", operands=unique, sort=unique[0].sort, pstr=pstr)


def inter(operands: Iterable[Node]) -> Node:
    ops: List[Node] = []
    sort = REL
    for op in operands:
        sort = op.sort
        if op.kind == "empty":
            return empty(op.sort)
        if op.kind == "inter":
            ops.extend(op.operands)
        elif not (op.kind == "base" and op.name == "_"):
            # S & _ = S for event sets (``_`` is the universe).
            ops.append(op)
    seen: Dict[int, None] = {}
    unique = [op for op in ops
              if id(op) not in seen and seen.setdefault(id(op)) is None]
    if not unique:
        # Every operand was the universe set.
        return base("_", SET) if sort == SET else empty(sort)
    if len(unique) == 1:
        return unique[0]
    unique.sort(key=_sort_key)
    pstr = " & ".join(_wrap(op, 3) for op in unique)
    return _intern("inter", operands=unique, sort=unique[0].sort, pstr=pstr)


# -- relation algebra ---------------------------------------------------------


def seq(operands: Iterable[Node]) -> Node:
    flat: List[Node] = []
    for op in operands:
        if op.kind == "empty":
            return empty(REL)
        if op.kind == "seq":
            flat.extend(op.operands)
        else:
            flat.append(op)
    # Fuse adjacent restrictions: [S] ; [T] = [S & T]; drop identities:
    # id ; r = r.
    fused: List[Node] = []
    for op in flat:
        if op.kind == "base" and op.name == "id":
            continue
        if fused and fused[-1].kind == "setid" and op.kind == "setid":
            merged = setid(inter([fused[-1].operands[0], op.operands[0]]))
            fused[-1] = merged
            if merged.kind == "empty":
                return empty(REL)
            continue
        fused.append(op)
    if not fused:
        return base("id", REL)
    if len(fused) == 1:
        return fused[0]
    pstr = " ; ".join(_wrap(op, 1) for op in fused)
    return _intern("seq", operands=fused, sort=REL, pstr=pstr)


def diff(lhs: Node, rhs: Node) -> Node:
    if rhs.kind == "empty":
        return lhs
    if lhs.kind == "empty" or lhs is rhs:
        return empty(lhs.sort)
    pstr = f"{_wrap(lhs, 2)} \\ {_wrap(rhs, 2)}"
    return _intern("diff", operands=(lhs, rhs), sort=lhs.sort, pstr=pstr)


def cartesian(lhs: Node, rhs: Node) -> Node:
    if lhs.kind == "empty" or rhs.kind == "empty":
        return empty(REL)
    pstr = f"{_wrap(lhs, 4)} * {_wrap(rhs, 4)}"
    return _intern("cartesian", operands=(lhs, rhs), sort=REL, pstr=pstr)


def compl(operand: Node) -> Node:
    if operand.kind == "compl":
        return operand.operands[0]
    pstr = f"~{_wrap(operand, 5)}"
    return _intern("compl", operands=(operand,), sort=operand.sort, pstr=pstr)


def inverse(operand: Node) -> Node:
    if operand.kind == "empty":
        return operand
    if operand.kind == "inverse":
        return operand.operands[0]
    if operand.kind == "setid":
        return operand
    if operand.kind == "base" and operand.name in SYMMETRIC_BASES:
        return operand
    pstr = f"{_wrap(operand, 6)}^-1"
    return _intern("inverse", operands=(operand,), sort=REL, pstr=pstr)


def opt(operand: Node) -> Node:
    if operand.kind == "empty":
        return base("id", REL)
    if operand.kind in ("opt", "star"):
        return operand
    if operand.kind == "plus":
        return star(operand.operands[0])
    if operand.kind == "base" and operand.name == "id":
        return operand
    pstr = f"{_wrap(operand, 6)}?"
    return _intern("opt", operands=(operand,), sort=REL, pstr=pstr)


def plus(operand: Node) -> Node:
    if operand.kind in ("empty", "plus", "star"):
        return operand
    if operand.kind == "opt":
        return star(operand.operands[0])
    if operand.kind == "setid" or (
        operand.kind == "base" and operand.name == "id"
    ):
        # Subidentities are idempotent: [S]+ = [S].
        return operand
    pstr = f"{_wrap(operand, 6)}+"
    return _intern("plus", operands=(operand,), sort=REL, pstr=pstr)


def star(operand: Node) -> Node:
    if operand.kind == "empty":
        return base("id", REL)
    if operand.kind in ("star", "plus", "opt"):
        return star(operand.operands[0]) if operand.kind != "star" \
            else operand
    if operand.kind == "setid" or (
        operand.kind == "base" and operand.name == "id"
    ):
        # r* = r+ | id and a subidentity's closure is the full identity.
        return base("id", REL)
    pstr = f"{_wrap(operand, 6)}*"
    return _intern("star", operands=(operand,), sort=REL, pstr=pstr)


def setid(operand: Node) -> Node:
    """``[S]`` — the identity relation on set ``S``."""
    if operand.kind == "empty":
        return empty(REL)
    if operand.kind == "base" and operand.name == "_":
        return base("id", REL)
    pstr = f"[{operand.pstr}]"
    return _intern("setid", operands=(operand,), sort=REL, pstr=pstr)


def domain(operand: Node) -> Node:
    if operand.kind == "empty":
        return empty(SET)
    if operand.kind == "setid":
        return operand.operands[0]
    if operand.kind == "base" and operand.name == "id":
        return base("_", SET)
    pstr = f"domain({operand.pstr})"
    return _intern("domain", operands=(operand,), sort=SET, pstr=pstr)


def range_(operand: Node) -> Node:
    if operand.kind == "empty":
        return empty(SET)
    if operand.kind == "setid":
        return operand.operands[0]
    if operand.kind == "base" and operand.name == "id":
        return base("_", SET)
    pstr = f"range({operand.pstr})"
    return _intern("range", operands=(operand,), sort=SET, pstr=pstr)


def fencerel(operand: Node) -> Node:
    if operand.kind == "empty":
        return empty(REL)
    pstr = f"fencerel({operand.pstr})"
    return _intern("fencerel", operands=(operand,), sort=REL, pstr=pstr)


# -- rec groups ---------------------------------------------------------------


def fresh_group_id() -> int:
    return next(_GROUP_IDS)


def group_of(node: Node) -> RecGroup:
    """The :class:`RecGroup` a ``rec`` node belongs to."""
    return _GROUPS[node.group_id]


def _canon(node: Node, own: Dict[int, int], memo: Dict[int, tuple]) -> tuple:
    """A serialization of ``node`` where this group's rec nodes are
    positional and other groups' rec nodes carry their (canonical) group
    id — names alone would conflate distinct outer groups."""
    cached = memo.get(id(node))
    if cached is not None:
        return cached
    if node.kind == "rec":
        pos = own.get(id(node))
        if pos is not None:
            result = ("rec-self", pos)
        else:
            result = ("rec", node.group_id, node.pos)
    else:
        result = (node.kind, node.name, node.sort,
                  tuple(_canon(op, own, memo) for op in node.operands))
    memo[id(node)] = result
    return result


def intern_group(names: Sequence[str], rec_nodes: Sequence[Node],
                 bodies: Sequence[Node]) -> RecGroup:
    """Register a compiled ``let rec`` group, unifying it with any
    previously interned group that has the same names and bodies (the
    power/armv7 ``ii``/``ic``/``ci``/``cc`` groups, for instance)."""
    own = {id(rn): i for i, rn in enumerate(rec_nodes)}
    memo: Dict[int, tuple] = {}
    key = (tuple(names), tuple(_canon(b, own, memo) for b in bodies))
    existing = _GROUP_CANON.get(key)
    if existing is not None:
        return existing
    group = RecGroup(rec_nodes[0].group_id, tuple(names), tuple(rec_nodes))
    group.bodies = tuple(bodies)
    _GROUPS[group.gid] = group
    _GROUP_CANON[key] = group
    return group


# -- substitution -------------------------------------------------------------

_REBUILD = {
    "union": union,
    "inter": inter,
    "seq": seq,
    "compl": lambda ops: compl(ops[0]),
    "inverse": lambda ops: inverse(ops[0]),
    "opt": lambda ops: opt(ops[0]),
    "plus": lambda ops: plus(ops[0]),
    "star": lambda ops: star(ops[0]),
    "setid": lambda ops: setid(ops[0]),
    "domain": lambda ops: domain(ops[0]),
    "range": lambda ops: range_(ops[0]),
    "fencerel": lambda ops: fencerel(ops[0]),
    "diff": lambda ops: diff(ops[0], ops[1]),
    "cartesian": lambda ops: cartesian(ops[0], ops[1]),
}


def substitute(node: Node, mapping: Dict[Node, Node],
               _memo: Optional[Dict[int, Node]] = None) -> Node:
    """Rebuild ``node`` with ``mapping`` applied to matching subnodes
    (used when a rec group unifies with an already-interned one)."""
    if _memo is None:
        _memo = {}
    cached = _memo.get(id(node))
    if cached is not None:
        return cached
    mapped = mapping.get(node)
    if mapped is not None:
        result = mapped
    elif not node.operands:
        result = node
    else:
        children = [substitute(op, mapping, _memo) for op in node.operands]
        if all(child is op for child, op in zip(children, node.operands)):
            result = node
        else:
            result = _REBUILD[node.kind](children)
    _memo[id(node)] = result
    return result
