"""``repro-corpus``: the generate | sweep | mine | report | freeze CLI.

Each verb runs in-process via :func:`corpus_main` against a tmp dir,
chained the way a user would chain them, with exit statuses and the
files they promise.
"""

from __future__ import annotations

import json

import pytest

from repro.corpus.generate import corpus_slice
from repro.tools.cli import EXIT_INCONCLUSIVE, EXIT_OK, EXIT_USAGE, corpus_main


@pytest.fixture()
def pipeline(tmp_path):
    """Paths for one generate→sweep→mine pipeline."""
    return {
        "corpus": tmp_path / "corpus.jsonl",
        "journal": tmp_path / "journal.jsonl",
        "matrix": tmp_path / "matrix.json",
        "report": tmp_path / "STRESS_REPORT.md",
        "golden": tmp_path / "golden.jsonl",
    }


def test_generate_writes_the_deterministic_stream(pipeline, capsys):
    status = corpus_main(
        ["generate", "--seed", "0", "--target", "30",
         "-o", str(pipeline["corpus"])]
    )
    assert status == EXIT_OK
    out = capsys.readouterr().out
    assert "generated 30 unique tests" in out
    rows = [
        json.loads(line)
        for line in pipeline["corpus"].read_text().splitlines()
    ]
    expected = corpus_slice(seed=0, start=0, stop=30)
    assert [row["digest"] for row in rows] == [t.digest for t in expected]


def test_generate_litmus_dir(tmp_path, capsys):
    litmus_dir = tmp_path / "litmus"
    status = corpus_main(
        ["generate", "--target", "5", "--litmus-dir", str(litmus_dir)]
    )
    assert status == EXIT_OK
    files = list(litmus_dir.glob("*.litmus"))
    assert len(files) == 5


def test_generate_rejects_bad_threads(capsys):
    assert corpus_main(
        ["generate", "--target", "5", "--threads", "1,zap"]
    ) == EXIT_USAGE
    assert "repro-corpus" in capsys.readouterr().err


def test_sweep_mine_report_freeze_chain(pipeline, capsys):
    corpus_main(
        ["generate", "--target", "20", "-o", str(pipeline["corpus"])]
    )
    status = corpus_main(
        ["sweep", "--corpus", str(pipeline["corpus"]),
         "--journal", str(pipeline["journal"]),
         "-o", str(pipeline["matrix"])]
    )
    assert status == EXIT_OK
    out = capsys.readouterr().out
    assert "swept 20 rows" in out
    document = json.loads(pipeline["matrix"].read_text())
    assert len(document["matrix"]) == 20
    assert document["models"][0] == "LKMM"

    # Resweep: the journal replays everything.
    status = corpus_main(
        ["sweep", "--corpus", str(pipeline["corpus"]),
         "--journal", str(pipeline["journal"]),
         "-o", str(pipeline["matrix"])]
    )
    assert status == EXIT_OK
    assert "(20 journaled" in capsys.readouterr().out

    status = corpus_main(
        ["mine", "--corpus", str(pipeline["corpus"]),
         "--matrix", str(pipeline["matrix"])]
    )
    assert status == EXIT_OK
    assert "20 rows" in capsys.readouterr().out

    status = corpus_main(
        ["report", "--corpus", str(pipeline["corpus"]),
         "--matrix", str(pipeline["matrix"]),
         "-o", str(pipeline["report"])]
    )
    assert status == EXIT_OK
    text = pipeline["report"].read_text()
    assert text.startswith("# Corpus stress report")
    assert "Tests judged:** 20" in text

    status = corpus_main(
        ["freeze", "--corpus", str(pipeline["corpus"]),
         "--matrix", str(pipeline["matrix"]),
         "--size", "8", "-o", str(pipeline["golden"])]
    )
    assert status == EXIT_OK
    assert len(pipeline["golden"].read_text().splitlines()) == 8


def test_sweep_can_regenerate_inline(pipeline, capsys):
    """Without --corpus the sweep regenerates from the seed — the
    one-command smoke path CI uses."""
    status = corpus_main(
        ["sweep", "--seed", "0", "--target", "6",
         "-o", str(pipeline["matrix"])]
    )
    assert status == EXIT_OK
    document = json.loads(pipeline["matrix"].read_text())
    assert len(document["matrix"]) == 6


def test_sweep_wall_budget_exit_status(pipeline, capsys):
    corpus_main(["generate", "--target", "6", "-o", str(pipeline["corpus"])])
    status = corpus_main(
        ["sweep", "--corpus", str(pipeline["corpus"]), "--wall", "0"]
    )
    assert status == EXIT_INCONCLUSIVE
    assert "6 abandoned" in capsys.readouterr().out


def test_mine_rejects_mismatched_files(pipeline, tmp_path, capsys):
    corpus_main(["generate", "--target", "4", "-o", str(pipeline["corpus"])])
    bogus = tmp_path / "bogus.json"
    bogus.write_text(json.dumps({"models": [], "matrix": {"ghost": {}}}))
    status = corpus_main(
        ["mine", "--corpus", str(pipeline["corpus"]), "--matrix", str(bogus)]
    )
    assert status == EXIT_USAGE
    assert "mismatch" in capsys.readouterr().err
