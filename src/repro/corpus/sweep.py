"""Sharded differential sweep: every corpus test under every model.

One sweep *row* is a corpus test judged by the full model battery.
Direct models (LKMM, LKMM-core, C11 — their cat files speak the LK
annotation vocabulary) judge the litmus program as written, sharing a
single candidate enumeration via :func:`repro.herd.run_litmus_many`.
Hardware models judge the *compiled* program: the test is first mapped
to the architecture (:func:`repro.hardware.compile_program` with
``rcu="error"``), so each hardware column reflects the LK→machine
mapping of Table 4, and RCU-bearing tests — which no mapping can express
— get the verdict :data:`NOT_APPLICABLE` instead of a lie.

Rows are distributed over a fault-tolerant worker pool
(:func:`repro.kernel.parallel.fault_tolerant_map`): a crashed or hung
worker costs a retry, not the sweep.  Each completed conclusive row is
checkpointed to a digest-carrying :class:`repro.guard.SweepJournal`
before the next lands, so a sweep killed at row 7,000 resumes at row
7,001 — and a journal row whose program digest no longer matches the
corpus is rerun, not replayed.  A wall budget turns the sweep into an
anytime computation: when it expires the pool abandons the queued tail
and the partial matrix (plus journal) is the result.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cat.eval import load_model
from repro.corpus.generate import CorpusTest
from repro.guard import Budget, SweepJournal, guard
from repro.hardware import CompileError, compile_program, get_arch
from repro.herd import INCONCLUSIVE, verdict_row
from repro.kernel import config as _config
from repro.litmus.parser import parse_litmus
from repro.obs import core as _obs

#: Verdict for a (test, model) cell the model cannot express — an
#: RCU-bearing test under a hardware mapping.
NOT_APPLICABLE = "N/A"


@dataclass(frozen=True)
class ModelSpec:
    """One column of the verdict matrix.

    ``arch`` is ``None`` for models that judge the LK program directly;
    otherwise it names the :mod:`repro.hardware` architecture whose
    compiled form the model judges.
    """

    key: str
    name: str
    arch: Optional[str] = None


#: The standard battery, in matrix column order.
CORPUS_MODELS: Tuple[ModelSpec, ...] = (
    ModelSpec("lkmm", "LKMM"),
    ModelSpec("lkmm-core", "LKMM-core"),
    ModelSpec("c11", "C11"),
    ModelSpec("tso", "x86-TSO", arch="x86"),
    ModelSpec("armv8", "ARMv8", arch="ARMv8"),
    ModelSpec("power", "Power", arch="Power8"),
)


def model_names(specs: Sequence[ModelSpec] = CORPUS_MODELS) -> List[str]:
    return [spec.name for spec in specs]


#: Per-process caches — persistent worker pools reuse processes, so each
#: worker parses a cat model (and each arch spec) once, not once per row.
_MODEL_CACHE: Dict[str, object] = {}


def _model(key: str):
    model = _MODEL_CACHE.get(key)
    if model is None:
        model = _MODEL_CACHE[key] = load_model(key)
    return model


def sweep_row(
    program,
    specs: Sequence[ModelSpec] = CORPUS_MODELS,
    budget: Optional[Budget] = None,
) -> Dict[str, str]:
    """Judge one program under the full battery: ``{model name: verdict}``.

    The budget (when given) covers the whole row; once it trips, the
    remaining columns degrade to ``Inconclusive`` at their first
    safepoint rather than blowing the row's time allowance.
    """
    sweep_kwargs = dict(
        keep_states=False,
        stop_when_decided=_config.vm_enabled(),
        verdict_only=_config.vm_enabled(),
    )
    direct = [spec for spec in specs if spec.arch is None]
    compiled = [spec for spec in specs if spec.arch is not None]
    row: Dict[str, str] = {}

    def _judge() -> None:
        # verdict_row runs the symbolic pre-pass per model (gated on
        # REPRO_STATIC_VERDICT); statically decided columns skip their
        # candidate enumeration entirely.
        if direct:
            row.update(
                verdict_row(
                    [_model(spec.key) for spec in direct],
                    program,
                    **sweep_kwargs,
                )
            )
        for spec in compiled:
            try:
                mapped = compile_program(
                    program, get_arch(spec.arch), rcu="error"
                )
            except CompileError:
                row[spec.name] = NOT_APPLICABLE
                if _obs.ENABLED:
                    _obs.count("corpus.sweep_na")
                continue
            row.update(verdict_row([_model(spec.key)], mapped, **sweep_kwargs))

    if budget is not None:
        with guard(budget):
            _judge()
    else:
        _judge()
    if _obs.ENABLED:
        _obs.count("corpus.sweep_rows")
    return row


def _sweep_task(payload: Tuple) -> Tuple[str, Dict[str, str]]:
    """Worker-side row: parse the shipped litmus text, judge it.

    The payload carries the test as litmus *text* (stable, compact, and
    independent of AST pickling) plus the spec tuple and per-row budget.
    """
    litmus, spec_rows, budget = payload
    specs = tuple(ModelSpec(*row) for row in spec_rows)
    program = parse_litmus(litmus)
    return program.name, sweep_row(program, specs, budget=budget)


@dataclass
class SweepResult:
    """The verdict matrix plus sweep provenance."""

    #: ``{test name: {model name: verdict}}`` — only completed rows.
    matrix: Dict[str, Dict[str, str]] = field(default_factory=dict)
    #: Tests indexed by name (for family/thread metadata downstream).
    tests: Dict[str, CorpusTest] = field(default_factory=dict)
    #: Rows replayed from the journal rather than re-run.
    journal_skips: int = 0
    #: Rows actually executed this run.
    swept: int = 0
    #: Test names abandoned when the wall budget expired.
    abandoned: List[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return not self.abandoned


def sweep_corpus(
    tests: Sequence[CorpusTest],
    specs: Sequence[ModelSpec] = CORPUS_MODELS,
    jobs: int = 1,
    journal: Optional[SweepJournal] = None,
    row_budget: Optional[Budget] = None,
    wall_seconds: Optional[float] = None,
    task_timeout: Optional[float] = None,
    max_attempts: Optional[int] = None,
) -> SweepResult:
    """Judge every test under every model, resumably.

    ``journal`` rows with a matching name *and* program digest are
    replayed without re-running; everything else is (re)swept and
    conclusive rows are journaled as they complete.  ``wall_seconds``
    bounds the whole sweep — on expiry the queued tail is abandoned (its
    names land in :attr:`SweepResult.abandoned`) and whatever completed
    is returned; resuming with the same journal picks up exactly there.
    ``row_budget`` bounds each row individually (sound ``Inconclusive``
    degradation; such rows are never journaled, so they rerun on resume).
    """
    result = SweepResult()
    pending: List[CorpusTest] = []
    for test in tests:
        result.tests[test.name] = test
        done = journal.completed(test.name, test.digest) if journal else None
        if done is not None:
            result.matrix[test.name] = dict(done)
            result.journal_skips += 1
            if _obs.ENABLED:
                _obs.count("guard.journal_skips")
        else:
            pending.append(test)

    deadline = (
        None if wall_seconds is None else time.monotonic() + wall_seconds
    )

    def _expired() -> bool:
        return deadline is not None and time.monotonic() >= deadline

    def _accept(test: CorpusTest, row: Dict[str, str]) -> None:
        result.matrix[test.name] = row
        result.swept += 1
        if journal is not None and INCONCLUSIVE not in row.values():
            journal.record(test.name, row, digest=test.digest)

    if jobs > 1 and len(pending) > 1:
        from repro.kernel.parallel import fault_tolerant_map
        from repro.litmus.writer import write_litmus

        spec_rows = tuple((s.key, s.name, s.arch) for s in specs)
        payloads = [
            (write_litmus(test.program), spec_rows, row_budget)
            for test in pending
        ]
        rows = fault_tolerant_map(
            _sweep_task,
            payloads,
            jobs,
            task_timeout=task_timeout,
            max_attempts=max_attempts,
            on_result=lambda index, outcome: _accept(
                pending[index], outcome[1]
            ),
            stop=_expired,
        )
        for test, outcome in zip(pending, rows):
            if outcome is None:
                result.abandoned.append(test.name)
    else:
        for test in pending:
            if _expired():
                result.abandoned.append(test.name)
                continue
            _accept(
                test, sweep_row(test.program, specs, budget=row_budget)
            )
    return result
