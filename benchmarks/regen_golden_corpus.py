"""Regenerate the frozen golden corpus (``tests/data/golden_corpus.jsonl``).

The golden corpus is a ~500-test stratified sample of the deterministic
10k corpus stream, with the full 6-model verdict row locked per test
(see :mod:`repro.corpus.golden` for the freeze policy).  It is the
corpus-scale tier-1 regression suite: ``tests/test_golden_corpus.py``
re-judges every frozen test on every run and demands exact equality.

Regenerate only after an *intentional* semantic change, then review the
diff cell by cell — every changed line is a behaviour change::

    PYTHONPATH=src python benchmarks/regen_golden_corpus.py
    git diff tests/data/golden_corpus.jsonl

The sample is drawn from the first ``POOL`` tests of seed-``SEED``
stream and stratified over disagreement signatures, so the file is a
pure function of the constants below plus the models' behaviour.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.corpus import (  # noqa: E402
    freeze_golden,
    generate_corpus,
    mine,
    stress_report,
    sweep_corpus,
)

GOLDEN_PATH = REPO_ROOT / "tests" / "data" / "golden_corpus.jsonl"

#: The corpus slice the sample is drawn from.
SEED = 0
POOL = 2000
#: Stratified sample size (the tier-1 suite's row count).
SIZE = 500
#: Seed for the within-signature shuffles of the stratified sample.
SAMPLE_SEED = 0


def main() -> int:
    started = time.time()
    corpus = list(generate_corpus(seed=SEED, target=POOL))
    print(f"generated {len(corpus)} tests in {time.time() - started:.1f}s")
    result = sweep_corpus(corpus, jobs=4)
    print(f"swept {result.swept} rows by {time.time() - started:.1f}s")
    report = mine(result)
    print(
        f"pool: {report.total} rows, {len(report.signatures)} signatures, "
        f"{len(report.soundness_alerts)} soundness alert(s)"
    )
    if report.soundness_alerts:
        print(stress_report(report, result))
        print("refusing to freeze over soundness alerts", file=sys.stderr)
        return 1
    names = freeze_golden(
        result, GOLDEN_PATH, size=SIZE, seed=SAMPLE_SEED
    )
    print(f"froze {len(names)} tests to {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
