"""Algebraic analyses over the relational IR.

Two inference engines, both *sound for warning* — they only ever claim a
fact when it holds in every candidate execution, and their output is
WARNING-severity findings, never a rewrite of what gets evaluated:

* :func:`prove_empty` — is this relation/set empty in every execution?
  Combines structural rules (a union is empty iff all operands are, a
  diff ``l \\ r`` is empty when ``l ⊆ r``, a ``let rec`` fixpoint is
  empty when its bodies are empty under the assumption that the group
  is) with the abstract domains below: event-kind and tag bounds on
  sets, ``int``/``ext``/``id``/irreflexivity attributes on relations,
  and domain/range bounds threaded through compositions — which is
  exactly how ``[S] ; r ; [T]`` narrows.

* :func:`subsumes` — is ``sub ⊆ sup`` in every execution?  Structural
  monotonicity rules (``e ⊆ e | f``, operand-wise sequence inclusion,
  closure laws like ``y ⊆ x+  ⇒  y+ ⊆ x+``) plus the base-relation
  facts of :mod:`repro.analysis.catir.facts`.

On top of these the check analyses emit the semantic findings:

* **CAT011** ``dead-check`` — a (non-negated) check whose relation is
  provably empty: ``empty``/``acyclic``/``irreflexive`` hold trivially,
  so the check constrains nothing and likely mis-states the model.
* **CAT012** ``redundant-check`` — a check implied by an *earlier*
  enforcing check: same-kind subsumption (``empty r`` after ``empty s``
  with ``r ⊆ s``; likewise ``irreflexive``), any check over a relation
  contained in an already-empty one, and ``irreflexive r`` after
  ``acyclic s`` when ``r ⊆ s+`` (a reflexive pair in ``r`` would be a
  cycle in ``s``).
* **CAT013** ``unreachable-binding`` — a ``let`` that *is* referenced,
  but only by definitions that never feed any check: dead weight that
  CAT004 (unused-binding) cannot see.
* **CAT014** ``implied-acyclicity`` — ``acyclic r`` after ``acyclic s``
  with ``r ⊆ s+``: any ``r``-cycle maps into an ``s``-cycle, so the
  earlier check already forbids it.

False positives can be silenced per-model with a suppression comment
anywhere in the source: ``(* lint: allow CAT011 *)`` (several codes may
be comma-separated); :func:`parse_suppressions` extracts them.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding
from repro.cat import ast as C
from repro.cat.eval import _free_identifiers

from repro.analysis.catir import facts, ir
from repro.analysis.catir.compile import CompiledModel

# -- abstract domains ---------------------------------------------------------

_KIND_MEMO: Dict[ir.Node, Optional[FrozenSet[str]]] = {}
_TAG_MEMO: Dict[ir.Node, Optional[FrozenSet[str]]] = {}
_ATTR_MEMO: Dict[ir.Node, FrozenSet[str]] = {}
_BOUND_MEMO: Dict[Tuple[ir.Node, str], Optional[ir.Node]] = {}


def _join(values):
    """Union of optional upper bounds: None (= no bound) absorbs."""
    out: FrozenSet[str] = frozenset()
    for value in values:
        if value is None:
            return None
        out |= value
    return out


def _meet(values):
    """Intersection of optional upper bounds: None is the top element."""
    out = None
    for value in values:
        if value is None:
            continue
        out = value if out is None else out & value
    return out


def set_kinds(node: ir.Node) -> Optional[FrozenSet[str]]:
    """Upper bound on the event kinds (R/W/F) a set node may contain."""
    if node in _KIND_MEMO:
        return _KIND_MEMO[node]
    result: Optional[FrozenSet[str]]
    if node.kind == "base":
        result = facts.base_set_kinds(node.name)
    elif node.kind == "empty":
        result = frozenset()
    elif node.kind == "union":
        result = _join(set_kinds(op) for op in node.operands)
    elif node.kind == "inter":
        result = _meet(set_kinds(op) for op in node.operands)
    elif node.kind == "diff":
        result = set_kinds(node.operands[0])
    elif node.kind == "domain":
        result = _bound_kinds(node.operands[0], "domain")
    elif node.kind == "range":
        result = _bound_kinds(node.operands[0], "range")
    else:  # compl and anything unforeseen: no bound
        result = None
    _KIND_MEMO[node] = result
    return result


def set_tags(node: ir.Node) -> Optional[FrozenSet[str]]:
    """Upper bound on the annotations of events in a set node."""
    if node in _TAG_MEMO:
        return _TAG_MEMO[node]
    result: Optional[FrozenSet[str]]
    if node.kind == "base":
        result = facts.base_set_tags(node.name)
    elif node.kind == "empty":
        result = frozenset()
    elif node.kind == "union":
        result = _join(set_tags(op) for op in node.operands)
    elif node.kind == "inter":
        result = _meet(set_tags(op) for op in node.operands)
    elif node.kind == "diff":
        result = set_tags(node.operands[0])
    else:
        result = None
    _TAG_MEMO[node] = result
    return result


def sets_disjoint(a: ir.Node, b: ir.Node) -> Optional[str]:
    """A reason why set nodes ``a`` and ``b`` share no event, or None."""
    ka, kb = set_kinds(a), set_kinds(b)
    if ka is not None and kb is not None and not (ka & kb):
        return "reads, writes and fences are disjoint event kinds"
    ta, tb = set_tags(a), set_tags(b)
    if ta is not None and tb is not None and not (ta & tb):
        return "every event carries exactly one annotation"
    return None


def rel_attrs(node: ir.Node) -> FrozenSet[str]:
    """Sound attribute set of a relation node, each an upper bound:
    ``int`` ⇒ contained in same-thread pairs, ``ext`` ⇒ different-thread,
    ``id`` ⇒ contained in the identity, ``irr`` ⇒ irreflexive."""
    if node in _ATTR_MEMO:
        return _ATTR_MEMO[node]
    result: FrozenSet[str]
    if node.kind == "base":
        result = facts.REL_ATTRS.get(node.name, frozenset())
    elif node.kind == "empty":
        result = frozenset({"int", "ext", "id", "irr"})
    elif node.kind == "setid":
        result = frozenset({"int", "id"})
    elif node.kind == "union":
        ops = [rel_attrs(op) for op in node.operands]
        result = frozenset.intersection(*ops)
    elif node.kind == "inter":
        result = frozenset().union(*(rel_attrs(op) for op in node.operands))
    elif node.kind == "diff":
        result = rel_attrs(node.operands[0])
    elif node.kind == "seq":
        # Same-thread composes (tid equality is transitive); so do
        # subidentities.  ext does not (a;b may return to the thread),
        # and irreflexivity is not compositional.
        ops = [rel_attrs(op) for op in node.operands]
        result = frozenset.intersection(*ops) & frozenset({"int", "id"})
    elif node.kind == "inverse":
        result = rel_attrs(node.operands[0])  # all four are symmetric
    elif node.kind == "plus":
        result = rel_attrs(node.operands[0]) & frozenset({"int", "id"})
    elif node.kind in ("opt", "star"):
        result = rel_attrs(node.operands[0]) & frozenset({"int", "id"})
    elif node.kind == "fencerel":
        # (a, c) with a fence po-between: same thread, strictly ordered.
        result = frozenset({"int", "irr"})
    else:  # cartesian, compl, rec
        result = frozenset()
    _ATTR_MEMO[node] = result
    return result


def _bound(node: ir.Node, side: str) -> Optional[ir.Node]:
    """A *set node* upper bound on the domain (``side="domain"``) or
    range of a relation node, or None."""
    key = (node, side)
    if key in _BOUND_MEMO:
        return _BOUND_MEMO[key]
    result: Optional[ir.Node] = None
    if node.kind == "base":
        bounds = facts.REL_BOUNDS.get(node.name)
        if bounds is not None:
            name = bounds[0] if side == "domain" else bounds[1]
            if name is not None:
                result = ir.base(name, ir.SET)
    elif node.kind == "empty":
        result = ir.empty(ir.SET)
    elif node.kind == "setid":
        result = node.operands[0]
    elif node.kind == "cartesian":
        result = node.operands[0] if side == "domain" else node.operands[1]
    elif node.kind == "inter":
        bounds = [
            b for b in (_bound(op, side) for op in node.operands)
            if b is not None
        ]
        if bounds:
            result = ir.inter(bounds)
    elif node.kind == "union":
        bounds = [_bound(op, side) for op in node.operands]
        if all(b is not None for b in bounds):
            result = ir.union(bounds)
    elif node.kind == "diff":
        result = _bound(node.operands[0], side)
    elif node.kind == "seq":
        edge = node.operands[0] if side == "domain" else node.operands[-1]
        result = _bound(edge, side)
    elif node.kind == "inverse":
        other = "range" if side == "domain" else "domain"
        result = _bound(node.operands[0], other)
    elif node.kind == "plus":
        result = _bound(node.operands[0], side)
    # opt/star/compl/rec/fencerel: no bound (opt and star include id on
    # the whole universe).
    _BOUND_MEMO[key] = result
    return result


def _bound_kinds(node: ir.Node, side: str) -> Optional[FrozenSet[str]]:
    bound = _bound(node, side)
    return set_kinds(bound) if bound is not None else None


def rels_disjoint(a: ir.Node, b: ir.Node) -> Optional[str]:
    """A reason why relation nodes ``a`` and ``b`` share no pair."""
    attrs_a, attrs_b = rel_attrs(a), rel_attrs(b)
    if ("int" in attrs_a and "ext" in attrs_b) or (
        "ext" in attrs_a and "int" in attrs_b
    ):
        return "one side is same-thread (int), the other different-thread (ext)"
    if ("id" in attrs_a and "irr" in attrs_b) or (
        "irr" in attrs_a and "id" in attrs_b
    ):
        return "one side lies in the identity, the other is irreflexive"
    for side in ("domain", "range"):
        ba, bb = _bound(a, side), _bound(b, side)
        if ba is not None and bb is not None:
            reason = sets_disjoint(ba, bb)
            if reason is not None:
                return f"their {side}s are disjoint ({reason})"
    return None


# -- emptiness ----------------------------------------------------------------

_EMPTY_MEMO: Dict[Tuple[ir.Node, FrozenSet[int]], Optional[str]] = {}


def prove_empty(node: ir.Node,
                _assumed: FrozenSet[int] = frozenset()) -> Optional[str]:
    """A reason why ``node`` denotes the empty relation/set in *every*
    candidate execution, or None when emptiness cannot be proven."""
    key = (node, _assumed)
    if key in _EMPTY_MEMO:
        return _EMPTY_MEMO[key]
    _EMPTY_MEMO[key] = None  # cycle guard: unproven while in progress
    result = _prove_empty(node, _assumed)
    _EMPTY_MEMO[key] = result
    return result


def _prove_empty(node: ir.Node, assumed: FrozenSet[int]) -> Optional[str]:
    if node.kind == "empty":
        return "it is the empty " + (
            "set" if node.sort == ir.SET else "relation"
        )
    if node.kind == "union":
        reasons = [prove_empty(op, assumed) for op in node.operands]
        if all(reasons):
            return f"every alternative is empty ({reasons[0]})"
        return None
    if node.kind == "inter":
        for op in node.operands:
            reason = prove_empty(op, assumed)
            if reason is not None:
                return reason
        disjoint = sets_disjoint if node.sort == ir.SET else rels_disjoint
        ops = node.operands
        for i in range(len(ops)):
            for j in range(i + 1, len(ops)):
                reason = disjoint(ops[i], ops[j])
                if reason is not None:
                    return (
                        f"'{_short(ops[i])}' and '{_short(ops[j])}' are "
                        f"disjoint: {reason}"
                    )
        return None
    if node.kind == "seq":
        for op in node.operands:
            reason = prove_empty(op, assumed)
            if reason is not None:
                return reason
        for left, right in zip(node.operands, node.operands[1:]):
            rng = _bound(left, "range")
            dom = _bound(right, "domain")
            if rng is not None and dom is not None:
                reason = sets_disjoint(rng, dom)
                if reason is not None:
                    return (
                        f"'{_short(left)}' never reaches '{_short(right)}': "
                        f"{reason}"
                    )
        return None
    if node.kind == "diff":
        lhs, rhs = node.operands
        reason = prove_empty(lhs, assumed)
        if reason is not None:
            return reason
        if subsumes(rhs, lhs):
            return "the left side is contained in the subtracted side"
        return None
    if node.kind == "cartesian":
        for op in node.operands:
            reason = prove_empty(op, assumed)
            if reason is not None:
                return reason
        return None
    if node.kind in ("setid", "plus", "inverse", "domain", "range",
                     "fencerel"):
        return prove_empty(node.operands[0], assumed)
    if node.kind == "rec":
        if node.group_id in assumed:
            return "recursive reference (assumed empty for the fixpoint)"
        group = ir.group_of(node)
        inner = assumed | {node.group_id}
        reasons = [prove_empty(body, inner) for body in group.bodies]
        if all(reasons):
            return (
                "the least fixpoint of definitions that stay empty when "
                f"the group is empty ({reasons[0]})"
            )
        return None
    # opt/star contain the identity; compl of an empty universe never
    # happens; base relations may be inhabited.
    return None


# -- subsumption --------------------------------------------------------------

_SUB_MEMO: Dict[Tuple[ir.Node, ir.Node], bool] = {}


def subsumes(sup: ir.Node, sub: ir.Node) -> bool:
    """True when ``sub ⊆ sup`` holds in every candidate execution.
    Incomplete by design (False means "could not prove")."""
    if sup is sub:
        return True
    key = (sup, sub)
    if key in _SUB_MEMO:
        return _SUB_MEMO[key]
    _SUB_MEMO[key] = False  # cycle guard; sound (under-approximates)
    result = _subsumes(sup, sub)
    _SUB_MEMO[key] = result
    return result


def _subsumes(sup: ir.Node, sub: ir.Node) -> bool:
    if prove_empty(sub) is not None:
        return True
    # Structural decompositions of the sub side.
    if sub.kind == "union":
        return all(subsumes(sup, op) for op in sub.operands)
    if sub.kind == "diff" and subsumes(sup, sub.operands[0]):
        return True
    if sub.kind == "inter" and any(
        subsumes(sup, op) for op in sub.operands
    ):
        return True
    if sub.kind == "seq":
        # [S] ; r ; [T] ⊆ r: dropping restrictions only grows a sequence.
        stripped = [op for op in sub.operands if op.kind != "setid"]
        if stripped and len(stripped) < len(sub.operands):
            if subsumes(sup, ir.seq(stripped)):
                return True
    # Structural decompositions of the sup side.
    if sup.kind == "union" and any(
        subsumes(op, sub) for op in sup.operands
    ):
        return True
    if sup.kind == "inter":
        return all(subsumes(op, sub) for op in sup.operands)
    if sup.kind == "diff":
        keep, minus = sup.operands
        if subsumes(keep, sub) and rels_disjoint(sub, minus) is not None:
            return True
    if sup.kind == "base":
        attrs = rel_attrs(sub) if sub.sort == ir.REL else frozenset()
        if sup.name in ("int", "ext", "id") and sup.name in attrs:
            return True
        if sub.sort == ir.SET:
            if sup.name == "_":
                return True
            if sub.kind == "base" and sup.name in facts.SET_CONTAIN.get(
                sub.name, frozenset()
            ):
                return True
    if sup.kind == "opt":
        inner = sup.operands[0]
        if "id" in rel_attrs(sub):
            return True
        if sub.kind == "opt" and subsumes(sup, sub.operands[0]):
            return True
        if subsumes(inner, sub):
            return True
    if sup.kind == "star":
        inner = sup.operands[0]
        if "id" in rel_attrs(sub):
            return True
        if sub.kind in ("star", "plus", "opt") and subsumes(
            sup, sub.operands[0]
        ):
            # y ⊆ x*  ⇒  y* ⊆ (x*)* = x*.
            return True
        if sub.kind == "seq" and all(
            subsumes(sup, op) for op in sub.operands
        ):
            return True  # x* is closed under composition
        if subsumes(inner, sub):
            return True
    if sup.kind == "plus":
        inner = sup.operands[0]
        if sub.kind == "plus" and subsumes(sup, sub.operands[0]):
            # y ⊆ x+  ⇒  y+ ⊆ (x+)+ = x+.
            return True
        if sub.kind == "seq" and all(
            subsumes(sup, op) for op in sub.operands
        ):
            return True  # x+ is closed under composition
        if subsumes(inner, sub):
            return True
    if sup.kind == "seq" and sub.kind == "seq" and len(sup.operands) == len(
        sub.operands
    ):
        if all(
            subsumes(a, b) for a, b in zip(sup.operands, sub.operands)
        ):
            return True
    if sup.kind == "cartesian" and sub.sort == ir.REL:
        dom = _bound(sub, "domain")
        rng = _bound(sub, "range")
        if (
            dom is not None
            and rng is not None
            and subsumes(sup.operands[0], dom)
            and subsumes(sup.operands[1], rng)
        ):
            return True
    if sup.kind == "setid" and sub.kind == "setid":
        return subsumes(sup.operands[0], sub.operands[0])
    if sup.kind == "inverse" and sub.kind == "inverse":
        return subsumes(sup.operands[0], sub.operands[0])
    if sub.kind == "inverse":
        if sup.kind == "base" and sup.name in ir.SYMMETRIC_BASES:
            # sup symmetric: y ⊆ sup  ⇒  y^-1 ⊆ sup^-1 = sup.
            if subsumes(sup, sub.operands[0]):
                return True
    return False


# -- findings -----------------------------------------------------------------

_SUPPRESS_RE = re.compile(
    r"\(\*\s*lint:\s*allow\s+([A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)\s*\*\)"
)


def parse_suppressions(text: str) -> FrozenSet[str]:
    """Codes suppressed by ``(* lint: allow CAT011 *)`` comments (several
    codes may be comma-separated); file-wide, like herd's own flags."""
    codes: Set[str] = set()
    for match in _SUPPRESS_RE.finditer(text):
        codes.update(c.strip() for c in match.group(1).split(","))
    return frozenset(codes)


def _short(node: ir.Node, limit: int = 60) -> str:
    text = node.pstr
    if len(text) > limit:
        return text[: limit - 3] + "..."
    return text


def analyze_compiled(model: CompiledModel,
                     source: Optional[str] = None) -> List[Finding]:
    """Run the semantic check analyses over a compiled model."""
    source = source or model.name
    findings: List[Finding] = []
    enforcing = []  # earlier checks usable as premises
    for check in model.checks:
        if check.negated:
            continue
        reason = prove_empty(check.root)
        if reason is not None:
            findings.append(Finding.of(
                source,
                "dead-check",
                f"check '{check.label}' is trivially satisfied: "
                f"'{_short(check.root)}' is provably empty — {reason}",
            ))
        elif not check.flag:
            implied = _implied_by(check, enforcing)
            if implied is not None:
                category, message = implied
                findings.append(Finding.of(source, category, message))
        if not check.flag:
            enforcing.append(check)
    findings.extend(_unreachable_bindings(model, source))
    return findings


def _implied_by(check, earlier) -> Optional[Tuple[str, str]]:
    """(category, message) when ``check`` is implied by an earlier
    enforcing check, else None."""
    for prior in earlier:
        if prior.kind == "empty" and subsumes(prior.root, check.root):
            return (
                "redundant-check",
                f"check '{check.label}' is subsumed by '{prior.label}': "
                f"'{_short(check.root)}' is contained in the already-empty "
                f"'{_short(prior.root)}'",
            )
        if (
            check.kind == "irreflexive"
            and prior.kind == "irreflexive"
            and subsumes(prior.root, check.root)
        ):
            return (
                "redundant-check",
                f"check '{check.label}' is subsumed by '{prior.label}': "
                "a subrelation of an irreflexive relation is irreflexive",
            )
        if check.kind in ("irreflexive", "acyclic") and prior.kind == "acyclic":
            if subsumes(ir.plus(prior.root), check.root):
                if check.kind == "acyclic":
                    return (
                        "implied-acyclicity",
                        f"check '{check.label}' is implied by "
                        f"'{prior.label}': every cycle of "
                        f"'{_short(check.root)}' maps into a cycle of the "
                        f"already-acyclic '{_short(prior.root)}'",
                    )
                return (
                    "redundant-check",
                    f"check '{check.label}' is subsumed by '{prior.label}': "
                    f"a reflexive pair of '{_short(check.root)}' would be "
                    f"a cycle of the already-acyclic '{_short(prior.root)}'",
                )
    return None


def _unreachable_bindings(model: CompiledModel,
                          source: str) -> List[Finding]:
    """CAT013: bindings referenced only by definitions that never feed a
    check (CAT004 already covers bindings referenced by nothing)."""
    statements = model.statements
    edges: Dict[str, Set[str]] = {}
    order: List[str] = []
    roots: Set[str] = set()
    for statement in statements:
        if isinstance(statement, C.Let):
            for binding in statement.bindings:
                free: Set[str] = set()
                _free_identifiers(binding.expr, free)
                free -= set(binding.params)
                if binding.name not in edges:
                    order.append(binding.name)
                edges[binding.name] = free
        elif isinstance(statement, C.Check):
            _free_identifiers(statement.expr, roots)
    reachable: Set[str] = set()
    frontier = [name for name in roots if name in edges]
    while frontier:
        name = frontier.pop()
        if name in reachable:
            continue
        reachable.add(name)
        frontier.extend(n for n in edges[name] if n in edges)
    referenced: Set[str] = set(roots)
    for free in edges.values():
        referenced |= free
    findings = []
    for name in order:
        if name in reachable:
            continue
        if name not in referenced:
            continue  # CAT004's territory (never referenced at all)
        if name in edges.get(name, ()) and not any(
            name in edges[other] for other in edges if other != name
        ) and name not in roots:
            continue  # only referenced by itself (let rec r = ... r ...)
        findings.append(Finding.of(
            source,
            "unreachable-binding",
            f"'let {name}' is referenced, but only by definitions that "
            "never feed any check — it cannot influence a verdict",
        ))
    return findings


def analyze_cat_file(cat_file: C.CatFile, source: Optional[str] = None,
                     suppress: Sequence[str] = ()) -> List[Finding]:
    """Compile ``cat_file`` and run the semantic analyses; a model that
    does not compile (surface errors — unbound names, sort clashes,
    missing includes — which the CAT001–CAT009 lint already reports)
    yields no semantic findings."""
    from repro.analysis.catir.compile import compile_cat_file
    from repro.cat.eval import CatError

    try:
        compiled = compile_cat_file(cat_file, name=source)
    except CatError:
        return []
    findings = analyze_compiled(compiled, source=source or cat_file.name)
    if suppress:
        blocked = frozenset(suppress)
        findings = [f for f in findings if f.code not in blocked]
    return findings
