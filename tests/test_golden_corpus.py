"""The frozen golden corpus: the corpus-scale regression suite.

``tests/data/golden_corpus.jsonl`` freezes a ~500-test stratified
sample of the deterministic corpus stream with the full 6-model verdict
row locked per test (regenerated only by
``benchmarks/regen_golden_corpus.py``).  This suite re-judges every
frozen test and demands exact equality — under whatever relation
backend and VM lane the environment selects, which is the point: the
golden verdicts must not depend on either.

Failures name the exact drifted cells.  To bless an intentional model
or semantics change::

    PYTHONPATH=src python benchmarks/regen_golden_corpus.py
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.corpus.generate import program_digest
from repro.corpus.golden import load_golden
from repro.corpus.sweep import CORPUS_MODELS, sweep_row
from repro.herd import INCONCLUSIVE

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_corpus.jsonl"

REGEN_HINT = (
    "golden corpus drifted; if the change is intentional, rerun "
    "`PYTHONPATH=src python benchmarks/regen_golden_corpus.py` and "
    "review the diff"
)

MODEL_NAMES = [spec.name for spec in CORPUS_MODELS]


@pytest.fixture(scope="module")
def golden():
    return load_golden(GOLDEN_PATH)


def test_snapshot_shape(golden):
    """~500 unique tests, every one carrying a full verdict row."""
    assert len(golden) == 500, REGEN_HINT
    digests = {test.digest for test, _ in golden}
    assert len(digests) == len(golden), REGEN_HINT
    for test, locked in golden:
        assert sorted(locked) == sorted(MODEL_NAMES), REGEN_HINT
        assert INCONCLUSIVE not in locked.values(), REGEN_HINT


def test_programs_match_their_digests(golden):
    """The stored litmus text still hashes to the stored digest — a
    generator change that altered a test's *program* is caught here,
    before verdicts are compared across different tests."""
    drifted = [
        test.name
        for test, _ in golden
        if program_digest(test.program) != test.digest
    ]
    assert drifted == [], f"{drifted[:5]}... {REGEN_HINT}"


def test_locked_verdicts_hold(golden):
    """Re-judge every frozen test under the full battery."""
    drifted = []
    for test, locked in golden:
        row = sweep_row(test.program)
        for model in MODEL_NAMES:
            if row.get(model) != locked[model]:
                drifted.append(
                    f"{test.name}: {model} "
                    f"{locked[model]} -> {row.get(model)}"
                )
    assert drifted == [], f"{drifted[:10]} {REGEN_HINT}"
