"""repro — an executable Linux-kernel memory model.

A from-scratch Python reproduction of *"Frightening Small Children and
Disconcerting Grown-ups: Concurrency in the Linux Kernel"* (Alglave,
Maranget, McKenney, Parri, Stern — ASPLOS 2018): the LK memory model in
the cat language with a herd-style simulator, the RCU formalisation
(fundamental law + axiom + theorem checkers), comparison models (C11 and
per-architecture hardware models), a klitmus-style operational hardware
simulator, a diy-style litmus-test generator, and a static-analysis suite
(:mod:`repro.analysis`: data-race detection plus cat/litmus linting).

Quickstart::

    from repro import litmus_library, LinuxKernelModel, run_litmus

    test = litmus_library.get("MP+wmb+rmb")
    result = run_litmus(LinuxKernelModel(), test)
    assert result.verdict == "Forbid"

See ``examples/quickstart.py`` for a tour.
"""

from repro import analysis
from repro import litmus
from repro import obs
from repro.obs import RunReport
from repro.events import Event, ONCE, PLAIN
from repro.litmus import library as litmus_library
from repro.litmus.parser import parse_litmus
from repro.executions import candidate_executions, CandidateExecution
from repro.lkmm import LinuxKernelModel, explain_forbidden
from repro.cat import CatModel, load_model
from repro.herd import run_litmus, verdicts, RunResult, ALLOW, FORBID
from repro.hardware import (
    compile_program,
    get_arch,
    run_klitmus,
    OperationalSimulator,
)
from repro.model import Model, ModelResult
from repro import rcu
from repro import diy

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "litmus",
    "obs",
    "RunReport",
    "litmus_library",
    "Event",
    "ONCE",
    "PLAIN",
    "parse_litmus",
    "candidate_executions",
    "CandidateExecution",
    "LinuxKernelModel",
    "explain_forbidden",
    "CatModel",
    "load_model",
    "run_litmus",
    "verdicts",
    "RunResult",
    "ALLOW",
    "FORBID",
    "compile_program",
    "get_arch",
    "run_klitmus",
    "OperationalSimulator",
    "Model",
    "ModelResult",
    "rcu",
    "diy",
    "__version__",
]
