"""Compile the cat AST to the relational IR.

The compiler mirrors the evaluator's statement walk exactly — includes
flattened, non-recursive ``let``s bound in order, function applications
inlined at their call sites with lexical scoping — but produces interned
:class:`~repro.analysis.catir.ir.Node` graphs instead of values.  Every
implicit coercion the evaluator performs (a set in relation position
becomes ``[S]``) is made explicit, so the IR is sort-consistent by
construction; every condition under which the evaluator would raise
:class:`~repro.cat.eval.CatError` raises :class:`CatIRError` here, at
compile time.

``CatIRError`` subclasses ``CatError`` on purpose: callers that fall
back to the interpreter on compile failure (the check plan) observe
identical behaviour either way, because the interpreter evaluates all
value bindings eagerly and would raise the equivalent error on its first
``check()``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union as TUnion

from repro.cat import ast as C
from repro.cat.eval import CatError, _load_cat_file
from repro.cat.parser import parse_cat

from repro.analysis.catir import facts, ir

#: Guard against runaway recursion through self-applying cat functions
#: (the evaluator would hit Python's recursion limit at check time).
_MAX_APPLY_DEPTH = 64


class CatIRError(CatError):
    """Raised when an expression cannot be compiled to the IR."""


class _Func:
    """An uncompiled cat function: body compiled per application, in the
    captured (lexical) environment — same semantics as CatFunction."""

    __slots__ = ("name", "params", "expr", "env")

    def __init__(self, name, params, expr, env):
        self.name = name
        self.params = params
        self.expr = expr
        self.env = env


_EnvValue = TUnion[ir.Node, _Func]


class CompiledCheck:
    """One compiled check: its normalized root node plus the metadata the
    evaluator threads through (axiom naming must match exactly)."""

    __slots__ = ("kind", "root", "name", "negated", "flag", "index", "label")

    def __init__(self, kind, root, name, negated, flag, index):
        self.kind = kind
        self.root = root
        self.name = name
        self.negated = negated
        self.flag = flag
        #: Index of the originating statement in the flattened list (the
        #: evaluator derives anonymous axiom names from it).
        self.index = index
        self.label = name or f"{kind}-{index}"


class CompiledModel:
    """A whole compiled model: value definitions (in order, post-inline),
    functions, recursive groups, and the checks."""

    def __init__(self, name, definitions, functions, rec_groups, checks,
                 statements):
        self.name = name
        #: Ordered name -> Node for every value binding (rec included).
        self.definitions: Dict[str, ir.Node] = definitions
        #: name -> (params, body AST) for function bindings.
        self.functions: Dict[str, Tuple[Tuple[str, ...], C.CatExpr]] = functions
        self.rec_groups: List[ir.RecGroup] = rec_groups
        self.checks: Tuple[CompiledCheck, ...] = checks
        #: The flattened statement list the model was compiled from.
        self.statements: Tuple = statements


def _as_rel(node: ir.Node) -> ir.Node:
    """Lift a set to its identity relation, as the evaluator coerces."""
    if node.sort == ir.SET:
        return ir.setid(node)
    return node


def _as_set(node: ir.Node, context: str) -> ir.Node:
    if node.sort != ir.SET:
        raise CatIRError(f"{context}: expected an event set")
    return node


def compile_expr(expr: C.CatExpr, env: Dict[str, _EnvValue],
                 _depth: int = 0) -> ir.Node:
    """Compile one expression in ``env`` (user bindings shadow builtins)."""
    if isinstance(expr, C.Id):
        value = env.get(expr.name)
        if isinstance(value, ir.Node):
            return value
        if isinstance(value, _Func):
            raise CatIRError(
                f"function {expr.name!r} used as a plain value"
            )
        if expr.name in facts.BUILTIN_RELATIONS:
            return ir.base(expr.name, ir.REL)
        if expr.name in facts.BUILTIN_SETS:
            return ir.base(expr.name, ir.SET)
        raise CatIRError(f"unbound identifier {expr.name!r}")
    if isinstance(expr, C.EmptyRel):
        return ir.empty(ir.REL)
    if isinstance(expr, (C.Union, C.Inter, C.Diff)):
        lhs = compile_expr(expr.lhs, env, _depth)
        rhs = compile_expr(expr.rhs, env, _depth)
        if lhs.sort != rhs.sort:
            lhs, rhs = _as_rel(lhs), _as_rel(rhs)
        if isinstance(expr, C.Union):
            return ir.union([lhs, rhs])
        if isinstance(expr, C.Inter):
            return ir.inter([lhs, rhs])
        return ir.diff(lhs, rhs)
    if isinstance(expr, C.Seq):
        return ir.seq([
            _as_rel(compile_expr(expr.lhs, env, _depth)),
            _as_rel(compile_expr(expr.rhs, env, _depth)),
        ])
    if isinstance(expr, C.Cartesian):
        return ir.cartesian(
            _as_set(compile_expr(expr.lhs, env, _depth), "*"),
            _as_set(compile_expr(expr.rhs, env, _depth), "*"),
        )
    if isinstance(expr, C.Compl):
        return ir.compl(compile_expr(expr.operand, env, _depth))
    if isinstance(expr, C.Inverse):
        return ir.inverse(_as_rel(compile_expr(expr.operand, env, _depth)))
    if isinstance(expr, C.Opt):
        return ir.opt(_as_rel(compile_expr(expr.operand, env, _depth)))
    if isinstance(expr, C.Plus):
        return ir.plus(_as_rel(compile_expr(expr.operand, env, _depth)))
    if isinstance(expr, C.Star):
        return ir.star(_as_rel(compile_expr(expr.operand, env, _depth)))
    if isinstance(expr, C.SetId):
        return ir.setid(
            _as_set(compile_expr(expr.operand, env, _depth), "[]")
        )
    if isinstance(expr, C.App):
        return _apply(expr, env, _depth)
    raise CatIRError(f"unknown cat expression {expr!r}")


def _apply(expr: C.App, env: Dict[str, _EnvValue], _depth: int) -> ir.Node:
    args = [compile_expr(arg, env, _depth) for arg in expr.args]
    if expr.func == "domain":
        if len(args) != 1:
            raise CatIRError("domain expects one argument")
        return ir.domain(_as_rel(args[0]))
    if expr.func == "range":
        if len(args) != 1:
            raise CatIRError("range expects one argument")
        return ir.range_(_as_rel(args[0]))
    if expr.func == "fencerel":
        if len(args) != 1:
            raise CatIRError("fencerel expects one argument")
        return ir.fencerel(_as_set(args[0], "fencerel"))
    func = env.get(expr.func)
    if not isinstance(func, _Func):
        raise CatIRError(f"unknown function {expr.func!r}")
    if len(args) != len(func.params):
        raise CatIRError(
            f"{func.name} expects {len(func.params)} args, got {len(args)}"
        )
    if _depth >= _MAX_APPLY_DEPTH:
        raise CatIRError(
            f"function {func.name!r} recurses; cat functions must not"
        )
    inner: Dict[str, _EnvValue] = dict(func.env)
    inner.update(zip(func.params, args))
    return compile_expr(func.expr, inner, _depth + 1)


def compile_statements(statements: Sequence, name: str) -> CompiledModel:
    """Compile a flattened (include-free) statement list."""
    env: Dict[str, _EnvValue] = {}
    definitions: Dict[str, ir.Node] = {}
    functions: Dict[str, Tuple[Tuple[str, ...], C.CatExpr]] = {}
    rec_groups: List[ir.RecGroup] = []
    checks: List[CompiledCheck] = []
    for index, statement in enumerate(statements):
        if isinstance(statement, C.Let):
            if statement.recursive:
                _compile_rec(statement, env, definitions, rec_groups)
            else:
                for binding in statement.bindings:
                    if binding.params:
                        env[binding.name] = _Func(
                            binding.name, binding.params, binding.expr,
                            dict(env),
                        )
                        functions[binding.name] = (
                            binding.params, binding.expr,
                        )
                    else:
                        node = compile_expr(binding.expr, env)
                        env[binding.name] = node
                        definitions[binding.name] = node
        elif isinstance(statement, C.Check):
            root = compile_expr(statement.expr, env)
            if statement.kind != "empty":
                # acyclic/irreflexive coerce a set to its identity.
                root = _as_rel(root)
            checks.append(
                CompiledCheck(
                    statement.kind, root, statement.name,
                    statement.negated, statement.flag, index,
                )
            )
        else:  # pragma: no cover - flattening removes includes
            raise CatIRError(f"unknown statement {statement!r}")
    return CompiledModel(
        name, definitions, functions, rec_groups, tuple(checks),
        tuple(statements),
    )


def _compile_rec(statement: C.Let, env, definitions, rec_groups) -> None:
    for binding in statement.bindings:
        if binding.params:
            raise CatIRError("recursive cat functions are not supported")
    names = [b.name for b in statement.bindings]
    gid = ir.fresh_group_id()
    rec_nodes = [ir.rec(n, gid, pos) for pos, n in enumerate(names)]
    inner: Dict[str, _EnvValue] = dict(env)
    inner.update(zip(names, rec_nodes))
    bodies = [
        _as_rel(compile_expr(b.expr, inner)) for b in statement.bindings
    ]
    group = ir.intern_group(names, rec_nodes, bodies)
    for bname, rnode in zip(names, group.rec_nodes):
        env[bname] = rnode
        definitions[bname] = rnode
    rec_groups.append(group)


def _flatten(cat_file: C.CatFile, out: List) -> None:
    for statement in cat_file.statements:
        if isinstance(statement, C.Include):
            _flatten(_load_cat_file(statement.path), out)
        else:
            out.append(statement)


def compile_cat_file(cat_file: C.CatFile,
                     name: Optional[str] = None) -> CompiledModel:
    """Compile a parsed cat file (includes expanded from the bundled
    models directory, exactly as evaluation flattens them)."""
    statements: List = []
    _flatten(cat_file, statements)
    return compile_statements(statements, name or cat_file.name)


def compile_source(text: str, name: str = "cat-model") -> CompiledModel:
    """Parse and compile cat source text."""
    return compile_cat_file(parse_cat(text, default_name=name), name=name)


def compile_model(name: str) -> CompiledModel:
    """Compile a bundled model by name (``lkmm``, ``c11``, ``tso``, ...)."""
    from repro.cat.eval import MODELS_DIR

    path = MODELS_DIR / f"{name}.cat"
    if not path.exists():
        available = sorted(p.stem for p in MODELS_DIR.glob("*.cat"))
        raise CatError(f"unknown model {name!r}; available: {available}")
    cat_file = parse_cat(
        path.read_text(), default_name=path.stem, path=str(path)
    )
    return compile_cat_file(cat_file)
