"""Benchmark: the :mod:`repro.kernel` execution kernel vs the reference path.

Times three workloads — a 2-thread message-passing test, a 3-thread
write-to-read-causality test, and the Section 6 RCU-implementation
verification (the package's heaviest single run) — under

* the *reference* configuration: frozenset-of-pairs relations, naive
  enumerate-then-filter checking;
* the *kernel* configuration (the default): integer-indexed bitset
  relations plus per-trace incremental checking, single process.

Results (wall-clock, candidate counts, speedups) are printed and written
to ``BENCH_kernel.json`` at the repository root.  The suite asserts both
configurations agree exactly and that the kernel wins by at least 3x on
the RCU-implementation run.

Run with::

    pytest benchmarks/test_perf_kernel.py --benchmark-only -s
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.herd import run_litmus, verdicts
from repro.kernel import config as kconfig
from repro.litmus import library
from repro.lkmm import LinuxKernelModel
from repro.rcu import verify_implementation

from conftest import once, print_table

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_FILE = REPO_ROOT / "BENCH_kernel.json"

#: Floor asserted on the RCU-implementation run (the issue's acceptance
#: criterion); the observed speedup is typically far higher.
MIN_RCU_SPEEDUP = 3.0


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def _reference():
    return kconfig.use_backend(kconfig.FROZENSET), kconfig.use_incremental(
        False
    )


def _run_litmus_workload(name):
    model = LinuxKernelModel()
    program = library.get(name)

    def run():
        return run_litmus(model, program, require_sc_per_location=True)

    fast, fast_time = _timed(run)
    backend_ctx, incremental_ctx = _reference()
    with backend_ctx, incremental_ctx:
        reference, reference_time = _timed(run)

    assert fast.verdict == reference.verdict
    assert fast.candidates == reference.candidates
    assert fast.states == reference.states
    return {
        "test": name,
        "workload": "litmus",
        "verdict": fast.verdict,
        "candidates_kernel": fast.candidates,
        "candidates_reference": reference.candidates,
        "seconds_kernel": round(fast_time, 4),
        "seconds_reference": round(reference_time, 4),
        "speedup": round(reference_time / max(fast_time, 1e-9), 2),
    }


def _run_rcu_workload():
    def run():
        return verify_implementation(library.get("RCU-MP"), loop_bound=1)

    fast, fast_time = _timed(run)
    backend_ctx, incremental_ctx = _reference()
    with backend_ctx, incremental_ctx:
        reference, reference_time = _timed(run)

    assert fast.holds and reference.holds
    assert fast.impl_outcomes == reference.impl_outcomes
    assert fast.spec_outcomes == reference.spec_outcomes
    return {
        "test": "RCU-MP implementation (Section 6, loop bound 1)",
        "workload": "rcu-implementation",
        "verdict": "holds",
        "candidates_kernel": fast.impl_allowed,
        "candidates_reference": reference.impl_allowed,
        "seconds_kernel": round(fast_time, 4),
        "seconds_reference": round(reference_time, 4),
        "speedup": round(reference_time / max(fast_time, 1e-9), 2),
    }


def _run_library_sweep():
    """Verdicts over the whole library: kernel vs reference vs jobs=2."""
    programs = library.all_tests()
    models = [LinuxKernelModel()]

    def run():
        return verdicts(models, programs, require_sc_per_location=True)

    fast, fast_time = _timed(run)
    parallel, _ = _timed(
        lambda: verdicts(
            models, programs, jobs=2, require_sc_per_location=True
        )
    )
    backend_ctx, incremental_ctx = _reference()
    with backend_ctx, incremental_ctx:
        reference, reference_time = _timed(run)

    assert fast == reference
    assert fast == parallel
    return {
        "test": f"library sweep ({len(programs)} tests, LKMM)",
        "workload": "library-verdicts",
        "verdict": "identical across backends and jobs=2",
        "candidates_kernel": len(programs),
        "candidates_reference": len(programs),
        "seconds_kernel": round(fast_time, 4),
        "seconds_reference": round(reference_time, 4),
        "speedup": round(reference_time / max(fast_time, 1e-9), 2),
    }


def test_kernel_speedup(benchmark):
    def experiment():
        return [
            _run_litmus_workload("MP+wmb+rmb"),
            _run_litmus_workload("WRC+wmb+acq"),
            _run_library_sweep(),
            _run_rcu_workload(),
        ]

    rows = once(benchmark, experiment)

    RESULT_FILE.write_text(json.dumps(rows, indent=2) + "\n")
    print_table(
        "Execution kernel vs reference backend",
        ["test", "candidates", "reference (s)", "kernel (s)", "speedup"],
        [
            [
                row["test"],
                row["candidates_kernel"],
                row["seconds_reference"],
                row["seconds_kernel"],
                f"{row['speedup']}x",
            ]
            for row in rows
        ],
    )
    print(f"wrote {RESULT_FILE}")

    rcu = rows[-1]
    assert rcu["workload"] == "rcu-implementation"
    assert rcu["speedup"] >= MIN_RCU_SPEEDUP, (
        f"kernel speedup {rcu['speedup']}x below the {MIN_RCU_SPEEDUP}x "
        "acceptance floor"
    )
