"""Check-plan equivalence: the compiled plan of
:mod:`repro.analysis.catir.plan` must produce verdicts, axiom labels,
witness shapes, and flags identical to the statement-walking interpreter,
under both relation backends, with ``REPRO_CHECK_PLAN`` as the opt-out."""

from __future__ import annotations

import pytest

from repro.cat import CatModel, CatError, load_model
from repro.executions import candidate_executions
from repro.herd import verdicts
from repro.kernel import config
from repro.litmus import library

PROGRAMS = [
    "MP+wmb+rmb",
    "SB",
    "LB+ctrl",
    "IRIW",
    "RCU-MP",
    "SB+unlock-lock",
]

MODELS = ["lkmm", "lkmm-core", "c11", "tso", "sc", "power", "armv8"]


def available_programs():
    names = set(library.all_names())
    return [name for name in PROGRAMS if name in names]


def result_fingerprint(model, execution):
    result = model.check(execution)
    return (
        result.allowed,
        [(v.axiom, v.kind, bool(v.witness)) for v in result.violations],
        [(f.axiom, f.kind) for f in result.flags],
    )


def model_fingerprints(model, program, limit=40):
    out = []
    for i, execution in enumerate(candidate_executions(program)):
        if i >= limit:
            break
        out.append(result_fingerprint(model, execution))
    return out


@pytest.mark.parametrize("model_name", MODELS)
def test_bundled_models_plan_equivalence(model_name):
    model = load_model(model_name)
    for prog_name in available_programs():
        program = library.get(prog_name)
        with config.use_check_plan(True):
            with_plan = model_fingerprints(model, program)
        with config.use_check_plan(False):
            without = model_fingerprints(model, program)
        assert with_plan == without, f"{model_name} / {prog_name}"


CUSTOM_SOURCES = {
    "negated": "~empty po as has-order\nacyclic po as po-order",
    "flagged": "flag empty rf & po as internal-rf\nacyclic po | rf as ord",
    "set-check": "empty R & W as disjoint\nempty IW & R as init-writes",
    "recursion": (
        "let rec path = po | (path ; rf) | (rf ; path)\n"
        "acyclic path as chained"
    ),
    "mutual-recursion": (
        "let rec a = po | (b ; rf)\nand b = rf | (a ; po)\n"
        "irreflexive a as no-self\nacyclic b as b-ord"
    ),
    "functions": (
        "let hull(r) = r? ; r ; r?\n"
        "empty hull(rf) & id as no-rf-loop"
    ),
    "complement": "empty po & ~po as excluded-middle",
    "set-complement": "empty R & ~R as set-middle",
    "cartesian": "empty rf \\ (W * R) as rf-shape",
    "fencerel": "empty fencerel(Wmb) & id as fence-irr",
    "domain-range": (
        "empty domain(rf) & R as writes-only\n"
        "empty range(rf) & W as reads-only"
    ),
    "inverse": "irreflexive rf^-1 ; co as fr-irr",
    "unnamed-checks": "acyclic po\nempty rf & id",
}


@pytest.mark.parametrize("label", sorted(CUSTOM_SOURCES))
def test_custom_model_plan_equivalence(label):
    program = library.get("MP+wmb+rmb")
    source = CUSTOM_SOURCES[label]
    with config.use_check_plan(True):
        model = CatModel.from_source(source, name=f"plan-{label}")
        with_plan = model_fingerprints(model, program)
    with config.use_check_plan(False):
        model = CatModel.from_source(source, name=f"interp-{label}")
        without = model_fingerprints(model, program)
    assert with_plan == without


@pytest.mark.parametrize("backend", ["bitset", "frozenset"])
def test_plan_equivalence_across_backends(backend):
    program = library.get("SB")
    model = load_model("lkmm")
    with config.use_backend(backend):
        with config.use_check_plan(True):
            with_plan = model_fingerprints(model, program)
        with config.use_check_plan(False):
            without = model_fingerprints(model, program)
    assert with_plan == without


class TestOptOut:
    def test_env_opt_out(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_PLAN", "0")
        assert not config.check_plan_enabled()
        monkeypatch.setenv("REPRO_CHECK_PLAN", "1")
        assert config.check_plan_enabled()
        monkeypatch.delenv("REPRO_CHECK_PLAN")
        assert config.check_plan_enabled()  # default on

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_PLAN", "0")
        with config.use_check_plan(True):
            assert config.check_plan_enabled()
        assert not config.check_plan_enabled()

    def test_interpreter_used_when_disabled(self):
        model = CatModel.from_source("acyclic po as ok", name="opt-out")
        program = library.get("SB")
        execution = next(iter(candidate_executions(program)))
        with config.use_check_plan(False):
            assert model.check(execution).allowed
        # The plan was never built on the disabled path.
        assert model._plan is None and not model._plan_tried


class TestPlanStructure:
    def test_shared_subexpressions_scheduled_once(self):
        model = CatModel.from_source(
            "let a = po | rf\nacyclic a as one\nirreflexive a ; a as two",
            name="cse",
        )
        with config.use_check_plan(True):
            plan = model._check_plan()
        assert plan is not None
        union_nodes = [n for n in plan.schedule if n.kind == "union"]
        assert len(union_nodes) == 1  # `po | rf` appears once in the DAG

    def test_uncompilable_model_falls_back(self):
        # The plan cannot compile an unbound name; check() falls back to
        # the interpreter, which raises the same CatError it always did.
        model = CatModel.from_source("acyclic nonesuch as broken")
        program = library.get("SB")
        execution = next(iter(candidate_executions(program)))
        with config.use_check_plan(True):
            with pytest.raises(CatError, match="unbound identifier"):
                model.check(execution)
        assert model._plan is None and model._plan_tried

    def test_model_pickles_without_plan(self):
        import pickle

        model = load_model("tso")
        program = library.get("SB")
        execution = next(iter(candidate_executions(program)))
        with config.use_check_plan(True):
            before = result_fingerprint(model, execution)
        clone = pickle.loads(pickle.dumps(model))
        assert clone._plan is None and not clone._plan_tried
        with config.use_check_plan(True):
            assert result_fingerprint(clone, execution) == before


def test_golden_style_verdicts_match():
    """The headline acceptance shape: library verdict tables computed by
    both paths coincide (the full 57x4 table runs in the golden suite,
    which CI exercises with the plan on and off)."""
    programs = [library.get(name) for name in available_programs()]
    models = [load_model(name) for name in ("lkmm", "c11", "tso", "sc")]
    with config.use_check_plan(True):
        with_plan = verdicts(models, programs)
    with config.use_check_plan(False):
        without = verdicts(models, programs)
    assert with_plan == without
