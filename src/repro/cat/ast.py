"""Abstract syntax of the cat language subset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


class CatExpr:
    """Base class of cat expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class Id(CatExpr):
    """A reference to a binding or builtin (``po``, ``rfe``, ``Acquire``)."""

    name: str


@dataclass(frozen=True)
class EmptyRel(CatExpr):
    """The literal ``0`` — the empty relation."""


@dataclass(frozen=True)
class Union(CatExpr):
    lhs: CatExpr
    rhs: CatExpr


@dataclass(frozen=True)
class Inter(CatExpr):
    lhs: CatExpr
    rhs: CatExpr


@dataclass(frozen=True)
class Diff(CatExpr):
    lhs: CatExpr
    rhs: CatExpr


@dataclass(frozen=True)
class Seq(CatExpr):
    lhs: CatExpr
    rhs: CatExpr


@dataclass(frozen=True)
class Cartesian(CatExpr):
    """``S * T`` over two event sets."""

    lhs: CatExpr
    rhs: CatExpr


@dataclass(frozen=True)
class Compl(CatExpr):
    """``~e``."""

    operand: CatExpr


@dataclass(frozen=True)
class Inverse(CatExpr):
    """``e^-1``."""

    operand: CatExpr


@dataclass(frozen=True)
class Opt(CatExpr):
    """``e?`` — reflexive closure."""

    operand: CatExpr


@dataclass(frozen=True)
class Plus(CatExpr):
    """``e+`` — transitive closure."""

    operand: CatExpr


@dataclass(frozen=True)
class Star(CatExpr):
    """``e*`` — reflexive-transitive closure."""

    operand: CatExpr


@dataclass(frozen=True)
class SetId(CatExpr):
    """``[S]`` — the identity relation on event set S."""

    operand: CatExpr


@dataclass(frozen=True)
class App(CatExpr):
    """Function application ``f(e1, e2, ...)``."""

    func: str
    args: Tuple[CatExpr, ...]


# -- statements ---------------------------------------------------------------


class CatStatement:
    __slots__ = ()


@dataclass(frozen=True)
class LetBinding:
    """One binding: plain (``name = expr``) or functional
    (``name(params) = expr``)."""

    name: str
    expr: CatExpr
    params: Tuple[str, ...] = ()


@dataclass(frozen=True)
class Let(CatStatement):
    """``let [rec] b1 and b2 and ...``."""

    bindings: Tuple[LetBinding, ...]
    recursive: bool = False


@dataclass(frozen=True)
class Check(CatStatement):
    """``[flag] [~]acyclic|irreflexive|empty expr [as name]``."""

    kind: str  # "acyclic" | "irreflexive" | "empty"
    expr: CatExpr
    name: Optional[str] = None
    negated: bool = False
    flag: bool = False


@dataclass(frozen=True)
class Include(CatStatement):
    """``include "file.cat"``."""

    path: str


@dataclass(frozen=True)
class CatFile:
    """A parsed cat model: its name and statements."""

    name: str
    statements: Tuple[CatStatement, ...]
