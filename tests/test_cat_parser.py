"""Tests for the cat lexer and parser."""

import pytest

from repro.cat import ast as C
from repro.cat.parser import CatParseError, parse_cat


def parse_expr(text):
    """Parse `let e = <text>` and return the expression."""
    cat_file = parse_cat(f"let e = {text}")
    (let,) = cat_file.statements
    return let.bindings[0].expr


class TestHeader:
    def test_quoted_model_name(self):
        cat_file = parse_cat('"My model"\nlet a = po')
        assert cat_file.name == "My model"

    def test_bare_model_name(self):
        cat_file = parse_cat("LKMM\nlet a = po")
        assert cat_file.name == "LKMM"

    def test_default_name(self):
        assert parse_cat("let a = po", default_name="x").name == "x"


class TestExpressions:
    def test_identifier(self):
        assert parse_expr("po") == C.Id("po")

    def test_hyphenated_identifier(self):
        assert parse_expr("po-loc") == C.Id("po-loc")

    def test_union(self):
        assert parse_expr("a | b") == C.Union(C.Id("a"), C.Id("b"))

    def test_sequence(self):
        assert parse_expr("a ; b") == C.Seq(C.Id("a"), C.Id("b"))

    def test_difference(self):
        assert parse_expr("a \\ b") == C.Diff(C.Id("a"), C.Id("b"))

    def test_intersection(self):
        assert parse_expr("a & b") == C.Inter(C.Id("a"), C.Id("b"))

    def test_precedence_union_loosest(self):
        expr = parse_expr("a | b ; c")
        assert expr == C.Union(C.Id("a"), C.Seq(C.Id("b"), C.Id("c")))

    def test_precedence_seq_over_diff(self):
        expr = parse_expr("a ; b \\ c")
        assert expr == C.Seq(C.Id("a"), C.Diff(C.Id("b"), C.Id("c")))

    def test_postfix_operators(self):
        assert parse_expr("a?") == C.Opt(C.Id("a"))
        assert parse_expr("a+") == C.Plus(C.Id("a"))
        assert parse_expr("a^-1") == C.Inverse(C.Id("a"))

    def test_star_postfix_before_operator(self):
        assert parse_expr("a* ; b") == C.Seq(C.Star(C.Id("a")), C.Id("b"))

    def test_star_cartesian_between_operands(self):
        assert parse_expr("A * B") == C.Cartesian(C.Id("A"), C.Id("B"))

    def test_star_postfix_at_end_of_statement(self):
        cat_file = parse_cat("let a = b*\nacyclic a as x")
        assert cat_file.statements[0].bindings[0].expr == C.Star(C.Id("b"))

    def test_bracket_set_identity(self):
        assert parse_expr("[W]") == C.SetId(C.Id("W"))

    def test_complement(self):
        assert parse_expr("~a") == C.Compl(C.Id("a"))

    def test_empty_literal(self):
        assert parse_expr("0") == C.EmptyRel()

    def test_application(self):
        expr = parse_expr("f(a, b)")
        assert expr == C.App("f", (C.Id("a"), C.Id("b")))

    def test_nested_parentheses(self):
        expr = parse_expr("((a | b) ; c)?")
        assert isinstance(expr, C.Opt)

    def test_chained_postfix(self):
        assert parse_expr("a^-1?") == C.Opt(C.Inverse(C.Id("a")))


class TestStatements:
    def test_let(self):
        (let,) = parse_cat("let x = po").statements
        assert not let.recursive
        assert let.bindings[0].name == "x"

    def test_let_rec_and(self):
        (let,) = parse_cat("let rec a = b and b = a").statements
        assert let.recursive
        assert [b.name for b in let.bindings] == ["a", "b"]

    def test_function_definition(self):
        (let,) = parse_cat("let f(r) = r ; r").statements
        assert let.bindings[0].params == ("r",)

    def test_checks(self):
        text = "acyclic po as c1\nirreflexive po\nempty po as c3"
        checks = parse_cat(text).statements
        assert [c.kind for c in checks] == ["acyclic", "irreflexive", "empty"]
        assert checks[0].name == "c1"
        assert checks[1].name is None

    def test_flag_check(self):
        (check,) = parse_cat("flag ~empty po as warn").statements
        assert check.flag and check.negated

    def test_comments_stripped(self):
        text = "(* a\nmultiline comment *) let x = po // trailing"
        (let,) = parse_cat(text).statements
        assert let.bindings[0].name == "x"

    def test_error_on_garbage(self):
        with pytest.raises(CatParseError):
            parse_cat("let = po")

    def test_error_on_unknown_statement(self):
        with pytest.raises(CatParseError):
            parse_cat("frobnicate po")


class TestShippedModels:
    @pytest.mark.parametrize(
        "name",
        ["lkmm", "lkmm-core", "sc", "tso", "power", "armv8", "armv7", "alpha", "c11"],
    )
    def test_model_file_parses(self, name):
        from repro.cat.eval import MODELS_DIR

        cat_file = parse_cat((MODELS_DIR / f"{name}.cat").read_text())
        assert cat_file.statements
        kinds = {s.kind for s in cat_file.statements if isinstance(s, C.Check)}
        assert kinds  # every model has at least one check


class TestPrecedenceRegressions:
    """Pin the full precedence ladder (loosest first):
    ``|`` < ``;`` < ``\\`` < ``&`` < cartesian ``*`` < ``~`` < postfix."""

    def test_union_of_seq(self):
        assert parse_expr("a | b ; c") == C.Union(
            C.Id("a"), C.Seq(C.Id("b"), C.Id("c"))
        )

    def test_diff_of_inter(self):
        assert parse_expr("a \\ b & c") == C.Diff(
            C.Id("a"), C.Inter(C.Id("b"), C.Id("c"))
        )

    def test_inter_of_cartesian(self):
        assert parse_expr("a & b * c") == C.Inter(
            C.Id("a"), C.Cartesian(C.Id("b"), C.Id("c"))
        )

    def test_complement_binds_tighter_than_cartesian(self):
        assert parse_expr("~a * b") == C.Cartesian(
            C.Compl(C.Id("a")), C.Id("b")
        )

    def test_complement_of_postfix(self):
        # ~ wraps the whole postfix chain: ~a+ is ~(a+), not (~a)+.
        assert parse_expr("~a+") == C.Compl(C.Plus(C.Id("a")))
        assert parse_expr("(~a)+") == C.Plus(C.Compl(C.Id("a")))

    def test_binary_operators_left_associative(self):
        for op, node in (
            ("|", C.Union), (";", C.Seq), ("\\", C.Diff), ("&", C.Inter)
        ):
            assert parse_expr(f"a {op} b {op} c") == node(
                node(C.Id("a"), C.Id("b")), C.Id("c")
            )

    def test_star_postfix_then_cartesian(self):
        assert parse_expr("a* * b*") == C.Cartesian(
            C.Star(C.Id("a")), C.Star(C.Id("b"))
        )


class TestPrettyRoundTrip:
    """`parse(pretty(ast)) == ast`: the pretty-printer emits minimal
    parentheses yet always reproduces the exact tree."""

    CASES = [
        "a | b ; c",
        "a ; (b | c)",
        "a \\ b & c",
        "(a \\ b) & c",
        "~(a ; b)+",
        "(~a)+ ; b*",
        "a* * b*",
        "[R & W] ; po^-1?",
        "fencerel(F) | f(a, b)",
        "0 | po",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_expression_round_trip(self, text):
        expr = parse_expr(text)
        assert parse_expr(C.pretty(expr)) == expr

    @pytest.mark.parametrize(
        "name",
        ["lkmm", "lkmm-core", "sc", "tso", "power", "armv8", "armv7", "alpha", "c11"],
    )
    def test_model_round_trip(self, name):
        from repro.cat.eval import MODELS_DIR

        cat_file = parse_cat((MODELS_DIR / f"{name}.cat").read_text())
        assert parse_cat(C.pretty(cat_file)) == cat_file

    def test_statement_round_trip(self):
        text = (
            '"M"\n'
            "let rec a = po | (a ; rf) and b = a ; b\n"
            "let f(r, s) = r? ; s\n"
            "flag ~empty po & rf as odd\n"
            "acyclic po\n"
            'include "other.cat"\n'
        )
        cat_file = parse_cat(text)
        assert parse_cat(C.pretty(cat_file)) == cat_file


def _expression_strategy():
    from hypothesis import strategies as st

    names = st.sampled_from(["po", "rf", "co", "po-loc", "R", "W", "F"])
    atoms = st.one_of(st.builds(C.Id, names), st.just(C.EmptyRel()))

    def extend(children):
        return st.one_of(
            st.builds(C.Union, children, children),
            st.builds(C.Inter, children, children),
            st.builds(C.Diff, children, children),
            st.builds(C.Seq, children, children),
            st.builds(C.Cartesian, children, children),
            st.builds(C.Compl, children),
            st.builds(C.Inverse, children),
            st.builds(C.Opt, children),
            st.builds(C.Plus, children),
            st.builds(C.Star, children),
            st.builds(C.SetId, children),
            st.builds(
                C.App,
                st.sampled_from(["f", "g", "fencerel"]),
                st.tuples(children),
            ),
        )

    return st.recursive(atoms, extend, max_leaves=30)


from hypothesis import HealthCheck, given, settings  # noqa: E402

@given(_expression_strategy())
@settings(
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_pretty_round_trip_property(expr):
    """Any expression tree the AST can represent survives
    pretty -> tokenize -> parse unchanged."""
    assert parse_expr(C.pretty(expr)) == expr


class TestErrorLocations:
    """CatParseError carries path:line:column provenance."""

    def test_located_error(self):
        text = "mymodel\nlet com = rf | co | fr\nacyclic po ;;\n"
        with pytest.raises(CatParseError) as excinfo:
            parse_cat(text, path="my.cat")
        error = excinfo.value
        assert error.path == "my.cat"
        assert error.line == 3
        assert str(error).startswith("my.cat:3:")

    def test_unexpected_character_located(self):
        with pytest.raises(CatParseError) as excinfo:
            parse_cat("let x = po\nlet y = $bogus\n")
        assert excinfo.value.line == 2

    def test_message_without_location_renders_plain(self):
        error = CatParseError("boom")
        assert str(error) == "boom"
        located = CatParseError("boom", line=2, column=5, path="m.cat")
        assert str(located) == "m.cat:2:5: boom"

    def test_load_model_attaches_path(self, tmp_path):
        from repro.cat.eval import CatModel

        bad = tmp_path / "broken.cat"
        bad.write_text("broken\nacyclic po ;;\n")
        with pytest.raises(CatParseError) as excinfo:
            CatModel.from_path(bad)
        assert excinfo.value.path == str(bad)
        assert excinfo.value.line == 2
