"""Parallel litmus driving over multiprocessing worker pools.

Trace enumeration is deterministic (:func:`repro.executions.enumerate.
candidate_executions_sharded`), so parallelism needs no communication:

* one *program* is split by handing shard ``s`` of ``N`` to worker ``s``,
  each worker enumerating every ``N``-th trace combination and scanning
  its candidates; the partial :class:`~repro.herd.RunResult` counters are
  summed afterwards (:func:`run_litmus_parallel`);
* a *batch* of programs (``repro-herd``/``repro-lint`` on a directory,
  :func:`repro.herd.verdicts`) is distributed program-per-task
  (:func:`verdicts_parallel`), which scales better than sharding when
  there are many more tests than cores.

Workers re-enumerate their shard from the pickled
:class:`~repro.litmus.ast.Program` — events are never pickled between
processes.  The parent's backend configuration is replicated into each
worker explicitly (an initializer, not environment inheritance), so
``use_backend``/``use_incremental`` contexts apply to parallel runs too.

Observability (:mod:`repro.obs`) crosses the pool the same way: when the
parent has a collector installed, each worker runs its task under a local
:func:`repro.obs.collect` block and ships the serialised
:class:`~repro.obs.RunReport` back with the task result
(:func:`run_observed`); the parent absorbs the reports, so counter totals
are *exact* — a serial run and a merged parallel run of the same test
produce identical enumeration/judgement counters (``tests/test_obs.py``).
Span statistics merge too (per-worker wall time sums); the raw
``trace`` event list stays parent-process only.
"""

from __future__ import annotations

import atexit
import multiprocessing
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.kernel import config as _config
from repro.obs import core as _obs

#: Set in each worker by the pool initializer: the parent had a collector
#: installed, so tasks must collect locally and ship their report home.
_WORKER_OBSERVING = False


def _init_worker(
    backend: str,
    incremental: bool,
    check_plan: bool,
    vm: bool,
    observing: bool,
) -> None:
    global _WORKER_OBSERVING
    _config.set_backend(backend)
    _config.set_incremental(incremental)
    _config.set_check_plan(check_plan)
    _config.set_vm(vm)
    _WORKER_OBSERVING = observing


def _pool_config() -> tuple:
    return (
        _config.backend(),
        _config.incremental_enabled(),
        _config.check_plan_enabled(),
        _config.vm_enabled(),
        _obs.enabled(),
    )


def worker_pool(jobs: int):
    """A fresh pool whose workers replicate this process's kernel config."""
    return multiprocessing.get_context().Pool(
        processes=jobs,
        initializer=_init_worker,
        initargs=_pool_config(),
    )


#: Long-lived pools keyed by (jobs, kernel config): spawning workers and
#: re-compiling models in them dominates small parallel runs, so pools
#: persist across run_litmus_many programs — a library sweep pays the
#: spawn and per-worker model/plan/bytecode compile cost once, not once
#: per test.  Bounded LRU; a config change (different key) rotates the
#: stale pool out and terminates it.
_PERSISTENT_POOLS: "OrderedDict[tuple, Any]" = OrderedDict()
_PERSISTENT_POOL_LIMIT = 2


def persistent_pool(jobs: int):
    """A shared pool for this (jobs, config) combination.

    Callers must *not* close or terminate it; :func:`shutdown_pools`
    (registered atexit, and available to tests) reclaims the processes.
    """
    key = (jobs,) + _pool_config()
    pool = _PERSISTENT_POOLS.get(key)
    if pool is not None:
        _PERSISTENT_POOLS.move_to_end(key)
        if _obs.ENABLED:
            _obs.count("parallel.pool_reuse")
        return pool
    if _obs.ENABLED:
        _obs.count("parallel.pool_spawn")
    pool = worker_pool(jobs)
    _PERSISTENT_POOLS[key] = pool
    while len(_PERSISTENT_POOLS) > _PERSISTENT_POOL_LIMIT:
        _, stale = _PERSISTENT_POOLS.popitem(last=False)
        stale.terminate()
        stale.join()
    return pool


def shutdown_pools() -> None:
    """Terminate and reap every persistent pool."""
    while _PERSISTENT_POOLS:
        _, pool = _PERSISTENT_POOLS.popitem()
        pool.terminate()
        pool.join()


atexit.register(shutdown_pools)


def run_observed(fn: Callable[[], Any]) -> Tuple[Any, Optional[Dict]]:
    """Run a task, collecting a local report if the parent is observing.

    In a worker of :func:`worker_pool` with an observing parent, ``fn``
    runs under a fresh collector and its serialised report is returned for
    the parent to :func:`~repro.obs.absorb`.  Anywhere else (serial path,
    non-observing pool) ``fn`` runs as-is and the report slot is ``None``.
    """
    if not _WORKER_OBSERVING:
        return fn(), None
    with _obs.collect() as collector:
        result = fn()
    return result, collector.report().to_dict()


def _absorb_reports(outcomes: Sequence[Tuple[Any, Optional[Dict]]]) -> List:
    """Merge worker reports into the parent collector; return the results."""
    for _, report in outcomes:
        if report is not None:
            _obs.absorb(report)
    return [result for result, _ in outcomes]


# -- one program, sharded trace combinations ----------------------------


def _run_shard(task):
    model, program, shard, shard_count, require_sc, keep_states = task
    from repro.herd import run_litmus_many

    def run():
        return run_litmus_many(
            [model],
            program,
            require_sc_per_location=require_sc,
            keep_states=keep_states,
            shard=shard,
            shard_count=shard_count,
        )[model.name]

    return run_observed(run)


def merge_results(partials: Sequence) -> "RunResult":
    """Sum shard-local :class:`~repro.herd.RunResult` counters.

    Witness executions are taken from the lowest shard that found one, so
    the merged result is deterministic for a fixed shard count.
    """
    merged = partials[0]
    for partial in partials[1:]:
        merged.candidates += partial.candidates
        merged.allowed += partial.allowed
        merged.witnesses += partial.witnesses
        merged.states |= partial.states
        if merged.witness_execution is None:
            merged.witness_execution = partial.witness_execution
        if merged.forbidden_witness is None:
            merged.forbidden_witness = partial.forbidden_witness
    return merged


def run_litmus_parallel(
    model,
    program,
    jobs: int,
    require_sc_per_location: bool = False,
    keep_states: bool = True,
):
    """Run one litmus test with its trace combinations sharded over ``jobs``
    worker processes.  Verdict, counts and state set are identical to the
    sequential :func:`repro.herd.run_litmus`."""
    from repro.herd import run_litmus_many

    jobs = max(1, int(jobs))
    if jobs == 1:
        return run_litmus_many(
            [model],
            program,
            require_sc_per_location=require_sc_per_location,
            keep_states=keep_states,
        )[model.name]
    if _obs.ENABLED:
        _obs.gauge("parallel.jobs", jobs)
        _obs.count("parallel.sharded_runs")
    tasks = [
        (model, program, shard, jobs, require_sc_per_location, keep_states)
        for shard in range(jobs)
    ]
    with _obs.span("parallel.run_litmus"):
        outcomes = persistent_pool(jobs).map(_run_shard, tasks)
    return merge_results(_absorb_reports(outcomes))


# -- many programs, distributed whole ------------------------------------


def _run_program(task):
    models, program, kwargs = task
    from repro.herd import run_litmus_many

    def run():
        results = run_litmus_many(models, program, **kwargs)
        return program.name, {
            model.name: results[model.name].verdict for model in models
        }

    return run_observed(run)


def verdicts_parallel(
    models: List,
    programs: List,
    jobs: int,
    **kwargs,
) -> Dict[str, Dict[str, str]]:
    """The :func:`repro.herd.verdicts` table, one program per pool task.

    The early-exit/verdict-only defaults match :func:`repro.herd.verdicts`
    exactly (for callers that come here directly), so serial and
    distributed sweeps scan the same candidate prefixes, check the same
    candidates, and their merged counters agree (``tests/test_obs.py``).
    """
    kwargs.setdefault("stop_when_decided", _config.vm_enabled())
    kwargs.setdefault("verdict_only", _config.vm_enabled())
    jobs = max(1, int(jobs))
    tasks = [(models, program, kwargs) for program in programs]
    if jobs == 1 or len(tasks) <= 1:
        outcomes = [_run_program(task) for task in tasks]
    else:
        if _obs.ENABLED:
            _obs.gauge("parallel.jobs", jobs)
            _obs.count("parallel.program_batches")
        with _obs.span("parallel.verdicts"):
            pool = persistent_pool(min(jobs, len(tasks)))
            outcomes = pool.map(_run_program, tasks)
    return dict(_absorb_reports(outcomes))
