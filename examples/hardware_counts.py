#!/usr/bin/env python
"""klitmus-style hardware testing on simulated machines.

Runs a few litmus tests many times on each simulated architecture
(out-of-order windows + store buffers + native grace periods) and prints
Table-5-style observation counts, then cross-checks the soundness claim:
nothing the machines exhibit is forbidden by the LK model.
"""

from repro import LinuxKernelModel, litmus_library, run_litmus
from repro.hardware import run_klitmus
from repro.hardware.archspec import TABLE5_ARCHS

TESTS = ["SB", "SB+mbs", "MP", "MP+wmb+rmb", "LB", "RWC", "RCU-MP"]
RUNS = 5000


def main() -> None:
    lkmm = LinuxKernelModel()

    header = f"{'test':12s} {'Model':7s} " + " ".join(
        f"{a:>12s}" for a in TABLE5_ARCHS
    )
    print(header)
    print("-" * len(header))

    for name in TESTS:
        test = litmus_library.get(name)
        verdict = run_litmus(lkmm, test).verdict
        cells = []
        for arch in TABLE5_ARCHS:
            result = run_klitmus(test, arch, runs=RUNS)
            cells.append(f"{result.summary():>12s}")
            if verdict == "Forbid":
                assert result.observed == 0, "soundness violated?!"
        print(f"{name:12s} {verdict:7s} " + " ".join(cells))

    print(
        f"\nEach cell is observed/runs over {RUNS} randomised schedules.\n"
        "Forbidden rows show 0 everywhere (the soundness claim of the\n"
        "paper's Section 5.1); allowed rows show where each machine's\n"
        "weakness is actually visible — note MP and LB never show on x86\n"
        "(TSO) but do on the weaker machines, while SB shows everywhere."
    )

    print("\nFull histogram for SB on x86 (the classic store-buffering split):")
    print(run_klitmus(litmus_library.get("SB"), "x86", runs=RUNS).describe())


if __name__ == "__main__":
    main()
