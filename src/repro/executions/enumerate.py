"""Enumeration of all candidate executions of a litmus test.

The enumeration follows herd's structure:

1. compute per-location *possible value sets* (a fixpoint seeded with the
   initial values — :func:`repro.executions.thread_sem.possible_value_sets`);
2. enumerate every *trace* of every thread (each trace fixes the values its
   reads return and therefore its control-flow path);
3. for each combination of traces, enumerate every *reads-from* assignment
   (each read is mapped to a same-location write of the value it chose,
   including the implicit initialising writes) and every *coherence order*
   (a permutation of the non-initial writes per location, after the
   initialising write);
4. each combination yields one :class:`CandidateExecution`.

Reads whose chosen value is written nowhere have no rf source and are
pruned, which also discards the spurious values the fixpoint of step 1 may
over-approximate.

Two performance mechanisms (both from :mod:`repro.kernel`, both
behaviour-preserving, both on by default — ``REPRO_INCREMENTAL=0``
restores the naive path):

* the trace-invariant structure of step 3 — events, base relations, and
  everything derivable from them — is computed once per trace combination
  and shared across all rf×co candidates via a
  :class:`~repro.kernel.skeleton.TraceSkeleton`;
* when ``require_sc_per_location`` is set, coherence orders are *pruned as
  they are extended*: a permutation prefix whose partial
  ``po-loc | rf | co | fr`` graph already has a cycle cannot lead to any
  surviving candidate (adding the remaining co/fr edges only grows the
  graph), so its whole subtree is skipped instead of generating and
  filtering every completion.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Tuple

from repro.events import Event, FENCE, INIT_TID, ONCE, READ, WRITE, _index_to_label
from repro.guard import core as _guard
from repro.kernel import config as _config
from repro.obs import core as _obs
from repro.kernel.bitrel import _bits, index_for, reaches
from repro.kernel.skeleton import TraceSkeleton
from repro.litmus.ast import Program
from repro.relations import Relation
from repro.executions.candidate import CandidateExecution
from repro.executions.thread_sem import (
    ProtoEvent,
    ThreadTrace,
    enumerate_thread_traces,
    possible_value_sets,
)


def candidate_executions(
    program: Program,
    require_sc_per_location: bool = False,
) -> Iterator[CandidateExecution]:
    """Yield every candidate execution of ``program``.

    When ``require_sc_per_location`` is true, executions violating
    ``acyclic(po-loc | com)`` are filtered out during enumeration.  All the
    models shipped with this package include that axiom, so the filter
    never changes a verdict but dramatically shrinks the search space for
    the larger programs (e.g. the inlined RCU implementation of Section 6).
    """
    yield from candidate_executions_sharded(
        program, 0, 1, require_sc_per_location=require_sc_per_location
    )


def candidate_executions_sharded(
    program: Program,
    shard: int,
    shard_count: int,
    require_sc_per_location: bool = False,
) -> Iterator[CandidateExecution]:
    """Candidate executions of every ``shard_count``-th trace combination.

    Trace enumeration is deterministic, so ``shard_count`` workers each
    running shard ``0..shard_count-1`` partition the full candidate stream
    without communicating (:mod:`repro.kernel.parallel`).
    """
    with _obs.span("enumerate.thread_traces"):
        value_sets = possible_value_sets(program)
        per_thread: List[List[ThreadTrace]] = [
            enumerate_thread_traces(thread, value_sets)
            for thread in program.threads
        ]
        locations = program.locations()

    for combo_index, traces in enumerate(itertools.product(*per_thread)):
        if combo_index % shard_count != shard:
            continue
        if _guard.ACTIVE:
            _guard._current.tick()  # budget safepoint: one trace combination
        if _obs.ENABLED:
            _obs.count("enumerate.trace_combos")
        yield from _executions_of_traces(
            program, locations, traces, require_sc_per_location
        )


def count_candidate_executions(program: Program, **kwargs) -> int:
    """The number of candidate executions (mostly for tests and reports)."""
    return sum(1 for _ in candidate_executions(program, **kwargs))


def _order_pairs(order: List[Event]) -> Iterator[Tuple[Event, Event]]:
    """Strict-total-order pairs of ``order`` (earlier -> later)."""
    for i in range(len(order)):
        for j in range(i + 1, len(order)):
            yield (order[i], order[j])


def _executions_of_traces(
    program: Program,
    locations: List[str],
    traces: Tuple[ThreadTrace, ...],
    require_sc_per_location: bool,
) -> Iterator[CandidateExecution]:
    events: List[Event] = []
    eid = 0
    label_counter = 0

    # Implicit initialising writes, one per location.
    init_writes: Dict[str, Event] = {}
    for po_index, location in enumerate(locations):
        event = Event(
            eid=eid,
            tid=INIT_TID,
            po_index=po_index,
            kind=WRITE,
            tag=ONCE,
            loc=location,
            value=program.initial_value(location),
            label=f"i{location}",
        )
        init_writes[location] = event
        events.append(event)
        eid += 1

    # Thread events, with trace-local indices mapped to global events.
    po_pairs: List[Tuple[Event, Event]] = []
    addr_pairs: List[Tuple[Event, Event]] = []
    data_pairs: List[Tuple[Event, Event]] = []
    ctrl_pairs: List[Tuple[Event, Event]] = []
    rmw_pairs: List[Tuple[Event, Event]] = []
    final_regs: Dict[Tuple[int, str], object] = {}

    for tid, trace in enumerate(traces):
        local: List[Event] = []
        for po_index, proto in enumerate(trace.events):
            label = ""
            if proto.kind != FENCE:
                label = _index_to_label(label_counter)
                label_counter += 1
            event = Event(
                eid=eid,
                tid=tid,
                po_index=po_index,
                kind=proto.kind,
                tag=proto.tag,
                loc=proto.loc,
                value=proto.value,
                label=label,
            )
            eid += 1
            local.append(event)
            events.append(event)
        for i, a in enumerate(local):
            for b in local[i + 1:]:
                po_pairs.append((a, b))
        for index, proto in enumerate(trace.events):
            target = local[index]
            for read_index in proto.addr_deps:
                addr_pairs.append((local[read_index], target))
            for read_index in proto.data_deps:
                data_pairs.append((local[read_index], target))
            for read_index in proto.ctrl_deps:
                ctrl_pairs.append((local[read_index], target))
        for read_index, write_index in trace.rmw_pairs:
            rmw_pairs.append((local[read_index], local[write_index]))
        for reg, value in trace.final_regs.items():
            final_regs[(tid, reg)] = value

    universe = frozenset(events)
    po = Relation(po_pairs, universe)
    addr = Relation(addr_pairs, universe)
    data = Relation(data_pairs, universe)
    ctrl = Relation(ctrl_pairs, universe)
    rmw = Relation(rmw_pairs, universe)

    # Reads-from candidates.
    reads = [e for e in events if e.kind == READ]
    writes_by_loc: Dict[str, List[Event]] = {}
    for event in events:
        if event.kind == WRITE:
            writes_by_loc.setdefault(event.loc, []).append(event)

    rf_candidates: List[List[Event]] = []
    for read in reads:
        sources = [
            w
            for w in writes_by_loc.get(read.loc, [])
            if w.value == read.value and w is not read
        ]
        if not sources:
            # This trace combination chose an unwritable value.
            if _obs.ENABLED:
                _obs.count("enumerate.pruned.unwritable_trace")
            return
        rf_candidates.append(sources)

    # Coherence candidates: per location, init write first, then any
    # permutation of the remaining writes.
    non_init_by_loc: List[List[Event]] = [
        [w for w in writes_by_loc.get(location, []) if not w.is_init]
        for location in locations
    ]

    incremental = _config.incremental_enabled()
    shared: Optional[TraceSkeleton] = None
    if incremental:
        shared = TraceSkeleton(universe)
        po_loc_pairs = [
            (a, b)
            for a, b in po_pairs
            if a.loc is not None and a.loc == b.loc
        ]
        shared.seed("po_loc", Relation(po_loc_pairs, universe))

    def build(rf: Relation, co_pairs: List[Tuple[Event, Event]]):
        return CandidateExecution(
            universe,
            po,
            addr,
            data,
            ctrl,
            rmw,
            rf,
            Relation(co_pairs, universe),
            final_regs=final_regs,
            name=program.name,
            shared=shared,
        )

    if incremental and require_sc_per_location:
        yield from _pruned_candidates(
            universe,
            reads,
            rf_candidates,
            locations,
            init_writes,
            non_init_by_loc,
            build,
        )
        return

    # Naive path: enumerate complete rf×co candidates, filtering (when
    # asked) after construction.
    co_orders_per_loc: List[List[List[Event]]] = [
        [
            [init_writes[location]] + list(perm)
            for perm in itertools.permutations(non_init)
        ]
        for location, non_init in zip(locations, non_init_by_loc)
    ]

    for rf_choice in itertools.product(*rf_candidates):
        rf = Relation(zip(rf_choice, reads), universe)
        for co_combo in itertools.product(*co_orders_per_loc):
            if _guard.ACTIVE:
                _guard._current.tick()  # budget safepoint: one rf×co assignment
            co_pairs: List[Tuple[Event, Event]] = []
            for order in co_combo:
                co_pairs.extend(_order_pairs(order))
            execution = build(rf, co_pairs)
            if require_sc_per_location and not (
                execution.po_loc | execution.com
            ).is_acyclic():
                if _obs.ENABLED:
                    _obs.count("enumerate.pruned.sc_filtered")
                continue
            if _guard.ACTIVE:
                _guard._current.note_candidate()
            if _obs.ENABLED:
                _obs.count("enumerate.candidates")
            yield execution


def _pruned_candidates(
    universe: frozenset,
    reads: List[Event],
    rf_candidates: List[List[Event]],
    locations: List[str],
    init_writes: Dict[str, Event],
    non_init_by_loc: List[List[Event]],
    build,
) -> Iterator[CandidateExecution]:
    """rf×co enumeration with incremental ``acyclic(po-loc | com)`` pruning.

    The check graph is maintained as adjacency bitset rows over the
    universe's event index.  For a fixed rf, coherence orders are extended
    one write at a time (location by location, writes in the same order as
    ``itertools.permutations``, so the surviving candidate stream is
    *identical* to the naive path's — same candidates, same order).
    Appending write ``w`` after prefix ``p1..pk`` adds only edges into
    ``w``: ``co`` edges from each ``pi`` and ``fr`` edges from each read
    of ``pi``.  The extension creates a cycle iff ``w`` reaches one of
    those edge sources, and since every completion of the prefix keeps its
    edges, a cyclic prefix prunes its entire subtree.
    """
    index = index_for(universe)
    pos = index.pos
    n = index.n

    # Static part of the check graph: po-loc.
    static_rows = [0] * n
    for a in universe:
        if a.loc is None:
            continue
        # po-loc: same thread, same location, po-earlier.
        for b in universe:
            if (
                b.loc == a.loc
                and b.tid == a.tid
                and a.tid != INIT_TID
                and a.po_index < b.po_index
            ):
                static_rows[pos[a]] |= 1 << pos[b]

    read_pos = [pos[r] for r in reads]

    for rf_choice in itertools.product(*rf_candidates):
        if _guard.ACTIVE:
            _guard._current.tick()  # budget safepoint: one rf assignment
        rows = list(static_rows)
        readers_of = [0] * n  # write position -> bitmask of its readers
        for write, r_pos in zip(rf_choice, read_pos):
            w_pos = pos[write]
            rows[w_pos] |= 1 << r_pos
            readers_of[w_pos] |= 1 << r_pos
        # A cycle in po-loc | rf survives in every completion: skip the
        # whole co sweep for this rf assignment.
        if _has_cycle(rows, n):
            if _obs.ENABLED:
                _obs.count("enumerate.pruned.rf_cycle")
            continue

        rf = Relation(zip(rf_choice, reads), universe)
        chosen_orders: List[Optional[List[Event]]] = [None] * len(locations)

        def extend_location(loc_index: int, rows: List[int]):
            if loc_index == len(locations):
                co_pairs: List[Tuple[Event, Event]] = []
                for order in chosen_orders:
                    co_pairs.extend(_order_pairs(order))
                if _guard.ACTIVE:
                    _guard._current.note_candidate()
                if _obs.ENABLED:
                    _obs.count("enumerate.candidates")
                yield build(rf, co_pairs)
                return
            init = init_writes[locations[loc_index]]
            yield from extend_order(
                loc_index, [init], non_init_by_loc[loc_index], rows
            )

        def extend_order(
            loc_index: int,
            prefix: List[Event],
            remaining: List[Event],
            rows: List[int],
        ):
            if not remaining:
                chosen_orders[loc_index] = prefix
                yield from extend_location(loc_index + 1, rows)
                return
            if _guard.ACTIVE:
                # Budget safepoint, batched: one tick per co extension
                # step at this level (cheaper than one call per step).
                _guard._current.tick(len(remaining))
            for i, write in enumerate(remaining):
                w_pos = pos[write]
                w_bit = 1 << w_pos
                new_rows = list(rows)
                sources = 0
                for earlier in prefix:
                    e_pos = pos[earlier]
                    new_rows[e_pos] |= w_bit  # co: earlier -> write
                    sources |= 1 << e_pos
                    readers = readers_of[e_pos]
                    sources |= readers
                    for r_pos in _bits(readers):
                        new_rows[r_pos] |= w_bit  # fr: reader -> write
                if reaches(new_rows, w_pos, sources):
                    # Cyclic prefix: prune every completion.
                    if _obs.ENABLED:
                        _obs.count("enumerate.pruned.co_prefix")
                    continue
                yield from extend_order(
                    loc_index,
                    prefix + [write],
                    remaining[:i] + remaining[i + 1:],
                    new_rows,
                )

        yield from extend_location(0, rows)


def _has_cycle(rows: List[int], n: int) -> bool:
    """Cycle test on adjacency bitmask rows (iterative removal of sinks)."""
    alive = (1 << n) - 1
    while alive:
        removed = 0
        for i in _bits(alive):
            if not (rows[i] & alive):
                removed |= 1 << i
        if not removed:
            return True  # every remaining node has a live successor
        alive &= ~removed
    return False
