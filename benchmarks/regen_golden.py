"""Regenerate the golden verdict snapshot (``tests/data/verdicts_golden.json``).

The snapshot freezes :func:`repro.herd.verdicts` for the *entire* built-in
litmus library against the four cat models the paper compares — LKMM, C11,
SC and x86-TSO — so any behavioural drift in the enumerator, the cat
interpreter, or a model file fails ``tests/test_golden_verdicts.py``
loudly instead of slipping through as a "both sides changed" differential
blind spot.

Run after an *intentional* model/semantics change, then review the diff::

    PYTHONPATH=src python benchmarks/regen_golden.py
    git diff tests/data/verdicts_golden.json
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cat import load_model  # noqa: E402
from repro.herd import verdicts  # noqa: E402
from repro.litmus import library  # noqa: E402

GOLDEN_PATH = REPO_ROOT / "tests" / "data" / "verdicts_golden.json"

#: cat files frozen by the snapshot, in table-column order.
MODELS = ("lkmm", "c11", "sc", "tso")


def compute_table():
    models = [load_model(name) for name in MODELS]
    programs = [library.get(name) for name in sorted(library.all_names())]
    return verdicts(models, programs, require_sc_per_location=True)


def main() -> int:
    table = compute_table()
    snapshot = {
        "models": list(MODELS),
        "require_sc_per_location": True,
        "verdicts": table,
    }
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {len(table)} tests x {len(MODELS)} models to {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
