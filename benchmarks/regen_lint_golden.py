"""Regenerate the golden lint snapshot (``tests/data/lint_golden.json``).

The snapshot freezes the per-test finding *codes* of
:func:`repro.analysis.litmuslint.lint_library` over the entire built-in
litmus library, plus the per-model codes of
:func:`repro.analysis.catlint.lint_all_models` over every shipped cat
model.  Any checker that starts (or stops) firing on existing inputs
fails ``tests/test_lint_golden.py`` loudly instead of drifting silently —
codes are part of the tool's output contract.

Run after an *intentional* checker change, then review the diff::

    PYTHONPATH=src python benchmarks/regen_lint_golden.py
    git diff tests/data/lint_golden.json
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.catlint import lint_all_models  # noqa: E402
from repro.analysis.litmuslint import lint_library  # noqa: E402

GOLDEN_PATH = REPO_ROOT / "tests" / "data" / "lint_golden.json"


def compute_snapshot():
    return {
        "library": {
            name: sorted(f"{f.code}:{f.category}" for f in findings)
            for name, findings in lint_library().items()
        },
        "models": {
            name: sorted(f"{f.code}:{f.category}" for f in findings)
            for name, findings in lint_all_models().items()
        },
    }


def main() -> int:
    snapshot = compute_snapshot()
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    )
    flagged = sum(1 for codes in snapshot["library"].values() if codes)
    print(
        f"wrote {len(snapshot['library'])} tests "
        f"({flagged} with findings) and {len(snapshot['models'])} models "
        f"to {GOLDEN_PATH}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
