"""Derived helper relations shared by the native models and the cat layer.

The paper omits the definition of ``crit`` ("we omit its definition for
brevity", Section 4.2); in herd it comes from the bell layer.  We compute
it directly: ``crit`` connects each *outermost* ``rcu_read_lock`` event to
its matching ``rcu_read_unlock``, tracking nesting depth per thread.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.events import Event, RCU_LOCK, RCU_UNLOCK
from repro.executions.candidate import CandidateExecution
from repro.relations import Relation


def crit_relation(execution: CandidateExecution) -> Relation:
    """Outermost lock -> matching unlock pairs (the paper's ``crit``).

    Memoised on the execution's trace skeleton: ``crit`` only depends on
    events and program order, never on rf/co.
    """
    return execution.shared_memo("crit", lambda: _compute_crit(execution))


def _compute_crit(execution: CandidateExecution) -> Relation:
    pairs: List[Tuple[Event, Event]] = []
    by_tid: Dict[int, List[Event]] = {}
    for event in execution.events:
        by_tid.setdefault(event.tid, []).append(event)
    for events in by_tid.values():
        events.sort(key=lambda e: e.po_index)
        depth = 0
        outermost: Optional[Event] = None
        for event in events:
            if event.has_tag(RCU_LOCK):
                if depth == 0:
                    outermost = event
                depth += 1
            elif event.has_tag(RCU_UNLOCK):
                depth -= 1
                if depth == 0 and outermost is not None:
                    pairs.append((outermost, event))
                    outermost = None
    return Relation(pairs, execution.universe)
