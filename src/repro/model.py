"""The model interface: judging candidate executions.

A consistency model, axiomatic style, is a predicate on candidate
executions (Section 2 of the paper).  Implementations here are either
*native* Python models (:mod:`repro.lkmm.model`) or cat files executed by
the interpreter (:mod:`repro.cat.eval`); both produce the same
:class:`ModelResult` so they can be compared differentially.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.events import Event
from repro.executions.candidate import CandidateExecution


@dataclass(frozen=True)
class AxiomViolation:
    """One failed constraint of a model.

    ``kind`` is the cat check that failed (``acyclic``, ``irreflexive`` or
    ``empty``); ``witness`` is a cycle (for acyclicity/irreflexivity, as a
    list of events ``[e0, ..., e0]``) or the offending pairs (for
    emptiness).
    """

    axiom: str
    kind: str
    witness: tuple = ()

    def describe(self) -> str:
        if self.kind in ("acyclic", "irreflexive") and self.witness:
            path = " -> ".join(e.label or f"e{e.eid}" for e in self.witness)
            return f"{self.axiom}: cycle {path}"
        if self.kind == "empty" and self.witness:
            pairs = ", ".join(
                f"({a.label or a.eid},{b.label or b.eid})" for a, b in self.witness
            )
            return f"{self.axiom}: non-empty {{{pairs}}}"
        return f"{self.axiom}: violated"


@dataclass
class ModelResult:
    """The outcome of checking one execution against one model."""

    allowed: bool
    violations: List[AxiomViolation] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.allowed

    def describe(self) -> str:
        if self.allowed:
            return "allowed"
        return "forbidden: " + "; ".join(v.describe() for v in self.violations)


class Model(abc.ABC):
    """A consistency model: allows or forbids candidate executions."""

    #: Human-readable name (e.g. ``LKMM``, ``C11``, ``x86-TSO``).
    name: str = "model"

    @abc.abstractmethod
    def check(self, execution: CandidateExecution) -> ModelResult:
        """Judge one candidate execution."""

    def allows(self, execution: CandidateExecution) -> bool:
        return self.check(execution).allowed

    def __repr__(self) -> str:
        return f"<Model {self.name}>"
