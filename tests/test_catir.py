"""Tests for the relational IR: normalization, interning, the algebraic
analyses (emptiness, subsumption), and the CAT011–CAT014 findings."""

from __future__ import annotations

import json

import pytest

from repro.analysis.catir import compile_model, compile_source, ir
from repro.analysis.catir.analyses import (
    analyze_cat_file,
    analyze_compiled,
    parse_suppressions,
    prove_empty,
    subsumes,
)
from repro.analysis.catir.compile import CatIRError, compile_expr
from repro.analysis.catlint import lint_cat_source
from repro.analysis.findings import findings_to_json, findings_to_sarif
from repro.cat.parser import parse_expr_text


def compiled(text: str) -> ir.Node:
    """Compile one expression over the builtin environment."""
    return compile_expr(parse_expr_text(text), {})


class TestNormalization:
    def test_union_with_empty(self):
        assert compiled("po | 0") is compiled("po")

    def test_union_flattens_and_sorts(self):
        assert compiled("(rf | po) | co") is compiled("co | (po | rf)")

    def test_union_idempotent(self):
        assert compiled("po | po") is compiled("po")

    def test_inter_with_empty(self):
        assert compiled("po & 0").kind == "empty"

    def test_inter_universe_dropped(self):
        assert compiled("R & _") is compiled("R")

    def test_seq_with_empty(self):
        assert compiled("po ; 0 ; rf").kind == "empty"

    def test_seq_flattens(self):
        assert compiled("(po ; rf) ; co") is compiled("po ; (rf ; co)")

    def test_seq_drops_identity(self):
        assert compiled("id ; po") is compiled("po")

    def test_seq_fuses_restrictions(self):
        assert compiled("[R] ; [M]") is compiled("[M & R]")

    def test_seq_fusing_disjoint_restrictions_is_empty(self):
        # Structural: [R];[W] = [R & W] and R & W is... NOT folded to
        # empty (kind disjointness is heuristic, analyses-only).
        node = compiled("[R] ; [W]")
        assert node.kind == "setid"

    def test_diff_self(self):
        assert compiled("po \\ po").kind == "empty"

    def test_diff_empty_rhs(self):
        assert compiled("po \\ 0") is compiled("po")

    def test_double_complement(self):
        assert compiled("~~po") is compiled("po")

    def test_closure_collapses(self):
        assert compiled("(po+)*") is compiled("po*")
        assert compiled("(po+)+") is compiled("po+")
        assert compiled("(po?)+") is compiled("po*")
        assert compiled("po?*") is compiled("po*")

    def test_subidentity_closures(self):
        assert compiled("[R]+") is compiled("[R]")
        assert compiled("[R]*") is compiled("id")
        assert compiled("0*") is compiled("id")

    def test_inverse_folds(self):
        assert compiled("po^-1^-1") is compiled("po")
        assert compiled("loc^-1") is compiled("loc")
        assert compiled("[R]^-1") is compiled("[R]")

    def test_setid_of_universe(self):
        assert compiled("[_]") is compiled("id")

    def test_domain_range(self):
        assert compiled("domain([R])") is compiled("R")
        assert compiled("range(0)").kind == "empty"
        assert compiled("domain(id)") is compiled("_")

    def test_set_in_relation_position_is_coerced(self):
        node = compiled("R | po")
        assert node.sort == ir.REL
        assert compiled("R | po") is compiled("[R] | po")


class TestPrettyRoundTrip:
    """pstr is valid cat syntax and recompiles to the same node."""

    CASES = [
        "po | rf ; co",
        "(po | rf) ; co",
        "po \\ rf & co",
        "(po \\ rf) & co",
        "R * W & po",
        "~(R * W)",
        "[Acquire] ; po ; [Release]",
        "fencerel(Mb) | po ; [Release]",
        "(rf | po)+ ; co?",
        "rf^-1 ; co & ext",
        "domain(rf) * range(co)",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_round_trip(self, text):
        node = compiled(text)
        assert compile_expr(parse_expr_text(node.pstr), {}) is node

    @pytest.mark.parametrize("name", [
        "lkmm", "lkmm-core", "c11", "tso", "sc", "power", "armv7",
        "armv8", "alpha",
    ])
    def test_round_trip_bundled_model(self, name):
        model = compile_model(name)
        env = dict(model.definitions)
        for dname, node in model.definitions.items():
            if node.kind == "rec":
                continue  # rec names only mean something inside the group
            reparsed = compile_expr(parse_expr_text(node.pstr), env)
            assert reparsed is node, f"{name}:{dname}"
        for check in model.checks:
            if check.root.rec_ids:
                continue
            reparsed = compile_expr(parse_expr_text(check.root.pstr), env)
            assert reparsed is check.root, f"{name}:{check.label}"


class TestCompileErrors:
    def test_unbound_identifier(self):
        with pytest.raises(CatIRError, match="unbound identifier"):
            compiled("nonesuch")

    def test_function_as_value(self):
        with pytest.raises(CatIRError, match="used as a plain value"):
            compile_source("let f(x) = x\nlet y = f | po")

    def test_cartesian_of_relation(self):
        with pytest.raises(CatIRError, match="expected an event set"):
            compiled("po * rf")

    def test_recursive_function(self):
        # Lexical capture excludes the function itself, exactly as the
        # evaluator's CatFunction does: self-application is unbound.
        with pytest.raises(CatIRError, match="unknown function"):
            compile_source("let f(x) = f(x)\nlet y = f(po)")

    def test_function_inlining(self):
        model = compile_source(
            "let f(r) = rf? ; r\nlet a = f(po)\nlet b = rf? ; po"
        )
        assert model.definitions["a"] is model.definitions["b"]


class TestProveEmpty:
    def test_disjoint_kind_sets(self):
        assert prove_empty(compiled("R & W"))

    def test_disjoint_tag_sets(self):
        assert prove_empty(compiled("Acquire & Release"))

    def test_tag_vs_kind_unproven(self):
        assert prove_empty(compiled("M & Acquire")) is None

    def test_int_ext_disjoint(self):
        assert prove_empty(compiled("po & ext"))

    def test_id_vs_irreflexive(self):
        assert prove_empty(compiled("id & po"))

    def test_seq_range_domain_mismatch(self):
        # rf ends in reads; co starts at writes.
        assert prove_empty(compiled("rf ; co"))

    def test_seq_through_restrictions(self):
        assert prove_empty(compiled("[W] ; rf ; [W]"))

    def test_live_seq_unproven(self):
        assert prove_empty(compiled("rf ; po")) is None

    def test_diff_subsumed(self):
        assert prove_empty(compiled("po \\ (po | rf)"))

    def test_union_of_empties(self):
        assert prove_empty(compiled("(R & W) | (rf ; co)"))

    def test_union_with_live_branch(self):
        assert prove_empty(compiled("(R & W) | po")) is None

    def test_cartesian_of_empty(self):
        assert prove_empty(compiled("(R & W) * M"))

    def test_recursive_group_of_empties(self):
        # F(0) = 0, so the least fixpoint is empty.
        model = compile_source("let rec r = (r ; po) | (R & W) * M")
        assert prove_empty(model.definitions["r"])

    def test_recursive_group_live(self):
        model = compile_source("let rec r = (r ; po) | rf")
        assert prove_empty(model.definitions["r"]) is None


class TestSubsumes:
    def test_reflexive(self):
        assert subsumes(compiled("po"), compiled("po"))

    def test_union_branch(self):
        assert subsumes(compiled("po | rf"), compiled("po"))

    def test_union_both_branches(self):
        assert subsumes(compiled("po | rf | co"), compiled("rf | po"))

    def test_inter_operand(self):
        assert subsumes(compiled("po"), compiled("po & rf"))

    def test_diff_of_sub(self):
        assert subsumes(compiled("po"), compiled("po \\ rf"))

    def test_plus_contains_base(self):
        assert subsumes(compiled("po+"), compiled("po"))

    def test_plus_closed_under_composition(self):
        assert subsumes(compiled("po+"), compiled("po ; po"))

    def test_plus_monotone(self):
        assert subsumes(compiled("(po | rf)+"), compiled("po+"))

    def test_star_contains_identity_things(self):
        assert subsumes(compiled("po*"), compiled("[R]"))

    def test_seq_restriction_dropped(self):
        assert subsumes(compiled("po"), compiled("[R] ; po ; [W]"))

    def test_base_attr_int(self):
        assert subsumes(compiled("int"), compiled("po"))

    def test_set_containment(self):
        assert subsumes(compiled("M"), compiled("R"))
        assert subsumes(compiled("_"), compiled("IW"))

    def test_cartesian_bounds(self):
        assert subsumes(compiled("W * R"), compiled("rf"))
        assert subsumes(compiled("W * M"), compiled("co"))

    def test_not_subsumed(self):
        assert not subsumes(compiled("po"), compiled("rf"))
        assert not subsumes(compiled("po+"), compiled("rf ; po"))


def findings_for(text: str, suppress=()):
    model = compile_source(text)
    found = analyze_compiled(model)
    if suppress:
        found = [f for f in found if f.code not in suppress]
    return found


def codes_for(text: str):
    return [f.code for f in findings_for(text)]


class TestDeadCheck:
    def test_positive_empty_intersection(self):
        assert "CAT011" in codes_for("empty rf & co as dead")

    def test_positive_acyclic_of_empty(self):
        assert "CAT011" in codes_for("acyclic rf ; co as dead")

    def test_negative_live_check(self):
        assert codes_for("acyclic po | rf as live") == []

    def test_negated_check_not_dead(self):
        # `~empty 0` FAILS on every execution; calling it trivially
        # satisfied would be exactly wrong.
        assert codes_for("~empty rf & co as witness") == []

    def test_message_names_the_check(self):
        (finding,) = findings_for("empty R & W as never")
        assert "never" in finding.message
        assert finding.severity == "warning"


class TestRedundantCheck:
    def test_empty_subsumed_by_earlier(self):
        assert "CAT012" in codes_for(
            "empty po & loc as wide\n" "empty (po & loc) & rf as narrow"
        )

    def test_irreflexive_subsumed_by_earlier(self):
        assert "CAT012" in codes_for(
            "irreflexive po | rf as wide\n" "irreflexive po as narrow"
        )

    def test_irreflexive_implied_by_acyclic(self):
        assert "CAT012" in codes_for(
            "acyclic po | rf as order\n" "irreflexive po ; rf as inner"
        )

    def test_negative_distinct_checks(self):
        assert codes_for(
            "empty rmw & loc as a\n" "acyclic po | rf as b"
        ) == []

    def test_order_matters(self):
        # The wide check comes second: the narrow one is NOT redundant.
        assert codes_for(
            "empty (po & loc) & rf as narrow\n" "empty po & loc as wide"
        ) == []

    def test_flag_checks_are_not_premises(self):
        assert codes_for(
            "flag empty po & loc as wide\n"
            "empty (po & loc) & rf as narrow"
        ) == []


class TestImpliedAcyclicity:
    def test_positive(self):
        assert "CAT014" in codes_for(
            "acyclic po | rf as order\n" "acyclic po as sub"
        )

    def test_positive_through_seq(self):
        assert "CAT014" in codes_for(
            "acyclic po | rf as order\n" "acyclic po ; rf as comp"
        )

    def test_negative_incomparable(self):
        assert codes_for(
            "acyclic po | rf as order\n" "acyclic po | co as other"
        ) == []

    def test_negative_wrong_direction(self):
        assert codes_for(
            "acyclic po as sub\n" "acyclic po | rf as order"
        ) == []


class TestUnreachableBinding:
    SOURCE = (
        "let used = po | rf\n"
        "let island = co ; co\n"
        "let chain = island & loc\n"
        "acyclic used as order\n"
    )

    def test_positive(self):
        codes = codes_for(self.SOURCE)
        # island is referenced (by chain) but chain never feeds a check;
        # chain itself is unused (CAT004's job, not CAT013's).
        assert codes == ["CAT013"]
        (finding,) = findings_for(self.SOURCE)
        assert "island" in finding.message

    def test_negative_all_reachable(self):
        assert codes_for(
            "let used = po | rf\nacyclic used as order"
        ) == []

    def test_unused_binding_is_not_unreachable(self):
        # A binding referenced by nothing at all is CAT004 territory.
        assert codes_for(
            "let lonely = po ; po\nacyclic po as order"
        ) == []

    def test_lint_reports_both_cat004_and_cat013(self):
        findings = lint_cat_source(self.SOURCE, name="m")
        codes = {f.code for f in findings}
        assert "CAT004" in codes  # chain is never used
        assert "CAT013" in codes  # island never feeds a check


class TestSuppressions:
    def test_parse(self):
        text = "(* lint: allow CAT011 *)\nlet a = po\n"
        assert parse_suppressions(text) == frozenset({"CAT011"})

    def test_parse_multiple(self):
        text = "(* lint: allow CAT011, CAT012 *)"
        assert parse_suppressions(text) == frozenset({"CAT011", "CAT012"})

    def test_no_suppressions(self):
        assert parse_suppressions("let a = po") == frozenset()

    def test_lint_respects_suppression(self):
        source = "empty R & W as dead\n"
        assert any(
            f.code == "CAT011" for f in lint_cat_source(source, name="m")
        )
        suppressed = lint_cat_source(
            "(* lint: allow CAT011, CAT010 *)\n" + source, name="m"
        )
        assert not any(
            f.code in ("CAT010", "CAT011") for f in suppressed
        )


class TestBundledModelsTriage:
    """Satellite: the nine bundled models are clean under CAT011-014 —
    no suppression comments are needed (see DESIGN.md)."""

    @pytest.mark.parametrize("name", [
        "lkmm", "lkmm-core", "c11", "tso", "sc", "power", "armv7",
        "armv8", "alpha",
    ])
    def test_no_semantic_findings(self, name):
        assert analyze_compiled(compile_model(name)) == []


class TestOutputFormats:
    def test_new_codes_in_json_and_sarif(self):
        findings = findings_for(
            "empty R & W as dead\n"
            "acyclic po | rf as order\n"
            "acyclic po as sub\n"
        )
        codes = {f.code for f in findings}
        assert {"CAT011", "CAT014"} <= codes
        doc = json.loads(findings_to_json(findings))
        assert {f["code"] for f in doc["findings"]} == codes
        sarif = json.loads(findings_to_sarif(findings))
        rule_ids = {
            rule["id"]
            for rule in sarif["runs"][0]["tool"]["driver"]["rules"]
        }
        assert codes <= rule_ids


class TestAnalyzeCatFile:
    def test_uncompilable_model_yields_nothing(self):
        from repro.cat.parser import parse_cat

        cat_file = parse_cat("acyclic nonesuch as broken")
        assert analyze_cat_file(cat_file) == []
