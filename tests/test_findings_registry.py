"""Registry-drift guard: every finding category emitted anywhere in the
analysis packages must be registered in ``findings.CATEGORIES``, every
registered category must still have an emission site, and the stable codes
must stay unique and well-formed."""

from __future__ import annotations

import re
from pathlib import Path

from repro.analysis.findings import CATEGORIES, ERROR, INFO, WARNING

ANALYSIS_ROOT = Path(__file__).parent.parent / "src" / "repro" / "analysis"

# The two direct emission idioms used across the analysis packages:
# the checker-local ``self._report("category", ...)`` wrappers, and
# ``Finding.of(source, "category", ...)``.
_REPORT_RE = re.compile(r'_report\(\s*"([a-z0-9-]+)"', re.S)
_OF_RE = re.compile(r'Finding\.of\(\s*[^,]+?,\s*"([a-z0-9-]+)"', re.S)

_CODE_RE = re.compile(r"^(CAT|LIT|FLOW|RCU|LOCK|DEP|RACE)\d{3}$")


def _analysis_sources():
    for path in sorted(ANALYSIS_ROOT.rglob("*.py")):
        if path.name != "findings.py":
            yield path, path.read_text()


def emitted_categories():
    """Categories passed directly to a ``_report`` wrapper or
    ``Finding.of`` call, mapped to the files that emit them."""
    emitted = {}
    for path, text in _analysis_sources():
        for pattern in (_REPORT_RE, _OF_RE):
            for match in pattern.finditer(text):
                emitted.setdefault(match.group(1), set()).add(path.name)
    return emitted


def test_every_emitted_category_is_registered():
    for category, files in emitted_categories().items():
        assert category in CATEGORIES, (
            f"{sorted(files)} emit unregistered category '{category}'; "
            "register it in repro.analysis.findings.CATEGORIES"
        )


def test_every_registered_category_is_emitted():
    # Some categories (CAT012/CAT014) are chosen dynamically and reach
    # Finding.of through a variable, so beyond the direct-call scan we
    # accept any occurrence of the category as a string literal.
    direct = set(emitted_categories())
    for category in CATEGORIES:
        if category in direct:
            continue
        literal = f'"{category}"'
        assert any(literal in text for _, text in _analysis_sources()), (
            f"registered category '{category}' has no emission site left; "
            "remove it from CATEGORIES or restore the analysis"
        )


def test_codes_are_unique():
    codes = [code for code, _ in CATEGORIES.values()]
    assert len(codes) == len(set(codes)), (
        f"duplicate finding codes: "
        f"{sorted(c for c in codes if codes.count(c) > 1)}"
    )


def test_codes_are_well_formed():
    for category, (code, severity) in CATEGORIES.items():
        assert _CODE_RE.match(code), f"'{category}' has malformed code {code!r}"
        assert severity in (ERROR, WARNING, INFO), category


def test_semantic_analysis_codes_are_stable():
    """The codes are part of the tool's output contract (SARIF rule ids,
    suppression comments); pin the new semantic-analysis block."""
    assert CATEGORIES["dead-check"] == ("CAT011", WARNING)
    assert CATEGORIES["redundant-check"] == ("CAT012", WARNING)
    assert CATEGORIES["unreachable-binding"] == ("CAT013", WARNING)
    assert CATEGORIES["implied-acyclicity"] == ("CAT014", WARNING)
