"""The Linux-kernel memory model (the paper's primary contribution).

Two interchangeable implementations exist:

* :class:`repro.lkmm.model.LinuxKernelModel` — a direct Python rendering of
  Figures 3, 8, and 12 of the paper (this module);
* ``cat/models/lkmm.cat`` — the model written in the cat language and run
  by :mod:`repro.cat.eval`, as the paper's artefact is.

The two are differentially tested against each other over the whole test
corpus (``tests/test_differential.py``), which is how we catch
transcription errors in either rendering.
"""

from repro.lkmm.model import LinuxKernelModel, LkmmRelations
from repro.lkmm.explain import explain_forbidden

__all__ = ["LinuxKernelModel", "LkmmRelations", "explain_forbidden"]
