"""Tests for candidate-execution enumeration."""

import pytest

from repro.executions import candidate_executions, count_candidate_executions
from repro.litmus import dsl, library
from repro.litmus.parser import parse_litmus


def execs(program, **kwargs):
    return list(candidate_executions(program, **kwargs))


class TestCounts:
    def test_single_thread_single_write(self):
        program = dsl.program("t", dsl.thread(dsl.write_once("x", 1)))
        assert count_candidate_executions(program) == 1

    def test_mp_has_four_candidates(self):
        # Two reads with two possible values each; single write per
        # location means co is forced.
        assert count_candidate_executions(library.get("MP")) == 4

    def test_coherence_order_enumerated(self):
        # Two writes to x from different threads: two coherence orders.
        program = dsl.program(
            "t",
            dsl.thread(dsl.write_once("x", 1)),
            dsl.thread(dsl.write_once("x", 2)),
        )
        assert count_candidate_executions(program) == 2

    def test_rf_choices_enumerated(self):
        # A read of value 1 with two same-value writers: two rf choices,
        # each with two co orders.
        program = dsl.program(
            "t",
            dsl.thread(dsl.write_once("x", 1)),
            dsl.thread(dsl.write_once("x", 1)),
            dsl.thread(dsl.read_once("r0", "x")),
        )
        executions = execs(program)
        reading_one = [
            x
            for x in executions
            if any(e.is_read and e.value == 1 for e in x.events)
        ]
        assert len(reading_one) == 4  # 2 rf sources x 2 co orders

    def test_unwritable_value_pruned(self):
        # The only values ever written to x are 0 (init); a trace choosing
        # any other value must not survive... there is none, so exactly one
        # execution exists.
        program = dsl.program("t", dsl.thread(dsl.read_once("r0", "x")))
        executions = execs(program)
        assert len(executions) == 1
        read = next(e for e in executions[0].events if e.is_read)
        assert read.value == 0


class TestStructure:
    def test_init_writes_present(self):
        program = library.get("MP")
        x = execs(program)[0]
        inits = [e for e in x.events if e.is_init]
        assert sorted(e.loc for e in inits) == ["x", "y"]

    def test_po_is_per_thread_total(self):
        x = execs(library.get("MP"))[0]
        for a, b in x.po.pairs:
            assert a.tid == b.tid
            assert a.po_index < b.po_index

    def test_rf_well_formed(self):
        for x in execs(library.get("MP+wmb+rmb")):
            targets = [b for _, b in x.rf.pairs]
            assert len(targets) == len(set(targets))  # one write per read
            for w, r in x.rf.pairs:
                assert w.is_write and r.is_read
                assert w.loc == r.loc and w.value == r.value

    def test_co_total_per_location(self):
        program = dsl.program(
            "t",
            dsl.thread(dsl.write_once("x", 1)),
            dsl.thread(dsl.write_once("x", 2)),
        )
        for x in execs(program):
            writes = [e for e in x.events if e.is_write and e.loc == "x"]
            assert x.co.is_total_order_on(writes)
            # Init write is co-first.
            init = next(e for e in writes if e.is_init)
            for other in writes:
                if other is not init:
                    assert (init, other) in x.co

    def test_rmw_relation(self):
        program = dsl.program("t", dsl.thread(dsl.xchg("r0", "x", 1)))
        x = execs(program)[0]
        assert len(x.rmw) == 1
        (read, write), = x.rmw.pairs
        assert read.is_read and write.is_write

    def test_final_state_registers_and_memory(self):
        program = library.get("MP")
        states = {x.final_state for x in execs(program)}
        # Memory is always x=1, y=1; registers vary.
        for state in states:
            assert state.memory["x"] == 1 and state.memory["y"] == 1
        regs = {
            (s.registers[(1, "r0")], s.registers[(1, "r1")]) for s in states
        }
        assert regs == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_labels_assigned_to_accesses(self):
        x = execs(library.get("MP"))[0]
        accesses = [e for e in x.events if e.is_memory_access and not e.is_init]
        assert all(e.label for e in accesses)
        fences = [e for e in x.events if e.is_fence]
        assert all(not e.label for e in fences)


class TestScpvPrefilter:
    def test_prefilter_only_removes_scpv_violations(self):
        program = library.get("CoRR")
        unfiltered = execs(program)
        filtered = execs(program, require_sc_per_location=True)
        assert len(filtered) < len(unfiltered)
        for x in filtered:
            assert (x.po_loc | x.com).is_acyclic()

    def test_prefilter_preserves_model_verdicts(self, lkmm):
        from repro.herd import run_litmus

        for name in ("MP+wmb+rmb", "SB", "CoRR", "At-inc"):
            program = library.get(name)
            a = run_litmus(lkmm, program)
            b = run_litmus(lkmm, program, require_sc_per_location=True)
            assert a.verdict == b.verdict
            assert a.witnesses == b.witnesses


class TestDerivedRelations:
    def test_fr_definition(self):
        for x in execs(library.get("SB")):
            manual = x.rf.inverse().sequence(x.co)
            assert x.fr == manual

    def test_int_ext_partition(self):
        x = execs(library.get("MP"))[0]
        n = len(x.events)
        assert len(x.int_) + len(x.ext) == n * n

    def test_loc_symmetric_reflexive_on_accesses(self):
        x = execs(library.get("MP"))[0]
        for a, b in x.loc.pairs:
            assert (b, a) in x.loc
            assert a.loc == b.loc
