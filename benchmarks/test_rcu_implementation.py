"""E12 — Theorem 2: correctness of the Figure 15 RCU implementation.

Inline the userspace-RCU implementation into the RCU tests (P -> P',
Figure 16) and check, exhaustively over the LK-allowed executions of P'
(with the implementation's wait loops unrolled to a bound), that every
outcome projects onto an LK-allowed outcome of P.
"""

from __future__ import annotations

import pytest

from repro.herd import run_litmus
from repro.litmus import library
from repro.lkmm import LinuxKernelModel
from repro.rcu import inline_rcu, verify_implementation

from conftest import once


def test_theorem2_rcu_mp(benchmark):
    def experiment():
        return verify_implementation(library.get("RCU-MP"), loop_bound=1)

    report = once(benchmark, experiment)
    print(f"\n{report.describe()}")
    assert report.holds
    assert report.impl_allowed > 0
    # Completeness too, on this test: the implementation reaches every
    # specification outcome.
    assert report.impl_outcomes == report.spec_outcomes


def test_theorem2_deferred_free(benchmark):
    def experiment():
        return verify_implementation(
            library.get("RCU-deferred-free"), loop_bound=1
        )

    report = once(benchmark, experiment)
    print(f"\n{report.describe()}")
    assert report.holds


def test_forbidden_outcome_forbidden_in_implementation(benchmark, lkmm):
    """Figure 16's scenario directly: the inlined RCU-MP still forbids
    the (r0=1, r1=0) witness."""

    def experiment():
        inlined = inline_rcu(library.get("RCU-MP"), loop_bound=1)
        return run_litmus(lkmm, inlined, require_sc_per_location=True)

    result = once(benchmark, experiment)
    print(
        f"\nRCU-MP+urcu: {result.verdict} "
        f"({result.allowed} allowed / {result.candidates} candidates)"
    )
    assert result.verdict == "Forbid"
    assert result.allowed > 0  # the check is not vacuous


def test_theorem2_with_deeper_unrolling(benchmark, lkmm):
    """Bound 2: executions where the grace period actually has to wait
    one full iteration for the reader are included."""

    def experiment():
        inlined = inline_rcu(library.get("RCU-MP"), loop_bound=2)
        return run_litmus(lkmm, inlined, require_sc_per_location=True)

    result = once(benchmark, experiment)
    print(
        f"\nRCU-MP+urcu (bound 2): {result.verdict} "
        f"({result.allowed} allowed / {result.candidates} candidates)"
    )
    assert result.verdict == "Forbid"
    assert result.allowed > 0
