"""Ablation benches: which part of the model forbids what.

One benefit of an *executable* model is that design choices can be
ablated and re-run.  Each ablation edits one definition of ``lkmm.cat``
and shows which paper test changes verdict — demonstrating that every
piece of Figure 8 is load-bearing:

* A-cumulativity of release/strong fences  -> Figure 5
* the ``rrdep*`` prefix of ppo             -> Figure 9
* control dependencies in ``rwdep``        -> Figure 4
* grace periods in ``strong-fence``        -> SB with mb+synchronize_rcu
* the rb-dep guard on read-read deps       -> MP+wmb+addr (the Alpha
  accommodation makes the model *weaker*, not stronger)
"""

from __future__ import annotations

import pytest

from repro.cat import CatModel
from repro.cat.eval import MODELS_DIR
from repro.herd import run_litmus
from repro.litmus import library

from conftest import once, print_table

LKMM_SOURCE = (MODELS_DIR / "lkmm.cat").read_text()


def ablated(original: str, replacement: str) -> CatModel:
    assert original in LKMM_SOURCE, f"ablation target not found: {original}"
    return CatModel.from_source(
        LKMM_SOURCE.replace(original, replacement), name="lkmm-ablated"
    )


def run_pair(full, ablated_model, test_name):
    program = library.get(test_name)
    return (
        run_litmus(full, program).verdict,
        run_litmus(ablated_model, program).verdict,
    )


def test_ablate_a_cumulativity(benchmark, lkmm_cat):
    """Without A-cumul, the release in WRC+po-rel+rmb no longer extends
    to the external write it read — Figure 5 becomes allowed."""
    model = ablated(
        "let cumul-fence = A-cumul(strong-fence | po-rel) | wmb",
        "let cumul-fence = (strong-fence | po-rel) | wmb",
    )
    full, cut = once(
        benchmark, lambda: run_pair(lkmm_cat, model, "WRC+po-rel+rmb")
    )
    assert (full, cut) == ("Forbid", "Allow")


def test_ablate_rrdep_prefix(benchmark, lkmm_cat):
    """Without the rrdep* prefix, the address dependency feeding the
    acquire in Figure 9 no longer composes into ppo."""
    model = ablated(
        "let ppo = rrdep* ; (to-r | to-w | fence)",
        "let ppo = to-r | to-w | fence",
    )
    full, cut = once(
        benchmark, lambda: run_pair(lkmm_cat, model, "MP+wmb+addr-acq")
    )
    assert (full, cut) == ("Forbid", "Allow")


def test_ablate_control_dependencies(benchmark, lkmm_cat):
    """Without ctrl in rwdep the model behaves like C11 on Figure 4."""
    model = ablated(
        "let rwdep = (dep | ctrl) & (R * W)",
        "let rwdep = dep & (R * W)",
    )
    full, cut = once(
        benchmark, lambda: run_pair(lkmm_cat, model, "LB+ctrl+mb")
    )
    assert (full, cut) == ("Forbid", "Allow")


def test_ablate_gp_strong_fence(benchmark, lkmm_cat):
    """Grace periods as strong fences: cutting gp out of strong-fence
    alone changes nothing on SB+mb+sync — the RCU *axiom* independently
    forbids any cycle with one GP and no RSCS (rcu-path = gp-link | ...).
    Only cutting both reveals the strength synchronize_rcu contributes."""
    without_strong = ablated(
        "let strong-fence = mb | gp",
        "let strong-fence = mb",
    )
    without_both = CatModel.from_source(
        LKMM_SOURCE.replace("let strong-fence = mb | gp", "let strong-fence = mb")
        .replace("irreflexive rcu-path as rcu", ""),
        name="lkmm-no-gp-no-rcu",
    )

    def experiment():
        program = library.get("SB+mb+sync")
        return (
            run_litmus(lkmm_cat, program).verdict,
            run_litmus(without_strong, program).verdict,
            run_litmus(without_both, program).verdict,
        )

    full, cut_strong, cut_both = once(benchmark, experiment)
    assert (full, cut_strong, cut_both) == ("Forbid", "Forbid", "Allow")
    # The RCU axiom proper still forbids RCU-MP without gp-as-strong-fence.
    assert run_litmus(without_strong, library.get("RCU-MP")).verdict == "Forbid"


def test_ablate_rb_dep_guard(benchmark, lkmm_cat):
    """Dropping the rb-dep guard (pretending every architecture respects
    dependent reads, i.e. ignoring Alpha) *strengthens* the model: the
    MP+wmb+addr outcome flips from Allow to Forbid."""
    model = ablated(
        "let strong-rrdep = rrdep+ & rb-dep",
        "let strong-rrdep = rrdep+",
    )
    full, cut = once(
        benchmark, lambda: run_pair(lkmm_cat, model, "MP+wmb+addr")
    )
    assert (full, cut) == ("Allow", "Forbid")


def test_ablation_matrix(benchmark, lkmm_cat):
    """Every ablation leaves the rest of Table 5's Model column intact —
    each component is *only* responsible for its own tests."""
    ablations = {
        "no-A-cumul": ablated(
            "let cumul-fence = A-cumul(strong-fence | po-rel) | wmb",
            "let cumul-fence = (strong-fence | po-rel) | wmb",
        ),
        "no-ctrl": ablated(
            "let rwdep = (dep | ctrl) & (R * W)",
            "let rwdep = dep & (R * W)",
        ),
    }
    affected = {
        "no-A-cumul": {"WRC+po-rel+rmb"},
        "no-ctrl": {"LB+ctrl+mb"},
    }

    def experiment():
        rows = []
        for name in library.TABLE5:
            program = library.get(name)
            row = [name, run_litmus(lkmm_cat, program).verdict]
            for model in ablations.values():
                row.append(run_litmus(model, program).verdict)
            rows.append(tuple(row))
        return rows

    rows = once(benchmark, experiment)
    print_table(
        "Ablation matrix over Table 5",
        ("Test", "full", *ablations),
        rows,
    )
    for row in rows:
        name, full_verdict, *cut_verdicts = row
        for ablation_name, verdict in zip(ablations, cut_verdicts):
            if name in affected[ablation_name]:
                assert verdict != full_verdict, (name, ablation_name)
            else:
                assert verdict == full_verdict, (name, ablation_name)
