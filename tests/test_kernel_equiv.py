"""Equivalence of the :mod:`repro.kernel` fast paths with the reference path.

The performance layer must be invisible: the integer-indexed (bitset)
relation backend, the incremental per-trace checking, and the parallel
driver all have to produce exactly the results of the plain
frozenset-of-pairs implementation.  This suite checks that three ways:

* property tests driving every relation operator through both backends on
  random relations;
* whole litmus runs (native and cat LKMM) compared across backend,
  incremental, and jobs configurations — verdicts, candidate/allowed/
  witness counts, and final-state sets must be identical;
* unit tests for the bitset primitives themselves.
"""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.cat import load_model
from repro.events import Event, ONCE, READ, WRITE
from repro.executions.enumerate import candidate_executions
from repro.herd import run_litmus, verdicts
from repro.kernel import config as kconfig
from repro.kernel.bitrel import (
    DenseRelation,
    EventIndex,
    _bits,
    index_for,
    reaches,
)
from repro.litmus import library
from repro.lkmm import LinuxKernelModel
from repro.relations import EventSet, Relation


def _events(n):
    return [
        Event(
            eid=i,
            tid=i % 2,
            po_index=i // 2,
            kind=READ if i % 3 else WRITE,
            tag=ONCE,
            loc="x" if i % 2 else "y",
            value=i,
        )
        for i in range(n)
    ]


N = 7
EVENTS = _events(N)
UNIVERSE = frozenset(EVENTS)

index_pairs = st.lists(
    st.tuples(st.integers(0, N - 1), st.integers(0, N - 1)), max_size=24
)


def _rel(indices):
    return Relation(
        [(EVENTS[a], EVENTS[b]) for a, b in indices], UNIVERSE
    )


def _both(op):
    """Evaluate ``op`` under the bitset and the frozenset backend."""
    with kconfig.use_backend(kconfig.BITSET):
        fast = op()
    with kconfig.use_backend(kconfig.FROZENSET):
        reference = op()
    return fast, reference


def _assert_same_relation(fast, reference):
    assert fast.pairs == reference.pairs
    assert len(fast) == len(reference)
    assert fast.is_empty() == reference.is_empty()


class TestOperatorEquivalence:
    """Every operator, both backends, random inputs."""

    @settings(max_examples=60, deadline=None)
    @given(a=index_pairs, b=index_pairs)
    def test_binary_operators(self, a, b):
        for op in (
            lambda: _rel(a) | _rel(b),
            lambda: _rel(a) & _rel(b),
            lambda: _rel(a) - _rel(b),
            lambda: _rel(a).sequence(_rel(b)),
        ):
            fast, reference = _both(op)
            _assert_same_relation(fast, reference)

    @settings(max_examples=60, deadline=None)
    @given(a=index_pairs)
    def test_unary_operators(self, a):
        for op in (
            lambda: ~_rel(a),
            lambda: _rel(a).inverse(),
            lambda: _rel(a).optional(),
            lambda: _rel(a).transitive_closure(),
            lambda: _rel(a).reflexive_transitive_closure(),
            lambda: _rel(a).domain().identity(),
            lambda: _rel(a).range().identity(),
        ):
            fast, reference = _both(op)
            _assert_same_relation(fast, reference)

    @settings(max_examples=60, deadline=None)
    @given(a=index_pairs)
    def test_predicates(self, a):
        def run():
            r = _rel(a)
            return (
                r.is_irreflexive(),
                r.transitive_closure().is_irreflexive(),
                sorted((p.eid, q.eid) for p, q in r.reflexive_pairs()),
            )

        assert _both(run)[0] == _both(run)[1]

    @settings(max_examples=60, deadline=None)
    @given(a=index_pairs)
    def test_find_cycle_agreement(self, a):
        def cycle():
            return _rel(a).find_cycle()

        fast, reference = _both(cycle)
        # Both backends must agree on *whether* there is a cycle; the
        # witness cycle itself may legitimately differ, but must be real.
        assert (fast is None) == (reference is None)
        if fast is not None:
            # find_cycle returns [e0, ..., e0]: start repeated at the end.
            r = _rel(a)
            assert fast[0] == fast[-1]
            assert all((p, q) in r for p, q in zip(fast, fast[1:]))

    @settings(max_examples=40, deadline=None)
    @given(a=index_pairs, b=index_pairs)
    def test_restrict_and_product(self, a, b):
        dom = EventSet([EVENTS[i] for i in range(0, N, 2)], UNIVERSE)
        rng = EventSet([EVENTS[i] for i in range(1, N, 2)], UNIVERSE)

        def restricted():
            return _rel(a).restrict(domain=dom, range_=rng)

        fast, reference = _both(restricted)
        _assert_same_relation(fast, reference)

        fast, reference = _both(lambda: dom.product(rng))
        _assert_same_relation(fast, reference)


class TestBitsetPrimitives:
    def test_bits_iterates_lowest_first(self):
        assert list(_bits(0b101101)) == [0, 2, 3, 5]
        assert list(_bits(0)) == []

    def test_event_index_is_eid_sorted(self):
        index = EventIndex(UNIVERSE)
        assert [e.eid for e in index.events] == list(range(N))
        assert index.pos[EVENTS[3]] == 3
        assert index.mask_of([EVENTS[0], EVENTS[2]]) == 0b101

    def test_index_cache_is_identity_keyed(self):
        # Universes compare by eid only, so equal-looking frozensets from
        # different trace combinations must NOT share an index.
        other_universe = frozenset(_events(N))
        assert other_universe == UNIVERSE
        assert index_for(UNIVERSE) is index_for(UNIVERSE)
        assert index_for(UNIVERSE) is not index_for(other_universe)

    def test_dense_roundtrip(self):
        index = index_for(UNIVERSE)
        pairs = [(EVENTS[0], EVENTS[1]), (EVENTS[5], EVENTS[2])]
        dense = DenseRelation.from_pairs(index, pairs)
        assert set(dense.pairs()) == set(pairs)
        assert len(dense) == 2

    def test_reaches(self):
        # 0 -> 1 -> 2, 3 isolated.
        rows = [0b0010, 0b0100, 0, 0]
        assert reaches(rows, 0, 0b0100)  # 0 reaches 2
        assert not reaches(rows, 2, 0b0001)  # 2 does not reach 0
        assert not reaches(rows, 3, 0b0111)

    def test_acyclicity(self):
        index = index_for(UNIVERSE)
        chain = DenseRelation.from_pairs(
            index, [(EVENTS[i], EVENTS[i + 1]) for i in range(N - 1)]
        )
        assert chain.is_acyclic()
        looped = DenseRelation.from_pairs(
            index,
            [(EVENTS[i], EVENTS[i + 1]) for i in range(N - 1)]
            + [(EVENTS[N - 1], EVENTS[0])],
        )
        assert not looped.is_acyclic()
        assert looped.find_cycle() is not None


#: A cross-section of the library: message passing, store buffering, RCU,
#: RMW, and a 3-thread chain (ISA2/Z6-style tests touch multiple locations).
EQUIV_TESTS = [
    "MP+wmb+rmb",
    "MP+wmb+addr",
    "SB",
    "SB+mbs",
    "LB+ctrl+mb",
    "R+mbs",
    "MP+rcu-sync+rcu-lock",
]


def _library_subset():
    names = set(library.all_names())
    return [name for name in EQUIV_TESTS if name in names]


def _summary(result):
    return (
        result.verdict,
        result.candidates,
        result.allowed,
        result.witnesses,
        result.states,
    )


class TestWholeRunEquivalence:
    @pytest.fixture(scope="class")
    def models(self):
        return [LinuxKernelModel(), load_model("lkmm")]

    @pytest.mark.parametrize("name", _library_subset())
    def test_backends_and_incremental_agree(self, models, name):
        program = library.get(name)
        for model in models:
            with kconfig.use_backend(kconfig.BITSET), kconfig.use_incremental(
                True
            ):
                fast = _summary(
                    run_litmus(model, program, require_sc_per_location=True)
                )
            with kconfig.use_backend(
                kconfig.FROZENSET
            ), kconfig.use_incremental(False):
                reference = _summary(
                    run_litmus(model, program, require_sc_per_location=True)
                )
            assert fast == reference

    @pytest.mark.parametrize("name", _library_subset()[:3])
    def test_unfiltered_enumeration_agrees(self, models, name):
        # Without require_sc_per_location the pruning path is off; the
        # skeleton sharing alone must not change anything either.
        program = library.get(name)
        model = models[0]
        with kconfig.use_incremental(True):
            fast = _summary(run_litmus(model, program))
        with kconfig.use_incremental(False):
            reference = _summary(run_litmus(model, program))
        assert fast == reference

    def test_candidate_streams_identical(self):
        # The pruned enumerator must yield the same surviving candidates
        # in the same order as filter-after-build.
        program = library.get("SB+mbs")

        def key(pairs):
            return sorted((a.eid, b.eid) for a, b in pairs)

        def stream():
            return [
                (key(x.rf.pairs), key(x.co.pairs))
                for x in candidate_executions(
                    program, require_sc_per_location=True
                )
            ]

        with kconfig.use_incremental(True):
            fast = stream()
        with kconfig.use_incremental(False):
            reference = stream()
        assert fast == reference

    def test_parallel_run_matches_sequential(self):
        program = library.get("SB")
        model = LinuxKernelModel()
        seq = run_litmus(model, program, require_sc_per_location=True)
        par = run_litmus(
            model, program, require_sc_per_location=True, jobs=3
        )
        assert _summary(seq) == _summary(par)

    def test_parallel_verdicts_match_sequential(self):
        programs = [library.get(name) for name in _library_subset()[:5]]
        models = [LinuxKernelModel()]
        seq = verdicts(models, programs, require_sc_per_location=True)
        par = verdicts(models, programs, jobs=2, require_sc_per_location=True)
        assert seq == par

    def test_library_verdicts_agree_across_configs(self):
        # The whole litmus library: kernel defaults vs reference backend
        # vs parallel driver must produce one verdict table.
        programs = library.all_tests()
        models = [LinuxKernelModel()]
        fast = verdicts(models, programs, require_sc_per_location=True)
        parallel = verdicts(
            models, programs, jobs=2, require_sc_per_location=True
        )
        with kconfig.use_backend(kconfig.FROZENSET), kconfig.use_incremental(
            False
        ):
            reference = verdicts(
                models, programs, require_sc_per_location=True
            )
        assert fast == reference
        assert fast == parallel

    def test_verdicts_enumerates_once_per_program(self, monkeypatch):
        import repro.herd as herd

        calls = []
        original = herd.candidate_executions_sharded

        def counting(program, *args, **kwargs):
            calls.append(program.name)
            return original(program, *args, **kwargs)

        monkeypatch.setattr(herd, "candidate_executions_sharded", counting)
        programs = [library.get("SB"), library.get("MP+wmb+rmb")]
        models = [LinuxKernelModel(), load_model("lkmm")]
        with kconfig.use_static_verdict(False):
            verdicts(models, programs)
        assert sorted(calls) == ["MP+wmb+rmb", "SB"]
        # With the symbolic pre-pass on, statically decided cells skip
        # the enumeration — never add one.
        calls.clear()
        with kconfig.use_static_verdict(True):
            verdicts(models, programs)
        assert len(calls) <= 2 and set(calls) <= {"MP+wmb+rmb", "SB"}


class TestPickling:
    def test_relation_roundtrip(self):
        relation = _rel([(0, 1), (1, 2), (5, 0)])
        clone = pickle.loads(pickle.dumps(relation))
        assert clone.pairs == relation.pairs
        assert clone.universe == relation.universe
        assert clone.transitive_closure().pairs == (
            relation.transitive_closure().pairs
        )

    def test_candidate_execution_roundtrip(self):
        program = library.get("SB")
        execution = next(iter(candidate_executions(program)))
        clone = pickle.loads(pickle.dumps(execution))
        assert clone.final_state == execution.final_state
        assert clone.rf.pairs == execution.rf.pairs
        assert clone.co.pairs == execution.co.pairs
        model = LinuxKernelModel()
        assert model.allows(clone) == model.allows(execution)


class TestModelCaching:
    def test_load_model_is_memoised(self):
        assert load_model("lkmm") is load_model("lkmm")

    def test_loaded_models_stay_correct_across_runs(self):
        model = load_model("lkmm")
        first = run_litmus(model, library.get("MP+wmb+rmb")).verdict
        second = run_litmus(model, library.get("MP+wmb+rmb")).verdict
        assert first == second == "Forbid"
