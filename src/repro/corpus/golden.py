"""The frozen golden corpus: a stratified sample with locked verdicts.

10,000 tests × 6 models is a nightly job, not a tier-1 suite — but the
*behaviour* the sweep pins down must not drift silently between
nightlies.  The compromise is a frozen sample: ``freeze_golden`` picks a
~500-test stratified sample (every disagreement signature represented,
remaining seats allocated proportionally, all choices seeded) and writes
each test's litmus source *and* full verdict row to
``tests/data/golden_corpus.jsonl``.  ``tests/test_golden_corpus.py``
re-judges the sample on every tier-1 run, under both relation backends
and both VM lanes, and demands exact equality.

The freeze policy: the file only changes via
``benchmarks/regen_golden_corpus.py`` after an *intentional* semantic
change, and the diff is reviewed cell by cell — a verdict flip in the
golden corpus is a model-behaviour change by definition.  Each row also
carries the program digest, so a generator change that silently altered
a test's *program* (same name, different code) fails the digest check
rather than comparing verdicts across different tests.

JSONL, one test per line, because that is what diffs well: a regen that
touches 3 tests shows 3 changed lines.
"""

from __future__ import annotations

import json
import random
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.corpus.generate import CorpusTest, program_digest
from repro.corpus.mine import row_signature
from repro.corpus.sweep import (
    CORPUS_MODELS,
    ModelSpec,
    SweepResult,
    sweep_row,
)

GOLDEN_SIZE = 500


def stratified_sample(
    result: SweepResult,
    size: int = GOLDEN_SIZE,
    seed: int = 0,
    order: Optional[Sequence[str]] = None,
) -> List[str]:
    """Pick ``size`` test names covering every disagreement signature.

    Every signature gets at least one seat; the rest are allocated by
    population (largest remainder), and the tests within a signature are
    chosen by a seeded shuffle — so the sample is deterministic for a
    given matrix and seed, and no behavioural equivalence class of the
    battery goes unrepresented.
    """
    if order is None:
        order = [spec.name for spec in CORPUS_MODELS]
    buckets: Dict[str, List[str]] = {}
    for name in sorted(result.matrix):
        signature = row_signature(result.matrix[name], order)
        buckets.setdefault(signature, []).append(name)
    total = sum(len(members) for members in buckets.values())
    size = min(size, total)

    signatures = sorted(buckets)
    seats = {sig: 1 for sig in signatures}
    spare = size - len(signatures)
    if spare < 0:
        # More signatures than seats: keep the most populous ones.
        keep = sorted(signatures, key=lambda s: (-len(buckets[s]), s))[:size]
        seats = {sig: 1 for sig in keep}
        spare = 0
    # Largest-remainder allocation of the remaining seats.
    shares = {
        sig: len(buckets[sig]) * spare / total for sig in seats
    }
    for sig in seats:
        seats[sig] += int(shares[sig])
    leftover = size - sum(seats.values())
    for sig in sorted(
        seats, key=lambda s: (-(shares[s] - int(shares[s])), s)
    )[:leftover]:
        seats[sig] += 1

    rng = random.Random(seed)
    chosen: List[str] = []
    for sig in signatures:
        if sig not in seats:
            continue
        members = list(buckets[sig])
        rng.shuffle(members)
        chosen.extend(members[: min(seats[sig], len(members))])
    return sorted(chosen)


def freeze_golden(
    result: SweepResult,
    path,
    size: int = GOLDEN_SIZE,
    seed: int = 0,
    specs: Sequence[ModelSpec] = CORPUS_MODELS,
) -> List[str]:
    """Write the stratified sample + locked verdicts to ``path``.

    Returns the chosen test names.  Rows are sorted by name: the file is
    a canonical function of (matrix, size, seed).
    """
    order = [spec.name for spec in specs]
    names = stratified_sample(result, size=size, seed=seed, order=order)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        for name in names:
            test = result.tests[name]
            row = dict(test.to_json())
            row["verdicts"] = dict(result.matrix[name])
            handle.write(json.dumps(row, sort_keys=True) + "\n")
    return names


def load_golden(path) -> List[Tuple[CorpusTest, Dict[str, str]]]:
    """Parse the frozen corpus back into (test, locked verdicts) pairs."""
    entries: List[Tuple[CorpusTest, Dict[str, str]]] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        row = json.loads(line)
        entries.append((CorpusTest.from_json(row), dict(row["verdicts"])))
    return entries


def verify_golden(
    path,
    specs: Sequence[ModelSpec] = CORPUS_MODELS,
) -> List[str]:
    """Re-judge every frozen test; return human-readable mismatches.

    Three failure modes, in checking order: the stored litmus text no
    longer reproduces the stored digest (the test itself drifted), a
    model's verdict moved, or a model column vanished.  An empty return
    is the regression suite passing.
    """
    mismatches: List[str] = []
    for test, locked in load_golden(path):
        digest = program_digest(test.program)
        if digest != test.digest:
            mismatches.append(
                f"{test.name}: program digest drifted "
                f"({test.digest} -> {digest})"
            )
            continue
        row = sweep_row(test.program, specs)
        for model, expected in sorted(locked.items()):
            actual = row.get(model)
            if actual != expected:
                mismatches.append(
                    f"{test.name}: {model} flipped {expected} -> {actual}"
                )
    return mismatches
