"""Unit tests for systematic family generation and the strength order."""

import pytest

from repro.diy.families import (
    FAMILIES,
    FamilyMember,
    check_monotonicity,
    family,
    weaker_or_equal,
)


class TestStrengthOrder:
    def test_reflexive(self):
        assert weaker_or_equal("MbdRR", "MbdRR")

    def test_po_weakest(self):
        for strong in ("RmbdRR", "MbdRR", "SyncdRR", "AcqdR", "DpAddrdR"):
            assert weaker_or_equal("PodRR", strong)

    def test_transitive(self):
        # PodRR < RmbdRR < MbdRR < SyncdRR.
        assert weaker_or_equal("PodRR", "SyncdRR")
        assert weaker_or_equal("RmbdRR", "SyncdRR")

    def test_antisymmetric_examples(self):
        assert not weaker_or_equal("MbdRR", "RmbdRR")
        assert not weaker_or_equal("SyncdWW", "MbdWW")

    def test_incomparable_edges(self):
        # An address dependency and an rmb are incomparable strengths.
        assert not weaker_or_equal("DpAddrdR", "RmbdRR")
        assert not weaker_or_equal("RmbdRR", "DpAddrdR")

    def test_rb_dep_strengthens_addr(self):
        assert weaker_or_equal("DpAddrdR", "DpAddrRbDepdR")

    def test_cross_signature_never_comparable(self):
        assert not weaker_or_equal("PodRR", "MbdWW")


class TestFamilyGeneration:
    @pytest.mark.parametrize("name", sorted(FAMILIES))
    def test_families_non_empty(self, name):
        members = list(family(name))
        assert members
        for member in members:
            assert isinstance(member, FamilyMember)
            assert member.program.condition is not None

    def test_mp_family_size(self):
        # 7 read-side x 5 write-side choices.
        assert len(list(family("MP"))) == 35

    def test_unique_names(self):
        names = [m.program.name for m in family("LB")]
        assert len(names) == len(set(names))

    def test_unknown_family(self):
        with pytest.raises(KeyError):
            list(family("nope"))


class TestMonotonicityChecker:
    def test_detects_violation(self):
        verdicts = {
            ("PodRR", "PodWW"): "Forbid",   # weaker forbidden...
            ("MbdRR", "MbdWW"): "Allow",    # ...stronger allowed: bogus
        }
        assert check_monotonicity(verdicts)

    def test_accepts_monotone(self):
        verdicts = {
            ("PodRR", "PodWW"): "Allow",
            ("MbdRR", "MbdWW"): "Forbid",
        }
        assert not check_monotonicity(verdicts)

    def test_incomparable_not_flagged(self):
        verdicts = {
            ("DpAddrdR", "PodWW"): "Forbid",
            ("RmbdRR", "PodWW"): "Allow",
        }
        assert not check_monotonicity(verdicts)
