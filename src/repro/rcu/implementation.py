"""The userspace RCU implementation of Figure 15, and Theorem 2.

The paper verifies (Section 6) the RCU implementation used by the Linux
trace tool: threads communicate via per-thread counters ``rc[i]`` and a
grace-period control variable ``gc``; ``synchronize_rcu`` flips the
``GP_PHASE`` bit of ``gc`` twice, each time waiting until every thread is
either outside a read-side critical section or inside one that started
after the flip.

    **Theorem 2.** If X' is allowed in our LK model and has properly
    nested RSCSes that do not overflow the counters in rc[], then X is
    allowed.

Here X' ranges over executions of P' — the program P with its RCU
primitives replaced by the implementation.  We mechanise the theorem as a
*bounded, exhaustive* check (in the spirit of the CBMC/Nidhugg work the
paper cites): :func:`inline_rcu` performs the P -> P' transformation with
the implementation's wait loops unrolled up to a bound, and
:func:`verify_implementation` checks that every LK-allowed execution of P'
projects onto an LK-allowed outcome of P.

Two renderings of the implementation are provided:

* ``full=True`` — the verbatim Figure 15 code, including the nesting
  branch of ``rcu_read_lock`` and the decrement in ``rcu_read_unlock``;
* ``full=False`` (default) — the specialisation to non-nested critical
  sections (``rc[i]`` is either 0 or the copied ``gc`` value), which is
  exactly the shape of Figure 16 and keeps exhaustive enumeration cheap.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.events import RCU_LOCK, RCU_UNLOCK, SYNC_RCU
from repro.herd import run_litmus
from repro.litmus.ast import (
    Assume,
    BinOp,
    Const,
    Fence,
    If,
    Instruction,
    Load,
    Program,
    Reg,
    Store,
    Thread,
    UnOp,
)
from repro.litmus import dsl
from repro.litmus.outcomes import FinalState
from repro.lkmm.model import LinuxKernelModel
from repro.model import Model

GP_PHASE = 0x10000
CS_MASK = 0x0FFFF

#: Implementation-internal shared locations (projected away).
GC = "__gc"
GP_LOCK = "__gp_lock"


def _rc(tid: int) -> str:
    return f"__rc{tid}"


class _Names:
    """Fresh register names for inlined implementation code."""

    def __init__(self) -> None:
        self._counter = itertools.count()

    def fresh(self, stem: str) -> str:
        return f"__rcu{next(self._counter)}_{stem}"


# ---------------------------------------------------------------------------
# The implementation routines (Figure 15)
# ---------------------------------------------------------------------------


def read_lock_body(tid: int, names: _Names, full: bool) -> List[Instruction]:
    """``rcu_read_lock()`` for thread ``tid`` (Figure 15 lines 8-18)."""
    rc = _rc(tid)
    if not full:
        # Non-nested specialisation: the counter is known to be zero, so
        # only the outermost branch remains (lines 13-14).
        g = names.fresh("g")
        return [
            dsl.read_once(g, GC),
            dsl.write_once(rc, Reg(g)),
            dsl.smp_mb(),
        ]
    tmp = names.fresh("tmp")
    g = names.fresh("g")
    return [
        dsl.read_once(tmp, rc),
        If(
            UnOp("!", BinOp("&", Reg(tmp), Const(CS_MASK))),
            (
                dsl.read_once(g, GC),
                dsl.write_once(rc, Reg(g)),
                dsl.smp_mb(),
            ),
            (dsl.write_once(rc, BinOp("+", Reg(tmp), Const(1))),),
        ),
    ]


def read_unlock_body(tid: int, names: _Names, full: bool) -> List[Instruction]:
    """``rcu_read_unlock()`` for thread ``tid`` (Figure 15 lines 20-25)."""
    rc = _rc(tid)
    if not full:
        return [dsl.smp_mb(), dsl.write_once(rc, 0)]
    t = names.fresh("t")
    return [
        dsl.smp_mb(),
        dsl.read_once(t, rc),
        dsl.write_once(rc, BinOp("-", Reg(t), Const(1))),
    ]


def _gp_ongoing_wait(
    reader_tid: int, names: _Names, bound: int
) -> List[Instruction]:
    """``while (gp_ongoing(i)) msleep(10);`` unrolled ``bound`` times.

    Each iteration re-reads ``rc[i]`` and ``gc`` (lines 27-30); executions
    still waiting after ``bound`` checks are discarded via ``Assume``.
    """

    def iteration(depth: int) -> List[Instruction]:
        val = names.fresh("val")
        cur = names.fresh("cur")
        cond = BinOp(
            "&&",
            BinOp("&", Reg(val), Const(CS_MASK)),
            BinOp("&", BinOp("^", Reg(val), Reg(cur)), Const(GP_PHASE)),
        )
        if depth >= bound:
            body: Tuple[Instruction, ...] = (Assume(Const(0)),)
        else:
            body = tuple(iteration(depth + 1))
        return [
            dsl.read_once(val, _rc(reader_tid)),
            dsl.read_once(cur, GC),
            If(cond, body, ()),
        ]

    return iteration(1)


def update_counter_and_wait_body(
    reader_tids: Sequence[int], names: _Names, bound: int
) -> List[Instruction]:
    """``update_counter_and_wait()`` (Figure 15 lines 33-41), waiting for
    the given reader threads."""
    g = names.fresh("gc")
    body: List[Instruction] = [
        dsl.read_once(g, GC),
        dsl.write_once(GC, BinOp("^", Reg(g), Const(GP_PHASE))),
    ]
    for tid in reader_tids:
        body.extend(_gp_ongoing_wait(tid, names, bound))
    return body


def synchronize_body(
    reader_tids: Sequence[int], names: _Names, bound: int
) -> List[Instruction]:
    """``synchronize_rcu()`` (Figure 15 lines 43-50)."""
    body: List[Instruction] = [dsl.smp_mb(), dsl.spin_lock(GP_LOCK)]
    body.extend(update_counter_and_wait_body(reader_tids, names, bound))
    body.extend(update_counter_and_wait_body(reader_tids, names, bound))
    body.append(dsl.spin_unlock(GP_LOCK))
    body.append(dsl.smp_mb())
    return body


# ---------------------------------------------------------------------------
# The P -> P' transformation
# ---------------------------------------------------------------------------


class InlineError(Exception):
    """Raised when a program cannot be transformed."""


def inline_rcu(
    program: Program, loop_bound: int = 1, full: bool = False
) -> Program:
    """Replace the RCU primitives of ``program`` with Figure 15's code.

    ``loop_bound`` bounds the unrolling of the implementation's wait loop
    (the number of ``gp_ongoing`` checks per reader per phase);
    ``full=True`` uses the verbatim nesting-capable code.
    """
    reader_tids = [
        tid
        for tid, thread in enumerate(program.threads)
        if _uses_rcu_readside(thread.body)
    ]
    names = _Names()
    threads = []
    for tid, thread in enumerate(program.threads):
        threads.append(
            Thread(
                tuple(
                    _inline_body(
                        thread.body, tid, reader_tids, names, loop_bound, full
                    )
                )
            )
        )
    init = dict(program.init)
    init[GC] = 1
    init[GP_LOCK] = 0
    for tid in reader_tids:
        init[_rc(tid)] = 0
    return Program(
        name=f"{program.name}+urcu",
        threads=tuple(threads),
        init=init,
        condition=program.condition,
    )


def _uses_rcu_readside(body: Sequence[Instruction]) -> bool:
    for ins in body:
        if isinstance(ins, Fence) and ins.tag in (RCU_LOCK, RCU_UNLOCK):
            return True
        if isinstance(ins, If) and (
            _uses_rcu_readside(ins.then) or _uses_rcu_readside(ins.orelse)
        ):
            return True
    return False


def _inline_body(
    body: Sequence[Instruction],
    tid: int,
    reader_tids: Sequence[int],
    names: _Names,
    bound: int,
    full: bool,
) -> List[Instruction]:
    out: List[Instruction] = []
    for ins in body:
        if isinstance(ins, Fence) and ins.tag == RCU_LOCK:
            out.extend(read_lock_body(tid, names, full))
        elif isinstance(ins, Fence) and ins.tag == RCU_UNLOCK:
            out.extend(read_unlock_body(tid, names, full))
        elif isinstance(ins, Fence) and ins.tag == SYNC_RCU:
            out.extend(synchronize_body(reader_tids, names, bound))
        elif isinstance(ins, If):
            out.append(
                If(
                    ins.cond,
                    tuple(
                        _inline_body(ins.then, tid, reader_tids, names, bound, full)
                    ),
                    tuple(
                        _inline_body(ins.orelse, tid, reader_tids, names, bound, full)
                    ),
                )
            )
        else:
            out.append(ins)
    return out


# ---------------------------------------------------------------------------
# Theorem 2, empirically
# ---------------------------------------------------------------------------


def _project(state: FinalState) -> FrozenSet:
    """Strip implementation-internal registers and locations, leaving the
    observables of the original program P."""
    registers = frozenset(
        ((tid, name), value)
        for (tid, name), value in state.registers.items()
        if not name.startswith("__")
    )
    memory = frozenset(
        (loc, value)
        for loc, value in state.memory.items()
        if not loc.startswith("__")
    )
    return frozenset({("regs", registers), ("mem", memory)})


@dataclass
class ImplementationReport:
    """Result of the bounded Theorem 2 check for one program."""

    program_name: str
    loop_bound: int
    #: Projected outcomes of P allowed by the model.
    spec_outcomes: Set[FrozenSet] = field(default_factory=set)
    #: Projected outcomes of P' allowed by the model.
    impl_outcomes: Set[FrozenSet] = field(default_factory=set)
    #: Allowed executions inspected on each side.
    spec_allowed: int = 0
    impl_allowed: int = 0

    @property
    def spurious(self) -> Set[FrozenSet]:
        """Outcomes the implementation permits but the specification
        forbids.  Theorem 2 says this is empty."""
        return self.impl_outcomes - self.spec_outcomes

    @property
    def holds(self) -> bool:
        return not self.spurious

    def describe(self) -> str:
        status = "holds" if self.holds else "FAILS"
        return (
            f"Theorem 2 {status} on {self.program_name} "
            f"(loop bound {self.loop_bound}): "
            f"{len(self.impl_outcomes)} implementation outcomes vs "
            f"{len(self.spec_outcomes)} specification outcomes, "
            f"{len(self.spurious)} spurious"
        )


def verify_implementation(
    program: Program,
    loop_bound: int = 1,
    full: bool = False,
    model: Optional[Model] = None,
) -> ImplementationReport:
    """Bounded Theorem 2 check: allowed outcomes of P' project into
    allowed outcomes of P."""
    model = model or LinuxKernelModel()
    report = ImplementationReport(program.name, loop_bound)

    spec_result = run_litmus(model, program, require_sc_per_location=True)
    report.spec_allowed = spec_result.allowed
    report.spec_outcomes = {_project(s) for s in spec_result.states}

    inlined = inline_rcu(program, loop_bound=loop_bound, full=full)
    impl_result = run_litmus(model, inlined, require_sc_per_location=True)
    report.impl_allowed = impl_result.allowed
    report.impl_outcomes = {_project(s) for s in impl_result.states}
    return report
