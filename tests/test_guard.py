"""Budgets, cancellation, and graceful degradation (repro.guard)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cat.eval import load_model
from repro.diy import generate
from repro.guard import (
    Budget,
    BudgetExceeded,
    Cancelled,
    CancelToken,
    guard,
)
from repro.guard import core as guard_core
from repro.herd import ALLOW, FORBID, INCONCLUSIVE, RunResult, run_litmus, verdicts
from repro.kernel.config import use_backend
from repro.litmus import library
from repro.litmus.parser import parse_litmus


SC = load_model("sc")
LKMM = load_model("lkmm")


# -- Budget / Guard mechanics ---------------------------------------------


def test_unbounded_budget_reports_unbounded():
    assert not Budget().bounded()
    assert Budget(wall_seconds=1.0).bounded()
    assert Budget(max_candidates=5).bounded()


def test_candidate_budget_trips_exactly():
    with pytest.raises(BudgetExceeded) as excinfo:
        with guard(Budget(max_candidates=3)):
            for _ in range(10):
                guard_core.note_candidate()
    interruption = excinfo.value.interruption
    assert interruption.reason == "candidates"
    assert interruption.limit == 3
    assert interruption.observed == 4
    assert interruption.candidates == 4


def test_state_budget_trips():
    with pytest.raises(BudgetExceeded) as excinfo:
        with guard(Budget(max_states=100)):
            for _ in range(1000):
                guard_core.tick()
    assert excinfo.value.interruption.reason == "states"


def test_wall_clock_budget_trips():
    with pytest.raises(BudgetExceeded) as excinfo:
        with guard(Budget(wall_seconds=0.01)):
            while True:
                guard_core.tick()
    interruption = excinfo.value.interruption
    assert interruption.reason == "wall_clock"
    assert interruption.elapsed_s >= 0.01


def test_memory_budget_trips():
    # A 0 MB ceiling trips on the first sampled reading.
    with pytest.raises(BudgetExceeded) as excinfo:
        with guard(Budget(max_mem_mb=0.0)):
            while True:
                guard_core.tick()
    interruption = excinfo.value.interruption
    assert interruption.reason == "memory"
    assert interruption.observed > 0


def test_cancel_token_stops_at_safepoint():
    token = CancelToken()
    with pytest.raises(Cancelled) as excinfo:
        with guard(None, token):
            for i in range(10_000):
                if i == 500:
                    token.cancel()
                guard_core.tick()
    assert excinfo.value.interruption.reason == "cancelled"


def test_safepoints_are_noops_when_unarmed():
    assert guard_core.current() is None
    assert not guard_core.ACTIVE
    guard_core.tick()
    guard_core.note_candidate()


def test_nested_guards_shadow():
    with guard(Budget(max_candidates=100)) as outer:
        with guard(Budget(max_candidates=1)) as inner:
            assert guard_core.current() is inner
            guard_core.note_candidate()
            with pytest.raises(BudgetExceeded):
                guard_core.note_candidate()
        assert guard_core.current() is outer
        # The outer budget is untouched by the inner guard's counting.
        guard_core.note_candidate()
    assert guard_core.current() is None


def test_interruption_round_trips_and_pickles():
    import pickle

    with pytest.raises(BudgetExceeded) as excinfo:
        with guard(Budget(max_candidates=1)):
            guard_core.note_candidate()
            guard_core.note_candidate()
    interruption = excinfo.value.interruption
    clone = pickle.loads(pickle.dumps(interruption))
    assert clone.to_dict() == interruption.to_dict()
    assert "candidates" in clone.describe()


# -- verdict degradation semantics ----------------------------------------


def _result(name, condition_text, *, witnesses, allowed, interrupted):
    text = (
        f"C {name}\n\n"
        "{ x=0; }\n\n"
        "P0(int *x)\n{\n    WRITE_ONCE(*x, 1);\n}\n\n"
        f"{condition_text}\n"
    )
    program = parse_litmus(text)
    result = RunResult(
        program=program,
        model_name="m",
        candidates=allowed,
        allowed=allowed,
        witnesses=witnesses,
    )
    if interrupted:
        result.interrupted = guard_core.Interruption(reason="wall_clock")
    return result


def test_exists_witness_stays_decisive_when_interrupted():
    result = _result("w", "exists (x=1)", witnesses=1, allowed=2, interrupted=True)
    assert result.verdict == ALLOW


def test_exists_without_witness_degrades():
    result = _result("w", "exists (x=2)", witnesses=0, allowed=2, interrupted=True)
    assert result.verdict == INCONCLUSIVE
    complete = _result("w", "exists (x=2)", witnesses=0, allowed=2, interrupted=False)
    assert complete.verdict == FORBID


def test_forall_counterexample_stays_decisive_when_interrupted():
    result = _result("w", "forall (x=1)", witnesses=1, allowed=2, interrupted=True)
    assert result.verdict == FORBID


def test_forall_all_matching_prefix_degrades():
    result = _result("w", "forall (x=1)", witnesses=2, allowed=2, interrupted=True)
    assert result.verdict == INCONCLUSIVE


def test_interrupted_describe_carries_provenance():
    result = _result("w", "exists (x=2)", witnesses=0, allowed=2, interrupted=True)
    assert "[interrupted: wall_clock" in result.describe()


# -- end-to-end degradation ----------------------------------------------


def test_intractable_test_times_out_inconclusive():
    """Acceptance: a 6+ thread diy cycle under ``--timeout 2`` returns
    Inconclusive with provenance in about two seconds, not hours."""
    import time

    program = generate(["Rfe", "PodRR", "Fre"] * 7)
    assert len(program.threads) >= 6
    start = time.perf_counter()
    result = run_litmus(LKMM, program, budget=Budget(wall_seconds=2.0))
    elapsed = time.perf_counter() - start
    assert result.verdict == INCONCLUSIVE
    assert result.interrupted is not None
    assert result.interrupted.reason == "wall_clock"
    assert result.interrupted.candidates > 0
    # ~2s budget plus safepoint granularity and teardown slack.
    assert elapsed < 10.0


def test_candidate_budget_yields_partial_result():
    program = library.get("SB")
    result = run_litmus(SC, program, budget=Budget(max_candidates=2))
    assert result.verdict == INCONCLUSIVE
    assert result.interrupted.reason == "candidates"
    assert 0 < result.candidates <= 2


def test_generous_budget_leaves_verdicts_untouched():
    programs = [library.get(name) for name in ("SB", "MP+wmb+rmb", "LB", "R")]
    plain = verdicts([SC, LKMM], programs)
    with guard(
        Budget(wall_seconds=600.0, max_candidates=10**9, max_mem_mb=8192.0)
    ):
        guarded = verdicts([SC, LKMM], programs)
    assert plain == guarded
    assert INCONCLUSIVE not in {
        verdict for row in guarded.values() for verdict in row.values()
    }


# -- determinism of the interrupted prefix --------------------------------


@settings(max_examples=12, deadline=None)
@given(
    limit=st.integers(min_value=1, max_value=12),
    name=st.sampled_from(["SB", "MP+wmb+rmb", "LB", "2+2W", "R"]),
)
def test_candidate_budget_is_deterministic_across_backends(limit, name):
    """The same Budget + test stops after the same candidate prefix and
    with identical provenance under both relation backends."""
    program = library.get(name)
    snapshots = []
    for backend in ("bitset", "frozenset"):
        with use_backend(backend):
            result = run_litmus(SC, program, budget=Budget(max_candidates=limit))
        interruption = (
            None if result.interrupted is None else result.interrupted.to_dict()
        )
        if interruption is not None:
            interruption.pop("elapsed_s")  # wall time is not deterministic
            # Tick totals include backend-specific safepoints (the VM
            # check only runs under bitset); the determinism contract is
            # exact candidate counting.
            interruption.pop("states")
        snapshots.append(
            (
                result.verdict,
                result.candidates,
                result.allowed,
                result.witnesses,
                interruption,
            )
        )
    assert snapshots[0] == snapshots[1]
