"""Coverage reporting for the symbolic prover, as registry findings.

``repro-lint --static-verdicts`` asks one question: over the built-in
litmus library, which (test, model) cells does the critical-cycle prover
decide without enumeration, and which fall back?  The answer is emitted
through the common findings registry (:mod:`repro.analysis.findings`) so
it shares the text/JSON/SARIF pipelines with every other analysis:

* one ``static-coverage`` (LIT008, info) finding per model, summarising
  decided-Forbid / decided-Allow / unknown counts;
* one ``static-undecided`` (LIT007, info) finding per undecided cell,
  naming the test the prover could not reach — the work list for
  whoever extends the supported fragment.

Info severity throughout: coverage never gates an exit status; the
CI floor lives in ``tests/test_static_verdicts.py`` instead.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.analysis.findings import Finding
from repro.analysis.symbolic.prover import decide
from repro.cat import load_model
from repro.litmus import library

#: The golden-snapshot model battery (matches verdicts_golden.json).
GOLDEN_MODELS: Tuple[str, ...] = ("lkmm", "c11", "sc", "tso")


def library_coverage(
    model_keys: Sequence[str] = GOLDEN_MODELS,
    require_sc_per_location: bool = True,
) -> Dict[str, Dict[str, object]]:
    """Per-model static coverage over the library.

    ``{model name: {"decided_forbid": n, "decided_allow": n,
    "unknown": n, "total": n, "undecided_tests": [...]}}``.
    """
    names = sorted(library.all_names())
    coverage: Dict[str, Dict[str, object]] = {}
    for key in model_keys:
        model = load_model(key)
        forbid = allow = 0
        undecided: List[str] = []
        for test_name in names:
            decision = decide(
                model,
                library.get(test_name),
                require_sc_per_location=require_sc_per_location,
            )
            if decision is None:
                undecided.append(test_name)
            elif decision.verdict == "Forbid":
                forbid += 1
            else:
                allow += 1
        coverage[model.name] = {
            "decided_forbid": forbid,
            "decided_allow": allow,
            "unknown": len(undecided),
            "total": len(names),
            "undecided_tests": undecided,
        }
    return coverage


def coverage_findings(
    coverage: Dict[str, Dict[str, object]],
) -> List[Finding]:
    """The coverage table rendered as registry findings."""
    findings: List[Finding] = []
    for model_name in sorted(coverage):
        row = coverage[model_name]
        decided = row["decided_forbid"] + row["decided_allow"]
        findings.append(
            Finding.of(
                model_name,
                "static-coverage",
                f"symbolic prover decides {decided}/{row['total']} library "
                f"tests ({row['decided_forbid']} Forbid, "
                f"{row['decided_allow']} Allow, {row['unknown']} unknown)",
            )
        )
        for test_name in row["undecided_tests"]:
            findings.append(
                Finding.of(
                    test_name,
                    "static-undecided",
                    f"outside the static fragment under {model_name}; "
                    "verdict needs full enumeration",
                )
            )
    return findings
