"""Tests for the cat-model linter."""

import pytest

from repro.analysis.catlint import (
    lint_all_models,
    lint_cat_path,
    lint_cat_source,
)
from repro.cat.eval import MODELS_DIR


def categories(findings):
    return [f.category for f in findings]


class TestShippedModels:
    def test_all_shipped_models_lint_clean(self):
        reports = lint_all_models()
        assert reports, "no models found"
        dirty = {
            name: [f.describe() for f in findings]
            for name, findings in reports.items()
            if findings
        }
        assert dirty == {}

    def test_lkmm_model_file_directly(self):
        assert lint_cat_path(MODELS_DIR / "lkmm.cat") == []


class TestInjectedTypos:
    def test_undefined_identifier_flagged(self):
        # The evaluator would only catch 'frr' once a check evaluates it;
        # the linter catches it statically.
        findings = lint_cat_source(
            '"m"\nlet com = rf | co | frr\nacyclic com as c\n'
        )
        assert categories(findings) == ["undefined-identifier"]
        assert "'frr'" in findings[0].message

    def test_typo_injected_into_real_model(self):
        text = (MODELS_DIR / "lkmm.cat").read_text()
        broken = text.replace("rfe", "rfee", 1)
        findings = lint_cat_source(broken, name="lkmm-broken")
        assert "undefined-identifier" in categories(findings)

    def test_unknown_base_set_flagged_with_suggestions(self):
        findings = lint_cat_source('"m"\nlet a = po & (Onnce * _)\nacyclic a\n')
        assert "unknown-base-set" in categories(findings)
        assert "known sets:" in findings[0].message

    def test_undefined_function(self):
        findings = lint_cat_source('"m"\nlet a = fencerelx(Mb)\nacyclic a\n')
        assert "undefined-function" in categories(findings)

    def test_unused_binding(self):
        findings = lint_cat_source(
            '"m"\nlet dead = po\nacyclic rf as c\n'
        )
        assert categories(findings) == ["unused-binding"]

    def test_shadowing_builtin(self):
        findings = lint_cat_source('"m"\nlet po = rf\nacyclic po as c\n')
        assert "shadowing" in categories(findings)

    def test_shadowing_earlier_binding(self):
        findings = lint_cat_source(
            '"m"\nlet a = po\nlet a = rf\nacyclic a as c\n'
        )
        assert "shadowing" in categories(findings)

    def test_duplicate_check_name(self):
        findings = lint_cat_source(
            '"m"\nacyclic po as c\nacyclic rf as c\n'
        )
        assert "duplicate-check-name" in categories(findings)

    def test_missing_include(self):
        findings = lint_cat_source('"m"\ninclude "no-such.cat"\nacyclic po\n')
        assert "missing-include" in categories(findings)


class TestSortInference:
    def test_mixed_union_flagged(self):
        findings = lint_cat_source(
            '"m"\nlet sw = po | Acquire\nacyclic sw as c\n'
        )
        assert "sort-mismatch" in categories(findings)
        assert "[S]" in findings[0].message

    def test_set_in_sequence_flagged(self):
        findings = lint_cat_source(
            '"m"\nlet a = Acquire ; po\nacyclic a as c\n'
        )
        assert "sort-mismatch" in categories(findings)

    def test_relation_in_cartesian_flagged(self):
        findings = lint_cat_source(
            '"m"\nlet a = po * rf\nacyclic a as c\n'
        )
        assert categories(findings).count("sort-mismatch") == 2

    def test_relation_in_set_id_flagged(self):
        findings = lint_cat_source('"m"\nlet a = [po] ; rf\nacyclic a as c\n')
        assert "sort-mismatch" in categories(findings)

    def test_fencerel_of_relation_flagged(self):
        findings = lint_cat_source(
            '"m"\nlet a = fencerel(po)\nacyclic a as c\n'
        )
        assert "sort-mismatch" in categories(findings)

    def test_domain_yields_a_set(self):
        # domain(rf) is a set: using it in [.] is fine, sequencing it
        # bare is not.
        assert lint_cat_source(
            '"m"\nlet a = [domain(rf)] ; po\nacyclic a as c\n'
        ) == []
        findings = lint_cat_source(
            '"m"\nlet a = domain(rf) ; po\nacyclic a as c\n'
        )
        assert "sort-mismatch" in categories(findings)

    def test_sorts_flow_through_bindings(self):
        findings = lint_cat_source(
            '"m"\nlet s = Acquire | Release\nlet a = po | s\nacyclic a as c\n'
        )
        assert "sort-mismatch" in categories(findings)

    def test_function_params_never_mismatch(self):
        # A parameter's sort is unknown; inference must not guess.
        assert lint_cat_source(
            '"m"\nlet twice(r) = r ; r\nacyclic twice(po) as c\n'
        ) == []

    def test_proper_set_algebra_is_clean(self):
        assert lint_cat_source(
            '"m"\nlet a = ([W & Release] ; po) & (M * M)\nacyclic a as c\n'
        ) == []


class TestEmptyIntersection:
    def test_disjoint_kinds(self):
        findings = lint_cat_source('"m"\nlet a = [R & W]\nacyclic a as c\n')
        assert "empty-intersection" in categories(findings)
        assert findings[0].severity == "warning"

    def test_disjoint_tags(self):
        findings = lint_cat_source(
            '"m"\nlet a = [Acquire & Release]\nacyclic a as c\n'
        )
        assert "empty-intersection" in categories(findings)

    def test_compatible_sets_not_flagged(self):
        # M overlaps both R and W; a tag set may annotate any kind.
        assert lint_cat_source(
            '"m"\nlet a = [M & R] ; po ; [W & Release]\nacyclic a as c\n'
        ) == []


class TestScoping:
    def test_let_rec_sees_itself(self):
        findings = lint_cat_source(
            '"m"\nlet rec r = po | (r ; r)\nacyclic r as c\n'
        )
        assert findings == []

    def test_function_params_in_scope(self):
        findings = lint_cat_source(
            '"m"\nlet twice(r) = r ; r\nacyclic twice(po) as c\n'
        )
        assert findings == []

    def test_findings_carry_source(self):
        findings = lint_cat_source('"m"\nacyclic nope as c\n', name="my-model")
        assert findings[0].source == "my-model"
        assert "my-model" in findings[0].describe()
