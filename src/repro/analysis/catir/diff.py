"""Structural and algebraic comparison of compiled cat models.

Because the IR is hash-consed process-wide, two models compiled in the
same process share nodes for structurally identical definitions — so
"the same relation" is literal pointer equality, across models, after
normalization.  That makes the diff sharper than text comparison in both
directions: definitions that *look* different but normalize identically
are reported as shared, and a definition whose *name* differs but whose
node is the same as another model's is reported as renamed-but-equal
(IMM-style model correspondence, arXiv:1807.07892, at the cheap
structural level).

The ``repro-lint --diff-models A B`` CLI prints :meth:`ModelDiff.describe`;
``repro-lint --models`` prints :func:`models_report` plus the semantic
lint findings for every bundled model.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.catir import ir
from repro.analysis.catir.compile import (
    CompiledCheck,
    CompiledModel,
    compile_model,
)

#: Truncation width for pretty-printed nodes in reports.
_WIDTH = 60


def _short(node: ir.Node, limit: int = _WIDTH) -> str:
    text = node.pstr
    if len(text) > limit:
        return text[: limit - 3] + "..."
    return text


class ModelDiff:
    """The comparison of two compiled models."""

    def __init__(self, left: CompiledModel, right: CompiledModel):
        self.left = left
        self.right = right
        ldefs, rdefs = left.definitions, right.definitions
        #: Names defined in both models with the *same* node.
        self.shared: List[str] = [
            name for name, node in ldefs.items()
            if name in rdefs and rdefs[name] is node
        ]
        #: (name, left node, right node) for same-name different-value.
        self.changed: List[Tuple[str, ir.Node, ir.Node]] = [
            (name, node, rdefs[name])
            for name, node in ldefs.items()
            if name in rdefs and rdefs[name] is not node
        ]
        self.only_left: List[str] = [n for n in ldefs if n not in rdefs]
        self.only_right: List[str] = [n for n in rdefs if n not in ldefs]
        #: (left name, right name): differently-named but identical nodes,
        #: where the pair is not already explained by a shared name.
        self.renamed: List[Tuple[str, str]] = self._renamed(ldefs, rdefs)
        (
            self.shared_checks,
            self.changed_checks,
            self.only_left_checks,
            self.only_right_checks,
        ) = self._diff_checks(left.checks, right.checks)

    @staticmethod
    def _renamed(
        ldefs: Dict[str, ir.Node], rdefs: Dict[str, ir.Node]
    ) -> List[Tuple[str, str]]:
        by_left_node: Dict[ir.Node, str] = {}
        for name, node in ldefs.items():
            # First definition wins: earliest name is the canonical one.
            by_left_node.setdefault(node, name)
        pairs: List[Tuple[str, str]] = []
        for rname, rnode in rdefs.items():
            lname = by_left_node.get(rnode)
            if lname is None or lname == rname:
                continue
            if rname in ldefs and ldefs[rname] is rnode:
                continue  # already reported as shared
            if (
                lname in rdefs
                and rdefs[lname] is rnode
                and rname in ldefs
                and ldefs[rname] is rnode
            ):
                continue  # the same alias pair exists in both models
            pairs.append((lname, rname))
        return pairs

    @staticmethod
    def _diff_checks(
        lchecks: Tuple[CompiledCheck, ...],
        rchecks: Tuple[CompiledCheck, ...],
    ):
        lmap = {c.label: c for c in lchecks}
        rmap = {c.label: c for c in rchecks}
        shared: List[str] = []
        changed: List[Tuple[CompiledCheck, CompiledCheck]] = []
        for label, lcheck in lmap.items():
            rcheck = rmap.get(label)
            if rcheck is None:
                continue
            if (
                lcheck.root is rcheck.root
                and lcheck.kind == rcheck.kind
                and lcheck.negated == rcheck.negated
                and lcheck.flag == rcheck.flag
            ):
                shared.append(label)
            else:
                changed.append((lcheck, rcheck))
        only_left = [c for c in lchecks if c.label not in rmap]
        only_right = [c for c in rchecks if c.label not in lmap]
        return shared, changed, only_left, only_right

    # -- rendering -------------------------------------------------------

    def describe(self) -> str:
        """A deterministic, human-readable report (ASCII, stable order:
        definition/check order of the models themselves)."""
        ln, rn = self.left.name, self.right.name
        out: List[str] = [f"model diff: {ln} vs {rn}", ""]
        out.append("definitions")
        out.append(_listing(f"  shared ({len(self.shared)})", self.shared))
        out.append(f"  changed ({len(self.changed)}):")
        for name, lnode, rnode in self.changed:
            out.append(f"    {name}:")
            out.append(f"      {ln}: {_short(lnode)}")
            out.append(f"      {rn}: {_short(rnode)}")
        out.append(_listing(
            f"  only in {ln} ({len(self.only_left)})", self.only_left
        ))
        out.append(_listing(
            f"  only in {rn} ({len(self.only_right)})", self.only_right
        ))
        if self.renamed:
            out.append(f"  renamed but equal ({len(self.renamed)}):")
            for lname, rname in self.renamed:
                out.append(f"    {ln} '{lname}' = {rn} '{rname}'")
        out.append("")
        out.append("checks")
        out.append(_listing(
            f"  identical ({len(self.shared_checks)})", self.shared_checks
        ))
        out.append(f"  changed ({len(self.changed_checks)}):")
        for lcheck, rcheck in self.changed_checks:
            out.append(f"    {lcheck.label}:")
            out.append(
                f"      {ln}: {lcheck.kind} {_short(lcheck.root)}"
            )
            out.append(
                f"      {rn}: {rcheck.kind} {_short(rcheck.root)}"
            )
        out.append(_listing(
            f"  only in {ln} ({len(self.only_left_checks)})",
            [f"{c.kind} {c.label}" for c in self.only_left_checks],
        ))
        out.append(_listing(
            f"  only in {rn} ({len(self.only_right_checks)})",
            [f"{c.kind} {c.label}" for c in self.only_right_checks],
        ))
        return "\n".join(out) + "\n"

    @property
    def identical(self) -> bool:
        return not (
            self.changed
            or self.only_left
            or self.only_right
            or self.changed_checks
            or self.only_left_checks
            or self.only_right_checks
        )


def _listing(header: str, names: List[str]) -> str:
    if not names:
        return f"{header}: -"
    return f"{header}: " + ", ".join(names)


def diff_models(left: str, right: str) -> ModelDiff:
    """Diff two bundled models by name."""
    return ModelDiff(compile_model(left), compile_model(right))


def bundled_model_names() -> List[str]:
    from repro.cat.eval import MODELS_DIR

    return sorted(p.stem for p in MODELS_DIR.glob("*.cat"))


def models_report() -> str:
    """One summary line per bundled model: size of its compiled form and
    how much of it is shared (node-identical definitions) with each other
    bundled model."""
    names = bundled_model_names()
    compiled = {name: compile_model(name) for name in names}
    out: List[str] = ["bundled cat models (compiled to the relational IR)", ""]
    for name in names:
        model = compiled[name]
        out.append(
            f"{name}: {len(model.definitions)} definitions, "
            f"{len(model.functions)} functions, "
            f"{len(model.checks)} checks"
        )
        overlaps = []
        for other in names:
            if other == name:
                continue
            other_defs = compiled[other].definitions
            count = sum(
                1 for dname, dnode in model.definitions.items()
                if other_defs.get(dname) is dnode
            )
            if count:
                overlaps.append(f"{other} ({count})")
        if overlaps:
            out.append("  shared definitions with: " + ", ".join(overlaps))
    return "\n".join(out) + "\n"
