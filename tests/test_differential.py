"""Differential tests: independent implementations must agree.

Three layers are compared, mirroring the paper's methodology:

1. the native-Python LK model vs the cat-interpreted ``lkmm.cat`` — a
   transcription check on every execution of the corpus;
2. the operational simulator vs the axiomatic architecture models — every
   outcome the simulator produces must be allowed axiomatically (the
   machine is stronger than its model, never weaker);
3. the architecture models vs the LK model — the paper's soundness claim:
   hardware-allowed behaviour is LK-allowed (Section 5.1).
"""

import pytest

from repro.cat import load_model
from repro.executions import candidate_executions
from repro.hardware import compile_program, get_arch, run_klitmus
from repro.hardware.archspec import TABLE5_ARCHS
from repro.herd import run_litmus
from repro.litmus import library
from repro.lkmm import LinuxKernelModel

#: A representative slice of the corpus (the full corpus runs in the
#: benchmarks); lock-mutex is excluded for speed.
CORPUS = [
    "LB", "LB+ctrl+mb", "MP", "MP+wmb+rmb", "SB", "SB+mbs",
    "WRC", "WRC+po-rel+rmb", "WRC+wmb+acq", "RWC", "RWC+mbs",
    "PeterZ", "RCU-MP", "RCU-deferred-free", "At-inc",
    "MP+wmb+addr-acq", "2+2W+mbs", "IRIW+mbs",
]


class TestNativeVsCat:
    @pytest.mark.parametrize("name", CORPUS)
    def test_same_judgement_every_execution(self, lkmm, lkmm_cat, name):
        for x in candidate_executions(library.get(name)):
            assert lkmm.allows(x) == lkmm_cat.allows(x), x.describe()

    def test_core_models_agree_too(self):
        native_core = LinuxKernelModel(with_rcu=False)
        cat_core = load_model("lkmm-core")
        for name in ("MP+wmb+rmb", "SB+mbs", "LB+ctrl+mb"):
            for x in candidate_executions(library.get(name)):
                assert native_core.allows(x) == cat_core.allows(x)


class TestOpsimVsAxiomatic:
    """Every final state the simulator reaches must be reachable in the
    axiomatic architecture model."""

    @pytest.mark.parametrize("arch_name", TABLE5_ARCHS)
    @pytest.mark.parametrize(
        "name", ["SB", "MP", "LB", "WRC", "RWC", "SB+mbs", "MP+wmb+rmb"]
    )
    def test_observed_states_are_allowed(self, arch_name, name):
        program = library.get(name)
        arch = get_arch(arch_name)
        compiled = compile_program(program, arch, rcu="error")
        model = load_model(arch.cat_model)
        axiomatic_states = {
            x.final_state
            for x in candidate_executions(compiled)
            if model.allows(x)
        }
        observed = run_klitmus(program, arch, runs=800, seed=3)
        for state, count in observed.histogram.items():
            # The simulator also reports lock registers etc.; compare on
            # user registers and memory.
            assert state in axiomatic_states, (
                f"{name}@{arch_name}: simulator produced {state} "
                "which the axiomatic model forbids"
            )


class TestArchVsLkmm:
    """Soundness (Section 5.1): arch-allowed outcomes are LK-allowed."""

    @pytest.mark.parametrize("arch_name", TABLE5_ARCHS)
    @pytest.mark.parametrize(
        "name",
        [n for n in CORPUS if not n.startswith("RCU")],
    )
    def test_soundness(self, lkmm, arch_name, name):
        program = library.get(name)
        arch = get_arch(arch_name)
        compiled = compile_program(program, arch, rcu="error")
        model = load_model(arch.cat_model)
        arch_states = {
            x.final_state
            for x in candidate_executions(compiled)
            if model.allows(x)
        }
        lkmm_states = {
            x.final_state
            for x in candidate_executions(program)
            if lkmm.allows(x)
        }
        extra = arch_states - lkmm_states
        assert not extra, (
            f"{name}@{arch_name} allows {len(extra)} outcomes the LK "
            "model forbids — unsound"
        )
