"""Static analysis over models, litmus tests, and executions.

Three passes, all new correctness tooling on top of the paper's stack:

* :mod:`repro.analysis.races` — an execution-level data-race detector:
  conflicting plain accesses unordered by an LKMM-derived happens-before,
  in the spirit of the real LKMM's plain-access extension (the paper's
  model covers marked accesses only);
* :mod:`repro.analysis.catlint` — candidate-independent lint for cat
  models (undefined identifiers, unknown base sets, unused or shadowing
  ``let`` bindings, duplicate check names);
* :mod:`repro.analysis.litmuslint` — lint for litmus programs
  (uninitialized reads, unused registers, conditions naming unknown
  registers or locations, syntactic plain-race heuristic, dangling
  fences).

The ``repro-lint`` command-line tool (:mod:`repro.tools.cli`) drives the
two linters; ``repro-herd --check-races`` drives the race detector.
"""

from repro.analysis.findings import Finding
from repro.analysis.catlint import (
    lint_all_models,
    lint_cat,
    lint_cat_path,
    lint_cat_source,
)
from repro.analysis.litmuslint import lint_library, lint_program
from repro.analysis.races import (
    RACE_FREE,
    RACY,
    RaceReport,
    check_races,
    classify_library,
    race_order,
    races_in,
)

__all__ = [
    "Finding",
    "lint_all_models",
    "lint_cat",
    "lint_cat_path",
    "lint_cat_source",
    "lint_library",
    "lint_program",
    "RACE_FREE",
    "RACY",
    "RaceReport",
    "check_races",
    "classify_library",
    "race_order",
    "races_in",
]
