"""Parallel litmus driving over multiprocessing worker pools.

Trace enumeration is deterministic (:func:`repro.executions.enumerate.
candidate_executions_sharded`), so parallelism needs no communication:

* one *program* is split by handing shard ``s`` of ``N`` to worker ``s``,
  each worker enumerating every ``N``-th trace combination and scanning
  its candidates; the partial :class:`~repro.herd.RunResult` counters are
  summed afterwards (:func:`run_litmus_parallel`);
* a *batch* of programs (``repro-herd``/``repro-lint`` on a directory,
  :func:`repro.herd.verdicts`) is distributed program-per-task
  (:func:`verdicts_parallel`), which scales better than sharding when
  there are many more tests than cores.

Workers re-enumerate their shard from the pickled
:class:`~repro.litmus.ast.Program` — events are never pickled between
processes.  The parent's backend configuration is replicated into each
worker explicitly (an initializer, not environment inheritance), so
``use_backend``/``use_incremental`` contexts apply to parallel runs too.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, List, Sequence, Tuple

from repro.kernel import config as _config


def _init_worker(backend: str, incremental: bool) -> None:
    _config.set_backend(backend)
    _config.set_incremental(incremental)


def worker_pool(jobs: int):
    """A pool whose workers replicate this process's backend config."""
    return multiprocessing.get_context().Pool(
        processes=jobs,
        initializer=_init_worker,
        initargs=(_config.backend(), _config.incremental_enabled()),
    )


# -- one program, sharded trace combinations ----------------------------


def _run_shard(task):
    model, program, shard, shard_count, require_sc, keep_states = task
    from repro.herd import run_litmus_many

    results = run_litmus_many(
        [model],
        program,
        require_sc_per_location=require_sc,
        keep_states=keep_states,
        shard=shard,
        shard_count=shard_count,
    )
    return results[model.name]


def merge_results(partials: Sequence) -> "RunResult":
    """Sum shard-local :class:`~repro.herd.RunResult` counters.

    Witness executions are taken from the lowest shard that found one, so
    the merged result is deterministic for a fixed shard count.
    """
    merged = partials[0]
    for partial in partials[1:]:
        merged.candidates += partial.candidates
        merged.allowed += partial.allowed
        merged.witnesses += partial.witnesses
        merged.states |= partial.states
        if merged.witness_execution is None:
            merged.witness_execution = partial.witness_execution
        if merged.forbidden_witness is None:
            merged.forbidden_witness = partial.forbidden_witness
    return merged


def run_litmus_parallel(
    model,
    program,
    jobs: int,
    require_sc_per_location: bool = False,
    keep_states: bool = True,
):
    """Run one litmus test with its trace combinations sharded over ``jobs``
    worker processes.  Verdict, counts and state set are identical to the
    sequential :func:`repro.herd.run_litmus`."""
    from repro.herd import run_litmus_many

    jobs = max(1, int(jobs))
    if jobs == 1:
        return run_litmus_many(
            [model],
            program,
            require_sc_per_location=require_sc_per_location,
            keep_states=keep_states,
        )[model.name]
    tasks = [
        (model, program, shard, jobs, require_sc_per_location, keep_states)
        for shard in range(jobs)
    ]
    with worker_pool(jobs) as pool:
        partials = pool.map(_run_shard, tasks)
    return merge_results(partials)


# -- many programs, distributed whole ------------------------------------


def _run_program(task):
    models, program, kwargs = task
    from repro.herd import run_litmus_many

    results = run_litmus_many(models, program, **kwargs)
    return program.name, {
        model.name: results[model.name].verdict for model in models
    }


def verdicts_parallel(
    models: List,
    programs: List,
    jobs: int,
    **kwargs,
) -> Dict[str, Dict[str, str]]:
    """The :func:`repro.herd.verdicts` table, one program per pool task."""
    jobs = max(1, int(jobs))
    tasks = [(models, program, kwargs) for program in programs]
    if jobs == 1 or len(tasks) <= 1:
        pairs = [_run_program(task) for task in tasks]
    else:
        with worker_pool(min(jobs, len(tasks))) as pool:
            pairs = pool.map(_run_program, tasks)
    return dict(pairs)
