"""Parallel litmus driving over fault-tolerant worker pools.

Trace enumeration is deterministic (:func:`repro.executions.enumerate.
candidate_executions_sharded`), so parallelism needs no communication:

* one *program* is split by handing shard ``s`` of ``N`` to worker ``s``,
  each worker enumerating every ``N``-th trace combination and scanning
  its candidates; the partial :class:`~repro.herd.RunResult` counters are
  summed afterwards (:func:`run_litmus_parallel`);
* a *batch* of programs (``repro-herd``/``repro-lint`` on a directory,
  :func:`repro.herd.verdicts`) is distributed program-per-task
  (:func:`verdicts_parallel`), which scales better than sharding when
  there are many more tests than cores.

Workers re-enumerate their shard from the pickled
:class:`~repro.litmus.ast.Program` — events are never pickled between
processes.  The parent's backend configuration is replicated into each
worker explicitly (an initializer, not environment inheritance), so
``use_backend``/``use_incremental`` contexts apply to parallel runs too.

**Fault tolerance** (:func:`fault_tolerant_map`, the single submission
path): pools are :class:`concurrent.futures.ProcessPoolExecutor` objects,
so a worker that dies mid-task (OOM kill, segfault, injected
``REPRO_FAULT`` crash) surfaces promptly as ``BrokenProcessPool`` instead
of hanging the sweep; a worker that *hangs* is caught by the per-attempt
deadline.  Either way the driver kills the poisoned pool, re-spawns a
fresh one, and retries only the lost tasks with exponential backoff and
deterministic jitter, up to :data:`MAX_ATTEMPTS` attempts.  Completed
results are never recomputed.  Recovery activity is published as
``guard.worker_deaths`` / ``guard.worker_hangs`` / ``guard.retries``
observability counters.

**Budgets** cross the pool boundary by value: the drivers pickle the
parent's ambient :class:`repro.guard.Budget` into each task and workers
re-arm it locally, so shards self-limit cooperatively and ship partial
results home; the parent additionally derives a *hard* per-attempt
deadline from the wall budget (:func:`shard_deadline`) as a backstop
against workers that cannot reach a safepoint.

**Signals**: workers ignore SIGINT (the parent owns interruption); a
``KeyboardInterrupt`` in the parent terminates every pool promptly —
no orphaned worker processes — and :func:`shutdown_pools` is idempotent
and safe to call from signal/atexit context.

Observability (:mod:`repro.obs`) crosses the pool the same way as
before: when the parent has a collector installed, each worker runs its
task under a local :func:`repro.obs.collect` block and ships the
serialised :class:`~repro.obs.RunReport` back with the task result
(:func:`run_observed`); the parent absorbs the reports, so counter
totals are *exact* — a serial run and a merged parallel run of the same
test produce identical enumeration/judgement counters
(``tests/test_obs.py``).
"""

from __future__ import annotations

import atexit
import hashlib
import multiprocessing
import signal
import time
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.guard import core as _guard_core
from repro.guard import faults as _faults
from repro.kernel import config as _config
from repro.obs import core as _obs

#: Set in each worker by the pool initializer: the parent had a collector
#: installed, so tasks must collect locally and ship their report home.
_WORKER_OBSERVING = False

#: Retry policy for lost shards: total attempts (first try included).
MAX_ATTEMPTS = 4
#: Base backoff before the first retry; doubles per attempt, plus jitter.
BACKOFF_BASE_S = 0.05
#: Grace multiplier/slack turning a cooperative wall budget into a hard
#: per-attempt deadline for hang detection.
DEADLINE_FACTOR = 2.0
DEADLINE_SLACK_S = 5.0


class WorkerPoolError(RuntimeError):
    """Raised when tasks still fail after every retry attempt."""


def _init_worker(
    backend: str,
    incremental: bool,
    check_plan: bool,
    vm: bool,
    static_verdict: bool,
    observing: bool,
    fault_spec: Optional[str],
) -> None:
    global _WORKER_OBSERVING
    # The parent owns interruption: on Ctrl-C it terminates pools
    # explicitly, so workers must not die mid-IPC with tracebacks.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    _config.set_backend(backend)
    _config.set_incremental(incremental)
    _config.set_check_plan(check_plan)
    _config.set_vm(vm)
    _config.set_static_verdict(static_verdict)
    _WORKER_OBSERVING = observing
    _faults.mark_worker_process(fault_spec)


def _pool_config() -> tuple:
    return (
        _config.backend(),
        _config.incremental_enabled(),
        _config.check_plan_enabled(),
        _config.vm_enabled(),
        _config.static_verdict_enabled(),
        _obs.enabled(),
        _faults.raw_spec(),
    )


class WorkerPool:
    """A process pool with prompt, idempotent termination.

    Wraps :class:`ProcessPoolExecutor` (whose broken-pool detection the
    fault tolerance relies on) behind the small pool surface the rest of
    the package uses: ``submit``/``map``/``terminate``/``join``, and a
    context manager that *terminates* on exit like
    ``multiprocessing.Pool`` (an executor's default would block until
    every queued task drains).
    """

    def __init__(self, jobs: int):
        self.jobs = jobs
        self._dead = False
        self._executor = ProcessPoolExecutor(
            max_workers=jobs,
            mp_context=multiprocessing.get_context(),
            initializer=_init_worker,
            initargs=_pool_config(),
        )

    def submit(self, fn: Callable, *args):
        return self._executor.submit(fn, *args)

    def map(self, fn: Callable, tasks: Sequence) -> List:
        futures = [self.submit(fn, task) for task in tasks]
        return [future.result() for future in futures]

    def worker_pids(self) -> List[int]:
        processes = getattr(self._executor, "_processes", None) or {}
        return [proc.pid for proc in processes.values() if proc.pid]

    def terminate(self) -> None:
        """Kill workers and drop queued work; safe to call repeatedly."""
        if self._dead:
            return
        self._dead = True
        processes = list(
            (getattr(self._executor, "_processes", None) or {}).values()
        )
        try:
            self._executor.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - broken executor internals
            pass
        for proc in processes:
            try:
                proc.kill()
            except Exception:  # pragma: no cover - already gone
                pass
        for proc in processes:
            try:
                proc.join(timeout=5)
            except Exception:  # pragma: no cover
                pass

    def join(self) -> None:
        if not self._dead:
            self._executor.shutdown(wait=True)
            self._dead = True

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.terminate()


def worker_pool(jobs: int) -> WorkerPool:
    """A fresh pool whose workers replicate this process's kernel config."""
    return WorkerPool(jobs)


#: Long-lived pools keyed by (jobs, kernel config): spawning workers and
#: re-compiling models in them dominates small parallel runs, so pools
#: persist across run_litmus_many programs — a library sweep pays the
#: spawn and per-worker model/plan/bytecode compile cost once, not once
#: per test.  Bounded LRU; a config change (different key) rotates the
#: stale pool out and terminates it.
_PERSISTENT_POOLS: "OrderedDict[tuple, WorkerPool]" = OrderedDict()
_PERSISTENT_POOL_LIMIT = 2


def persistent_pool(jobs: int) -> WorkerPool:
    """A shared pool for this (jobs, config) combination.

    Callers must *not* close or terminate it; :func:`shutdown_pools`
    (registered atexit, and available to tests) reclaims the processes,
    and :func:`discard_pool` retires one that crashed or hung.
    """
    key = (jobs,) + _pool_config()
    pool = _PERSISTENT_POOLS.get(key)
    if pool is not None:
        _PERSISTENT_POOLS.move_to_end(key)
        if _obs.ENABLED:
            _obs.count("parallel.pool_reuse")
        return pool
    if _obs.ENABLED:
        _obs.count("parallel.pool_spawn")
    pool = worker_pool(jobs)
    _PERSISTENT_POOLS[key] = pool
    while len(_PERSISTENT_POOLS) > _PERSISTENT_POOL_LIMIT:
        _, stale = _PERSISTENT_POOLS.popitem(last=False)
        stale.terminate()
    return pool


def discard_pool(pool: WorkerPool) -> None:
    """Retire a poisoned persistent pool (broken or hung workers)."""
    for key, candidate in list(_PERSISTENT_POOLS.items()):
        if candidate is pool:
            del _PERSISTENT_POOLS[key]
    pool.terminate()


def shutdown_pools() -> None:
    """Terminate and reap every persistent pool.

    Idempotent and re-entrant: concurrent/repeated calls (atexit, a
    SIGINT handler, test teardown) each drain whatever pools remain and
    calling it with no pools left is a no-op.
    """
    while True:
        try:
            _, pool = _PERSISTENT_POOLS.popitem()
        except KeyError:
            return
        pool.terminate()


atexit.register(shutdown_pools)


# -- fault-tolerant submission --------------------------------------------


def _jitter(attempt: int, pending: int) -> float:
    """Deterministic jitter in [0, 1) — reproducible backoff schedules."""
    digest = hashlib.sha256(f"backoff|{attempt}|{pending}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def _faulted_call(fn: Callable, payload, nonce: str):
    """Worker-side task wrapper: the fault-injection point."""
    _faults.maybe_inject(nonce)
    return fn(payload)


def shard_deadline(budget: Optional["_guard_core.Budget"]) -> Optional[float]:
    """A hard per-attempt deadline derived from a cooperative wall budget.

    Workers normally stop themselves at a safepoint well inside the
    budget; the hard deadline (``factor × wall + slack``) only fires for
    workers that cannot reach one — a hung syscall, an injected hang —
    and triggers pool replacement plus a retry.
    """
    if budget is None or budget.wall_seconds is None:
        return None
    return budget.wall_seconds * DEADLINE_FACTOR + DEADLINE_SLACK_S


def fault_tolerant_map(
    fn: Callable,
    payloads: Sequence,
    jobs: int,
    task_timeout: Optional[float] = None,
    max_attempts: Optional[int] = None,
    on_result: Optional[Callable[[int, Any], None]] = None,
    stop: Optional[Callable[[], bool]] = None,
) -> List:
    """Run ``fn`` over ``payloads`` on a worker pool, surviving crashes
    and hangs.

    Results are returned in payload order.  ``task_timeout`` bounds each
    *attempt* (all in-flight tasks share the deadline; expired tasks are
    treated as hung and retried on a fresh pool).  ``on_result`` is
    invoked as ``on_result(index, result)`` in completion order — the
    checkpoint-journal hook.  Raises :class:`WorkerPoolError` when tasks
    still fail after ``max_attempts`` total attempts, and re-raises any
    genuine task exception immediately (a deterministic bug is not
    retryable).

    ``stop`` is polled between completions and retry rounds: when it
    returns true the map ends early — queued tasks are abandoned, the
    pool is retired (running tasks cannot be evicted individually), and
    the partial result list is returned with ``None`` in the unfinished
    slots.  Completed results (and their ``on_result`` checkpoints) are
    always kept, which is what makes a budgeted, journal-backed corpus
    sweep resumable: the next run picks up exactly the abandoned tail.
    """
    if max_attempts is None:
        max_attempts = MAX_ATTEMPTS
    results: List[Any] = [None] * len(payloads)
    pending = list(range(len(payloads)))
    # Attempts are tracked per task: one crash fails every in-flight
    # future on the broken pool, and that collateral damage must not
    # burn through a whole-batch retry budget.
    attempts = [0] * len(payloads)
    task_name = getattr(fn, "__name__", "task")

    def _stopped() -> bool:
        if stop is None or not stop():
            return False
        if _obs.ENABLED:
            _obs.count("guard.sweep_stops")
        return True

    try:
        while pending:
            if _stopped():
                return results
            pool = persistent_pool(jobs)
            futures = {}
            submit_broken = False
            for index in pending:
                # A fast crash can break the executor while the rest of
                # the batch is still being submitted; submit() then
                # raises synchronously, so the unsubmitted tail has to
                # join this round's retries rather than escape.
                try:
                    future = pool.submit(
                        _faulted_call,
                        fn,
                        payloads[index],
                        f"{task_name}:{index}:{attempts[index]}",
                    )
                except BrokenProcessPool:
                    submit_broken = True
                    if _obs.ENABLED:
                        _obs.count("guard.worker_deaths")
                    break
                futures[future] = index
            deadline = (
                None
                if task_timeout is None
                else time.monotonic() + task_timeout
            )
            failed: List[int] = []
            poisoned = False
            remaining = set(futures)
            while remaining:
                timeout = None
                if deadline is not None:
                    timeout = max(0.0, deadline - time.monotonic())
                done, not_done = wait(
                    remaining, timeout=timeout, return_when=FIRST_COMPLETED
                )
                if not done:
                    # Deadline passed with tasks still running: hung
                    # worker(s).  The pool must die — a stuck worker
                    # cannot be evicted individually.
                    failed.extend(futures[future] for future in not_done)
                    if _obs.ENABLED:
                        _obs.count("guard.worker_hangs", len(not_done))
                    poisoned = True
                    break
                for future in done:
                    remaining.discard(future)
                    index = futures[future]
                    try:
                        results[index] = future.result()
                    except BrokenProcessPool:
                        failed.append(index)
                        poisoned = True
                        if _obs.ENABLED:
                            _obs.count("guard.worker_deaths")
                        continue
                    if on_result is not None:
                        on_result(index, results[index])
                if remaining and _stopped():
                    # Abandon the tail: cancel what never started, retire
                    # the pool so running tasks stop burning CPU, and
                    # hand back whatever completed.
                    for future in remaining:
                        future.cancel()
                    discard_pool(pool)
                    return results
            if submit_broken:
                poisoned = True
                submitted = set(futures.values())
                failed.extend(
                    index for index in pending if index not in submitted
                )
            if poisoned:
                discard_pool(pool)
            pending = sorted(failed)
            if pending:
                for index in pending:
                    attempts[index] += 1
                exhausted = [
                    index
                    for index in pending
                    if attempts[index] >= max_attempts
                ]
                if exhausted:
                    raise WorkerPoolError(
                        f"{len(exhausted)} worker task(s) still failing "
                        f"after {max_attempts} attempts"
                    )
                round_number = max(attempts[index] for index in pending)
                delay = BACKOFF_BASE_S * (2 ** (round_number - 1))
                delay *= 1.0 + _jitter(round_number, len(pending))
                if _obs.ENABLED:
                    _obs.count("guard.retries", len(pending))
                time.sleep(delay)
    except KeyboardInterrupt:
        # Terminate promptly rather than leaving orphaned workers
        # grinding through a sweep nobody wants any more.
        shutdown_pools()
        raise
    return results


def run_observed(fn: Callable[[], Any]) -> Tuple[Any, Optional[Dict]]:
    """Run a task, collecting a local report if the parent is observing.

    In a worker of :func:`worker_pool` with an observing parent, ``fn``
    runs under a fresh collector and its serialised report is returned for
    the parent to :func:`~repro.obs.absorb`.  Anywhere else (serial path,
    non-observing pool) ``fn`` runs as-is and the report slot is ``None``.
    """
    if not _WORKER_OBSERVING:
        return fn(), None
    with _obs.collect() as collector:
        result = fn()
    return result, collector.report().to_dict()


def _absorb_reports(outcomes: Sequence[Tuple[Any, Optional[Dict]]]) -> List:
    """Merge worker reports into the parent collector; return the results."""
    for _, report in outcomes:
        if report is not None:
            _obs.absorb(report)
    return [result for result, _ in outcomes]


def _ambient_budget(
    budget: Optional["_guard_core.Budget"],
) -> Optional["_guard_core.Budget"]:
    """The explicit budget, else the armed guard's (for forwarding)."""
    if budget is not None:
        return budget
    active = _guard_core.current()
    return active.budget if active is not None else None


# -- one program, sharded trace combinations ----------------------------


def _run_shard(task):
    model, program, shard, shard_count, require_sc, keep_states, budget = task
    from repro.herd import run_litmus_many

    def run():
        return run_litmus_many(
            [model],
            program,
            require_sc_per_location=require_sc,
            keep_states=keep_states,
            shard=shard,
            shard_count=shard_count,
        )[model.name]

    def guarded():
        if budget is None:
            return run()
        # Each shard re-arms the budget locally (its own wall clock,
        # candidate and memory counters): shards self-limit and return
        # partial RunResults that merge_results degrades soundly.
        with _guard_core.guard(budget):
            return run()

    return run_observed(guarded)


def merge_results(partials: Sequence) -> "RunResult":
    """Sum shard-local :class:`~repro.herd.RunResult` counters.

    Witness executions are taken from the lowest shard that found one, so
    the merged result is deterministic for a fixed shard count.  Any
    interrupted shard marks the merged result interrupted (first shard's
    provenance wins); the verdict property keeps decisive facts decisive.
    """
    merged = partials[0]
    for partial in partials[1:]:
        merged.candidates += partial.candidates
        merged.allowed += partial.allowed
        merged.witnesses += partial.witnesses
        merged.states |= partial.states
        if merged.witness_execution is None:
            merged.witness_execution = partial.witness_execution
        if merged.forbidden_witness is None:
            merged.forbidden_witness = partial.forbidden_witness
        if merged.interrupted is None:
            merged.interrupted = partial.interrupted
    return merged


def run_litmus_parallel(
    model,
    program,
    jobs: int,
    require_sc_per_location: bool = False,
    keep_states: bool = True,
    budget: Optional["_guard_core.Budget"] = None,
):
    """Run one litmus test with its trace combinations sharded over ``jobs``
    worker processes.  Verdict, counts and state set are identical to the
    sequential :func:`repro.herd.run_litmus`; crashed or hung workers are
    retried transparently (:func:`fault_tolerant_map`)."""
    jobs = max(1, int(jobs))
    budget = _ambient_budget(budget)
    if jobs == 1:
        return _run_shard(
            (model, program, 0, 1, require_sc_per_location, keep_states, budget)
        )[0]
    if _obs.ENABLED:
        _obs.gauge("parallel.jobs", jobs)
        _obs.count("parallel.sharded_runs")
    tasks = [
        (
            model,
            program,
            shard,
            jobs,
            require_sc_per_location,
            keep_states,
            budget,
        )
        for shard in range(jobs)
    ]
    with _obs.span("parallel.run_litmus"):
        outcomes = fault_tolerant_map(
            _run_shard, tasks, jobs, task_timeout=shard_deadline(budget)
        )
    return merge_results(_absorb_reports(outcomes))


# -- many programs, distributed whole ------------------------------------


def _run_program(task):
    models, program, kwargs, budget = task
    from repro.herd import verdict_row

    def run():
        return program.name, verdict_row(models, program, **kwargs)

    def guarded():
        if budget is None:
            return run()
        with _guard_core.guard(budget):
            return run()

    return run_observed(guarded)


def verdicts_parallel(
    models: List,
    programs: List,
    jobs: int,
    journal=None,
    budget: Optional["_guard_core.Budget"] = None,
    **kwargs,
) -> Dict[str, Dict[str, str]]:
    """The :func:`repro.herd.verdicts` table, one program per pool task.

    The early-exit/verdict-only defaults match :func:`repro.herd.verdicts`
    exactly (for callers that come here directly), so serial and
    distributed sweeps scan the same candidate prefixes, check the same
    candidates, and their merged counters agree (``tests/test_obs.py``).

    Completed rows are checkpointed to ``journal`` as they land (in
    completion order — the journal is an unordered set of rows), already
    journaled programs are skipped, and lost workers are retried; an
    interrupted sweep therefore resumes instead of restarting.
    """
    from repro.herd import INCONCLUSIVE

    kwargs.setdefault("stop_when_decided", _config.vm_enabled())
    kwargs.setdefault("verdict_only", _config.vm_enabled())
    jobs = max(1, int(jobs))
    budget = _ambient_budget(budget)

    table: Dict[str, Dict[str, str]] = {}
    to_run = []
    for program in programs:
        done = journal.completed(program.name) if journal is not None else None
        if done is not None:
            if _obs.ENABLED:
                _obs.count("guard.journal_skips")
            table[program.name] = done
        else:
            to_run.append(program)

    tasks = [(models, program, kwargs, budget) for program in to_run]

    def checkpoint(index: int, outcome) -> None:
        (name, row), report = outcome
        if report is not None:
            _obs.absorb(report)
        if journal is not None and INCONCLUSIVE not in row.values():
            journal.record(name, row)

    if jobs == 1 or len(tasks) <= 1:
        outcomes = []
        for index, task in enumerate(tasks):
            outcome = _run_program(task)
            checkpoint(index, outcome)
            outcomes.append(outcome)
        rows = [result for result, _ in outcomes]
    else:
        if _obs.ENABLED:
            _obs.gauge("parallel.jobs", jobs)
            _obs.count("parallel.program_batches")
        with _obs.span("parallel.verdicts"):
            outcomes = fault_tolerant_map(
                _run_program,
                tasks,
                min(jobs, len(tasks)),
                task_timeout=shard_deadline(budget),
                on_result=checkpoint,
            )
        rows = [result for result, _ in outcomes]
    for name, row in rows:
        table[name] = row
    # Preserve input program order in the returned table.
    return {
        program.name: table[program.name]
        for program in programs
        if program.name in table
    }
