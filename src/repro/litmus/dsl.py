"""A concise Python builder API for litmus tests.

Example — the message-passing test of Figure 1 of the paper::

    from repro.litmus import dsl as d

    mp = d.program(
        "MP+wmb+rmb",
        d.thread(
            d.write_once("x", 1),
            d.smp_wmb(),
            d.write_once("y", 1),
        ),
        d.thread(
            d.read_once("r1", "y"),
            d.smp_rmb(),
            d.read_once("r2", "x"),
        ),
        condition=d.exists_regs((1, "r1", 1), (1, "r2", 0)),
    )

Location arguments accept a location name (``"x"``), a register holding a
pointer (``d.reg("r1")``), or an arbitrary address expression.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple, Union

from repro.events import (
    ACQUIRE,
    MB,
    ONCE,
    PLAIN,
    Pointer,
    RB_DEP,
    RCU_LOCK,
    RCU_UNLOCK,
    RELEASE,
    RMB,
    SYNC_RCU,
    Value,
    WMB,
)
from repro.litmus.ast import (
    BinOp,
    CmpXchg,
    Const,
    Expr,
    Fence,
    If,
    Instruction,
    Load,
    LocalAssign,
    Program,
    Reg,
    Rmw,
    Store,
    Thread,
    UnOp,
)
from repro.litmus.outcomes import (
    And,
    Condition,
    Exists,
    LocValue,
    NotExists,
    RegValue,
    conj,
    exists,
    forall,
    not_exists,
)

AddrLike = Union[str, Expr]
ValueLike = Union[int, Pointer, str, Expr]


def loc(name: str) -> Expr:
    """The address of shared location ``name`` (C's ``&name``)."""
    return Const(Pointer(name))


def ptr(name: str) -> Pointer:
    """A pointer *value* ``&name`` — usable as a stored value or initial
    value, which is how address dependencies are set up."""
    return Pointer(name)


def reg(name: str) -> Reg:
    """A reference to private register ``name``."""
    return Reg(name)


def _addr(address: AddrLike) -> Expr:
    if isinstance(address, str):
        return loc(address)
    if isinstance(address, Expr):
        return address
    raise TypeError(f"not an address: {address!r}")


def _value(value: ValueLike) -> Expr:
    if isinstance(value, bool):
        return Const(int(value))
    if isinstance(value, (int, Pointer)):
        return Const(value)
    if isinstance(value, str):
        # A bare string in value position names a register, the common case
        # in data-dependent writes: write_once("y", "r1").
        return Reg(value)
    if isinstance(value, Expr):
        return value
    raise TypeError(f"not a value: {value!r}")


# -- accesses ----------------------------------------------------------------


def read_once(register: str, address: AddrLike) -> Load:
    """``register = READ_ONCE(*address)``"""
    return Load(register, _addr(address), ONCE)


def load_acquire(register: str, address: AddrLike) -> Load:
    """``register = smp_load_acquire(address)``"""
    return Load(register, _addr(address), ACQUIRE)


def read_plain(register: str, address: AddrLike) -> Load:
    """A plain (non-ONCE) load — used by architecture-level programs."""
    return Load(register, _addr(address), PLAIN)


def write_once(address: AddrLike, value: ValueLike) -> Store:
    """``WRITE_ONCE(*address, value)``"""
    return Store(_addr(address), _value(value), ONCE)


def store_release(address: AddrLike, value: ValueLike) -> Store:
    """``smp_store_release(address, value)``"""
    return Store(_addr(address), _value(value), RELEASE)


def write_plain(address: AddrLike, value: ValueLike) -> Store:
    """A plain (non-ONCE) store — used by architecture-level programs."""
    return Store(_addr(address), _value(value), PLAIN)


# -- fences ------------------------------------------------------------------


def smp_mb() -> Fence:
    return Fence(MB)


def smp_rmb() -> Fence:
    return Fence(RMB)


def smp_wmb() -> Fence:
    return Fence(WMB)


def smp_read_barrier_depends() -> Fence:
    return Fence(RB_DEP)


def rcu_read_lock() -> Fence:
    return Fence(RCU_LOCK)


def rcu_read_unlock() -> Fence:
    return Fence(RCU_UNLOCK)


def synchronize_rcu() -> Fence:
    return Fence(SYNC_RCU)


# -- RCU accessors (Table 4) ---------------------------------------------------


def rcu_dereference(register: str, address: AddrLike) -> Load:
    """``register = rcu_dereference(*address)`` — R[once] + F[rb-dep]."""
    return Load(register, _addr(address), ONCE, rb_dep=True)


def rcu_assign_pointer(address: AddrLike, value: ValueLike) -> Store:
    """``rcu_assign_pointer(*address, value)`` — W[release]."""
    return Store(_addr(address), _value(value), RELEASE)


# -- read-modify-writes --------------------------------------------------------


def xchg(register: str, address: AddrLike, value: ValueLike) -> Rmw:
    return Rmw(register, _addr(address), _value(value), "xchg")


def xchg_relaxed(register: str, address: AddrLike, value: ValueLike) -> Rmw:
    return Rmw(register, _addr(address), _value(value), "xchg_relaxed")


def xchg_acquire(register: str, address: AddrLike, value: ValueLike) -> Rmw:
    return Rmw(register, _addr(address), _value(value), "xchg_acquire")


def xchg_release(register: str, address: AddrLike, value: ValueLike) -> Rmw:
    return Rmw(register, _addr(address), _value(value), "xchg_release")


def cmpxchg(
    register: str,
    address: AddrLike,
    expected: ValueLike,
    new_value: ValueLike,
    variant: str = "xchg",
) -> CmpXchg:
    return CmpXchg(register, _addr(address), _value(expected), _value(new_value), variant)


def atomic_inc_return(register: str, address: AddrLike) -> Rmw:
    """``register = atomic_inc_return(address)`` — full-fenced increment.

    The value written is the value read plus one; ``register`` ends up
    holding the value read (the pre-increment value)."""
    return Rmw(register, _addr(address), BinOp("+", Reg(register), Const(1)), "xchg")


# -- locking (emulated per Section 7 of the paper) -----------------------------


def spin_lock(address: AddrLike) -> Rmw:
    """``spin_lock(address)`` — behaves like ``xchg_acquire`` that must
    observe the lock free (reads 0, writes 1)."""
    return Rmw(
        "__lockreg",
        _addr(address),
        Const(1),
        "xchg_acquire",
        require_read_value=0,
    )


def spin_unlock(address: AddrLike) -> Store:
    """``spin_unlock(address)`` — behaves like ``smp_store_release(0)``."""
    return Store(_addr(address), Const(0), RELEASE)


# -- control flow and locals ----------------------------------------------------


def if_then(
    cond: Expr,
    then: Iterable[Instruction],
    orelse: Iterable[Instruction] = (),
) -> If:
    return If(cond, tuple(then), tuple(orelse))


def assign(register: str, value: ValueLike) -> LocalAssign:
    return LocalAssign(register, _value(value))


def eq(lhs: ValueLike, rhs: ValueLike) -> BinOp:
    return BinOp("==", _value(lhs), _value(rhs))


def ne(lhs: ValueLike, rhs: ValueLike) -> BinOp:
    return BinOp("!=", _value(lhs), _value(rhs))


def add(lhs: ValueLike, rhs: ValueLike) -> BinOp:
    return BinOp("+", _value(lhs), _value(rhs))


# -- programs ---------------------------------------------------------------


def thread(*instructions: Instruction) -> Thread:
    return Thread(tuple(instructions))


def program(
    name: str,
    *threads: Thread,
    init: Optional[Dict[str, Value]] = None,
    condition: Optional[Condition] = None,
) -> Program:
    return Program(name, tuple(threads), dict(init or {}), condition)


def exists_regs(*clauses: Tuple[int, str, Value]) -> Exists:
    """``exists (t0:r0=v0 /\\ t1:r1=v1 /\\ ...)`` from (tid, reg, val) triples."""
    return exists(conj(*(RegValue(t, r, v) for t, r, v in clauses)))


def not_exists_regs(*clauses: Tuple[int, str, Value]) -> NotExists:
    return not_exists(conj(*(RegValue(t, r, v) for t, r, v in clauses)))
