#!/usr/bin/env python
"""Systematic test generation, diy-style (Section 5 of the paper).

Builds litmus tests from cycles of relaxation edges, runs each against
the LK model, and summarises which cycles are forbidden.  This is how
the paper's authors produced "thousands of tests with cycles of edges of
increasing size" to validate the model.
"""

from collections import Counter

from repro import LinuxKernelModel, run_litmus
from repro.diy import generate, generate_cycles

VOCAB = [
    "Rfe", "Fre", "Coe",
    "PodRR", "PodWR", "PodWW",
    "MbdRR", "MbdWR", "MbdWW", "WmbdWW", "RmbdRR",
    "DpDatadW", "AcqdR", "ReldW",
]


def main() -> None:
    model = LinuxKernelModel()

    print("One cycle in detail — Rfe RmbdRR Fre WmbdWW (message passing):")
    program = generate(["Rfe", "RmbdRR", "Fre", "WmbdWW"])
    for tid, thread in enumerate(program.threads):
        print(f"  P{tid}:")
        for instruction in thread.body:
            print(f"    {instruction!r}")
    print(f"  {program.condition!r}")
    print(f"  verdict: {run_litmus(model, program).verdict}\n")

    print(f"Sweeping all 4-edge cycles over {len(VOCAB)} edge kinds...")
    verdicts = Counter()
    forbidden_with_no_strong_fence = []
    for program in generate_cycles(VOCAB, 4, max_tests=250):
        verdict = run_litmus(model, program).verdict
        verdicts[verdict] += 1
        if verdict == "Forbid" and "Mb" not in program.name and "Sync" not in program.name:
            forbidden_with_no_strong_fence.append(program.name)

    total = sum(verdicts.values())
    print(f"  {total} realisable cycles: {dict(verdicts)}")
    print(
        f"\n  {len(forbidden_with_no_strong_fence)} cycles are forbidden "
        "without any strong fence, e.g.:"
    )
    for name in forbidden_with_no_strong_fence[:8]:
        print(f"    {name}")
    print(
        "\n  (dependencies, lightweight fences and release/acquire are "
        "enough for\n  these; the rest need smp_mb or a grace period — "
        "the pb axiom.)"
    )


if __name__ == "__main__":
    main()
