"""repro.obs — observability across the enumeration/evaluation stack.

"Herding Cats"-style simulation tooling is only trustworthy when its
search behaviour is visible; this package makes the package's invisible
counting exercises observable:

* **spans** — ``with obs.span("enumerate.thread_traces"): ...`` times a
  region; spans nest (contextvar-tracked), always balance (exceptions
  included), and aggregate flat-by-name into (count, total, max) triples;
* **counters / gauges** — ``obs.count("enumerate.candidates")`` tallies
  the search: candidates enumerated vs pruned, cache hits vs misses,
  model checks, axiom violations;
* **RunReport** — the serialisable summary, mergeable across
  :mod:`repro.kernel.parallel` workers, exported as a human ``--profile``
  table or ``--trace-json`` JSON, and accumulated into ``BENCH_obs.json``
  by ``benchmarks/record.py``.

Everything is off by default and near-free when off: instrument first,
pay only when a :func:`collect` block is active.

Usage::

    from repro import obs

    with obs.collect() as collector:
        run_litmus(model, program)
    print(collector.report().format_profile())
"""

from repro.obs.core import (
    Collector,
    absorb,
    active_spans,
    collect,
    count,
    current,
    enabled,
    gauge,
    span,
)
from repro.obs.report import RunReport, SpanStat

__all__ = [
    "Collector",
    "RunReport",
    "SpanStat",
    "absorb",
    "active_spans",
    "collect",
    "count",
    "current",
    "enabled",
    "gauge",
    "span",
]
